//! Engine-level behaviors beyond physics equivalence: tracing, traffic
//! statistics, fixed packet counts, NVE operation, and the isolated FFT
//! measurement.

use anton_core::{AntonConfig, AntonMdEngine};
use anton_des::{SimTime, TrackId};
use anton_md::{MdParams, SystemBuilder};
use anton_topo::TorusDims;

fn small_engine() -> AntonMdEngine {
    let sys = SystemBuilder::tiny(240, 22.0, 555).build();
    let mut md = MdParams::new(4.5, [16; 3]);
    md.dt = 0.5;
    let config = AntonConfig::new(md);
    AntonMdEngine::new(sys, config, TorusDims::new(2, 2, 2))
}

#[test]
fn activity_trace_captures_all_unit_classes() {
    let mut eng = small_engine();
    eng.step(); // step 1: range-limited
    eng.trace_next_step();
    let t = eng.step(); // step 2: long-range, traced
    assert!(t.long_range);
    let tracer = eng.last_trace.as_ref().expect("trace captured");
    assert!(!tracer.intervals().is_empty());
    let end = SimTime::ZERO + t.total;
    // Links, Tensilica cores, geometry cores, and HTIS all show busy time.
    for track in [0u16, 6, 7, 8] {
        let busy = tracer.busy_time(TrackId(track), SimTime::ZERO, end);
        assert!(busy.as_ns_f64() > 0.0, "track {track} recorded no activity");
    }
    // The CSV renders.
    let csv = tracer.to_csv();
    assert!(csv.lines().count() > 100);
}

#[test]
fn step_traffic_is_identical_across_equal_steps() {
    // Fixed communication patterns (§IV.A): two range-limited steps in
    // the same epoch exchange exactly the same number of packets.
    let mut eng = small_engine();
    eng.step(); // 1: RL
    let s1 = eng.last_stats.clone().expect("stats");
    eng.step(); // 2: LR
    eng.step(); // 3: RL
    let s3 = eng.last_stats.clone().expect("stats");
    assert_eq!(s1.packets_sent, s3.packets_sent);
    assert_eq!(s1.packets_delivered, s3.packets_delivered);
    assert_eq!(s1.link_traversals, s3.link_traversals);
}

#[test]
fn nve_runs_without_thermostat() {
    let sys = SystemBuilder::tiny(150, 19.0, 556).build();
    let mut md = MdParams::nve(4.5, [16; 3]);
    md.long_range_interval = 2;
    let config = AntonConfig::new(md);
    let mut eng = AntonMdEngine::new(sys, config, TorusDims::new(2, 2, 2));
    for _ in 0..4 {
        let t = eng.step();
        assert!(!t.thermostat, "NVE steps run no global reduction");
        assert_eq!(t.reduce_span.as_ps(), 0);
    }
}

#[test]
fn isolated_fft_convolution_is_faster_than_a_long_range_step() {
    let mut eng = small_engine();
    eng.step();
    let lr = eng.step();
    assert!(lr.long_range);
    let fft = eng.measure_fft_convolution();
    assert!(fft > anton_des::SimDuration::ZERO);
    assert!(
        fft < lr.total,
        "isolated convolution {fft} must beat the full step {}",
        lr.total
    );
}

#[test]
fn regeneration_mid_run_preserves_physics() {
    let sys = SystemBuilder::tiny(240, 22.0, 557).build();
    let mut md = MdParams::new(4.5, [16; 3]);
    md.dt = 0.5;
    let config = AntonConfig::new(md.clone());
    let mut a = AntonMdEngine::new(sys.clone(), config, TorusDims::new(2, 2, 2));
    let config2 = AntonConfig::new(md);
    let mut b = AntonMdEngine::new(sys, config2, TorusDims::new(2, 2, 2));
    a.step();
    b.step();
    // Force a regeneration on engine `a` only.
    a.state.borrow_mut().regenerate_bond_program();
    for _ in 0..3 {
        a.step();
        b.step();
    }
    // The bond program is an implementation detail: trajectories agree
    // bit-for-bit (same terms, same arithmetic, different placement).
    let (sa, sb) = (a.system(), b.system());
    for (x, y) in sa.atoms.iter().zip(&sb.atoms) {
        assert_eq!(x.pos.x.to_bits(), y.pos.x.to_bits());
        assert_eq!(x.vel.z.to_bits(), y.vel.z.to_bits());
    }
}

#[test]
fn per_node_packet_counts_are_balanced() {
    let mut eng = small_engine();
    eng.step();
    let stats = eng.last_stats.as_ref().expect("stats");
    let max = *stats.sent_by_node.iter().max().expect("nodes");
    let min = *stats.sent_by_node.iter().min().expect("nodes");
    // Homogeneous water box on a symmetric machine: sends within 3× of
    // each other (bond terms cluster a little).
    assert!(max <= 3 * min.max(1), "imbalanced sends: {min}..{max}");
}

#[test]
fn automatic_bond_program_regeneration_fires_on_schedule() {
    let sys = SystemBuilder::tiny(150, 19.0, 558).build();
    let mut md = MdParams::new(4.5, [16; 3]);
    md.dt = 0.5;
    let mut config = AntonConfig::new(md);
    config.regen_interval = Some(2);
    let mut eng = AntonMdEngine::new(sys, config, TorusDims::new(2, 2, 2));
    assert_eq!(eng.state.borrow().bond_program_age, 0);
    eng.step(); // k=1: 1-0 ≤ 2, no regen
    eng.step(); // k=2
    eng.step(); // k=3: 3-0 > 2 → regenerate
    let age = eng.state.borrow().bond_program_age;
    assert!(age >= 2, "regeneration should have fired, age={age}");
    // And the run keeps going cleanly afterwards.
    eng.step();
    assert_eq!(eng.steps(), 4);
}
