//! NVE energy conservation through the full distributed pipeline: the
//! strongest end-to-end physics check — forces travel as fixed-point
//! packets through simulated accumulation memories, yet the integrated
//! trajectory must conserve total energy like the reference engine does.

use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::integrate::total_kinetic;
use anton_md::{MdParams, SystemBuilder};
use anton_topo::TorusDims;

#[test]
fn distributed_nve_conserves_energy() {
    let sys = SystemBuilder::tiny(150, 18.0, 2718).build();
    let mut md = MdParams::nve(4.5, [16; 3]);
    md.dt = 0.5;
    md.long_range_interval = 1; // fresh long-range every step for NVE
    let config = AntonConfig::new(md);
    let mut eng = AntonMdEngine::new(sys, config, TorusDims::new(2, 2, 2));

    let e0 = eng.last_energies.potential() + total_kinetic(&eng.state.borrow().sys);
    let mut kes = Vec::new();
    for _ in 0..80 {
        eng.step();
        kes.push(total_kinetic(&eng.state.borrow().sys));
    }
    let e1 = eng.last_energies.potential() + total_kinetic(&eng.state.borrow().sys);
    let ke_scale = kes.iter().cloned().fold(f64::MIN, f64::max).max(1.0);
    let drift = (e1 - e0).abs() / ke_scale;
    assert!(
        drift < 0.05,
        "NVE drift through the distributed machine: {drift:.4} (e0={e0:.2}, e1={e1:.2})"
    );
}

#[test]
fn distributed_nve_conserves_momentum() {
    let sys = SystemBuilder::tiny(90, 15.0, 2719).build();
    let mut md = MdParams::nve(4.0, [16; 3]);
    md.dt = 0.5;
    let config = AntonConfig::new(md);
    let mut eng = AntonMdEngine::new(sys, config, TorusDims::new(2, 2, 2));
    for _ in 0..40 {
        eng.step();
    }
    let sys = eng.system();
    let p = sys.total_momentum();
    let scale: f64 = sys.atoms.iter().map(|a| (a.vel * a.mass).norm()).sum();
    assert!(
        p.norm() < 0.05 * scale.max(1e-12),
        "net momentum {p:?} vs scale {scale}"
    );
}
