//! NPT on the simulated machine: the barostat path of Figure 2 — virial
//! partials computed in the HTIS pair pipelines, globally reduced
//! together with the kinetic energy, box rescaled — against the
//! reference engine.

use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::integrate::ATM;
use anton_md::{Barostat, MdParams, ReferenceEngine, SystemBuilder, Thermostat};
use anton_topo::TorusDims;

fn npt_params() -> MdParams {
    let mut md = MdParams::new(4.5, [16; 3]);
    md.dt = 0.5;
    md.long_range_interval = 2;
    md.thermostat = Some(Thermostat {
        target: 300.0,
        tau: 100.0,
        interval: 2,
    });
    md.barostat = Some(Barostat {
        target: ATM,
        tau: 200.0,
        kappa: 20.0,
        interval: 2,
    });
    md
}

#[test]
fn anton_barostat_tracks_the_reference_engine() {
    let sys = SystemBuilder::tiny(240, 22.0, 808).build();
    let md = npt_params();
    let config = AntonConfig::new(md.clone());
    let mut anton = AntonMdEngine::new(sys.clone(), config, TorusDims::new(2, 2, 2));
    let mut reference = ReferenceEngine::new(sys, md);
    let v0 = reference.sys.pbox.volume();
    for _ in 0..6 {
        anton.step();
        reference.step();
    }
    let va = anton.system().pbox.volume();
    let vr = reference.sys.pbox.volume();
    // Both engines applied the same barostat decisions (within
    // fixed-point noise on the virial).
    assert!(
        (va - vr).abs() < 2e-3 * vr,
        "anton box {va} Å³ vs reference {vr} Å³"
    );
    // And the box actually moved (the fresh lattice is far from 1 atm).
    assert!(
        (va - v0).abs() > 1e-6 * v0,
        "barostat had no effect: {v0} → {va}"
    );
}

#[test]
fn reduced_virial_matches_host_side_sum() {
    let sys = SystemBuilder::tiny(240, 22.0, 809).build();
    let md = npt_params();
    let config = AntonConfig::new(md);
    let mut anton = AntonMdEngine::new(sys, config, TorusDims::new(2, 2, 2));
    anton.step(); // step 1: no reduce (interval 2)
    anton.step(); // step 2: reduce runs
    let st = anton.state.borrow();
    let (ke, virial) = st.scratch.reduced.expect("reduction ran on step 2");
    // The reduced virial equals the per-node partials' sum.
    let host: f64 = st.scratch.virial.iter().sum();
    assert!(
        (virial - host).abs() < 1e-9 * host.abs().max(1.0),
        "{virial} vs {host}"
    );
    // The reduced kinetic energy equals the direct host-side total.
    let direct = anton_md::integrate::total_kinetic(&st.sys);
    // The reduce happened before any post-reduction rescale applied by
    // the engine, so compare loosely (thermostat λ was applied after).
    assert!(
        (ke - direct).abs() < 0.05 * direct.max(1e-9),
        "ke {ke} vs direct {direct}"
    );
}

#[test]
fn barostat_without_thermostat_still_reduces() {
    let sys = SystemBuilder::tiny(150, 19.0, 810).build();
    let mut md = npt_params();
    md.thermostat = None;
    let config = AntonConfig::new(md);
    let mut anton = AntonMdEngine::new(sys, config, TorusDims::new(2, 2, 2));
    let v0 = anton.system().pbox.volume();
    anton.step();
    let t = anton.step();
    assert!(t.thermostat, "the reduce phase must run for the barostat");
    let v1 = anton.system().pbox.volume();
    assert!((v1 - v0).abs() > 0.0, "box rescale applied");
}
