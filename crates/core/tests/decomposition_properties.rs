//! Property tests of the NT decomposition and the FFT/halo plans across
//! randomized machine geometries — correctness of these maps underpins
//! every simulated experiment.

use anton_core::Decomposition;
use anton_fft::GridMap;
use anton_md::PeriodicBox;
use anton_topo::{NodeId, TorusDims};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// NT coverage: every box pair within reach is computed on exactly
    /// one node, whatever the machine shape and cutoff.
    #[test]
    fn nt_coverage_on_random_geometries(
        nx in 2u32..6, ny in 2u32..6, nz in 2u32..6,
        edge in 18.0f64..40.0,
        cutoff_frac in 0.15f64..0.45,
    ) {
        let dims = TorusDims::new(nx, ny, nz);
        let pbox = PeriodicBox::cubic(edge);
        let cutoff = edge * cutoff_frac;
        let d = Decomposition::new(dims, pbox, cutoff);
        let mut claims = std::collections::HashMap::new();
        for c in dims.iter_coords() {
            for (a, b) in d.task_pairs(c) {
                prop_assert!(d.import_boxes(a).contains(&c));
                prop_assert!(d.import_boxes(b).contains(&c));
                let key = (
                    a.node_id(dims).min(b.node_id(dims)),
                    a.node_id(dims).max(b.node_id(dims)),
                );
                *claims.entry(key).or_insert(0u32) += 1;
            }
        }
        for a in dims.iter_coords() {
            for b in dims.iter_coords() {
                if a.node_id(dims) > b.node_id(dims) {
                    continue;
                }
                let want = u32::from(d.boxes_within_cutoff(a, b));
                let got = claims
                    .get(&(a.node_id(dims), b.node_id(dims)))
                    .copied()
                    .unwrap_or(0);
                prop_assert_eq!(got, want, "pair {}–{} on {}x{}x{} cutoff {:.1}",
                    a, b, nx, ny, nz, cutoff);
            }
        }
    }

    /// The import relation is symmetric through `source_boxes`:
    /// c receives from s ⇔ s's import set contains c.
    #[test]
    fn import_and_source_are_inverse(
        nx in 2u32..7, ny in 2u32..7, nz in 2u32..7,
        seed in 0u64..1_000,
    ) {
        let dims = TorusDims::new(nx, ny, nz);
        let d = Decomposition::new(dims, PeriodicBox::cubic(30.0), 8.0);
        let n = dims.node_count() as u64;
        let c = NodeId((seed % n) as u32).coord(dims);
        for s in d.source_boxes(c) {
            prop_assert!(d.import_boxes(s).contains(&c));
        }
        for t in d.import_boxes(c) {
            prop_assert!(d.source_boxes(t).contains(&c));
        }
    }

    /// FFT pencil ownership covers every grid point exactly once per
    /// stage, on asymmetric machines and grids.
    #[test]
    fn fft_pencils_partition_the_grid(
        mx in 1u32..5, my in 1u32..5, mz in 1u32..5,
        gexp in 3u32..6,
    ) {
        let g = 1usize << gexp; // 8..32
        let dims = TorusDims::new(
            2u32.pow(mx.min(gexp)),
            2u32.pow(my.min(gexp)),
            2u32.pow(mz.min(gexp)),
        );
        let map = GridMap::new([g; 3], dims);
        for dim in [anton_topo::Dim::X, anton_topo::Dim::Y, anton_topo::Dim::Z] {
            let targets = anton_core::fftplan::pencil_targets(&map, dim);
            let total: u64 = targets.iter().flatten().sum();
            prop_assert_eq!(total as usize, g * g * g, "{:?}", dim);
        }
        let bt = anton_core::fftplan::brick_targets(&map);
        let total: u64 = bt.iter().flatten().sum();
        prop_assert_eq!(total as usize, g * g * g);
    }

    /// Halo rows: summing every (src → dst) region over all sources
    /// covers each destination brick's reachable region without gaps in
    /// the self-transfer (the self rows always cover the full brick).
    #[test]
    fn halo_self_rows_cover_the_brick(
        m in 2u32..5,
        gexp in 3u32..6,
        reach in 1usize..4,
    ) {
        let g = 1usize << gexp;
        let dims = TorusDims::new(m, m, m);
        if !g.is_multiple_of(m as usize) {
            return Ok(());
        }
        let map = GridMap::new([g; 3], dims);
        let b = map.brick();
        let c = anton_topo::Coord::new(0, 0, 0);
        let rows = anton_core::fftplan::halo_rows(&map, c, c, reach.min(b[0]));
        let covered: usize = rows.iter().map(|&(_, _, _, len)| len).sum();
        prop_assert_eq!(covered, b[0] * b[1] * b[2], "self rows cover the brick");
    }
}

/// Regression: the exact paper geometry's NT statistics.
#[test]
fn paper_geometry_statistics() {
    let dims = TorusDims::anton_512();
    let d = Decomposition::new(dims, PeriodicBox::cubic(62.23), 11.0);
    // Import set size (the "as many as 17 HTIS units" claim).
    let import = d.import_offsets().len();
    assert!((13..=19).contains(&import));
    // Total task pairs machine-wide = count of in-range unordered pairs.
    let mut total_tasks = 0usize;
    for c in dims.iter_coords() {
        total_tasks += d.task_pairs(c).len();
    }
    let mut in_range = 0usize;
    for a in dims.iter_coords() {
        for b in dims.iter_coords() {
            if a.node_id(dims) <= b.node_id(dims) && d.boxes_within_cutoff(a, b) {
                in_range += 1;
            }
        }
    }
    assert_eq!(total_tasks, in_range);
}
