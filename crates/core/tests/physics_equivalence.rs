//! The Anton-mapped engine must compute the same physics as the
//! single-process reference engine: same forces (up to fixed-point
//! quantization in the accumulation memories), same energies, and
//! matching short trajectories.

use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::{MdParams, ReferenceEngine, SystemBuilder, Vec3};
use anton_topo::TorusDims;

fn small_setup() -> (anton_md::ChemicalSystem, MdParams) {
    let sys = SystemBuilder::tiny(240, 22.0, 314).build();
    let mut md = MdParams::new(4.5, [16; 3]);
    md.dt = 0.5;
    md.long_range_interval = 2;
    (sys, md)
}

fn force_close(a: Vec3, b: Vec3) -> bool {
    let tol = 2e-3 + 1e-3 * b.norm();
    (a - b).norm() < tol
}

#[test]
fn bootstrap_forces_match_the_reference_engine() {
    let (sys, md) = small_setup();
    let config = AntonConfig::new(md.clone());
    let anton = AntonMdEngine::new(sys.clone(), config, TorusDims::new(2, 2, 2));
    let mut reference = ReferenceEngine::new(sys, md);
    let want = reference.evaluate_forces();

    let got = anton.current_forces();
    assert_eq!(got.len(), want.forces.len());
    let mut worst = 0.0f64;
    for (g, w) in got.iter().zip(&want.forces) {
        worst = worst.max((*g - *w).norm());
        assert!(force_close(*g, *w), "anton {g:?} vs reference {w:?}");
    }
    // Energies match to grid/fixed-point tolerance.
    let e = anton.last_energies;
    assert!(
        (e.bonded - want.e_bonded).abs() < 1e-6 * want.e_bonded.abs().max(1.0),
        "bonded {} vs {}",
        e.bonded,
        want.e_bonded
    );
    assert!(
        (e.lj - want.e_lj).abs() < 1e-6 * want.e_lj.abs().max(1.0),
        "lj {} vs {}",
        e.lj,
        want.e_lj
    );
    assert!(
        (e.coulomb_real - want.e_coulomb_real).abs() < 1e-6 * want.e_coulomb_real.abs().max(1.0),
        "coulomb {} vs {}",
        e.coulomb_real,
        want.e_coulomb_real
    );
    assert!(
        (e.long_range - want.e_long_range).abs() < 1e-3 * want.e_long_range.abs().max(1.0),
        "long range {} vs {}",
        e.long_range,
        want.e_long_range
    );
}

#[test]
fn short_trajectories_track_the_reference() {
    let (sys, md) = small_setup();
    let config = AntonConfig::new(md.clone());
    let mut anton = AntonMdEngine::new(sys.clone(), config, TorusDims::new(2, 2, 2));
    let mut reference = ReferenceEngine::new(sys, md);

    for step in 0..6 {
        anton.step();
        reference.step();
        let asys = anton.system();
        // Positions agree within accumulated fixed-point noise.
        let mut worst = 0.0f64;
        for (a, r) in asys.atoms.iter().zip(&reference.sys.atoms) {
            let d = asys.pbox.min_image(r.pos, a.pos).norm();
            worst = worst.max(d);
        }
        assert!(
            worst < 2e-3 * (step as f64 + 1.0).powi(2) + 1e-4,
            "step {step}: worst position divergence {worst} Å"
        );
    }
    assert_eq!(anton.steps(), 6);
}

#[test]
fn thermostat_step_applies_the_same_rescaling() {
    let (sys, mut md) = small_setup();
    md.thermostat = Some(anton_md::Thermostat {
        target: 290.0,
        tau: 100.0,
        interval: 2,
    });
    let config = AntonConfig::new(md.clone());
    let mut anton = AntonMdEngine::new(sys.clone(), config, TorusDims::new(2, 2, 2));
    let mut reference = ReferenceEngine::new(sys, md);
    for _ in 0..4 {
        anton.step();
        reference.step();
    }
    let ta = anton.temperature();
    let tr = reference.temperature();
    assert!(
        (ta - tr).abs() < 0.02 * tr,
        "anton T={ta} vs reference T={tr}"
    );
}

#[test]
fn timing_structure_is_sane() {
    let (sys, md) = small_setup();
    let config = AntonConfig::new(md);
    let mut anton = AntonMdEngine::new(sys, config, TorusDims::new(2, 2, 2));
    let t1 = anton.step(); // step 1: range-limited only
    let t2 = anton.step(); // step 2: long-range (interval 2)
    assert!(!t1.long_range);
    assert!(t2.long_range);
    assert!(
        t2.total > t1.total,
        "long-range steps must be slower: {} vs {}",
        t1.total,
        t2.total
    );
    assert!(t2.fft_span > anton_des::SimDuration::ZERO);
    // Communication = total − compute is positive and less than total.
    for t in [&t1, &t2] {
        let comm = t.communication();
        assert!(comm > anton_des::SimDuration::ZERO);
        assert!(comm < t.total);
    }
}

#[test]
fn migration_keeps_physics_consistent() {
    let (sys, md) = small_setup();
    let mut config = AntonConfig::new(md.clone());
    config.migration_interval = 2;
    config.margin = 0.5;
    let mut anton = AntonMdEngine::new(sys.clone(), config, TorusDims::new(2, 2, 2));
    let mut reference = ReferenceEngine::new(sys, md);
    for _ in 0..4 {
        let t = anton.step();
        reference.step();
        let _ = t;
    }
    let asys = anton.system();
    let mut worst = 0.0f64;
    for (a, r) in asys.atoms.iter().zip(&reference.sys.atoms) {
        worst = worst.max(asys.pbox.min_image(r.pos, a.pos).norm());
    }
    assert!(worst < 0.05, "migration perturbed the physics: {worst} Å");
    // All atoms still owned consistently.
    let st = anton.state.borrow();
    let total: usize = st.local_atoms.iter().map(Vec::len).sum();
    assert_eq!(total, asys.atoms.len());
}
