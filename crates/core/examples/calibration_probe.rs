//! Calibration probe: runs the DHFR-scale benchmark on the 512-node
//! machine and prints per-step timing plus a per-phase breakdown from
//! the activity trace. Used while tuning the cost model against Table 3.
use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::{MdParams, SystemBuilder};
use anton_topo::TorusDims;

fn main() {
    let sys = SystemBuilder::dhfr_like().build();
    println!("system: {} atoms", sys.atoms.len());
    let mut md = MdParams::new(9.5, [32; 3]);
    md.dt = 1.0; // flexible water needs ~1 fs (the paper's system used constraints)
    let config = AntonConfig::new(md);
    let mut eng = AntonMdEngine::new(sys, config, TorusDims::anton_512());
    {
        let st = eng.state.borrow();
        println!(
            "capacity {} max_atoms {} htis_target {} force_target {}",
            st.plan.capacity,
            st.local_atoms.iter().map(Vec::len).max().unwrap(),
            st.plan.htis_pos_target[0],
            st.plan.force_target_rl[0],
        );
    }
    for i in 0..4 {
        eng.trace_next_step();
        let t = eng.step();
        println!(
            "step {}: total {} comm {} compute {} lr={} fft={} reduce={}",
            i + 1,
            t.total,
            t.communication(),
            t.critical_compute(),
            t.long_range,
            t.fft_span,
            t.reduce_span,
        );
        let s = eng.last_stats.as_ref().unwrap();
        println!(
            "  per-node sent ~{} recv ~{} traversals/link ~{}",
            s.packets_sent / 512,
            s.packets_delivered / 512,
            s.link_traversals / (512 * 6)
        );
        {
            let st = eng.state.borrow();
            println!(
                "  hpos fire {:?} us, force fire {:?} us",
                st.scratch
                    .ts_hpos
                    .map(|(a, b)| (a as f64 / 1e6, b as f64 / 1e6)),
                st.scratch
                    .ts_force
                    .map(|(a, b)| (a as f64 / 1e6, b as f64 / 1e6)),
            );
        }
        if let Some(tr) = &eng.last_trace {
            use std::collections::BTreeMap;
            let mut spans: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
            for iv in tr.intervals() {
                let label = tr.label(iv.label);
                let e = spans.entry(label).or_insert((u64::MAX, 0));
                e.0 = e.0.min(iv.start.as_ps());
                e.1 = e.1.max(iv.end.as_ps());
            }
            for (label, (a, b)) in spans {
                println!(
                    "    {:>22}: {:9.3} -> {:9.3} us",
                    label,
                    a as f64 / 1e6,
                    b as f64 / 1e6
                );
            }
        }
    }
}
