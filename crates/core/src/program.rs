//! The per-node MD program: Anton's time-step dataflow (Figure 2) as an
//! event-driven state machine over counted remote writes.
//!
//! One DES run simulates one time step; the engine (`crate::engine`)
//! carries positions, velocities, and force caches between steps. Within
//! a step, every dynamic value crosses nodes only inside packets; the
//! shared [`MachineState`] supplies static program data (plans, counts,
//! topology) and per-node working storage.

use crate::fftplan;
use crate::state::MachineState;
use anton_des::{SimDuration, TrackId};
use anton_fft::{Complex, Direction, Fft1d, Layout};
use anton_md::grid::{ScalarGrid, SpreadParams};
use anton_md::pair::{erf, pair_interaction};
use anton_md::units::{kinetic_energy, COULOMB};
use anton_md::{fixed, Vec3};
use anton_net::{
    ClientAddr, ClientKind, CounterId, Ctx, NodeProgram, Packet, PacketKind, Payload, ProgEvent,
};
use anton_topo::{hop_count, Coord, Dim, NodeId};
use std::cell::RefCell;
use std::rc::Rc;

// ---- trace tracks (0–5 are the torus link directions, in anton-net) ----
/// Tensilica cores.
pub const TRACK_TS: TrackId = TrackId(6);
/// Geometry cores.
pub const TRACK_GC: TrackId = TrackId(7);
/// HTIS units.
pub const TRACK_HTIS: TrackId = TrackId(8);

// ---- synchronization counters ----
const C_POT: CounterId = CounterId(1); // HTIS: potential rows
const C_FORCE: CounterId = CounterId(0); // Accum 0: force packets
const C_CHARGE: CounterId = CounterId(0); // Accum 1: charge rows
const C_BPOS: CounterId = CounterId(0); // slice: bonded positions
fn c_fft(stage: usize) -> CounterId {
    CounterId(2 + stage as u16) // slices: FFT gather stages 0..=4
}
const C_BRICKPOT: CounterId = CounterId(9); // slice 0: potential scatter
const C_MIGSYNC: CounterId = CounterId(10); // slice 0: migration sync
fn c_ar(round: usize) -> CounterId {
    CounterId(12 + round as u16) // slice r: thermostat reduce rounds
}

// ---- receive-side memory map (pre-allocated buffers, §IV.A) ----
const A_POS: u64 = 0x0100_0000; // HTIS: + atom id
const A_BPOS: u64 = 0x0200_0000; // slice: + atom id
const A_FFT: u64 = 0x0300_0000; // slice: + stage·2²⁰ + grid point index
const A_POTROW: u64 = 0x0400_0000; // HTIS: + src node·64 + row
const A_AR: u64 = 0x0500_0000; // slice: + round·2¹² + coord·8
const A_LR: u64 = 0x0010_0000; // accum 0: long-range region offset
const FFT_STRIDE: u64 = 0x0010_0000;

// ---- timer tags ----
const TAG_INTEG1: u64 = 1;
const TAG_MIG_DONE: u64 = 2;
const TAG_HTIS_DONE: u64 = 3;
const TAG_BOND_DONE: u64 = 4; // +slice (4..=7)
const TAG_SPREAD_DONE: u64 = 8;
const TAG_CHARGE_READ: u64 = 9;
const TAG_FFT_DONE: u64 = 16; // +stage*4+slice (16..=35)
const TAG_POTCAST: u64 = 40;
const TAG_INTERP_DONE: u64 = 41;
const TAG_ACCUM_READ: u64 = 42;
const TAG_INTEG2: u64 = 43; // +slice (43..=46)
const TAG_AR: u64 = 50; // +round

fn slice(node: NodeId, s: u8) -> ClientAddr {
    ClientAddr::new(node, ClientKind::Slice(s))
}
fn htis(node: NodeId) -> ClientAddr {
    ClientAddr::new(node, ClientKind::Htis)
}
fn accum0(node: NodeId) -> ClientAddr {
    ClientAddr::new(node, ClientKind::Accum(0))
}
fn accum1(node: NodeId) -> ClientAddr {
    ClientAddr::new(node, ClientKind::Accum(1))
}

/// Incremental HTIS scheduling state: buffers (one per source box)
/// complete independently; a box pair becomes computable when both of
/// its buffers are complete, and the HTIS pipelines process ready pairs
/// one at a time — computation starts while other positions are still in
/// flight (§IV.A: "Certain computations start as soon as the first
/// message has arrived, while other messages are still in flight").
struct HtisState {
    sources: Vec<Coord>,
    ready: Vec<bool>,
    imported: Vec<Vec<(u32, Vec3)>>,
    task_pairs: Vec<(usize, usize)>,
    pending: Vec<usize>,
    /// Per source: remaining pairs before its force results are final.
    remaining: Vec<u32>,
    /// Per source: force-return hop distance (priority-queue key).
    return_hops: Vec<u32>,
    rl: Vec<Vec<Vec3>>,
    lr: Vec<Vec<Vec3>>,
    sent: Vec<bool>,
    busy: bool,
    current_pair: usize,
}

/// The per-node program. Most state lives in the shared
/// [`MachineState`]; the struct itself only keeps tiny per-node cursors.
pub struct MdNode {
    /// The shared machine state.
    pub state: Rc<RefCell<MachineState>>,
    /// Set when this node finished its part of the step.
    done: bool,
    /// All-reduce working values during the thermostat/barostat
    /// reduction: kinetic energy and virial.
    ar_value: f64,
    ar_virial: f64,
    ar_round: usize,
    htis: Option<HtisState>,
    /// When the HTIS went idle waiting for buffers (stall tracking for
    /// Figure 13's light-gray regions).
    htis_idle_since: Option<anton_des::SimTime>,
    /// When the slices went idle waiting for forces.
    ts_idle_since: Option<anton_des::SimTime>,
}

impl MdNode {
    /// A fresh per-node program sharing `state`.
    pub fn new(state: Rc<RefCell<MachineState>>) -> MdNode {
        MdNode {
            state,
            done: false,
            ar_value: 0.0,
            ar_virial: 0.0,
            ar_round: 0,
            htis: None,
            htis_idle_since: None,
            ts_idle_since: None,
        }
    }

    fn mark_done(&mut self) {
        debug_assert!(!self.done, "node completed twice");
        self.done = true;
        self.state.borrow_mut().scratch.nodes_done += 1;
    }

    fn add_compute(&self, node: NodeId, d: SimDuration) {
        self.state.borrow_mut().compute_time[node.index()] += d;
    }

    // ---------------- step start ----------------

    fn on_start(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        if self.state.borrow().scratch.fft_only {
            self.start_fft_only(node, ctx);
            return;
        }
        let st = self.state.borrow();
        let dims = st.decomp.dims;
        let lr = st.scratch.long_range;
        let bootstrap = st.scratch.bootstrap;
        let migration = st.scratch.migration;
        let n_atoms = st.node_atoms(node).len();
        let plan = &st.plan;

        // Arm every receive counter of the step up front (buffers are
        // pre-allocated; targets are the plan's fixed counts). HTIS
        // position buffers use one counter per source box, resolved from
        // the packet's source node by the buffer table.
        let me = node.coord(dims);
        let sources = st.decomp.source_boxes(me);
        assert!(
            16 + sources.len() <= 62,
            "too many HTIS buffers for counters"
        );
        let capacity = plan.capacity as u64;
        let mut buffer_map = std::collections::HashMap::new();
        for (i, &src) in sources.iter().enumerate() {
            buffer_map.insert(src.node_id(dims), CounterId(16 + i as u16));
        }
        let task_pairs: Vec<(usize, usize)> = st
            .decomp
            .task_pairs(me)
            .into_iter()
            .map(|(a, b)| {
                let ia = sources.iter().position(|&s| s == a).expect("imported");
                let ib = sources.iter().position(|&s| s == b).expect("imported");
                (ia.min(ib), ia.max(ib))
            })
            .collect();
        let mut remaining = vec![0u32; sources.len()];
        for &(a, b) in &task_pairs {
            remaining[a] += 1;
            if b != a {
                remaining[b] += 1;
            }
        }
        let return_hops: Vec<u32> = sources.iter().map(|&s| hop_count(me, s, dims)).collect();
        self.htis = Some(HtisState {
            ready: vec![false; sources.len()],
            imported: vec![Vec::new(); sources.len()],
            pending: Vec::new(),
            remaining,
            return_hops,
            rl: vec![Vec::new(); sources.len()],
            lr: vec![Vec::new(); sources.len()],
            sent: vec![false; sources.len()],
            busy: false,
            current_pair: usize::MAX,
            sources,
            task_pairs,
        });
        for s in 0..4u8 {
            ctx.watch_counter(
                slice(node, s),
                C_BPOS,
                plan.bond_pos_target[node.index()][s as usize],
            );
        }
        let force_target = plan.force_target_rl[node.index()]
            + if lr {
                plan.force_target_lr_extra[node.index()]
            } else {
                0
            };
        ctx.watch_counter(accum0(node), C_FORCE, force_target);
        if lr {
            let map = &st.grid_map;
            ctx.watch_counter(
                accum1(node),
                C_CHARGE,
                fftplan::charge_targets(map, st.spread_reach_points)[node.index()],
            );
            for (stage, dim) in [Dim::X, Dim::Y, Dim::Z, Dim::Y, Dim::X].iter().enumerate() {
                let targets = fftplan::pencil_targets(map, *dim);
                for s in 0..4u8 {
                    ctx.watch_counter(
                        slice(node, s),
                        c_fft(stage),
                        targets[node.index()][s as usize],
                    );
                }
            }
            let brick = map.brick();
            ctx.watch_counter(
                slice(node, 0),
                C_BRICKPOT,
                (brick[0] * brick[1] * brick[2]) as u64,
            );
            ctx.watch_counter(
                htis(node),
                C_POT,
                fftplan::potential_targets(map)[node.index()],
            );
        }
        if migration {
            let neighbors = anton_topo::moore_neighbors(node.coord(dims), dims);
            ctx.watch_counter(slice(node, 0), C_MIGSYNC, neighbors.len() as u64);
        }
        drop(st);
        ctx.set_source_counter_map(htis(node), buffer_map);
        {
            let h = self.htis.as_ref().expect("just built");
            for i in 0..h.sources.len() {
                ctx.watch_counter(htis(node), CounterId(16 + i as u16), capacity);
            }
        }

        if bootstrap {
            self.distribute(node, ctx);
        } else {
            // First-half integration (math already applied host-side;
            // model the arithmetic time on all four slices).
            let st = self.state.borrow();
            let cost = &st.config.cost;
            let share = n_atoms.div_ceil(4) as u64;
            let d = cost.integrate(share);
            drop(st);
            ctx.set_phase("integration");
            for s in 0..4u8 {
                let tag = if s == 0 { TAG_INTEG1 } else { u64::MAX };
                if s == 0 {
                    ctx.compute(node, ClientKind::Slice(s), TRACK_TS, d, tag, "integrate");
                } else {
                    // Busy interval only; no follow-up event needed.
                    ctx.compute(
                        node,
                        ClientKind::Slice(s),
                        TRACK_TS,
                        d,
                        u64::MAX,
                        "integrate",
                    );
                }
            }
            self.add_compute(node, d);
        }
    }

    // ---------------- migration ----------------

    fn start_migration(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        ctx.set_phase("migration");
        let st = self.state.borrow();
        let leavers = st.scratch.leavers[node.index()].clone();
        drop(st);
        for (atom, new_owner) in &leavers {
            let st = self.state.borrow();
            let a = &st.sys.atoms[*atom as usize];
            let payload = Payload::F64s(vec![a.pos.x, a.pos.y, a.pos.z, a.vel.x, a.vel.y, a.vel.z]);
            drop(st);
            let pkt = Packet::fifo(slice(node, 0), slice(*new_owner, 0), payload)
                .with_tag(*atom as u64)
                .with_in_order();
            ctx.send(pkt);
        }
        // In-order sync multicast to all Moore neighbors (§IV.B.5): it
        // cannot overtake the migration messages.
        let dims_coord = node.coord(ctx.dims());
        let pkt = Packet {
            uid: 0,
            src: slice(node, 0),
            dest: anton_net::Destination::Multicast {
                pattern: self.state.borrow().patterns.mig_id(dims_coord),
                client: ClientKind::Slice(0),
            },
            kind: PacketKind::Write,
            addr: 0xE000,
            payload_bytes: 0,
            crc: anton_net::payload_crc(&Payload::Empty),
            payload: Payload::Empty,
            counter: Some(C_MIGSYNC),
            in_order: true,
            tag: 0,
            route: None,
            order_seq: None,
            reinjects: 0,
        };
        ctx.send(pkt);
    }

    fn migration_synced(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let mut st = self.state.borrow_mut();
        st.scratch.migration_last_sync = Some(
            st.scratch
                .migration_last_sync
                .unwrap_or(0)
                .max(ctx.now().as_ps()),
        );
        let received = st.scratch.mig_received[node.index()] as u64;
        let d = st.config.cost.migrate(received);
        drop(st);
        self.add_compute(node, d);
        ctx.compute(
            node,
            ClientKind::Slice(0),
            TRACK_TS,
            d,
            TAG_MIG_DONE,
            "migration",
        );
    }

    // ---------------- position distribution ----------------

    fn distribute(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        ctx.set_phase("position send");
        let st = self.state.borrow();
        let decomp = &st.decomp;
        let me = node.coord(decomp.dims);
        let pos_pattern = st.patterns.pos_id(me);
        let atoms = st.node_atoms(node).to_vec();
        let capacity = st.plan.capacity;
        let bond_sends = st.plan.bond_sends_by_node[node.index()].clone();
        let lr = st.scratch.long_range;
        let positions: Vec<(u32, Vec3)> = atoms
            .iter()
            .map(|&a| (a, st.sys.atoms[a as usize].pos))
            .collect();
        drop(st);

        // NT multicast, one atom per packet, 28 B (3×f64 + id), sent by
        // the slice owning the atom's slot.
        for (slot, &(atom, p)) in positions.iter().enumerate() {
            let s = (slot % 4) as u8;
            let pkt = Packet::write(
                slice(node, s),
                htis(node), // replaced by the multicast destination
                A_POS + atom as u64,
                Payload::F64s(vec![p.x, p.y, p.z]),
            )
            .with_payload_bytes(28)
            .with_counter(anton_net::COUNTER_BY_SOURCE)
            .with_tag(atom as u64)
            .into_multicast(pos_pattern, ClientKind::Htis);
            ctx.send(pkt);
        }
        // Padding to the fixed per-source packet count (§IV.B.1:
        // worst-case atom-density headroom).
        for pad in positions.len() as u32..capacity {
            let pkt = Packet::write(
                slice(node, (pad % 4) as u8),
                htis(node),
                A_POS - 1, // scratch cell, overwritten freely
                Payload::Empty,
            )
            .with_payload_bytes(28)
            .with_counter(anton_net::COUNTER_BY_SOURCE)
            .with_tag(u64::MAX)
            .into_multicast(pos_pattern, ClientKind::Htis);
            ctx.send(pkt);
        }
        // Bonded unicasts: one atom per packet (§IV.B.2), including
        // node-local deliveries so receiver counts stay fixed.
        for (atom, dest, dslice) in bond_sends {
            let st = self.state.borrow();
            let p = st.sys.atoms[atom as usize].pos;
            let slot = st.slots[atom as usize] as usize;
            drop(st);
            let pkt = Packet::write(
                slice(node, (slot % 4) as u8),
                slice(dest.node_id(ctx.dims()), dslice),
                A_BPOS + atom as u64,
                Payload::F64s(vec![p.x, p.y, p.z]),
            )
            .with_payload_bytes(28)
            .with_counter(C_BPOS)
            .with_tag(atom as u64);
            ctx.send(pkt);
        }
        if lr {
            self.start_spread(node, ctx);
        }
        // The slices now wait for force accumulation (modulo bonded and
        // FFT work that arrives in between).
        self.ts_idle_since = Some(ctx.now());
    }

    // ---------------- range-limited interactions (HTIS) ----------------

    /// A source buffer completed: record its positions and schedule any
    /// box pairs that just became computable.
    fn htis_buffer_ready(&mut self, node: NodeId, idx: usize, ctx: &mut Ctx<'_, '_>) {
        {
            let mut st = self.state.borrow_mut();
            let t = ctx.now().as_ps();
            st.scratch.ts_hpos = Some(match st.scratch.ts_hpos {
                None => (t, t),
                Some((a, b)) => (a.min(t), b.max(t)),
            });
        }
        let st = self.state.borrow();
        let dims = st.decomp.dims;
        let h = self.htis.as_mut().expect("HTIS state built at start");
        debug_assert!(!h.ready[idx]);
        h.ready[idx] = true;
        // Read the buffer's positions out of HTIS local memory.
        let src = h.sources[idx];
        let list = st.node_atoms(src.node_id(dims));
        let mut entries = Vec::with_capacity(list.len());
        for &atom in list {
            match ctx.mem_read(htis(node), A_POS + atom as u64) {
                Some(Payload::F64s(v)) if v.len() == 3 => {
                    entries.push((atom, Vec3::new(v[0], v[1], v[2])));
                }
                other => panic!(
                    "node {} missing imported position for atom {atom}: {other:?}",
                    node.0
                ),
            }
        }
        h.imported[idx] = entries;
        h.rl[idx] = vec![Vec3::ZERO; list.len()];
        if st.scratch.long_range {
            h.lr[idx] = vec![Vec3::ZERO; list.len()];
        }
        for (p, &(a, b)) in h.task_pairs.iter().enumerate() {
            if (a == idx || b == idx) && h.ready[a] && h.ready[b] {
                h.pending.push(p);
            }
        }
        // A buffer with no pairs at this node still owes (zero) returns.
        drop(st);
        let h = self.htis.as_ref().expect("built");
        if h.remaining[idx] == 0 && !h.sent[idx] {
            self.htis_send_source(node, idx, ctx);
        }
        self.htis_process_next(node, ctx);
    }

    /// If idle and work is pending, pick the next box pair — the
    /// high-priority queue takes the pair whose force results must
    /// travel farthest (§IV.B.1) — compute its interactions, and model
    /// the pipeline time.
    fn htis_process_next(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let st = self.state.borrow();
        let priority = st.config.priority_queue;
        let h = self.htis.as_mut().expect("built");
        if h.busy {
            return;
        }
        if h.pending.is_empty() {
            // Pipelines idle, waiting for more buffers (Figure 13's
            // "(wait for positions)" gray regions).
            if self.htis_idle_since.is_none() {
                self.htis_idle_since = Some(ctx.now());
            }
            return;
        }
        if let Some(from) = self.htis_idle_since.take() {
            drop(st);
            ctx.record_stall(TRACK_HTIS, from, "wait for positions");
            return self.htis_process_next(node, ctx);
        }
        let pick = if priority {
            let key = |p: usize| {
                let (a, b) = h.task_pairs[p];
                h.return_hops[a].max(h.return_hops[b])
            };
            (0..h.pending.len())
                .max_by_key(|&i| key(h.pending[i]))
                .expect("nonempty")
        } else {
            0
        };
        let pair = h.pending.swap_remove(pick);
        h.busy = true;
        h.current_pair = pair;
        let (ia, ib) = h.task_pairs[pair];
        let same = ia == ib;
        // Compute the pair physics (real forces; erf corrections for
        // excluded pairs on long-range steps).
        let lr = st.scratch.long_range;
        let cutoff_sq = st.config.md.cutoff * st.config.md.cutoff;
        let sigma = st.config.md.ewald_sigma;
        let a_coef = 1.0 / (std::f64::consts::SQRT_2 * sigma);
        let pbox = st.sys.pbox;
        let (mut e_lj, mut e_coul, mut e_lr) = (0.0f64, 0.0f64, 0.0f64);
        let mut virial = 0.0f64;
        let mut pairs_examined = 0u64;
        let na = h.imported[ia].len();
        // Split-borrow the two buffers' force accumulators.
        for xa in 0..na {
            let (atom_a, pa) = h.imported[ia][xa];
            let start = if same { xa + 1 } else { 0 };
            for xb in start..h.imported[ib].len() {
                let (atom_b, pb) = h.imported[ib][xb];
                pairs_examined += 1;
                let d = pbox.min_image(pa, pb);
                let r_sq = d.norm_sq();
                if r_sq >= cutoff_sq {
                    continue;
                }
                if st.sys.is_excluded(atom_a as usize, atom_b as usize) {
                    if lr {
                        let qq = COULOMB
                            * st.sys.atoms[atom_a as usize].charge
                            * st.sys.atoms[atom_b as usize].charge;
                        if qq != 0.0 {
                            let r = r_sq.sqrt();
                            e_lr -= qq * erf(a_coef * r) / r;
                            let gauss = (2.0 * a_coef / std::f64::consts::PI.sqrt())
                                * (-a_coef * a_coef * r_sq).exp();
                            let de_dr = qq * (gauss / r - erf(a_coef * r) / r_sq);
                            let fb = d * (de_dr / r);
                            h.lr[ib][xb] += fb;
                            h.lr[ia][xa] -= fb;
                        }
                    }
                    continue;
                }
                let aa = &st.sys.atoms[atom_a as usize];
                let ab = &st.sys.atoms[atom_b as usize];
                let sig = 0.5 * (aa.lj_sigma + ab.lj_sigma);
                let eps = (aa.lj_epsilon * ab.lj_epsilon).sqrt();
                let (elj, ec, fb) =
                    pair_interaction(d, aa.charge, ab.charge, sig, eps, Some(sigma));
                e_lj += elj;
                e_coul += ec;
                virial += d.dot(fb);
                h.rl[ib][xb] += fb;
                h.rl[ia][xa] -= fb;
            }
        }
        let cost = st.config.cost.htis_pairs(pairs_examined, 1);
        drop(st);
        let mut st = self.state.borrow_mut();
        st.scratch.e_lj[node.index()] += e_lj;
        st.scratch.e_coulomb[node.index()] += e_coul;
        st.scratch.e_long_range[node.index()] += e_lr;
        st.scratch.virial[node.index()] += virial;
        drop(st);
        self.add_compute(node, cost);
        ctx.set_phase("range-limited");
        ctx.compute(
            node,
            ClientKind::Htis,
            TRACK_HTIS,
            cost,
            TAG_HTIS_DONE,
            "range-limited",
        );
    }

    /// A pair finished in the pipelines: release completed buffers'
    /// force returns and continue with the next ready pair.
    fn htis_pair_done(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let h = self.htis.as_mut().expect("built");
        let (a, b) = h.task_pairs[h.current_pair];
        h.remaining[a] -= 1;
        if b != a {
            h.remaining[b] -= 1;
        }
        h.busy = false;
        let mut to_send = Vec::new();
        for idx in [a, b] {
            let h = self.htis.as_ref().expect("built");
            if h.remaining[idx] == 0 && !h.sent[idx] && !to_send.contains(&idx) {
                to_send.push(idx);
            }
        }
        for idx in to_send {
            self.htis_send_source(node, idx, ctx);
        }
        self.htis_process_next(node, ctx);
    }

    /// Send one source box's packed force-return packets (range-limited
    /// always; erf corrections on long-range steps).
    fn htis_send_source(&mut self, node: NodeId, idx: usize, ctx: &mut Ctx<'_, '_>) {
        ctx.set_phase("force return");
        let lr_step = self.state.borrow().scratch.long_range;
        let h = self.htis.as_mut().expect("built");
        debug_assert!(!h.sent[idx]);
        h.sent[idx] = true;
        let dest_box = h.sources[idx];
        let rl = std::mem::take(&mut h.rl[idx]);
        let lr = std::mem::take(&mut h.lr[idx]);
        self.send_force_chunks(node, ctx, dest_box, &rl, 0);
        if lr_step {
            self.send_force_chunks(node, ctx, dest_box, &lr, A_LR);
        }
    }

    /// Send packed force-return accumulate packets for one region
    /// (`base` 0 for range-limited, `A_LR` for erf corrections /
    /// interpolation results).
    fn send_force_chunks(
        &self,
        node: NodeId,
        ctx: &mut Ctx<'_, '_>,
        dest_box: Coord,
        forces: &[Vec3],
        base: u64,
    ) {
        let st = self.state.borrow();
        let dims = st.decomp.dims;
        let capacity = st.plan.capacity as usize;
        let pack = st.config.force_pack;
        let dest = accum0(dest_box.node_id(dims));
        drop(st);
        let mut slot = 0usize;
        while slot < capacity {
            let n = pack.min(capacity - slot);
            let mut vals = Vec::with_capacity(n * 3);
            for k in 0..n {
                let f = forces.get(slot + k).copied().unwrap_or(Vec3::ZERO);
                let enc = fixed::encode_force(f);
                vals.extend_from_slice(&enc);
            }
            let pkt = Packet::accumulate(htis(node), dest, base + (slot as u64) * 12, vals)
                .with_counter(C_FORCE);
            ctx.send(pkt);
            slot += n;
        }
    }

    // ---------------- bonded forces (slices) ----------------

    fn bonded_compute(&mut self, node: NodeId, s: u8, ctx: &mut Ctx<'_, '_>) {
        ctx.set_phase("bonded");
        let st = self.state.borrow();
        let nt = &st.bond_program.terms_at[node.index()];
        let pbox = st.sys.pbox;
        let fetch = |atom: usize| -> Vec3 {
            match ctx.mem_read(slice(node, s), A_BPOS + atom as u64) {
                Some(Payload::F64s(v)) if v.len() == 3 => Vec3::new(v[0], v[1], v[2]),
                other => panic!("missing bonded position for atom {atom}: {other:?}"),
            }
        };
        let mut forces: std::collections::HashMap<u32, Vec3> = Default::default();
        let mut e_bonded = 0.0;
        let mut n_terms = 0u64;
        let nb = st.sys.bonds.len();
        let na = st.sys.angles.len();
        for &t in &nt.bonds {
            if (t as usize) % 4 != s as usize {
                continue;
            }
            let b = st.sys.bonds[t as usize];
            let pos = [fetch(b.i), fetch(b.j)];
            let local = anton_md::Bond { i: 0, j: 1, ..b };
            let mut f = [Vec3::ZERO; 2];
            e_bonded += anton_md::bonded::bond_force(&local, &pos, &pbox, &mut f);
            *forces.entry(b.i as u32).or_default() += f[0];
            *forces.entry(b.j as u32).or_default() += f[1];
            n_terms += 1;
        }
        for &t in &nt.angles {
            if (nb + t as usize) % 4 != s as usize {
                continue;
            }
            let a = st.sys.angles[t as usize];
            let pos = [fetch(a.i), fetch(a.j), fetch(a.k_atom)];
            let local = anton_md::Angle {
                i: 0,
                j: 1,
                k_atom: 2,
                ..a
            };
            let mut f = [Vec3::ZERO; 3];
            e_bonded += anton_md::bonded::angle_force(&local, &pos, &pbox, &mut f);
            *forces.entry(a.i as u32).or_default() += f[0];
            *forces.entry(a.j as u32).or_default() += f[1];
            *forces.entry(a.k_atom as u32).or_default() += f[2];
            n_terms += 1;
        }
        for &t in &nt.dihedrals {
            if (nb + na + t as usize) % 4 != s as usize {
                continue;
            }
            let dh = st.sys.dihedrals[t as usize];
            let pos = [fetch(dh.i), fetch(dh.j), fetch(dh.k_atom), fetch(dh.l)];
            let local = anton_md::Dihedral {
                i: 0,
                j: 1,
                k_atom: 2,
                l: 3,
                ..dh
            };
            let mut f = [Vec3::ZERO; 4];
            e_bonded += anton_md::bonded::dihedral_force(&local, &pos, &pbox, &mut f);
            *forces.entry(dh.i as u32).or_default() += f[0];
            *forces.entry(dh.j as u32).or_default() += f[1];
            *forces.entry(dh.k_atom as u32).or_default() += f[2];
            *forces.entry(dh.l as u32).or_default() += f[3];
            n_terms += 1;
        }
        let cost = st.config.cost.bonded(n_terms);
        let expected: Vec<u32> = st.plan.bond_returns[node.index()][s as usize].clone();
        drop(st);

        // Every planned (slice, atom) pair returns a packet, zero or not,
        // so the receiver's count stays fixed.
        let mut out: Vec<(u32, Vec3)> = expected
            .iter()
            .map(|&a| (a, forces.get(&a).copied().unwrap_or(Vec3::ZERO)))
            .collect();
        out.sort_by_key(|&(a, _)| a);
        let mut st = self.state.borrow_mut();
        st.scratch.e_bonded[node.index()] += e_bonded;
        st.scratch.bond_forces[node.index()][s as usize] = out;
        drop(st);
        self.add_compute(node, cost);
        ctx.compute(
            node,
            ClientKind::Slice(s),
            TRACK_GC,
            cost,
            TAG_BOND_DONE + s as u64,
            "bonded",
        );
    }

    fn bonded_send(&mut self, node: NodeId, s: u8, ctx: &mut Ctx<'_, '_>) {
        let st = self.state.borrow();
        let dims = st.decomp.dims;
        let returns = st.scratch.bond_forces[node.index()][s as usize].clone();
        let owners = returns
            .iter()
            .map(|&(a, _)| (st.owners[a as usize], st.slots[a as usize]))
            .collect::<Vec<_>>();
        drop(st);
        for (&(atom, f), &(owner, slot)) in returns.iter().zip(&owners) {
            let _ = atom;
            let pkt = Packet::accumulate(
                slice(node, s),
                accum0(owner),
                slot as u64 * 12,
                fixed::encode_force(f).to_vec(),
            )
            .with_counter(C_FORCE);
            let _ = dims;
            ctx.send(pkt);
        }
    }

    // ---------------- long range: spreading, FFT, interpolation ----------------

    fn start_spread(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let st = self.state.borrow();
        let atoms = st.node_atoms(node).len() as u64;
        let spread = SpreadParams::for_ewald_sigma(st.config.md.ewald_sigma);
        let h = st.sys.pbox.lengths.x / st.config.md.grid[0] as f64;
        let support = spread.sigma_s * spread.support_sigmas;
        let pts = ((2.0 * support / h).ceil() as u64 + 1).pow(3);
        let cost = st.config.cost.spread(atoms, pts);
        drop(st);
        self.add_compute(node, cost);
        ctx.compute(
            node,
            ClientKind::Htis,
            TRACK_HTIS,
            cost,
            TAG_SPREAD_DONE,
            "charge spread",
        );
    }

    fn spread_send(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        ctx.set_phase("charge spread");
        let st = self.state.borrow();
        let map = st.grid_map;
        let dims = st.decomp.dims;
        let me = node.coord(dims);
        let spread = SpreadParams::for_ewald_sigma(st.config.md.ewald_sigma);
        // Spread this node's atoms onto a scratch global grid (only the
        // halo region receives mass; asserted below).
        let mut grid = ScalarGrid::zeros(st.config.md.grid, st.sys.pbox);
        let positions: Vec<Vec3> = st
            .node_atoms(node)
            .iter()
            .map(|&a| st.sys.atoms[a as usize].pos)
            .collect();
        let charges: Vec<f64> = st
            .node_atoms(node)
            .iter()
            .map(|&a| st.sys.atoms[a as usize].charge)
            .collect();
        anton_md::grid::spread_charges(&mut grid, &positions, &charges, spread);
        let reach = st.spread_reach_points;
        drop(st);

        // Ship per-halo-target row runs as accumulation packets.
        let b = map.brick();
        let mut first_send = true;
        for dst in fftplan::halo_sources(&map, me) {
            let rows = fftplan::halo_rows(&map, me, dst, reach);
            let origin = [
                dst.x as usize * b[0],
                dst.y as usize * b[1],
                dst.z as usize * b[2],
            ];
            for (z, y, x0, len) in rows {
                let mut vals = Vec::with_capacity(len);
                for dx in 0..len {
                    let g = [origin[0] + x0 + dx, origin[1] + y, origin[2] + z];
                    let idx = g[0] + map.grid[0] * (g[1] + map.grid[1] * g[2]);
                    vals.push(fixed::encode(grid.data[idx], fixed::CHARGE_SCALE));
                }
                let addr = (fftplan::brick_local_index(
                    &map,
                    [origin[0] + x0, origin[1] + y, origin[2] + z],
                ) as u64)
                    * 4;
                let pkt = Packet::accumulate(htis(node), accum1(dst.node_id(map.dims)), addr, vals)
                    .with_counter(C_CHARGE);
                if first_send {
                    let mut stm = self.state.borrow_mut();
                    let t = ctx.now().as_ps();
                    stm.scratch.fft_first_send =
                        Some(stm.scratch.fft_first_send.map_or(t, |v| v.min(t)));
                    first_send = false;
                }
                ctx.send(pkt);
            }
        }
    }

    fn charge_gathered(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        // Slice 0 reads the brick from accumulation memory 1.
        let st = self.state.borrow();
        let map = st.grid_map;
        let b = map.brick();
        let n_points = b[0] * b[1] * b[2];
        let cost = st.config.cost.accum_read(n_points as u64);
        drop(st);
        let words = ctx.accum_read(accum1(node), 0, n_points);
        let decoded: Vec<f64> = words
            .iter()
            .map(|&w| fixed::decode(w, fixed::CHARGE_SCALE))
            .collect();
        let mut st = self.state.borrow_mut();
        st.scratch.brick_charges[node.index()] = decoded;
        drop(st);
        self.add_compute(node, cost);
        ctx.compute(
            node,
            ClientKind::Slice(0),
            TRACK_TS,
            cost,
            TAG_CHARGE_READ,
            "FFT",
        );
    }

    /// Map a grid point to its (owner, slice, counter-stage) for the
    /// given gather stage.
    fn fft_dest(map: &anton_fft::GridMap, stage: usize, g: [usize; 3]) -> (NodeId, u8) {
        let layout_dim = [Dim::X, Dim::Y, Dim::Z, Dim::Y, Dim::X][stage];
        let owner = match stage {
            0..=4 => anton_fft::point_owner(map, Layout::Pencil(layout_dim), g),
            _ => unreachable!(),
        };
        let (du, dv) = anton_fft::transverse(layout_dim);
        let s = fftplan::line_slice(map, layout_dim, g[du.index()], g[dv.index()]);
        (owner, s)
    }

    fn send_fft_points(
        &mut self,
        node: NodeId,
        ctx: &mut Ctx<'_, '_>,
        stage: usize,
        points: &[([usize; 3], Complex)],
    ) {
        ctx.set_phase("FFT");
        let st = self.state.borrow();
        let map = st.grid_map;
        drop(st);
        for (k, &(g, v)) in points.iter().enumerate() {
            let gi = (g[0] + map.grid[0] * (g[1] + map.grid[1] * g[2])) as u64;
            if stage <= 4 {
                let (owner, s) = Self::fft_dest(&map, stage, g);
                let pkt = Packet::write(
                    slice(node, (k % 4) as u8),
                    slice(owner, s),
                    A_FFT + stage as u64 * FFT_STRIDE + gi,
                    Payload::F64s(vec![v.re, v.im]),
                )
                .with_counter(c_fft(stage));
                ctx.send(pkt);
            } else {
                // Final scatter back to the brick owner's slice 0.
                let owner = map.brick_owner(g);
                let pkt = Packet::write(
                    slice(node, (k % 4) as u8),
                    slice(owner, 0),
                    A_FFT + 5 * FFT_STRIDE + gi,
                    Payload::F64s(vec![v.re, v.im]),
                )
                .with_counter(C_BRICKPOT);
                ctx.send(pkt);
            }
        }
    }

    fn brick_points(map: &anton_fft::GridMap, me: Coord) -> Vec<[usize; 3]> {
        let b = map.brick();
        let origin = [
            me.x as usize * b[0],
            me.y as usize * b[1],
            me.z as usize * b[2],
        ];
        let mut out = Vec::with_capacity(b[0] * b[1] * b[2]);
        for z in 0..b[2] {
            for y in 0..b[1] {
                for x in 0..b[0] {
                    out.push([origin[0] + x, origin[1] + y, origin[2] + z]);
                }
            }
        }
        out
    }

    fn charge_scatter(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        // Send the decoded brick charges into X pencils (stage 0).
        let st = self.state.borrow();
        let map = st.grid_map;
        let me = node.coord(st.decomp.dims);
        let charges = st.scratch.brick_charges[node.index()].clone();
        drop(st);
        let pts = Self::brick_points(&map, me);
        let points: Vec<([usize; 3], Complex)> = pts
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, Complex::real(charges[i])))
            .collect();
        self.send_fft_points(node, ctx, 0, &points);
    }

    fn fft_stage_compute(&mut self, node: NodeId, s: u8, stage: usize, ctx: &mut Ctx<'_, '_>) {
        let st = self.state.borrow();
        let map = st.grid_map;
        let dim = [Dim::X, Dim::Y, Dim::Z, Dim::Y, Dim::X][stage];
        let dir = if stage <= 2 {
            Direction::Forward
        } else {
            Direction::Inverse
        };
        let n = map.grid[dim.index()];
        let (du, dv) = anton_fft::transverse(dim);
        // This slice's lines.
        let lines: Vec<(usize, usize)> = map
            .lines_owned(dim, node)
            .into_iter()
            .filter(|&(u, v)| fftplan::line_slice(&map, dim, u, v) == s)
            .collect();
        let sigma = st.config.md.ewald_sigma;
        let spread = SpreadParams::for_ewald_sigma(sigma);
        let pbox = st.sys.pbox;
        let grid_dims = st.config.md.grid;
        let cost = st.config.cost.fft_lines(lines.len() as u64, n as u64);
        drop(st);

        let plan = Fft1d::new(n);
        let mut out_points: Vec<([usize; 3], Complex)> = Vec::with_capacity(lines.len() * n);
        for &(u, v) in &lines {
            let mut line = vec![Complex::ZERO; n];
            let mut gs = vec![[0usize; 3]; n];
            for (w, g) in gs.iter_mut().enumerate() {
                g[dim.index()] = w;
                g[du.index()] = u;
                g[dv.index()] = v;
            }
            for (w, g) in gs.iter().enumerate() {
                let addr = A_FFT
                    + stage as u64 * FFT_STRIDE
                    + (g[0] + map.grid[0] * (g[1] + map.grid[1] * g[2])) as u64;
                match ctx.mem_read(slice(node, s), addr) {
                    Some(Payload::F64s(vv)) if vv.len() == 2 => {
                        line[w] = Complex::new(vv[0], vv[1]);
                    }
                    other => panic!("missing FFT point {g:?} stage {stage}: {other:?}"),
                }
            }
            plan.transform(&mut line, dir);
            if stage == 2 {
                // k-space: multiply by the Poisson/Gaussian kernel, then
                // immediately inverse-transform along z (no communication
                // needed — the data is already in z pencils).
                apply_kernel_line(&mut line, &gs, grid_dims, pbox, sigma, spread.sigma_s);
                plan.transform(&mut line, Direction::Inverse);
            }
            for (w, g) in gs.iter().enumerate() {
                out_points.push((*g, line[w]));
            }
        }
        // Stage bookkeeping: store outputs for the send callback.
        let send_stage = stage + 1;
        self.add_compute(node, cost);
        // Send directly after modeling the compute time: stash points in
        // the program itself via a closure-free mechanism — reuse the
        // scratch: store in a per-(node,slice,stage) map.
        let key = (node, s, send_stage);
        FFT_OUTBOX.with(|o| o.borrow_mut().insert(key, out_points));
        ctx.compute(
            node,
            ClientKind::Slice(s),
            TRACK_GC,
            cost,
            TAG_FFT_DONE + (stage * 4) as u64 + s as u64,
            "FFT",
        );
    }

    fn fft_stage_send(&mut self, node: NodeId, s: u8, stage: usize, ctx: &mut Ctx<'_, '_>) {
        let send_stage = stage + 1;
        let points = FFT_OUTBOX
            .with(|o| o.borrow_mut().remove(&(node, s, send_stage)))
            .expect("FFT outbox populated");
        self.send_fft_points(node, ctx, send_stage, &points);
    }

    fn potentials_gathered(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        // Slice 0 assembles the potential brick and multicasts its rows
        // to the HTIS halo (Figure 9: "positions/potentials … multicast").
        let st = self.state.borrow();
        let map = st.grid_map;
        let me = node.coord(st.decomp.dims);
        let cost = st
            .config
            .cost
            .accum_read((map.brick().iter().product::<usize>()) as u64);
        drop(st);
        let pts = Self::brick_points(&map, me);
        let mut brick = Vec::with_capacity(pts.len());
        for &g in &pts {
            let gi = (g[0] + map.grid[0] * (g[1] + map.grid[1] * g[2])) as u64;
            match ctx.mem_read(slice(node, 0), A_FFT + 5 * FFT_STRIDE + gi) {
                Some(Payload::F64s(v)) if v.len() == 2 => brick.push(v[0]),
                other => panic!("missing potential point {g:?}: {other:?}"),
            }
        }
        let mut st = self.state.borrow_mut();
        st.scratch.potential_brick[node.index()] = brick;
        drop(st);
        self.add_compute(node, cost);
        ctx.compute(
            node,
            ClientKind::Slice(0),
            TRACK_TS,
            cost,
            TAG_POTCAST,
            "FFT",
        );
    }

    fn potential_multicast(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let st = self.state.borrow();
        let map = st.grid_map;
        let dims = st.decomp.dims;
        let me = node.coord(dims);
        let pot_pattern = st.patterns.pot_id(me);
        let brick = st.scratch.potential_brick[node.index()].clone();
        drop(st);
        let b = map.brick();
        for z in 0..b[2] {
            for y in 0..b[1] {
                let row = z * b[1] + y;
                let mut vals = Vec::with_capacity(b[0]);
                for x in 0..b[0] {
                    vals.push(brick[x + b[0] * (y + b[1] * z)]);
                }
                let pkt = Packet::write(
                    slice(node, (row % 4) as u8),
                    htis(node),
                    A_POTROW + node.0 as u64 * 64 + row as u64,
                    Payload::F64s(vals),
                )
                .with_counter(C_POT)
                .into_multicast(pot_pattern, ClientKind::Htis);
                ctx.send(pkt);
            }
        }
    }

    /// FFT-only mode: arm the convolution counters and scatter the
    /// pre-seeded brick charges immediately (Table 3's isolated row and
    /// the 4-µs comparison of [47]).
    fn start_fft_only(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let st = self.state.borrow();
        let map = st.grid_map;
        for (stage, dim) in [Dim::X, Dim::Y, Dim::Z, Dim::Y, Dim::X].iter().enumerate() {
            let targets = fftplan::pencil_targets(&map, *dim);
            for s in 0..4u8 {
                ctx.watch_counter(
                    slice(node, s),
                    c_fft(stage),
                    targets[node.index()][s as usize],
                );
            }
        }
        let brick = map.brick();
        ctx.watch_counter(
            slice(node, 0),
            C_BRICKPOT,
            (brick[0] * brick[1] * brick[2]) as u64,
        );
        ctx.watch_counter(
            htis(node),
            C_POT,
            fftplan::potential_targets(&map)[node.index()],
        );
        drop(st);
        self.charge_scatter(node, ctx);
    }

    fn interpolate(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        if self.state.borrow().scratch.fft_only {
            let mut st = self.state.borrow_mut();
            let t = ctx.now().as_ps();
            st.scratch.fft_last_pot = Some(st.scratch.fft_last_pot.map_or(t, |v| v.max(t)));
            drop(st);
            self.mark_done();
            return;
        }
        ctx.set_phase("force interpolation");
        let st = self.state.borrow();
        let map = st.grid_map;
        let dims = st.decomp.dims;
        let me = node.coord(dims);
        let spread = SpreadParams::for_ewald_sigma(st.config.md.ewald_sigma);
        // Assemble the halo'd potential grid from received rows.
        let mut grid = ScalarGrid::zeros(st.config.md.grid, st.sys.pbox);
        let b = map.brick();
        for src in fftplan::halo_sources(&map, me) {
            let src_id = src.node_id(dims);
            let origin = [
                src.x as usize * b[0],
                src.y as usize * b[1],
                src.z as usize * b[2],
            ];
            for z in 0..b[2] {
                for y in 0..b[1] {
                    let row = z * b[1] + y;
                    match ctx.mem_read(htis(node), A_POTROW + src_id.0 as u64 * 64 + row as u64) {
                        Some(Payload::F64s(vals)) => {
                            for (x, &v) in vals.iter().enumerate() {
                                let g = [origin[0] + x, origin[1] + y, origin[2] + z];
                                let idx = g[0] + map.grid[0] * (g[1] + map.grid[1] * g[2]);
                                grid.data[idx] = v;
                            }
                        }
                        other => panic!("missing potential row {row} from {src}: {other:?}"),
                    }
                }
            }
        }
        let atoms = st.node_atoms(node).to_vec();
        let positions: Vec<Vec3> = atoms
            .iter()
            .map(|&a| st.sys.atoms[a as usize].pos)
            .collect();
        let charges: Vec<f64> = atoms
            .iter()
            .map(|&a| st.sys.atoms[a as usize].charge)
            .collect();
        let sigma = st.config.md.ewald_sigma;
        let h = st.sys.pbox.lengths.x / st.config.md.grid[0] as f64;
        let support = spread.sigma_s * spread.support_sigmas;
        let pts = ((2.0 * support / h).ceil() as u64 + 1).pow(3);
        let cost = st.config.cost.interpolate(atoms.len() as u64, pts);
        drop(st);

        let mut lr_forces = vec![Vec3::ZERO; atoms.len()];
        anton_md::grid::interpolate_forces(
            &grid,
            &positions,
            &charges,
            spread,
            COULOMB,
            &mut lr_forces,
        );
        let phi = anton_md::grid::interpolate_potential(&grid, &positions, spread);
        let mut e = 0.5 * COULOMB * charges.iter().zip(&phi).map(|(&q, &p)| q * p).sum::<f64>();
        // Self-energy for this node's atoms.
        let q_sq: f64 = charges.iter().map(|&q| q * q).sum();
        e -= COULOMB * q_sq / ((2.0 * std::f64::consts::PI).sqrt() * sigma);

        let mut st = self.state.borrow_mut();
        st.scratch.e_long_range[node.index()] += e;
        let t = ctx.now().as_ps();
        st.scratch.fft_last_pot = Some(st.scratch.fft_last_pot.map_or(t, |v| v.max(t)));
        drop(st);
        FFT_INTERP.with(|o| o.borrow_mut().insert(node, lr_forces));
        self.add_compute(node, cost);
        ctx.compute(
            node,
            ClientKind::Htis,
            TRACK_HTIS,
            cost,
            TAG_INTERP_DONE,
            "interpolation",
        );
    }

    fn interp_send(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let forces = FFT_INTERP
            .with(|o| o.borrow_mut().remove(&node))
            .expect("interpolation results present");
        let me = {
            let st = self.state.borrow();
            node.coord(st.decomp.dims)
        };
        self.send_force_chunks(node, ctx, me, &forces, A_LR);
    }

    // ---------------- integration + thermostat ----------------

    fn forces_ready(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        ctx.set_phase("integration");
        if let Some(from) = self.ts_idle_since.take() {
            ctx.record_stall(TRACK_TS, from, "wait for forces");
        }
        {
            let mut st = self.state.borrow_mut();
            let t = ctx.now().as_ps();
            st.scratch.ts_force = Some(match st.scratch.ts_force {
                None => (t, t),
                Some((a, b)) => (a.min(t), b.max(t)),
            });
        }
        let st = self.state.borrow();
        let capacity = st.plan.capacity as u64;
        let cost = st.config.cost.accum_read(capacity);
        drop(st);
        self.add_compute(node, cost);
        ctx.compute(
            node,
            ClientKind::Slice(0),
            TRACK_TS,
            cost,
            TAG_ACCUM_READ,
            "force read",
        );
    }

    fn decode_and_integrate(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let st = self.state.borrow();
        let atoms = st.node_atoms(node).to_vec();
        let lr_step = st.scratch.long_range;
        let bootstrap = st.scratch.bootstrap;
        drop(st);
        // Decode the range-limited+bonded region, and the long-range
        // region on fresh steps.
        let n = atoms.len();
        let rl_words = ctx.accum_read(accum0(node), 0, n * 3);
        let lr_words = if lr_step {
            ctx.accum_read(accum0(node), A_LR, n * 3)
        } else {
            Vec::new()
        };
        let mut st = self.state.borrow_mut();
        for (slot, &atom) in atoms.iter().enumerate() {
            let f_rl = fixed::decode_force([
                rl_words[slot * 3],
                rl_words[slot * 3 + 1],
                rl_words[slot * 3 + 2],
            ]);
            if lr_step {
                let f_lr = fixed::decode_force([
                    lr_words[slot * 3],
                    lr_words[slot * 3 + 1],
                    lr_words[slot * 3 + 2],
                ]);
                st.lr_forces[atom as usize] = f_lr;
            }
            let total = f_rl + st.lr_forces[atom as usize];
            st.scratch.new_forces[atom as usize] = total;
        }
        let share = n.div_ceil(4) as u64;
        let cost = st.config.cost.integrate(share);
        let thermostat = st.scratch.thermostat;
        drop(st);

        if bootstrap {
            self.mark_done();
            return;
        }
        self.add_compute(node, cost);
        for s in 0..4u8 {
            let tag = if s == 0 { TAG_INTEG2 } else { u64::MAX };
            ctx.compute(node, ClientKind::Slice(s), TRACK_TS, cost, tag, "integrate");
        }
        let _ = thermostat;
    }

    fn second_half_done(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        // Apply the second half-kick for this node's atoms.
        let mut st = self.state.borrow_mut();
        let dt = st.config.md.dt;
        let atoms = st.node_atoms(node).to_vec();
        for &atom in &atoms {
            let f = st.scratch.new_forces[atom as usize];
            let a = &mut st.sys.atoms[atom as usize];
            let acc = f * (anton_md::units::ACCEL_CONVERSION / a.mass);
            a.vel += acc * (0.5 * dt);
        }
        let thermostat = st.scratch.thermostat;
        if !thermostat {
            drop(st);
            self.mark_done();
            return;
        }
        // Kinetic-energy partial for the thermostat reduction.
        let ke: f64 = atoms
            .iter()
            .map(|&a| {
                let at = &st.sys.atoms[a as usize];
                kinetic_energy(at.mass, at.vel.norm_sq())
            })
            .sum();
        st.scratch.ke_partial[node.index()] = ke;
        let t = ctx.now().as_ps();
        st.scratch.reduce_first = Some(st.scratch.reduce_first.map_or(t, |v| v.min(t)));
        let cost = st.config.cost.kinetic(atoms.len() as u64);
        let virial = st.scratch.virial[node.index()];
        drop(st);
        // The paper's reductions compute "the kinetic energy or virial"
        // (§II); carry both in one 16-byte reduction.
        self.ar_value = ke;
        self.ar_virial = virial;
        self.ar_round = 0;
        self.add_compute(node, cost);
        ctx.compute(
            node,
            ClientKind::Slice(0),
            TRACK_TS,
            cost,
            TAG_AR,
            "kinetic energy",
        );
    }

    // ---------------- thermostat all-reduce (dimension-ordered) ----------------

    fn ar_advance(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        ctx.set_phase("global reduction");
        let dims = ctx.dims();
        while self.ar_round < 3 && dims.len(Dim::ALL[self.ar_round]) <= 1 {
            self.ar_round += 1;
        }
        if self.ar_round >= 3 {
            self.ar_finish(node, ctx);
            return;
        }
        let dim = Dim::ALL[self.ar_round];
        let me = node.coord(dims);
        let s = ClientKind::Slice(self.ar_round as u8);
        ctx.watch_counter(
            ClientAddr::new(node, s),
            c_ar(self.ar_round),
            dims.len(dim) as u64,
        );
        let pkt = Packet::write(
            ClientAddr::new(node, s),
            ClientAddr::new(node, s),
            A_AR + (self.ar_round as u64) * 0x1000 + me.get(dim) as u64 * 16,
            Payload::F64s(vec![self.ar_value, self.ar_virial]),
        )
        .with_counter(c_ar(self.ar_round))
        .into_multicast(self.state.borrow().patterns.ar_id(dim, me), s);
        ctx.send(pkt);
    }

    fn ar_round_done(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let dims = ctx.dims();
        let dim = Dim::ALL[self.ar_round];
        let s = ClientKind::Slice(self.ar_round as u8);
        let (mut sum, mut vsum) = (0.0, 0.0);
        for c in 0..dims.len(dim) {
            let addr = A_AR + (self.ar_round as u64) * 0x1000 + c as u64 * 16;
            match ctx.mem_take(ClientAddr::new(node, s), addr) {
                Some(Payload::F64s(v)) => {
                    sum += v[0];
                    vsum += v[1];
                }
                other => panic!("missing all-reduce contribution {c}: {other:?}"),
            }
        }
        self.ar_value = sum;
        self.ar_virial = vsum;
        self.ar_round += 1;
        let st = self.state.borrow();
        let cost = SimDuration::from_ns_f64(10.0 + 4.5 * dims.len(dim) as f64);
        drop(st);
        self.add_compute(node, cost);
        ctx.compute(node, s, TRACK_TS, cost, TAG_AR, "global reduction");
    }

    fn ar_finish(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        // Every node now holds the identical global kinetic energy.
        let mut st = self.state.borrow_mut();
        let ke_total = self.ar_value;
        let n_total = st.sys.atoms.len();
        let k = st.step_count + 1;
        let th_due = st
            .config
            .md
            .thermostat
            .filter(|t| k.is_multiple_of(t.interval as u64));
        if let Some(th) = th_due {
            let t_inst = anton_md::units::temperature(ke_total, n_total);
            let lambda = if t_inst <= 0.0 {
                1.0
            } else {
                (1.0 + st.config.md.dt / th.tau * (th.target / t_inst - 1.0))
                    .max(0.0)
                    .sqrt()
            };
            let atoms = st.node_atoms(node).to_vec();
            for &a in &atoms {
                st.sys.atoms[a as usize].vel = st.sys.atoms[a as usize].vel * lambda;
            }
        }
        let t = ctx.now().as_ps();
        st.scratch.reduce_last = Some(st.scratch.reduce_last.map_or(t, |v| v.max(t)));
        st.scratch.reduced = Some((ke_total, self.ar_virial));
        drop(st);
        self.mark_done();
    }
}

/// Grid points (coordinates + values) staged between an FFT compute and
/// its send.
type FftPoints = Vec<([usize; 3], Complex)>;

thread_local! {
    /// FFT stage outputs awaiting their post-compute send, keyed by
    /// (node, slice, next stage). Thread-local because the DES is
    /// single-threaded and the data is transient within one step.
    static FFT_OUTBOX: RefCell<std::collections::HashMap<(NodeId, u8, usize), FftPoints>> =
        RefCell::new(Default::default());
    /// Interpolated long-range forces awaiting their send.
    static FFT_INTERP: RefCell<std::collections::HashMap<NodeId, Vec<Vec3>>> =
        RefCell::new(Default::default());
}

/// Apply the Poisson/Gaussian kernel to one z-line in k-space.
fn apply_kernel_line(
    line: &mut [Complex],
    gs: &[[usize; 3]],
    grid: [usize; 3],
    pbox: anton_md::PeriodicBox,
    sigma: f64,
    sigma_s: f64,
) {
    let two_pi = 2.0 * std::f64::consts::PI;
    let kf = [
        two_pi / pbox.lengths.x,
        two_pi / pbox.lengths.y,
        two_pi / pbox.lengths.z,
    ];
    let residual = (sigma * sigma - 2.0 * sigma_s * sigma_s).max(0.0);
    let fold = |m: usize, n: usize| -> f64 {
        let (m, n) = (m as i64, n as i64);
        (if m <= n / 2 { m } else { m - n }) as f64
    };
    for (w, g) in gs.iter().enumerate() {
        let kx = fold(g[0], grid[0]) * kf[0];
        let ky = fold(g[1], grid[1]) * kf[1];
        let kz = fold(g[2], grid[2]) * kf[2];
        let k_sq = kx * kx + ky * ky + kz * kz;
        if k_sq == 0.0 {
            line[w] = Complex::ZERO;
        } else {
            let kern = 4.0 * std::f64::consts::PI / k_sq * (-0.5 * residual * k_sq).exp();
            line[w] = line[w].scale(kern);
        }
    }
}

impl NodeProgram for MdNode {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => self.on_start(node, ctx),
            ProgEvent::Timer { tag, .. } => match tag {
                u64::MAX => {}
                TAG_INTEG1 => {
                    let migration = self.state.borrow().scratch.migration;
                    if migration {
                        self.start_migration(node, ctx);
                    } else {
                        self.distribute(node, ctx);
                    }
                }
                TAG_MIG_DONE => self.distribute(node, ctx),
                TAG_HTIS_DONE => self.htis_pair_done(node, ctx),
                t @ TAG_BOND_DONE..=7 => self.bonded_send(node, (t - TAG_BOND_DONE) as u8, ctx),
                TAG_SPREAD_DONE => self.spread_send(node, ctx),
                TAG_CHARGE_READ => self.charge_scatter(node, ctx),
                t @ TAG_FFT_DONE..=35 => {
                    let rel = t - TAG_FFT_DONE;
                    self.fft_stage_send(node, (rel % 4) as u8, (rel / 4) as usize, ctx);
                }
                TAG_POTCAST => self.potential_multicast(node, ctx),
                TAG_INTERP_DONE => self.interp_send(node, ctx),
                TAG_ACCUM_READ => self.decode_and_integrate(node, ctx),
                TAG_INTEG2 => self.second_half_done(node, ctx),
                TAG_AR => self.ar_advance(node, ctx),
                other => panic!("unknown timer tag {other}"),
            },
            ProgEvent::CounterReached { client, counter } => match (client, counter) {
                (ClientKind::Htis, C_POT) => self.interpolate(node, ctx),
                (ClientKind::Htis, c) if c.0 >= 16 => {
                    self.htis_buffer_ready(node, (c.0 - 16) as usize, ctx)
                }
                (ClientKind::Accum(0), C_FORCE) => self.forces_ready(node, ctx),
                (ClientKind::Accum(1), C_CHARGE) => self.charge_gathered(node, ctx),
                (ClientKind::Slice(s), C_BPOS) => self.bonded_compute(node, s, ctx),
                (ClientKind::Slice(0), C_BRICKPOT) => self.potentials_gathered(node, ctx),
                (ClientKind::Slice(0), C_MIGSYNC) => self.migration_synced(node, ctx),
                (ClientKind::Slice(s), c) if (2..7).contains(&c.0) => {
                    self.fft_stage_compute(node, s, (c.0 - 2) as usize, ctx)
                }
                (ClientKind::Slice(_), c) if (12..15).contains(&c.0) => {
                    self.ar_round_done(node, ctx)
                }
                other => panic!("unexpected counter event {other:?}"),
            },
            ProgEvent::FifoMessage { .. } => {
                // Migration messages: bookkeeping was pre-applied by the
                // engine; count the message for the migration cost model.
                let mut st = self.state.borrow_mut();
                st.scratch.mig_received[node.index()] += 1;
            }
        }
    }
}
