//! The Anton MD engine: drives one DES run per time step, carrying
//! physics state between steps, and collects the timing measurements the
//! paper's tables and figures report.

use crate::program::MdNode;
use crate::state::{AntonConfig, MachineState, StepTiming};
use anton_des::{SimDuration, SimTime, Tracer, TrackId};
use anton_md::integrate::verlet_first_half;
use anton_md::{ChemicalSystem, Vec3};
use anton_net::{Fabric, NetStats, RunReport, Simulation, StallReport};
use anton_obs::{FlightRecorder, MetricsRegistry, SharedFlightRecorder};
use anton_topo::TorusDims;
use std::cell::RefCell;
use std::rc::Rc;

/// The machine + application. One instance simulates one MD run.
pub struct AntonMdEngine {
    /// The shared machine state (systems, plans, per-step scratch).
    pub state: Rc<RefCell<MachineState>>,
    dims: TorusDims,
    /// Timing of every completed step (bootstrap excluded).
    pub timings: Vec<StepTiming>,
    /// Capture an activity trace on the next step.
    trace_next: bool,
    /// The trace and network stats of the last step.
    pub last_trace: Option<Tracer>,
    /// Traffic statistics of the last step.
    pub last_stats: Option<NetStats>,
    /// Traffic statistics accumulated over every DES run so far
    /// (bootstrap included). Snapshot it before a window of steps and
    /// call [`NetStats::diff`] afterwards for per-window numbers.
    pub stats_total: NetStats,
    /// Flight recorder to install on the next step's fabric.
    record_next: Option<SharedFlightRecorder>,
    /// Total potential energy components of the last force evaluation.
    pub last_energies: Energies,
}

/// Potential-energy components of one force evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Energies {
    /// Bonded-term energy, kcal/mol.
    pub bonded: f64,
    /// Lennard-Jones energy.
    pub lj: f64,
    /// Real-space screened Coulomb energy.
    pub coulomb_real: f64,
    /// Reciprocal-space energy minus self/exclusion corrections.
    pub long_range: f64,
}

impl Energies {
    /// Total potential energy.
    pub fn potential(&self) -> f64 {
        self.bonded + self.lj + self.coulomb_real + self.long_range
    }
}

impl AntonMdEngine {
    /// Build the engine and run the bootstrap force evaluation (the
    /// initial forces every velocity-Verlet scheme needs), entirely
    /// through the simulated machine.
    pub fn new(sys: ChemicalSystem, config: AntonConfig, dims: TorusDims) -> AntonMdEngine {
        let state = Rc::new(RefCell::new(MachineState::new(sys, config, dims)));
        let mut eng = AntonMdEngine {
            state,
            dims,
            timings: Vec::new(),
            trace_next: false,
            last_trace: None,
            last_stats: None,
            stats_total: NetStats::default(),
            record_next: None,
            last_energies: Energies::default(),
        };
        eng.run_des_step(true);
        eng
    }

    /// Capture a Figure 13-style activity trace on the next step.
    pub fn trace_next_step(&mut self) {
        self.trace_next = true;
    }

    /// Record every packet lifecycle of the next step into a flight
    /// recorder; returns the shared handle to inspect (or export) after
    /// the step completes. Recording one step of a large system can
    /// produce millions of events — use
    /// [`AntonMdEngine::record_next_step_with`] to bound or sample.
    pub fn record_next_step(&mut self) -> SharedFlightRecorder {
        self.record_next_step_with(FlightRecorder::new())
    }

    /// Like [`AntonMdEngine::record_next_step`] but with a
    /// pre-configured recorder (ring-buffer capacity, sampling).
    pub fn record_next_step_with(&mut self, rec: FlightRecorder) -> SharedFlightRecorder {
        let shared = rec.into_shared();
        self.record_next = Some(shared.clone());
        shared
    }

    /// Export cumulative traffic statistics, step counters, and the
    /// latest energies into a metrics registry (`net.*`, `md.*` keys).
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        self.stats_total.record_metrics(reg);
        reg.set_counter("md.steps", self.steps());
        reg.set_gauge("md.energy.bonded", self.last_energies.bonded);
        reg.set_gauge("md.energy.lj", self.last_energies.lj);
        reg.set_gauge("md.energy.coulomb_real", self.last_energies.coulomb_real);
        reg.set_gauge("md.energy.long_range", self.last_energies.long_range);
        reg.set_gauge("md.energy.potential", self.last_energies.potential());
        for t in &self.timings {
            reg.observe("md.step_total", t.total);
        }
    }

    /// Number of completed MD steps.
    pub fn steps(&self) -> u64 {
        self.state.borrow().step_count
    }

    /// The fabric timing model the engine's steps run under — what a
    /// causal-graph builder needs to reconstruct injection-port
    /// occupancy from a recorded step.
    pub fn timing(&self) -> anton_net::Timing {
        self.state.borrow().config.timing.clone()
    }

    /// Advance one time step; returns its timing record. Panics with the
    /// watchdog's diagnosis if the step stalls (lost packets under an
    /// aggressive fault plan); use [`AntonMdEngine::try_step`] to handle
    /// stalls programmatically.
    pub fn step(&mut self) -> StepTiming {
        match self.try_step() {
            Ok(t) => t,
            Err(stall) => panic!("MD step stalled:\n{stall}"),
        }
    }

    /// Advance one time step, reporting a stall instead of panicking.
    /// After an `Err` the machine state is mid-step and must not be
    /// stepped further; the report names every stuck counter.
    pub fn try_step(&mut self) -> Result<StepTiming, Box<StallReport>> {
        let timing = self.try_run_des_step(false)?;
        self.timings.push(timing.clone());
        Ok(timing)
    }

    /// Instantaneous temperature, K.
    pub fn temperature(&self) -> f64 {
        anton_md::integrate::instantaneous_temperature(&self.state.borrow().sys)
    }

    /// Current total kinetic energy, kcal/mol.
    pub fn kinetic_energy(&self) -> f64 {
        anton_md::integrate::total_kinetic(&self.state.borrow().sys)
    }

    /// Mean bond-destination hops given the current atom placement — the
    /// Figure 11 staleness metric.
    pub fn bond_staleness_hops(&self) -> f64 {
        let st = self.state.borrow();
        st.bond_program
            .mean_destination_hops(&st.owners, &st.decomp)
    }

    fn run_des_step(&mut self, bootstrap: bool) -> StepTiming {
        match self.try_run_des_step(bootstrap) {
            Ok(t) => t,
            Err(stall) => panic!("DES step stalled:\n{stall}"),
        }
    }

    fn try_run_des_step(&mut self, bootstrap: bool) -> Result<StepTiming, Box<StallReport>> {
        // ---- host-side pre-step ----
        let (thermostat, _long_range, migration) = {
            let mut st = self.state.borrow_mut();
            let k = st.step_count + 1;
            let lr = bootstrap || k.is_multiple_of(st.config.md.long_range_interval as u64);
            // The global reduction runs when the thermostat or barostat
            // needs it (Figure 2: "kinetic energy / virial").
            let th_due = st
                .config
                .md
                .thermostat
                .map(|t| k.is_multiple_of(t.interval as u64))
                .unwrap_or(false);
            let ba_due = st
                .config
                .md
                .barostat
                .map(|b| k.is_multiple_of(b.interval as u64))
                .unwrap_or(false);
            let th = !bootstrap && (th_due || ba_due);
            let mig = !bootstrap
                && st.config.migration_interval > 0
                && k.is_multiple_of(st.config.migration_interval as u64);

            if !bootstrap {
                if let Some(interval) = st.config.regen_interval {
                    if k.saturating_sub(st.bond_program_age) > interval {
                        st.regenerate_bond_program();
                    }
                }
                // First half-kick + drift with the forces at the current
                // positions (identical math to the reference engine).
                let dt = st.config.md.dt;
                let forces = st.forces_prev.clone();
                verlet_first_half(&mut st.sys, &forces, dt);
            }

            let n_nodes = self.dims.node_count() as usize;
            let n_atoms = st.sys.atoms.len();
            st.scratch.reset(n_nodes, n_atoms);
            st.scratch.bootstrap = bootstrap;
            st.scratch.long_range = lr;
            st.scratch.thermostat = th;
            st.scratch.migration = mig;
            st.compute_time = vec![SimDuration::ZERO; n_nodes];

            if mig {
                // Snapshot leavers (for the FIFO traffic), then apply the
                // bookkeeping host-side so the plan is consistent before
                // position distribution.
                let mut leavers = vec![Vec::new(); n_nodes];
                for atom in 0..st.sys.atoms.len() {
                    let p = st.sys.atoms[atom].pos;
                    let owner = st.owners[atom].coord(self.dims);
                    if !st.decomp.within_relaxed(p, owner, st.config.margin) {
                        let new_owner = st.decomp.strict_owner(p).node_id(self.dims);
                        if new_owner != st.owners[atom] {
                            leavers[st.owners[atom].index()].push((atom as u32, new_owner));
                        }
                    }
                }
                st.apply_migration();
                st.scratch.leavers = leavers;
            }
            (th, lr, mig)
        };

        // ---- build the fabric for this step ----
        let mut fabric = {
            let st = self.state.borrow();
            let mut fabric =
                Fabric::with_faults(self.dims, st.config.timing.clone(), st.config.fault.clone());
            st.patterns.register(&mut fabric, thermostat, migration);
            fabric
        };
        if self.trace_next {
            fabric.enable_tracing();
            let n = self.dims.node_count() as u64;
            // 4 Tensilica slices and 4 geometry-core pipelines per node;
            // one HTIS per node.
            fabric.tracer.name_track(TrackId(6), "TS cores");
            fabric.tracer.set_track_units(TrackId(6), n * 4);
            fabric.tracer.name_track(TrackId(7), "GC cores");
            fabric.tracer.set_track_units(TrackId(7), n * 4);
            fabric.tracer.name_track(TrackId(8), "HTIS units");
            fabric.tracer.set_track_units(TrackId(8), n);
            self.trace_next = false;
        }
        let tracing = fabric.tracer.is_enabled();
        if let Some(rec) = self.record_next.take() {
            fabric.set_recorder(Box::new(rec));
        }

        // ---- run the DES ----
        let state = self.state.clone();
        let mut sim = Simulation::new(fabric, move |_| MdNode::new(state.clone()));
        match sim.run_guarded(SimTime(u64::MAX / 2), 500_000_000) {
            RunReport::Completed(_) => {}
            RunReport::Stalled(stall) => {
                let stats = sim.world.fabric.stats.clone();
                self.stats_total.merge(&stats);
                self.last_stats = Some(stats);
                return Err(Box::new(stall));
            }
        }

        // ---- host-side post-step ----
        let mut st = self.state.borrow_mut();
        let n_nodes = self.dims.node_count() as usize;
        assert_eq!(
            st.scratch.nodes_done, n_nodes as u32,
            "not every node completed the step"
        );
        st.forces_prev = st.scratch.new_forces.clone();
        // Energies, summed in node order (deterministic).
        let sum = |v: &[f64]| v.iter().sum::<f64>();
        let fresh_lr = st.scratch.long_range;
        let lr_energy = if fresh_lr {
            let e = sum(&st.scratch.e_long_range);
            st.last_lr_energy = e;
            e
        } else {
            st.last_lr_energy
        };
        self.last_energies = Energies {
            bonded: sum(&st.scratch.e_bonded),
            lj: sum(&st.scratch.e_lj),
            coulomb_real: sum(&st.scratch.e_coulomb),
            long_range: lr_energy,
        };
        if !bootstrap {
            st.step_count += 1;
        }
        // Barostat: the globally reduced virial arrived with the
        // thermostat reduction; apply the Berendsen box rescale and
        // rebuild the spatial bookkeeping (the box geometry changed).
        if let (Some(ba), Some((_, virial))) = (st.config.md.barostat, st.scratch.reduced) {
            if !bootstrap && st.step_count.is_multiple_of(ba.interval as u64) {
                let p = anton_md::integrate::instantaneous_pressure(&st.sys, virial);
                let dt = st.config.md.dt;
                anton_md::integrate::berendsen_pressure_rescale(
                    &mut st.sys,
                    p,
                    ba.target,
                    ba.tau,
                    ba.kappa,
                    dt,
                );
                let import_radius = st.config.md.cutoff + 2.0 * st.config.margin;
                let old_reach = (st.decomp.plate_reach(), st.decomp.tower_reach());
                st.decomp =
                    crate::decomp::Decomposition::new(self.dims, st.sys.pbox, import_radius);
                if (st.decomp.plate_reach(), st.decomp.tower_reach()) != old_reach {
                    // The import geometry changed: rebuild the multicast
                    // pattern families too.
                    st.patterns = crate::patterns::MdPatterns::allocate(&st.decomp, &st.grid_map);
                }
                st.apply_migration(); // re-own atoms under the new box
            }
        }

        let span = |a: Option<u64>, b: Option<u64>| match (a, b) {
            (Some(x), Some(y)) if y >= x => SimDuration::from_ps(y - x),
            _ => SimDuration::ZERO,
        };
        let timing = StepTiming {
            total: sim.now() - SimTime::ZERO,
            compute_per_node: st.compute_time.clone(),
            long_range: st.scratch.long_range,
            thermostat: st.scratch.thermostat,
            migration: st.scratch.migration,
            fft_span: span(st.scratch.fft_first_send, st.scratch.fft_last_pot),
            reduce_span: span(st.scratch.reduce_first, st.scratch.reduce_last),
            migration_span: span(Some(0), st.scratch.migration_last_sync),
        };
        drop(st);

        let stats = sim.world.fabric.stats.clone();
        self.stats_total.merge(&stats);
        self.last_stats = Some(stats);
        if tracing {
            self.last_trace = Some(std::mem::replace(
                &mut sim.world.fabric.tracer,
                Tracer::disabled(),
            ));
        }
        Ok(timing)
    }

    /// Measure the FFT-based convolution in isolation (the Table 3 row
    /// and the 4 µs comparison point of \[47\]): pre-seed every node's
    /// charge brick from a host-side spread of the current positions,
    /// then run only the 6 communication passes of the dimension-ordered
    /// FFT until every HTIS holds its halo potentials.
    pub fn measure_fft_convolution(&mut self) -> anton_des::SimDuration {
        {
            let mut st = self.state.borrow_mut();
            let n_nodes = self.dims.node_count() as usize;
            let n_atoms = st.sys.atoms.len();
            st.scratch.reset(n_nodes, n_atoms);
            st.scratch.fft_only = true;
            st.compute_time = vec![SimDuration::ZERO; n_nodes];
            // Host-side spread (the physics the HTIS units would have
            // produced), quantized through the same fixed-point codec.
            let spread = anton_md::grid::SpreadParams::for_ewald_sigma(st.config.md.ewald_sigma);
            let mut grid = anton_md::grid::ScalarGrid::zeros(st.config.md.grid, st.sys.pbox);
            let positions: Vec<Vec3> = st.sys.atoms.iter().map(|a| a.pos).collect();
            let charges: Vec<f64> = st.sys.atoms.iter().map(|a| a.charge).collect();
            anton_md::grid::spread_charges(&mut grid, &positions, &charges, spread);
            let map = st.grid_map;
            let b = map.brick();
            for c in self.dims.iter_coords() {
                let node = c.node_id(self.dims);
                let origin = [
                    c.x as usize * b[0],
                    c.y as usize * b[1],
                    c.z as usize * b[2],
                ];
                let mut vals = Vec::with_capacity(b[0] * b[1] * b[2]);
                for z in 0..b[2] {
                    for y in 0..b[1] {
                        for x in 0..b[0] {
                            let g = [origin[0] + x, origin[1] + y, origin[2] + z];
                            let idx = g[0] + map.grid[0] * (g[1] + map.grid[1] * g[2]);
                            let q = anton_md::fixed::encode(
                                grid.data[idx],
                                anton_md::fixed::CHARGE_SCALE,
                            );
                            vals.push(anton_md::fixed::decode(q, anton_md::fixed::CHARGE_SCALE));
                        }
                    }
                }
                st.scratch.brick_charges[node.index()] = vals;
            }
        }
        let fabric = {
            let st = self.state.borrow();
            let mut fabric =
                Fabric::with_faults(self.dims, st.config.timing.clone(), st.config.fault.clone());
            st.patterns.register(&mut fabric, false, false);
            fabric
        };
        let state = self.state.clone();
        let mut sim = Simulation::new(fabric, move |_| MdNode::new(state.clone()));
        if let RunReport::Stalled(stall) = sim.run_guarded(SimTime(u64::MAX / 2), 500_000_000) {
            panic!("FFT convolution stalled:\n{stall}");
        }
        let st = self.state.borrow();
        assert_eq!(
            st.scratch.nodes_done,
            self.dims.node_count(),
            "all nodes finish"
        );
        sim.now() - SimTime::ZERO
    }

    /// The system snapshot (positions, velocities).
    pub fn system(&self) -> ChemicalSystem {
        self.state.borrow().sys.clone()
    }

    /// Forces at the current positions (as decoded from the accumulation
    /// memories in the last step).
    pub fn current_forces(&self) -> Vec<Vec3> {
        self.state.borrow().forces_prev.clone()
    }
}
