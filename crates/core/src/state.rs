//! Shared machine state and the per-epoch communication plan.
//!
//! The DES node programs share one `MachineState` behind `Rc<RefCell>`.
//! Discipline: programs may freely read *static program data* (topology,
//! plans, expected counts — things Anton's software also knows ahead of
//! time) and their own node's data, but dynamic values produced by other
//! nodes (positions, forces, charges, potentials) travel only inside
//! packets through the simulated fabric.

use crate::bondprog::BondProgram;
use crate::cost::CostModel;
use crate::decomp::Decomposition;
use crate::patterns::MdPatterns;
use anton_des::SimDuration;
use anton_fft::GridMap;
use anton_md::{ChemicalSystem, MdParams, Vec3};
use anton_topo::{Coord, NodeId};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct AntonConfig {
    /// MD physics parameters (cutoff, grid, intervals, thermostat,
    /// barostat).
    pub md: MdParams,
    /// Migration interval in steps (Figure 12 sweeps 1–8).
    pub migration_interval: u32,
    /// Relaxed home-box margin, Å. Grows with the migration interval:
    /// atoms must stay in box+margin between migrations.
    pub margin: f64,
    /// Bond-program regeneration interval in steps (§IV.B.2:
    /// 100,000–200,000; `None` disables regeneration, the upper curve of
    /// Figure 11).
    pub regen_interval: Option<u64>,
    /// Padded per-node atom capacity factor over the current maximum
    /// ("worst-case temporal fluctuations in atom density", §IV.B.1).
    pub capacity_slack: f64,
    /// Compute-cost calibration.
    pub cost: CostModel,
    /// Network timing model (scaled copies make latency-sensitivity
    /// ablations possible).
    pub timing: anton_net::Timing,
    /// Use the HTIS high-priority buffer queue (farthest force results
    /// first; §IV.B.1). Off for the ablation bench.
    pub priority_queue: bool,
    /// Maximum atoms packed into one force-return packet (16 × 12 B =
    /// 192 B payload).
    pub force_pack: usize,
    /// Fault-injection plan for the fabric ([`anton_net::FaultPlan::none`]
    /// by default — bit-identical to a fault-free fabric).
    pub fault: anton_net::FaultPlan,
}

impl AntonConfig {
    /// Paper-flavored defaults for a given MD parameter set.
    pub fn new(md: MdParams) -> AntonConfig {
        AntonConfig {
            md,
            migration_interval: 8,
            margin: 0.75,
            regen_interval: Some(120_000),
            capacity_slack: 1.25,
            cost: CostModel::default(),
            timing: anton_net::Timing::default(),
            priority_queue: true,
            force_pack: 16,
            fault: anton_net::FaultPlan::none(),
        }
    }
}

/// Fixed communication bookkeeping, recomputed at epoch boundaries
/// (migration or bond-program regeneration).
#[derive(Debug, Clone)]
pub struct EpochPlan {
    /// Padded atom capacity per node (position packets per source box).
    pub capacity: u32,
    /// Per node: expected position packets at the HTIS.
    pub htis_pos_target: Vec<u64>,
    /// Per node, per slice: expected bonded-position packets.
    pub bond_pos_target: Vec<[u64; 4]>,
    /// Per node: expected force packets at accumulation memory 0 on a
    /// range-limited step.
    pub force_target_rl: Vec<u64>,
    /// Additional force packets on a long-range step (erf corrections
    /// from HTIS pair nodes + local interpolation returns).
    pub force_target_lr_extra: Vec<u64>,
    /// Bonded position sends: (sender, atom, dest node, dest slice).
    pub bond_sends: Vec<(NodeId, u32, Coord, u8)>,
    /// The same sends grouped by sender node for O(1) per-node lookup.
    pub bond_sends_by_node: Vec<Vec<(u32, Coord, u8)>>,
    /// Per (node, slice): bonded force-return contributions
    /// (atom, counted once per term slice touching it).
    pub bond_returns: Vec<Vec<Vec<u32>>>,
}

/// Per-step, per-node timing pieces used for Table 3's
/// "communication = total − critical-path arithmetic".
#[derive(Debug, Clone, Default)]
pub struct StepTiming {
    /// Total step wall time (simulated).
    pub total: SimDuration,
    /// Per-node sum of arithmetic durations this step.
    pub compute_per_node: Vec<SimDuration>,
    /// Whether the step evaluated the long-range forces.
    pub long_range: bool,
    /// Whether the step ran the global reduction.
    pub thermostat: bool,
    /// Whether the step ran a migration phase.
    pub migration: bool,
    /// FFT convolution span (first charge packet → last potential
    /// delivered), if a long-range step.
    pub fft_span: SimDuration,
    /// Thermostat all-reduce span.
    pub reduce_span: SimDuration,
    /// Migration phase span (start → all nodes synced).
    pub migration_span: SimDuration,
}

impl StepTiming {
    /// The critical-path arithmetic time (max over nodes), the paper's
    /// subtrahend.
    pub fn critical_compute(&self) -> SimDuration {
        self.compute_per_node
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Critical-path communication time = total − critical arithmetic.
    pub fn communication(&self) -> SimDuration {
        self.total.saturating_sub(self.critical_compute())
    }
}

/// The machine-wide mutable state shared by node programs.
pub struct MachineState {
    /// The chemical system (positions/velocities mutate per step).
    pub sys: ChemicalSystem,
    /// Engine configuration.
    pub config: AntonConfig,
    /// Spatial decomposition (rebuilt if the barostat rescales the box).
    pub decomp: Decomposition,
    /// Long-range grid ↔ machine mapping.
    pub grid_map: GridMap,
    /// Colored multicast pattern families (geometry-static).
    pub patterns: MdPatterns,
    /// Current home node per atom (relaxed; updated at migration).
    pub owners: Vec<NodeId>,
    /// Per node: owned atom ids, slot order.
    pub local_atoms: Vec<Vec<u32>>,
    /// Per atom: (home slot) — index into its owner's list.
    pub slots: Vec<u32>,
    /// Forces at current positions (decoded from accumulation memories
    /// at the end of the previous step; used for the first half-kick).
    pub forces_prev: Vec<Vec3>,
    /// Cached long-range forces (fresh every `long_range_interval`).
    pub lr_forces: Vec<Vec3>,
    /// The current bond program and the step it was generated at.
    pub bond_program: BondProgram,
    /// Step at which the bond program was generated.
    pub bond_program_age: u64,
    /// The fixed communication plan of the current epoch.
    pub plan: EpochPlan,
    /// Steps completed.
    pub step_count: u64,
    /// Per-node compute-time accumulator for the in-flight step.
    pub compute_time: Vec<SimDuration>,
    /// Bonded energy of the last fresh evaluation (node-order sum).
    pub e_bonded: f64,
    /// Lennard-Jones energy of the last fresh evaluation.
    pub e_lj: f64,
    /// Real-space Coulomb energy of the last fresh evaluation.
    pub e_coulomb_real: f64,
    /// Long-range energy of the last fresh evaluation.
    pub e_long_range: f64,
    /// Grid-spread support radius in grid points.
    pub spread_reach_points: usize,
    /// Number of migrated atoms in the last migration phase.
    pub last_migrated: u64,
    /// Cached long-range energy (reused on off-steps, like the
    /// reference engine's cache).
    pub last_lr_energy: f64,
    /// Step-transient working data.
    pub scratch: StepScratch,
}

/// Per-step transient state (reset by the engine each step).
#[derive(Debug, Default)]
pub struct StepScratch {
    /// Whether this step is a bootstrap (forces only, no integration).
    pub bootstrap: bool,
    /// FFT-convolution-only run (Table 3's isolated "FFT-based
    /// convolution" row): brick charges are pre-seeded, and the step
    /// ends when every HTIS has its halo potentials.
    pub fft_only: bool,
    /// Whether the step evaluates the long-range forces.
    pub long_range: bool,
    /// Whether the step runs the global reduction.
    pub thermostat: bool,
    /// Whether the step runs a migration phase.
    pub migration: bool,
    /// Migration leavers snapshot per node: (atom, new owner) pairs, the
    /// FIFO traffic of this step (bookkeeping already applied host-side).
    pub leavers: Vec<Vec<(u32, NodeId)>>,
    /// Decoded new forces per atom (filled as FORCE counters fire).
    pub new_forces: Vec<Vec3>,
    /// Per-node decoded charge bricks (after the CHARGE counter fires).
    pub brick_charges: Vec<Vec<f64>>,
    /// Per-node assembled potential bricks (after the final FFT pass).
    pub potential_brick: Vec<Vec<f64>>,
    /// Per-node kinetic-energy partials (thermostat steps).
    pub ke_partial: Vec<f64>,
    /// Per-node range-limited virial partials (barostat input).
    pub virial: Vec<f64>,
    /// Globally reduced [kinetic energy, virial] (set on reduce steps).
    pub reduced: Option<(f64, f64)>,
    /// Per-node all-reduce working value.
    pub ar_value: Vec<f64>,
    /// Per node: HTIS range-limited force partials per source box.
    pub htis_rl: Vec<Vec<(anton_topo::Coord, Vec<Vec3>)>>,
    /// Per node: HTIS erf-correction (long-range) partials per source box.
    pub htis_lr: Vec<Vec<(anton_topo::Coord, Vec<Vec3>)>>,
    /// Per node, per slice: bonded force contributions (atom, force).
    pub bond_forces: Vec<[Vec<(u32, Vec3)>; 4]>,
    /// Per node: migration FIFO messages received this step.
    pub mig_received: Vec<u32>,
    /// Per-node Lennard-Jones energy partials (summed in node order).
    pub e_lj: Vec<f64>,
    /// Per-node real-space Coulomb partials.
    pub e_coulomb: Vec<f64>,
    /// Per-node bonded-energy partials.
    pub e_bonded: Vec<f64>,
    /// Per-node long-range partials (reciprocal − self − exclusions).
    pub e_long_range: Vec<f64>,
    /// (min, max) ps timestamps of HTIS position-buffer completions.
    pub ts_hpos: Option<(u64, u64)>,
    /// (min, max) ps timestamps of force-counter fires.
    pub ts_force: Option<(u64, u64)>,
    /// First charge-spread send (ps).
    pub fft_first_send: Option<u64>,
    /// Last potential delivery/interpolation start (ps).
    pub fft_last_pot: Option<u64>,
    /// First kinetic-energy reduction start (ps).
    pub reduce_first: Option<u64>,
    /// Last all-reduce completion (ps).
    pub reduce_last: Option<u64>,
    /// Last migration-sync counter fire (ps).
    pub migration_last_sync: Option<u64>,
    /// Nodes that have finished the step (completion barrier for
    /// assertions).
    pub nodes_done: u32,
}

impl StepScratch {
    /// Fresh scratch for a machine of `n_nodes` nodes and `n_atoms` atoms.
    pub fn reset(&mut self, n_nodes: usize, n_atoms: usize) {
        *self = StepScratch {
            leavers: vec![Vec::new(); n_nodes],
            new_forces: vec![Vec3::ZERO; n_atoms],
            brick_charges: vec![Vec::new(); n_nodes],
            potential_brick: vec![Vec::new(); n_nodes],
            ke_partial: vec![0.0; n_nodes],
            virial: vec![0.0; n_nodes],
            ar_value: vec![0.0; n_nodes],
            e_lj: vec![0.0; n_nodes],
            e_coulomb: vec![0.0; n_nodes],
            e_bonded: vec![0.0; n_nodes],
            e_long_range: vec![0.0; n_nodes],
            htis_rl: vec![Vec::new(); n_nodes],
            htis_lr: vec![Vec::new(); n_nodes],
            bond_forces: vec![Default::default(); n_nodes],
            mig_received: vec![0; n_nodes],
            ..StepScratch::default()
        };
    }
}

impl MachineState {
    /// Build the initial state: assign atoms, generate the bond program,
    /// compute the first epoch plan.
    pub fn new(sys: ChemicalSystem, config: AntonConfig, dims: anton_topo::TorusDims) -> Self {
        let import_radius = config.md.cutoff + 2.0 * config.margin;
        let decomp = Decomposition::new(dims, sys.pbox, import_radius);
        let grid_map = GridMap::new(config.md.grid, dims);
        // Spread support must stay within one brick for the halo plan.
        let spread = anton_md::grid::SpreadParams::for_ewald_sigma(config.md.ewald_sigma);
        let h = sys.pbox.lengths.x / config.md.grid[0] as f64;
        let reach_pts =
            ((spread.sigma_s * spread.support_sigmas + config.margin) / h).ceil() as usize;
        let brick_min = *grid_map.brick().iter().min().expect("3 axes");
        assert!(
            reach_pts <= brick_min,
            "spread support ({reach_pts} points) exceeds a grid brick ({brick_min}); \
             use a larger machine box or finer machine grid"
        );

        let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
        let owners = decomp.assign_atoms(&positions);
        let n_nodes = dims.node_count() as usize;
        let mut local_atoms = vec![Vec::new(); n_nodes];
        for (atom, &o) in owners.iter().enumerate() {
            local_atoms[o.index()].push(atom as u32);
        }
        let mut slots = vec![0u32; sys.atoms.len()];
        for list in &local_atoms {
            for (slot, &atom) in list.iter().enumerate() {
                slots[atom as usize] = slot as u32;
            }
        }
        let bond_program = BondProgram::generate(&sys, &decomp, &positions);
        let patterns = MdPatterns::allocate(&decomp, &grid_map);
        let n_atoms = sys.atoms.len();
        let mut st = MachineState {
            sys,
            config,
            decomp,
            grid_map,
            patterns,
            owners,
            local_atoms,
            slots,
            forces_prev: vec![Vec3::ZERO; n_atoms],
            lr_forces: vec![Vec3::ZERO; n_atoms],
            bond_program,
            bond_program_age: 0,
            plan: EpochPlan {
                capacity: 0,
                htis_pos_target: Vec::new(),
                bond_pos_target: Vec::new(),
                force_target_rl: Vec::new(),
                force_target_lr_extra: Vec::new(),
                bond_sends: Vec::new(),
                bond_sends_by_node: Vec::new(),
                bond_returns: Vec::new(),
            },
            step_count: 0,
            compute_time: vec![SimDuration::ZERO; n_nodes],
            e_bonded: 0.0,
            e_lj: 0.0,
            e_coulomb_real: 0.0,
            e_long_range: 0.0,
            spread_reach_points: reach_pts,
            last_migrated: 0,
            last_lr_energy: 0.0,
            scratch: StepScratch::default(),
        };
        st.scratch.reset(n_nodes, st.sys.atoms.len());
        st.rebuild_plan();
        st
    }

    /// Number of force packets one HTIS returns per source box.
    pub fn force_packets_per_source(&self) -> u64 {
        (self.plan.capacity as usize).div_ceil(self.config.force_pack) as u64
    }

    /// Recompute the epoch plan (after migration or regeneration).
    pub fn rebuild_plan(&mut self) {
        let dims = self.decomp.dims;
        let n_nodes = dims.node_count() as usize;
        let max_atoms = self
            .local_atoms
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(1);
        let capacity = ((max_atoms as f64) * self.config.capacity_slack).ceil() as u32;

        // HTIS position targets: capacity packets from each source box.
        let mut htis_pos_target = vec![0u64; n_nodes];
        for c in dims.iter_coords() {
            let id = c.node_id(dims);
            htis_pos_target[id.index()] =
                self.decomp.source_boxes(c).len() as u64 * capacity as u64;
        }

        // Bonded sends and targets. Every member-atom position is sent to
        // (term node, slice-of-term) — including node-local atoms, over
        // the on-chip ring, so receiver counts stay fixed (§IV.A).
        let mut bond_pos_target = vec![[0u64; 4]; n_nodes];
        let mut bond_sends = Vec::new();
        let mut bond_returns: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); 4]; n_nodes];
        {
            // (dest node, slice, atom) triples, deduplicated.
            let mut triples: std::collections::BTreeSet<(u32, u8, u32)> =
                std::collections::BTreeSet::new();
            let bp = &self.bond_program;
            let mut visit = |node: Coord, term_index: usize, atoms: &[usize]| {
                let slice = (term_index % 4) as u8;
                let id = node.node_id(dims);
                for &a in atoms {
                    triples.insert((id.0, slice, a as u32));
                }
            };
            for (t, b) in self.sys.bonds.iter().enumerate() {
                visit(bp.bond_nodes[t], t, &[b.i, b.j]);
            }
            for (t, a) in self.sys.angles.iter().enumerate() {
                visit(
                    bp.angle_nodes[t],
                    self.sys.bonds.len() + t,
                    &[a.i, a.j, a.k_atom],
                );
            }
            for (t, d) in self.sys.dihedrals.iter().enumerate() {
                visit(
                    bp.dihedral_nodes[t],
                    self.sys.bonds.len() + self.sys.angles.len() + t,
                    &[d.i, d.j, d.k_atom, d.l],
                );
            }
            for &(node, slice, atom) in &triples {
                let dest = NodeId(node).coord(dims);
                bond_pos_target[node as usize][slice as usize] += 1;
                bond_sends.push((self.owners[atom as usize], atom, dest, slice));
                bond_returns[node as usize][slice as usize].push(atom);
            }
        }

        // Force-accumulation targets (range-limited steps): HTIS returns
        // + bonded returns.
        let fpps = (capacity as usize).div_ceil(self.config.force_pack) as u64;
        let mut force_target_rl = vec![0u64; n_nodes];
        for c in dims.iter_coords() {
            let id = c.node_id(dims);
            // Every node my box's positions were imported to returns
            // packed force packets for my atoms.
            force_target_rl[id.index()] += self.decomp.import_boxes(c).len() as u64 * fpps;
        }
        // Bonded returns land at each atom's *current owner*, one
        // accumulate packet per (term slice, atom it touches).
        for returns in bond_returns.iter() {
            for slice_atoms in returns {
                for &atom in slice_atoms {
                    let home = self.owners[atom as usize];
                    force_target_rl[home.index()] += 1;
                }
            }
        }

        // Long-range extras: every importer additionally returns erf-
        // correction packets, and the local HTIS returns interpolation
        // packets.
        let mut force_target_lr_extra = vec![0u64; n_nodes];
        for c in dims.iter_coords() {
            let id = c.node_id(dims);
            force_target_lr_extra[id.index()] =
                self.decomp.import_boxes(c).len() as u64 * fpps + fpps;
        }

        let mut bond_sends_by_node = vec![Vec::new(); n_nodes];
        for &(sender, atom, dest, slice) in &bond_sends {
            bond_sends_by_node[sender.index()].push((atom, dest, slice));
        }
        self.plan = EpochPlan {
            capacity,
            htis_pos_target,
            bond_pos_target,
            force_target_rl,
            force_target_lr_extra,
            bond_sends,
            bond_sends_by_node,
            bond_returns,
        };
    }

    /// Current positions of a node's atoms with their ids.
    pub fn node_atoms(&self, node: NodeId) -> &[u32] {
        &self.local_atoms[node.index()]
    }

    /// Migrate atoms that left their relaxed boxes; returns the number
    /// moved. Rebuilds slots and the epoch plan.
    pub fn apply_migration(&mut self) -> u64 {
        let dims = self.decomp.dims;
        let mut moved = 0u64;
        for atom in 0..self.sys.atoms.len() {
            let p = self.sys.atoms[atom].pos;
            let owner = self.owners[atom].coord(dims);
            if !self.decomp.within_relaxed(p, owner, self.config.margin) {
                let new_owner = self.decomp.strict_owner(p).node_id(dims);
                if new_owner != self.owners[atom] {
                    self.owners[atom] = new_owner;
                    moved += 1;
                }
            }
        }
        // Rebuild local lists and slots.
        let n_nodes = dims.node_count() as usize;
        let mut local_atoms = vec![Vec::new(); n_nodes];
        for (atom, &o) in self.owners.iter().enumerate() {
            local_atoms[o.index()].push(atom as u32);
        }
        for (node, list) in local_atoms.iter().enumerate() {
            for (slot, &atom) in list.iter().enumerate() {
                self.slots[atom as usize] = slot as u32;
                debug_assert_eq!(self.owners[atom as usize].index(), node);
            }
        }
        self.local_atoms = local_atoms;
        self.last_migrated = moved;
        self.rebuild_plan();
        moved
    }

    /// Regenerate the bond program from current positions.
    pub fn regenerate_bond_program(&mut self) {
        let positions: Vec<Vec3> = self.sys.atoms.iter().map(|a| a.pos).collect();
        self.bond_program = BondProgram::generate(&self.sys, &self.decomp, &positions);
        self.bond_program_age = self.step_count;
        self.rebuild_plan();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_md::SystemBuilder;
    use anton_topo::TorusDims;

    fn small_state() -> MachineState {
        let sys = SystemBuilder::tiny(240, 22.0, 61).build();
        let mut md = MdParams::new(5.0, [16; 3]);
        md.dt = 0.5;
        let config = AntonConfig::new(md);
        MachineState::new(sys, config, TorusDims::new(2, 2, 2))
    }

    #[test]
    fn atoms_partition_across_nodes() {
        let st = small_state();
        let total: usize = st.local_atoms.iter().map(Vec::len).sum();
        assert_eq!(total, 240);
        for (node, list) in st.local_atoms.iter().enumerate() {
            for (slot, &atom) in list.iter().enumerate() {
                assert_eq!(st.owners[atom as usize].index(), node);
                assert_eq!(st.slots[atom as usize] as usize, slot);
            }
        }
    }

    #[test]
    fn plan_counts_are_consistent() {
        let st = small_state();
        let plan = &st.plan;
        assert!(plan.capacity as usize >= st.local_atoms.iter().map(Vec::len).max().unwrap());
        // Bond position targets equal the number of sends per (node, slice).
        let mut counted = vec![[0u64; 4]; 8];
        for &(_, _, dest, slice) in &plan.bond_sends {
            counted[dest.node_id(st.decomp.dims).index()][slice as usize] += 1;
        }
        assert_eq!(counted, plan.bond_pos_target.as_slice());
        // Force targets are positive everywhere (every box imports).
        assert!(plan.force_target_rl.iter().all(|&t| t > 0));
    }

    #[test]
    fn migration_moves_strays_and_rebuilds() {
        let mut st = small_state();
        // Teleport one atom across the box.
        let atom = st.local_atoms[0][0] as usize;
        st.sys.atoms[atom].pos = Vec3::new(20.9, 20.9, 20.9);
        let moved = st.apply_migration();
        assert_eq!(moved, 1);
        assert_eq!(
            st.owners[atom],
            st.decomp
                .strict_owner(Vec3::new(20.9, 20.9, 20.9))
                .node_id(st.decomp.dims)
        );
        // Slots consistent after rebuild.
        for (node, list) in st.local_atoms.iter().enumerate() {
            for (slot, &a) in list.iter().enumerate() {
                assert_eq!(st.owners[a as usize].index(), node);
                assert_eq!(st.slots[a as usize] as usize, slot);
            }
        }
    }

    #[test]
    fn regeneration_resets_age() {
        let mut st = small_state();
        st.step_count = 5000;
        st.regenerate_bond_program();
        assert_eq!(st.bond_program_age, 5000);
    }
}
