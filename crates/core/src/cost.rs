//! Arithmetic cost model for Anton's computational units.
//!
//! The communication model (`anton-net`) is calibrated to published
//! numbers; compute durations also need a model. Rates below are chosen
//! so that the DHFR benchmark (23,558 atoms on 512 nodes) reproduces the
//! Table 3 per-phase times; the HTIS rate is consistent with the
//! high-throughput pipelines described in \[28\] (tens of billions of
//! pairwise interactions per second machine-wide), and the flexible
//! subsystem rates with the Tensilica/geometry-core arithmetic of \[27\].
//!
//! These are *per-unit* rates: four processing slices (each with two
//! geometry cores) and one HTIS per node work in parallel.

use anton_des::SimDuration;

/// Calibrated per-operation costs.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// HTIS pairwise-interaction throughput, pairs per ns per HTIS.
    pub htis_pairs_per_ns: f64,
    /// HTIS per-work-item fixed overhead (buffer-pair scheduling, ns).
    pub htis_buffer_overhead_ns: f64,
    /// Charge spreading, ns per (atom, grid-point) pair in the HTIS.
    pub spread_ns_per_point: f64,
    /// Force interpolation, ns per (atom, grid-point) pair in the HTIS.
    pub interp_ns_per_point: f64,
    /// Bonded-term evaluation on a geometry core, ns per term.
    pub bonded_ns_per_term: f64,
    /// Integration (Verlet update + bookkeeping), ns per atom per slice.
    pub integrate_ns_per_atom: f64,
    /// 1D FFT of length n on a geometry core: ns per (n·log₂n) butterfly
    /// unit.
    pub fft_ns_per_unit: f64,
    /// Reading + decoding one accumulation-memory force record (3 words)
    /// into a slice, ns.
    pub accum_read_ns_per_atom: f64,
    /// Kinetic-energy/virial arithmetic, ns per atom.
    pub ke_ns_per_atom: f64,
    /// Migration bookkeeping, ns per migrated atom (pack, unpack,
    /// reindex).
    pub migrate_ns_per_atom: f64,
    /// Fixed migration-phase software overhead per node, ns ("as well as
    /// the additional bookkeeping requirements, migrations are fairly
    /// expensive", §IV.B.5; calibrated to Figure 12's ~19% interval-1→8
    /// improvement).
    pub migrate_overhead_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            htis_pairs_per_ns: 32.0,
            htis_buffer_overhead_ns: 12.0,
            spread_ns_per_point: 0.06,
            interp_ns_per_point: 0.06,
            bonded_ns_per_term: 18.0,
            integrate_ns_per_atom: 9.0,
            fft_ns_per_unit: 0.9,
            accum_read_ns_per_atom: 4.0,
            ke_ns_per_atom: 3.0,
            migrate_ns_per_atom: 150.0,
            migrate_overhead_ns: 1500.0,
        }
    }
}

impl CostModel {
    /// HTIS time for `pairs` pairwise interactions over `buffers` source
    /// buffers.
    pub fn htis_pairs(&self, pairs: u64, buffers: u64) -> SimDuration {
        SimDuration::from_ns_f64(
            pairs as f64 / self.htis_pairs_per_ns + buffers as f64 * self.htis_buffer_overhead_ns,
        )
    }

    /// HTIS time to spread `atoms` charges over `points_per_atom` grid
    /// points each.
    pub fn spread(&self, atoms: u64, points_per_atom: u64) -> SimDuration {
        SimDuration::from_ns_f64(self.spread_ns_per_point * (atoms * points_per_atom) as f64)
    }

    /// HTIS time to interpolate forces for `atoms` from
    /// `points_per_atom` grid points each.
    pub fn interpolate(&self, atoms: u64, points_per_atom: u64) -> SimDuration {
        SimDuration::from_ns_f64(self.interp_ns_per_point * (atoms * points_per_atom) as f64)
    }

    /// Geometry-core time for `terms` bonded terms (2 cores per slice
    /// work in parallel; `terms` is the per-slice share).
    pub fn bonded(&self, terms: u64) -> SimDuration {
        SimDuration::from_ns_f64(self.bonded_ns_per_term * terms as f64 / 2.0)
    }

    /// Slice time to integrate `atoms`.
    pub fn integrate(&self, atoms: u64) -> SimDuration {
        SimDuration::from_ns_f64(self.integrate_ns_per_atom * atoms as f64)
    }

    /// Time for `lines` 1D FFTs of length `n` on a slice's two geometry
    /// cores.
    pub fn fft_lines(&self, lines: u64, n: u64) -> SimDuration {
        let units = lines as f64 * n as f64 * (n as f64).log2().max(1.0);
        SimDuration::from_ns_f64(self.fft_ns_per_unit * units / 2.0)
    }

    /// Slice time to read and decode `atoms` force records from an
    /// accumulation memory.
    pub fn accum_read(&self, atoms: u64) -> SimDuration {
        SimDuration::from_ns_f64(self.accum_read_ns_per_atom * atoms as f64)
    }

    /// Kinetic-energy computation for `atoms`.
    pub fn kinetic(&self, atoms: u64) -> SimDuration {
        SimDuration::from_ns_f64(self.ke_ns_per_atom * atoms as f64)
    }

    /// Migration bookkeeping for `atoms` moved through this node.
    pub fn migrate(&self, atoms: u64) -> SimDuration {
        SimDuration::from_ns_f64(self.migrate_overhead_ns + self.migrate_ns_per_atom * atoms as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dhfr_scale_htis_time_is_microseconds() {
        // ~100k examined pairs per node per step over ~17 buffers ≈ 4 µs
        // — the scale of Table 3's range-limited compute time. The rate
        // matches the 32 pairwise pipelines of [28].
        let c = CostModel::default();
        let d = c.htis_pairs(100_000, 17);
        let us = d.as_us_f64();
        assert!((3.0..6.0).contains(&us), "{us} µs");
    }

    #[test]
    fn integration_is_fast() {
        let c = CostModel::default();
        // 46 atoms split over 4 slices ≈ 12 each → ~0.1 µs.
        let d = c.integrate(12);
        assert!(d.as_ns_f64() < 200.0);
    }

    #[test]
    fn fft_pass_cost_scale() {
        // 2 lines of a 32-point FFT per node per pass: sub-microsecond.
        let c = CostModel::default();
        let d = c.fft_lines(2, 32);
        let ns = d.as_ns_f64();
        assert!((50.0..500.0).contains(&ns), "{ns} ns");
    }

    #[test]
    fn costs_scale_linearly() {
        let c = CostModel::default();
        assert_eq!(c.integrate(20).as_ps(), c.integrate(10).as_ps() * 2);
        assert_eq!(c.kinetic(8).as_ps(), c.kinetic(4).as_ps() * 2);
    }
}
