//! Spatial decomposition: home boxes, relaxed ownership, and the
//! NT-method import regions for range-limited interactions.
//!
//! "The chemical system … is divided into a regular grid of boxes, with
//! each box assigned to one ASIC" (§II). Positions are "broadcast to as
//! many as 17 different HTIS units" (§IV.B.1) — Anton parallelizes the
//! range-limited computation with a neutral-territory (NT) method: each
//! atom's position is multicast to a *tower* (its column of boxes within
//! vertical reach) and a *half-plate* (half the in-plane boxes within
//! reach), and the pair (i, j) is computed on the node where i's tower
//! meets j's plate. This fixes the communication pattern — the property
//! counted remote writes need.

use anton_md::{PeriodicBox, Vec3};
use anton_topo::{Coord, NodeId, TorusDims};

/// The spatial decomposition of a periodic box onto the machine.
///
/// ```
/// use anton_core::Decomposition;
/// use anton_md::PeriodicBox;
/// use anton_topo::TorusDims;
/// // The paper's DHFR case: 62.23 Å box, 8×8×8 machine, ~11 Å import
/// // radius ⇒ positions multicast to ~15–17 HTIS units (§IV.B.1).
/// let d = Decomposition::new(TorusDims::anton_512(),
///                            PeriodicBox::cubic(62.23), 11.0);
/// let n = d.import_offsets().len();
/// assert!((13..=19).contains(&n));
/// ```
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The machine.
    pub dims: TorusDims,
    /// The periodic simulation box.
    pub pbox: PeriodicBox,
    /// Range-limited interaction cutoff, Å.
    pub cutoff: f64,
    /// Tower reach in boxes (z).
    zr: i64,
    /// In-plane reach in boxes (x, y).
    rxy: i64,
}

/// Signed minimal wrap displacement from `a` to `b` on an axis of length
/// `n`, in (−n/2, n/2] (ties resolve positive).
pub fn wrap_signed(a: u32, b: u32, n: u32) -> i64 {
    let n = n as i64;
    let mut d = (b as i64 - a as i64).rem_euclid(n);
    if d > n / 2 {
        d -= n;
    }
    d
}

impl Decomposition {
    /// Build for a machine and box. Panics if a home box is smaller than
    /// needed for the reach arithmetic (cutoff may span several boxes).
    pub fn new(dims: TorusDims, pbox: PeriodicBox, cutoff: f64) -> Decomposition {
        assert!(cutoff > 0.0);
        let h = Decomposition::box_lengths_of(dims, pbox);
        // Reach: smallest r such that boxes r apart have min distance ≥
        // cutoff, i.e. (r−1)·h ≥ cutoff.
        let reach = |edge: f64| -> i64 { (cutoff / edge).floor() as i64 + 1 };
        let zr = reach(h.z);
        let rxy = reach(h.x.min(h.y));
        Decomposition {
            dims,
            pbox,
            cutoff,
            zr,
            rxy,
        }
    }

    fn box_lengths_of(dims: TorusDims, pbox: PeriodicBox) -> Vec3 {
        Vec3::new(
            pbox.lengths.x / dims.nx as f64,
            pbox.lengths.y / dims.ny as f64,
            pbox.lengths.z / dims.nz as f64,
        )
    }

    /// Home-box edge lengths, Å.
    pub fn box_lengths(&self) -> Vec3 {
        Decomposition::box_lengths_of(self.dims, self.pbox)
    }

    /// Tower reach (boxes).
    pub fn tower_reach(&self) -> i64 {
        self.zr
    }

    /// In-plane reach (boxes).
    pub fn plate_reach(&self) -> i64 {
        self.rxy
    }

    /// The box strictly containing `p`.
    pub fn strict_owner(&self, p: Vec3) -> Coord {
        let w = self.pbox.wrap(p);
        let h = self.box_lengths();
        let clamp = |v: f64, n: u32| -> u32 { ((v as i64).max(0) as u32).min(n - 1) };
        Coord::new(
            clamp((w.x / h.x).floor(), self.dims.nx),
            clamp((w.y / h.y).floor(), self.dims.ny),
            clamp((w.z / h.z).floor(), self.dims.nz),
        )
    }

    /// Whether `p` lies within `owner`'s box **relaxed by `margin` Å** on
    /// every face — the paper's overlapping home boxes that let migration
    /// run every N steps instead of every step (§IV.B.5, \[40\]).
    pub fn within_relaxed(&self, p: Vec3, owner: Coord, margin: f64) -> bool {
        let h = self.box_lengths();
        let w = self.pbox.wrap(p);
        let lo = Vec3::new(
            owner.x as f64 * h.x,
            owner.y as f64 * h.y,
            owner.z as f64 * h.z,
        );
        for axis in 0..3 {
            let c = w.get(axis);
            let l = lo.get(axis) - margin;
            let u = lo.get(axis) + h.get(axis) + margin;
            let full = self.pbox.lengths.get(axis);
            // Compare in wrapped coordinates: distance from the interval.
            let inside = if l < 0.0 || u > full {
                // Interval wraps; membership via modular containment.
                let cm = c.rem_euclid(full);
                let lm = l.rem_euclid(full);
                let um = u.rem_euclid(full);
                if lm <= um {
                    cm >= lm && cm <= um
                } else {
                    cm >= lm || cm <= um
                }
            } else {
                c >= l && c <= u
            };
            if !inside {
                return false;
            }
        }
        true
    }

    /// Whether the in-plane offset is in the canonical positive half
    /// (dy > 0, or dy == 0 and dx > 0).
    fn positive_half(dx: i64, dy: i64) -> bool {
        dy > 0 || (dy == 0 && dx > 0)
    }

    /// In-plane disc membership: boxes whose minimum xy distance is
    /// within the cutoff.
    fn in_disc(&self, dx: i64, dy: i64) -> bool {
        let h = self.box_lengths();
        let gap = |d: i64, e: f64| ((d.abs() - 1).max(0) as f64) * e;
        let gx = gap(dx, h.x);
        let gy = gap(dy, h.y);
        gx * gx + gy * gy < self.cutoff * self.cutoff
    }

    /// Offsets (in boxes) to which a home box's atom positions are
    /// multicast: home + full tower (±zr) + positive half-plate.
    /// Deduplicated against torus aliasing on small machines.
    pub fn import_offsets(&self) -> Vec<[i64; 3]> {
        let mut out: Vec<[i64; 3]> = vec![[0, 0, 0]];
        for dz in 1..=self.zr {
            out.push([0, 0, dz]);
            out.push([0, 0, -dz]);
        }
        for dy in -self.rxy..=self.rxy {
            for dx in -self.rxy..=self.rxy {
                if (dx, dy) == (0, 0) || !Self::positive_half(dx, dy) {
                    continue;
                }
                if self.in_disc(dx, dy) {
                    out.push([dx, dy, 0]);
                }
            }
        }
        out
    }

    /// The concrete destination boxes of `b`'s position multicast
    /// (offsets applied with wraparound, deduplicated).
    pub fn import_boxes(&self, b: Coord) -> Vec<Coord> {
        let mut out = Vec::new();
        for o in self.import_offsets() {
            let c = anton_topo::offset(b, o, self.dims);
            if !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }

    /// Source boxes whose atoms arrive at node `c` (inverse of
    /// [`Decomposition::import_boxes`]).
    pub fn source_boxes(&self, c: Coord) -> Vec<Coord> {
        let mut out = Vec::new();
        for o in self.import_offsets() {
            let s = anton_topo::offset(c, [-o[0], -o[1], -o[2]], self.dims);
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    /// The node assigned to compute interactions between (atoms of)
    /// boxes `a` and `b`. Both boxes' positions provably arrive there
    /// (tested). Symmetric: `pair_node(a, b) == pair_node(b, a)`.
    pub fn pair_node(&self, a: Coord, b: Coord) -> Coord {
        if a == b {
            return a;
        }
        // Canonical order so the choice is symmetric.
        let (a, b) = if a.node_id(self.dims) <= b.node_id(self.dims) {
            (a, b)
        } else {
            (b, a)
        };
        let dx = wrap_signed(a.x, b.x, self.dims.nx);
        let dy = wrap_signed(a.y, b.y, self.dims.ny);
        if dx == 0 && dy == 0 {
            // Same column: meet at b (a's tower reaches b; b plate-home).
            return b;
        }
        if Self::positive_half(dx, dy) {
            // a's plate reaches (b.xy, a.z); b's tower reaches it too.
            Coord::new(b.x, b.y, a.z)
        } else {
            // Mirror: b's plate offset (−dx, −dy) is positive.
            Coord::new(a.x, a.y, b.z)
        }
    }

    /// All (unordered) box pairs whose interactions node `c` computes,
    /// including the self pair (c, c).
    pub fn task_pairs(&self, c: Coord) -> Vec<(Coord, Coord)> {
        let sources = self.source_boxes(c);
        let mut out = Vec::new();
        for (i, &a) in sources.iter().enumerate() {
            for &b in &sources[i..] {
                if self.boxes_within_cutoff(a, b) && self.pair_node(a, b) == c {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Whether two boxes are close enough that some atom pair between
    /// them could be within the cutoff.
    pub fn boxes_within_cutoff(&self, a: Coord, b: Coord) -> bool {
        let h = self.box_lengths();
        let gap = |d: i64, e: f64| ((d.abs() - 1).max(0) as f64) * e;
        let dx = gap(wrap_signed(a.x, b.x, self.dims.nx), h.x);
        let dy = gap(wrap_signed(a.y, b.y, self.dims.ny), h.y);
        let dz = gap(wrap_signed(a.z, b.z, self.dims.nz), h.z);
        dx * dx + dy * dy + dz * dz < self.cutoff * self.cutoff
    }

    /// Partition atom ids of one node round-robin over its 4 slices.
    pub fn slice_of_local_index(local_index: usize) -> u8 {
        (local_index % 4) as u8
    }

    /// Assign atoms to owner nodes by strict containment.
    pub fn assign_atoms(&self, positions: &[Vec3]) -> Vec<NodeId> {
        positions
            .iter()
            .map(|&p| self.strict_owner(p).node_id(self.dims))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_des::Rng;

    fn dhfr_decomp() -> Decomposition {
        Decomposition::new(TorusDims::anton_512(), PeriodicBox::cubic(62.23), 9.5)
    }

    #[test]
    fn import_count_matches_the_papers_17() {
        // 62.23 Å box on 8×8×8 → 7.78 Å boxes; 9.5 Å cutoff →
        // reach 2 in every dimension. Tower 4 + home 1 + half-plate.
        let d = dhfr_decomp();
        assert_eq!(d.tower_reach(), 2);
        assert_eq!(d.plate_reach(), 2);
        let n = d.import_offsets().len();
        assert!(
            (13..=19).contains(&n),
            "import set should be ~17 boxes (paper §IV.B.1), got {n}"
        );
    }

    #[test]
    fn strict_owner_maps_boxes() {
        let d = dhfr_decomp();
        assert_eq!(
            d.strict_owner(Vec3::new(0.1, 0.1, 0.1)),
            Coord::new(0, 0, 0)
        );
        assert_eq!(
            d.strict_owner(Vec3::new(62.0, 62.0, 62.0)),
            Coord::new(7, 7, 7)
        );
        // Wraps.
        assert_eq!(d.strict_owner(Vec3::new(-0.1, 0.1, 0.1)).x, 7);
    }

    #[test]
    fn pair_node_is_symmetric() {
        let d = dhfr_decomp();
        let mut rng = Rng::seed_from(5);
        for _ in 0..500 {
            let a = Coord::new(
                rng.next_below(8) as u32,
                rng.next_below(8) as u32,
                rng.next_below(8) as u32,
            );
            let b = Coord::new(
                rng.next_below(8) as u32,
                rng.next_below(8) as u32,
                rng.next_below(8) as u32,
            );
            assert_eq!(d.pair_node(a, b), d.pair_node(b, a));
        }
    }

    /// The central NT correctness property: every box pair within cutoff
    /// range is computed on exactly one node, and both boxes' atoms are
    /// imported there.
    #[test]
    fn every_cutoff_pair_is_covered_exactly_once() {
        let d = dhfr_decomp();
        let dims = d.dims;
        // Count how many nodes claim each in-range pair.
        let mut claims: std::collections::HashMap<(NodeId, NodeId), u32> =
            std::collections::HashMap::new();
        for c in dims.iter_coords() {
            for (a, b) in d.task_pairs(c) {
                // Both sources' imports must include c.
                assert!(d.import_boxes(a).contains(&c), "a={a} c={c}");
                assert!(d.import_boxes(b).contains(&c), "b={b} c={c}");
                let key = (
                    a.node_id(dims).min(b.node_id(dims)),
                    a.node_id(dims).max(b.node_id(dims)),
                );
                *claims.entry(key).or_insert(0) += 1;
            }
        }
        // Every within-cutoff pair claimed exactly once.
        for a in dims.iter_coords() {
            for b in dims.iter_coords() {
                if a.node_id(dims) > b.node_id(dims) {
                    continue;
                }
                let key = (a.node_id(dims), b.node_id(dims));
                let want = u32::from(d.boxes_within_cutoff(a, b));
                let got = claims.get(&key).copied().unwrap_or(0);
                assert_eq!(got, want, "pair {a}–{b}");
            }
        }
    }

    #[test]
    fn coverage_holds_on_tiny_machines_too() {
        // 2×2×2 with aliasing offsets — the configuration used by the
        // physics-equivalence integration tests.
        let d = Decomposition::new(TorusDims::new(2, 2, 2), PeriodicBox::cubic(18.0), 4.0);
        let dims = d.dims;
        let mut claims: std::collections::HashMap<(NodeId, NodeId), u32> =
            std::collections::HashMap::new();
        for c in dims.iter_coords() {
            for (a, b) in d.task_pairs(c) {
                let key = (
                    a.node_id(dims).min(b.node_id(dims)),
                    a.node_id(dims).max(b.node_id(dims)),
                );
                *claims.entry(key).or_insert(0) += 1;
            }
        }
        for a in dims.iter_coords() {
            for b in dims.iter_coords() {
                if a.node_id(dims) > b.node_id(dims) {
                    continue;
                }
                let want = u32::from(d.boxes_within_cutoff(a, b));
                let got = claims
                    .get(&(a.node_id(dims), b.node_id(dims)))
                    .copied()
                    .unwrap_or(0);
                assert_eq!(got, want, "pair {a}–{b}");
            }
        }
    }

    #[test]
    fn relaxed_boxes_accept_nearby_strays() {
        let d = dhfr_decomp();
        let owner = Coord::new(3, 3, 3);
        // Box 3 spans [23.34, 31.11). A point 1 Å outside stays with a
        // 1.5 Å margin but not with a 0.5 Å margin.
        let p = Vec3::new(32.0, 25.0, 25.0);
        assert!(d.within_relaxed(p, owner, 1.5));
        assert!(!d.within_relaxed(p, owner, 0.5));
        // Wrapping case: box 7 spans [54.45, 62.23); a point just past
        // the boundary wraps to x≈0.
        let owner7 = Coord::new(7, 3, 3);
        let q = Vec3::new(0.4, 25.0, 25.0);
        assert!(d.within_relaxed(q, owner7, 1.0));
    }

    #[test]
    fn assign_atoms_is_consistent_with_strict_owner() {
        let d = dhfr_decomp();
        let mut rng = Rng::seed_from(8);
        let positions: Vec<Vec3> = (0..200)
            .map(|_| {
                Vec3::new(
                    rng.uniform(0.0, 62.23),
                    rng.uniform(0.0, 62.23),
                    rng.uniform(0.0, 62.23),
                )
            })
            .collect();
        let owners = d.assign_atoms(&positions);
        for (p, o) in positions.iter().zip(&owners) {
            assert_eq!(d.strict_owner(*p).node_id(d.dims), *o);
        }
    }

    #[test]
    fn slice_partition_is_balanced() {
        let counts =
            (0..46)
                .map(Decomposition::slice_of_local_index)
                .fold([0u32; 4], |mut acc, s| {
                    acc[s as usize] += 1;
                    acc
                });
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "{counts:?}");
    }
}
