//! Multicast pattern-id allocation.
//!
//! The hardware constraint (§III.A) is **per node**: up to 256
//! precomputed patterns can be programmed into each node's lookup
//! tables, and a packet's pattern id must resolve unambiguously at every
//! node its tree touches. Ids are therefore assigned by greedy graph
//! coloring over *all* tree families jointly: two trees that touch a
//! common node get different ids; disjoint trees may share one. This is
//! the table-packing problem Anton's software had to solve when
//! programming the tables, and the allocation asserts the 256 budget.

use crate::decomp::Decomposition;
use anton_fft::GridMap;
use anton_net::{Fabric, PatternId};
use anton_topo::{Coord, Dim, MulticastPattern, TorusDims};

/// Joint colorer: per-machine-node occupied color sets.
struct Colorer {
    used: Vec<Vec<u16>>,
    max_color: u16,
}

impl Colorer {
    fn new(n_nodes: usize) -> Colorer {
        Colorer {
            used: vec![Vec::new(); n_nodes],
            max_color: 0,
        }
    }

    fn assign(&mut self, tree: &MulticastPattern) -> PatternId {
        let members: Vec<usize> = tree.entries().map(|(node, _)| node.index()).collect();
        let mut color = 0u16;
        'search: loop {
            for &m in &members {
                if self.used[m].contains(&color) {
                    color += 1;
                    continue 'search;
                }
            }
            break;
        }
        assert!(
            (color as usize) < anton_topo::MAX_PATTERNS_PER_NODE,
            "multicast table budget exceeded at color {color}"
        );
        for &m in &members {
            self.used[m].push(color);
        }
        self.max_color = self.max_color.max(color);
        PatternId(color)
    }
}

/// One family of per-source multicast trees.
#[derive(Debug, Clone)]
pub struct PatternFamily {
    /// Pattern id per source node (indexed by node id).
    pub ids: Vec<PatternId>,
    trees: Vec<MulticastPattern>,
}

impl PatternFamily {
    fn build(
        dims: TorusDims,
        colorer: &mut Colorer,
        mut dests: impl FnMut(Coord) -> Vec<Coord>,
    ) -> PatternFamily {
        let mut trees = Vec::new();
        let mut ids = Vec::new();
        for src in dims.iter_coords() {
            let tree = MulticastPattern::build(src, &dests(src), dims);
            ids.push(colorer.assign(&tree));
            trees.push(tree);
        }
        PatternFamily { ids, trees }
    }

    fn register(&self, fabric: &mut Fabric) {
        for (tree, &id) in self.trees.iter().zip(&self.ids) {
            fabric.register_pattern(id, tree);
        }
    }

    /// The pattern id for `src`.
    pub fn id_of(&self, src: Coord, dims: TorusDims) -> PatternId {
        self.ids[src.node_id(dims).index()]
    }
}

/// The full set of MD pattern families, allocated once (they depend only
/// on machine dims and reach geometry).
#[derive(Debug, Clone)]
pub struct MdPatterns {
    /// NT position-import trees.
    pub pos: PatternFamily,
    /// Potential-halo trees.
    pub pot: PatternFamily,
    /// Migration-sync trees.
    pub mig: PatternFamily,
    /// All-reduce line broadcasts, one family per dimension.
    pub ar: [PatternFamily; 3],
    /// Highest color used (diagnostic; < 256 by construction).
    pub colors_used: u16,
    dims: TorusDims,
}

impl MdPatterns {
    /// Allocate all families; panics if any node's table would exceed
    /// 256 entries.
    pub fn allocate(decomp: &Decomposition, grid_map: &GridMap) -> MdPatterns {
        let dims = decomp.dims;
        let mut colorer = Colorer::new(dims.node_count() as usize);
        let pos = PatternFamily::build(dims, &mut colorer, |src| decomp.import_boxes(src));
        let pot = PatternFamily::build(dims, &mut colorer, |src| {
            crate::fftplan::halo_sources(grid_map, src)
        });
        let mig = PatternFamily::build(dims, &mut colorer, |src| {
            anton_topo::moore_neighbors(src, dims)
        });
        let ar = Dim::ALL.map(|dim| {
            PatternFamily::build(dims, &mut colorer, |src| {
                if dims.len(dim) <= 1 {
                    Vec::new()
                } else {
                    (0..dims.len(dim)).map(|v| src.with(dim, v)).collect()
                }
            })
        });
        MdPatterns {
            pos,
            pot,
            mig,
            ar,
            colors_used: colorer.max_color + 1,
            dims,
        }
    }

    /// Position-multicast id for `src`.
    pub fn pos_id(&self, src: Coord) -> PatternId {
        self.pos.id_of(src, self.dims)
    }

    /// Potential-halo id for `src`.
    pub fn pot_id(&self, src: Coord) -> PatternId {
        self.pot.id_of(src, self.dims)
    }

    /// Migration-sync id for `src`.
    pub fn mig_id(&self, src: Coord) -> PatternId {
        self.mig.id_of(src, self.dims)
    }

    /// All-reduce line-broadcast id for `src` along `dim`.
    pub fn ar_id(&self, dim: Dim, src: Coord) -> PatternId {
        self.ar[dim.index()].id_of(src, self.dims)
    }

    /// Register families on a fresh fabric (`thermostat`/`migration`
    /// gate the optional ones).
    pub fn register(&self, fabric: &mut Fabric, thermostat: bool, migration: bool) {
        self.pos.register(fabric);
        self.pot.register(fabric);
        if migration {
            self.mig.register(fabric);
        }
        if thermostat {
            for fam in &self.ar {
                fam.register(fabric);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_md::PeriodicBox;

    fn paper_setup() -> (Decomposition, GridMap) {
        let dims = TorusDims::anton_512();
        (
            Decomposition::new(dims, PeriodicBox::cubic(62.23), 11.0),
            GridMap::new([32; 3], dims),
        )
    }

    #[test]
    fn allocation_fits_hardware_limits_on_the_512_node_machine() {
        let (decomp, grid_map) = paper_setup();
        let pats = MdPatterns::allocate(&decomp, &grid_map);
        let mut fabric = Fabric::new(decomp.dims);
        // Must not panic: unique ids per node, ≤ 256 entries per node.
        pats.register(&mut fabric, true, true);
        assert!(
            pats.colors_used as usize <= anton_topo::MAX_PATTERNS_PER_NODE,
            "colors used: {}",
            pats.colors_used
        );
    }

    #[test]
    fn allocation_works_on_tiny_machines() {
        let dims = TorusDims::new(2, 2, 2);
        let decomp = Decomposition::new(dims, PeriodicBox::cubic(18.0), 4.5);
        let grid_map = GridMap::new([8; 3], dims);
        let pats = MdPatterns::allocate(&decomp, &grid_map);
        let mut fabric = Fabric::new(dims);
        pats.register(&mut fabric, true, true);
    }

    #[test]
    fn conflicting_trees_get_distinct_ids() {
        let (decomp, grid_map) = paper_setup();
        let pats = MdPatterns::allocate(&decomp, &grid_map);
        // Adjacent sources' position trees share nodes → distinct ids.
        let a = pats.pos_id(Coord::new(0, 0, 0));
        let b = pats.pos_id(Coord::new(1, 0, 0));
        assert_ne!(a, b);
        // Position vs. potential trees from the same source share the
        // source node → distinct ids.
        assert_ne!(
            pats.pos_id(Coord::new(0, 0, 0)),
            pats.pot_id(Coord::new(0, 0, 0))
        );
        let _ = grid_map;
    }

    #[test]
    fn ar_lines_cover_the_axis() {
        let (decomp, grid_map) = paper_setup();
        let pats = MdPatterns::allocate(&decomp, &grid_map);
        // Two sources on the same X line must have distinct ids (their
        // trees are the same node set).
        let a = pats.ar_id(Dim::X, Coord::new(0, 3, 3));
        let b = pats.ar_id(Dim::X, Coord::new(5, 3, 3));
        assert_ne!(a, b);
    }
}
