//! Fixed communication bookkeeping for the distributed FFT and the grid
//! halo exchanges (charge spreading in, potentials out).
//!
//! "The FFT communication patterns are inherently fixed, so they can
//! also be implemented using fine-grained (one grid point per packet)
//! counted remote writes. … Communication occurs between computation for
//! different dimensions, with per-dimension synchronization counters
//! used to track incoming remote writes" (§IV.B.3).

use anton_fft::{transverse, GridMap};
use anton_topo::{Coord, Dim, NodeId};

/// Which slice of the owning node handles a given 1D line: lines are
/// dealt round-robin in (u, v) order — fixed, known to every sender.
pub fn line_slice(map: &GridMap, dim: Dim, u: usize, v: usize) -> u8 {
    // Round-robin over the node's owned-line list; equivalently, hash the
    // transverse coordinates. Both ends must agree, so use the in-brick
    // line index (the same quantity `line_owner` round-robins on).
    let (du, dv) = transverse(dim);
    let b = map.brick();
    let lu = u % b[du.index()];
    let lv = v % b[dv.index()];
    (((lu + b[du.index()] * lv) / map_machine_len(map, dim)) % 4) as u8
}

fn map_machine_len(map: &GridMap, dim: Dim) -> usize {
    map.dims.len(dim) as usize
}

/// Which slice of a brick owner handles a given brick grid point
/// (round-robin by in-brick linear index).
pub fn brick_point_slice(map: &GridMap, g: [usize; 3]) -> u8 {
    let b = map.brick();
    let l = [g[0] % b[0], g[1] % b[1], g[2] % b[2]];
    ((l[0] + b[0] * (l[1] + b[1] * l[2])) % 4) as u8
}

/// Expected packet count per (node, slice) for one FFT gather stage:
/// how many grid points arrive at each slice when repartitioning into
/// `dim` pencils (every point of every owned line arrives, including
/// point transfers that are node-local — senders deliver those over the
/// on-chip ring so the counter targets stay fixed).
pub fn pencil_targets(map: &GridMap, dim: Dim) -> Vec<[u64; 4]> {
    let n_nodes = map.dims.node_count() as usize;
    let mut out = vec![[0u64; 4]; n_nodes];
    let (du, dv) = transverse(dim);
    let line_len = map.grid[dim.index()] as u64;
    for v in 0..map.grid[dv.index()] {
        for u in 0..map.grid[du.index()] {
            let owner = map.line_owner(dim, u, v);
            let slice = line_slice(map, dim, u, v);
            out[owner.index()][slice as usize] += line_len;
        }
    }
    out
}

/// Expected packet count per (node, slice) for the final scatter back to
/// brick layout (one packet per brick point).
pub fn brick_targets(map: &GridMap) -> Vec<[u64; 4]> {
    let n_nodes = map.dims.node_count() as usize;
    let b = map.brick();
    let per_brick = b[0] * b[1] * b[2];
    let mut out = vec![[0u64; 4]; n_nodes];
    for node in out.iter_mut() {
        for p in 0..per_brick {
            node[p % 4] += 1;
        }
    }
    out
}

/// The grid-halo neighborhood of a node: the Moore neighborhood plus
/// itself — the bricks whose points a node's spreading can touch and
/// whose potentials its interpolation needs (spread support plus
/// migration margin must fit within one brick; asserted by the engine).
pub fn halo_sources(map: &GridMap, c: Coord) -> Vec<Coord> {
    let mut out = vec![c];
    out.extend(anton_topo::moore_neighbors(c, map.dims));
    out
}

/// Charge/potential rows exchanged between a source node and one halo
/// target brick: the set of (z, y, x-run) row segments of the target
/// brick that the source's atoms (anywhere in its padded box) can touch.
/// `reach_points` is the spread support radius in grid points.
///
/// Returned as (target-brick-local z, y, x0, len) tuples — fixed
/// geometry, so the packet counts are fixed.
pub fn halo_rows(
    map: &GridMap,
    src: Coord,
    dst: Coord,
    reach_points: usize,
) -> Vec<(usize, usize, usize, usize)> {
    let b = map.brick();
    let machine = [map.dims.nx, map.dims.ny, map.dims.nz];
    let src_c = [src.x, src.y, src.z];
    let dst_c = [dst.x, dst.y, dst.z];
    // Per axis, a mask of reachable target-brick-local indices, unioned
    // over every offset alias (on short axes the +1 and −1 neighbor can
    // be the same node, reachable through both faces).
    let mut masks: [Vec<bool>; 3] = [vec![false; b[0]], vec![false; b[1]], vec![false; b[2]]];
    let mut any = true;
    for axis in 0..3 {
        let n = machine[axis] as i64;
        let r = reach_points.min(b[axis]);
        let mut reachable = false;
        for d in [-1i64, 0, 1] {
            if (src_c[axis] as i64 + d).rem_euclid(n) as u32 != dst_c[axis] {
                continue;
            }
            reachable = true;
            match d {
                0 => masks[axis].iter_mut().for_each(|m| *m = true),
                1 => masks[axis][..r].iter_mut().for_each(|m| *m = true),
                -1 => {
                    let len = b[axis];
                    masks[axis][len - r..].iter_mut().for_each(|m| *m = true);
                }
                _ => unreachable!(),
            }
        }
        any &= reachable;
    }
    if !any {
        return Vec::new();
    }
    // Rows: for each reachable (z, y), the contiguous x-runs of the mask.
    let mut rows = Vec::new();
    for (z, &mz) in masks[2].iter().enumerate() {
        if !mz {
            continue;
        }
        for (y, &my) in masks[1].iter().enumerate() {
            if !my {
                continue;
            }
            let mut x = 0;
            while x < b[0] {
                if masks[0][x] {
                    let x0 = x;
                    while x < b[0] && masks[0][x] {
                        x += 1;
                    }
                    rows.push((z, y, x0, x - x0));
                } else {
                    x += 1;
                }
            }
        }
    }
    rows
}

/// Total expected charge-accumulation packets arriving at each node's
/// accumulation memory 1 during spreading (sum of halo rows from every
/// halo source, self included).
pub fn charge_targets(map: &GridMap, reach_points: usize) -> Vec<u64> {
    let n_nodes = map.dims.node_count() as usize;
    let mut out = vec![0u64; n_nodes];
    for c in map.dims.iter_coords() {
        let dst = c.node_id(map.dims);
        for src in halo_sources(map, c) {
            out[dst.index()] += halo_rows(map, src, c, reach_points).len() as u64;
        }
    }
    out
}

/// Expected potential-row packets arriving at each node's HTIS: each
/// halo source brick multicasts all of its rows (bz·by) to its
/// neighborhood.
pub fn potential_targets(map: &GridMap) -> Vec<u64> {
    let b = map.brick();
    let rows_per_brick = (b[1] * b[2]) as u64;
    let n_nodes = map.dims.node_count() as usize;
    let mut out = vec![0u64; n_nodes];
    for c in map.dims.iter_coords() {
        let dst = c.node_id(map.dims);
        out[dst.index()] += rows_per_brick * halo_sources(map, c).len() as u64;
    }
    out
}

/// A stable dense index for a grid point within its brick.
pub fn brick_local_index(map: &GridMap, g: [usize; 3]) -> usize {
    let b = map.brick();
    (g[0] % b[0]) + b[0] * ((g[1] % b[1]) + b[1] * (g[2] % b[2]))
}

/// The owner node of the brick containing a grid point.
pub fn brick_owner_node(map: &GridMap, g: [usize; 3]) -> NodeId {
    map.brick_owner(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_topo::TorusDims;

    fn paper_map() -> GridMap {
        GridMap::new([32, 32, 32], TorusDims::anton_512())
    }

    #[test]
    fn pencil_targets_cover_the_whole_grid() {
        let map = paper_map();
        for dim in [Dim::X, Dim::Y, Dim::Z] {
            let targets = pencil_targets(&map, dim);
            let total: u64 = targets.iter().flatten().sum();
            assert_eq!(total, 32 * 32 * 32, "{dim:?}");
            // 2 lines per node (32 points each) split across slices.
            for t in &targets {
                assert_eq!(t.iter().sum::<u64>(), 64);
            }
        }
    }

    #[test]
    fn brick_targets_cover_the_whole_grid() {
        let map = paper_map();
        let t = brick_targets(&map);
        let total: u64 = t.iter().flatten().sum();
        assert_eq!(total, 32 * 32 * 32);
    }

    #[test]
    fn line_slice_agrees_for_all_senders() {
        // Any sender computing the slice for a line must get the same
        // answer as the owner (it's a pure function of (dim, u, v)).
        let map = paper_map();
        for (u, v) in [(0, 0), (31, 31), (7, 19), (16, 4)] {
            let a = line_slice(&map, Dim::Y, u, v);
            assert!(a < 4);
            assert_eq!(a, line_slice(&map, Dim::Y, u, v));
        }
    }

    #[test]
    fn halo_rows_shapes() {
        let map = paper_map();
        let src = Coord::new(3, 3, 3);
        // Self: the full brick's rows (4×4), full x-runs.
        let rows = halo_rows(&map, src, src, 3);
        assert_eq!(rows.len(), 16);
        assert!(rows.iter().all(|&(_, _, x0, len)| x0 == 0 && len == 4));
        // +x face neighbor: full rows, x-run = reach (3 of 4 points).
        let rows = halo_rows(&map, src, Coord::new(4, 3, 3), 3);
        assert_eq!(rows.len(), 16);
        assert!(rows.iter().all(|&(_, _, x0, len)| x0 == 0 && len == 3));
        // −z neighbor: only the top `reach` planes of the target.
        let rows = halo_rows(&map, src, Coord::new(3, 3, 2), 3);
        assert_eq!(rows.len(), 4 * 3); // 3 z-planes × 4 y-rows
        assert!(rows.iter().all(|&(z, _, _, _)| z >= 1));
        // Corner: reach³ region → 9 short rows.
        let rows = halo_rows(&map, src, Coord::new(4, 4, 4), 3);
        assert_eq!(rows.len(), 9);
        // Beyond the Moore neighborhood: nothing.
        assert!(halo_rows(&map, src, Coord::new(5, 3, 3), 3).is_empty());
    }

    #[test]
    fn charge_and_potential_targets_are_uniform_on_a_symmetric_machine() {
        let map = paper_map();
        let ct = charge_targets(&map, 3);
        assert!(ct.iter().all(|&c| c == ct[0]));
        assert!(ct[0] > 0);
        let pt = potential_targets(&map);
        assert!(pt.iter().all(|&p| p == pt[0]));
        assert_eq!(pt[0], 16 * 27); // 16 rows from each of 27 halo bricks
    }

    #[test]
    fn halo_sources_count() {
        let map = paper_map();
        assert_eq!(halo_sources(&map, Coord::new(2, 2, 2)).len(), 27);
        // Tiny machine: aliasing shrinks the set.
        let small = GridMap::new([8, 8, 8], TorusDims::new(2, 2, 2));
        assert_eq!(halo_sources(&small, Coord::new(0, 0, 0)).len(), 8);
    }
}
