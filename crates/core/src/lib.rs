//! # anton-core — the Anton machine model and MD time-step schedule
//!
//! The paper's primary contribution, reproduced in simulation: the full
//! mapping of the MD dataflow (Figure 2) onto counted remote writes,
//! multicast, accumulation memories, and message FIFOs, with the
//! software principles of §IV.A (fixed patterns, synchronization embedded
//! in communication, dataflow-dependency buffer reuse, fine-grained
//! messages, hop minimization), plus the bond program with regeneration
//! (§IV.B.2, Figure 11) and relaxed home boxes with infrequent migration
//! (§IV.B.5, Figure 12).

#![warn(missing_docs)]

pub mod bondprog;
pub mod cost;
pub mod decomp;
pub mod engine;
pub mod fftplan;
pub mod parstep;
pub mod patterns;
pub mod program;
pub mod state;

pub use bondprog::{BondProgram, NodeTerms};
pub use cost::CostModel;
pub use decomp::{wrap_signed, Decomposition};
pub use engine::{AntonMdEngine, Energies};
pub use parstep::{
    run_md_exchange, run_md_exchange_par, run_md_exchange_par_mode,
    run_md_exchange_par_mode_profiled, run_md_exchange_par_mode_profiled_timed,
    run_md_exchange_par_profiled, run_md_exchange_recorded, run_md_exchange_streamed,
    run_md_exchange_streamed_par, run_md_exchange_streamed_par_timed,
    run_md_exchange_streamed_timed, run_md_exchange_timed, MdExchangeNode, MdExchangeOutcome,
    MdExchangeParams,
};
pub use program::{MdNode, TRACK_GC, TRACK_HTIS, TRACK_TS};
pub use state::{AntonConfig, EpochPlan, MachineState, StepTiming};
