//! A `Send`-able MD time-step skeleton for the parallel engine.
//!
//! The full per-node MD program ([`MdNode`](crate::program::MdNode))
//! shares one `Rc<RefCell<MachineState>>` across all nodes, which pins
//! it to the sequential simulation. This module distills the *shape* of
//! an MD step that matters for parallel-engine benchmarking — the
//! position-export / force-return neighbor exchange of Figure 2, with
//! its counted remote writes and per-step compute phase — into a
//! self-contained program whose only state is per-node, so it runs
//! unchanged (and bit-identically) on [`ParSimulation`].
//!
//! Per step, every node:
//!
//! 1. multicasts nothing — it sends one counted remote write to each of
//!    its six torus neighbors (±x, ±y, ±z), carrying a position payload;
//! 2. waits on a synchronization counter for the six inbound writes
//!    (communication–synchronization fusion, §IV.A);
//! 3. folds the received values and models the pairwise-force compute
//!    time on the Tensilica cores;
//! 4. starts the next step.
//!
//! All payload values are pure functions of `(node, step, direction)`,
//! so every run — sequential or sharded, any thread count — produces
//! identical folds and identical completion times.

use anton_des::{LookaheadMode, SimDuration, SimTime};
use anton_net::{
    ClientAddr, ClientKind, CounterId, Ctx, Fabric, FaultPlan, NetStats, NodeProgram, Packet,
    ParSimulation, Payload, ProgEvent, Simulation,
};
use anton_obs::{FlightEvent, StreamConfig, StreamFootprint, StreamSummary};
use anton_topo::{Dim, NodeId, TorusDims};

/// Counter the six neighbor writes of each step land on.
const C_EXCH: CounterId = CounterId(30);
/// Receive-buffer base address; one slot per inbound direction.
const A_EXCH: u64 = 0x0600_0000;
const A_DIR_STRIDE: u64 = 0x100;

/// Workload parameters for the exchange skeleton.
#[derive(Debug, Clone, Copy)]
pub struct MdExchangeParams {
    /// Number of simulated time steps.
    pub steps: u32,
    /// f64 values per neighbor message (32 B = 4 values matches the
    /// paper's fine-grained message regime).
    pub values_per_msg: usize,
    /// Modeled per-step force-computation time, ns.
    pub compute_ns: f64,
    /// Extra compute per unit of the node's Z coordinate, ns — a
    /// deterministic stand-in for spatial load imbalance (real MD boxes
    /// have denser and sparser regions). Nonzero skew staggers the
    /// per-slab event streams, which is exactly the regime where the
    /// parallel engine's adaptive per-pair lookahead recovers windows a
    /// uniform global bound would force; 0 (the default) keeps every
    /// node identical. Simulated results stay bit-identical across
    /// engines and modes either way.
    pub compute_skew_ns: f64,
}

impl Default for MdExchangeParams {
    fn default() -> Self {
        MdExchangeParams {
            steps: 10,
            values_per_msg: 4,
            compute_ns: 250.0,
            compute_skew_ns: 0.0,
        }
    }
}

/// Result of an exchange run.
#[derive(Debug, Clone)]
pub struct MdExchangeOutcome {
    /// Time at which the last node finished its last step.
    pub makespan: SimTime,
    /// Per-node checksum of every folded value (order-fixed, so it is
    /// bitwise identical across runs and thread counts).
    pub checksums: Vec<f64>,
    /// Machine-wide fabric statistics.
    pub stats: NetStats,
    /// Total DES events processed.
    pub events: u64,
}

/// The six (dim, direction) neighbor slots in fixed order.
fn directions() -> [(Dim, i32); 6] {
    [
        (Dim::ALL[0], -1),
        (Dim::ALL[0], 1),
        (Dim::ALL[1], -1),
        (Dim::ALL[1], 1),
        (Dim::ALL[2], -1),
        (Dim::ALL[2], 1),
    ]
}

fn neighbor(node: NodeId, dims: TorusDims, dim: Dim, dir: i32) -> NodeId {
    let me = node.coord(dims);
    let n = dims.len(dim);
    let c = (me.get(dim) as i64 + dir as i64).rem_euclid(n as i64) as u32;
    me.with(dim, c).node_id(dims)
}

/// Deterministic stand-in for a position payload.
fn payload_values(node: NodeId, step: u32, slot: usize, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (node.0 as f64) + 0.001 * step as f64 + 0.0001 * (slot * n + i) as f64)
        .collect()
}

/// One node of the exchange skeleton. Plain owned state — `Send`.
pub struct MdExchangeNode {
    params: MdExchangeParams,
    step: u32,
    checksum: f64,
    /// Set when the final step's fold completes.
    pub finished_at: Option<SimTime>,
}

impl MdExchangeNode {
    fn start_step(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let dims = ctx.dims();
        let me = ClientAddr::new(node, ClientKind::Slice(0));
        ctx.watch_counter(me, C_EXCH, 6);
        for (slot, (dim, dir)) in directions().into_iter().enumerate() {
            let peer = neighbor(node, dims, dim, dir);
            // The receiver files us under the *inbound* slot: the packet
            // we send in direction (dim, +1) arrives from its (dim, −1)
            // side, i.e. slot with the direction flipped.
            let inbound = slot ^ 1;
            let vs = payload_values(node, self.step, slot, self.params.values_per_msg);
            let pkt = Packet::write(
                me,
                ClientAddr::new(peer, ClientKind::Slice(0)),
                A_EXCH + inbound as u64 * A_DIR_STRIDE,
                Payload::F64s(vs),
            )
            .with_payload_bytes((self.params.values_per_msg * 8) as u32)
            .with_counter(C_EXCH);
            ctx.send(pkt);
        }
    }

    fn finish_step(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let me = ClientAddr::new(node, ClientKind::Slice(0));
        // Fold inbound contributions in fixed slot order.
        for slot in 0..6 {
            match ctx.mem_take(me, A_EXCH + slot as u64 * A_DIR_STRIDE) {
                Some(Payload::F64s(vs)) => {
                    for v in vs {
                        self.checksum += v;
                    }
                }
                other => panic!("missing neighbor write in slot {slot}: {other:?}"),
            }
        }
        ctx.reset_counter(me, C_EXCH);
        let z = node.coord(ctx.dims()).get(Dim::ALL[2]) as f64;
        let cost =
            SimDuration::from_ns_f64(self.params.compute_ns + self.params.compute_skew_ns * z);
        ctx.set_timer(node, ClientKind::Slice(0), cost, self.step as u64);
    }
}

impl NodeProgram for MdExchangeNode {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => self.start_step(node, ctx),
            ProgEvent::CounterReached { .. } => self.finish_step(node, ctx),
            ProgEvent::Timer { .. } => {
                self.step += 1;
                if self.step < self.params.steps {
                    self.start_step(node, ctx);
                } else {
                    self.finished_at = Some(ctx.now());
                }
            }
            ProgEvent::FifoMessage { .. } => {
                unreachable!("exchange skeleton uses no FIFO traffic")
            }
        }
    }
}

fn make_node(params: MdExchangeParams) -> impl FnMut(NodeId) -> MdExchangeNode {
    move |_| MdExchangeNode {
        params,
        step: 0,
        checksum: 0.0,
        finished_at: None,
    }
}

fn outcome(
    nodes: impl Iterator<Item = (SimTime, f64)>,
    stats: NetStats,
    events: u64,
) -> MdExchangeOutcome {
    let mut makespan = SimTime::ZERO;
    let mut checksums = Vec::new();
    for (t, c) in nodes {
        makespan = makespan.max(t);
        checksums.push(c);
    }
    MdExchangeOutcome {
        makespan,
        checksums,
        stats,
        events,
    }
}

/// Run the exchange workload sequentially (the reference executor).
pub fn run_md_exchange(dims: TorusDims, params: MdExchangeParams) -> MdExchangeOutcome {
    run_md_exchange_timed(dims, params, anton_net::Timing::default())
}

/// [`run_md_exchange`] under a caller-supplied [`Timing`] model — the
/// spec→builder plumbing a [scenario]-driven run uses to select a named
/// timing profile (e.g. `anton3`) instead of the Anton-1 default.
///
/// [`Timing`]: anton_net::Timing
/// [scenario]: https://docs.rs/anton-scenario
pub fn run_md_exchange_timed(
    dims: TorusDims,
    params: MdExchangeParams,
    timing: anton_net::Timing,
) -> MdExchangeOutcome {
    let fabric = Fabric::with_faults(dims, timing, FaultPlan::none());
    let mut sim = Simulation::new(fabric, make_node(params));
    assert!(
        sim.run_guarded(SimTime(u64::MAX / 2), 1_000_000_000)
            .is_completed(),
        "exchange workload completes"
    );
    let events = sim.events_processed();
    outcome(
        sim.world
            .programs
            .iter()
            .map(|p| (p.finished_at.expect("completed"), p.checksum)),
        sim.world.fabric.stats.clone(),
        events,
    )
}

/// [`run_md_exchange`] with a full flight recorder attached: also
/// returns the raw event stream for offline analysis. The simulated
/// outcome is bit-identical to the unrecorded run (zero observer
/// effect), but event memory grows with traffic — use
/// [`run_md_exchange_streamed`] at scale.
pub fn run_md_exchange_recorded(
    dims: TorusDims,
    params: MdExchangeParams,
) -> (MdExchangeOutcome, Vec<FlightEvent>) {
    let mut fabric = Fabric::with_faults(dims, anton_net::Timing::default(), FaultPlan::none());
    // Node-scoped uids keep packet identities comparable with the
    // sharded engine (uid assignment never affects simulated outcomes).
    fabric.enable_node_scoped_uids();
    let mut sim = Simulation::new(fabric, make_node(params));
    sim.world.fabric.attach_owned_flight_recorder();
    assert!(
        sim.run_guarded(SimTime(u64::MAX / 2), 1_000_000_000)
            .is_completed(),
        "exchange workload completes"
    );
    let events = sim.events_processed();
    let flight: Vec<FlightEvent> = sim
        .world
        .fabric
        .flight_recorder()
        .expect("recorder attached")
        .events()
        .cloned()
        .collect();
    let out = outcome(
        sim.world
            .programs
            .iter()
            .map(|p| (p.finished_at.expect("completed"), p.checksum)),
        sim.world.fabric.stats.clone(),
        events,
    );
    (out, flight)
}

/// [`run_md_exchange`] under bounded-memory streaming observability:
/// delivered packets are folded into sketches on the fly and dropped,
/// so observability memory stays O(nodes + links) regardless of step
/// count. Returns the finalized summary and the observer's memory
/// footprint. The simulated outcome is bit-identical to the
/// unobserved run.
pub fn run_md_exchange_streamed(
    dims: TorusDims,
    params: MdExchangeParams,
    cfg: StreamConfig,
) -> (MdExchangeOutcome, StreamSummary, StreamFootprint) {
    run_md_exchange_streamed_timed(dims, params, cfg, anton_net::Timing::default())
}

/// [`run_md_exchange_streamed`] under a caller-supplied
/// [`Timing`](anton_net::Timing) model.
pub fn run_md_exchange_streamed_timed(
    dims: TorusDims,
    params: MdExchangeParams,
    cfg: StreamConfig,
    timing: anton_net::Timing,
) -> (MdExchangeOutcome, StreamSummary, StreamFootprint) {
    let mut fabric = Fabric::with_faults(dims, timing, FaultPlan::none());
    // Node-scoped uids keep packet identities (and so the deterministic
    // reservoir) bit-comparable with the sharded engine.
    fabric.enable_node_scoped_uids();
    let mut sim = Simulation::new(fabric, make_node(params));
    sim.world.fabric.attach_stream_observer(cfg);
    assert!(
        sim.run_guarded(SimTime(u64::MAX / 2), 1_000_000_000)
            .is_completed(),
        "exchange workload completes"
    );
    let events = sim.events_processed();
    let obs = sim
        .world
        .fabric
        .stream_observer()
        .expect("observer attached");
    let mut summary = obs.summary();
    summary.finalize();
    let footprint = obs.footprint();
    let out = outcome(
        sim.world
            .programs
            .iter()
            .map(|p| (p.finished_at.expect("completed"), p.checksum)),
        sim.world.fabric.stats.clone(),
        events,
    );
    (out, summary, footprint)
}

/// [`run_md_exchange_par`] under bounded-memory streaming
/// observability: each shard folds its own deliveries and the
/// per-shard summaries merge bit-deterministically. Returns the
/// finalized merged summary; it equals the sequential
/// [`run_md_exchange_streamed`] summary exactly.
pub fn run_md_exchange_streamed_par(
    dims: TorusDims,
    params: MdExchangeParams,
    threads: usize,
    cfg: StreamConfig,
) -> (MdExchangeOutcome, StreamSummary) {
    run_md_exchange_streamed_par_timed(dims, params, threads, cfg, anton_net::Timing::default())
}

/// [`run_md_exchange_streamed_par`] under a caller-supplied
/// [`Timing`](anton_net::Timing) model.
pub fn run_md_exchange_streamed_par_timed(
    dims: TorusDims,
    params: MdExchangeParams,
    threads: usize,
    cfg: StreamConfig,
    timing: anton_net::Timing,
) -> (MdExchangeOutcome, StreamSummary) {
    let mut sim = ParSimulation::new(
        threads,
        move || Fabric::with_faults(dims, timing.clone(), FaultPlan::none()),
        make_node(params),
    );
    sim.attach_stream_observers(cfg);
    assert!(
        sim.run_guarded(SimTime(u64::MAX / 2), 1_000_000_000)
            .is_completed(),
        "exchange workload completes"
    );
    let events = sim.events_processed();
    let summary = sim
        .merged_stream_summary()
        .expect("stream observers attached");
    let out = outcome(
        (0..dims.node_count()).map(|i| {
            let p = sim.program(NodeId(i));
            (p.finished_at.expect("completed"), p.checksum)
        }),
        sim.merged_stats(),
        events,
    );
    (out, summary)
}

/// Run the exchange workload on the sharded parallel engine with
/// `threads` workers. Bit-identical to [`run_md_exchange`] at any
/// thread count.
pub fn run_md_exchange_par(
    dims: TorusDims,
    params: MdExchangeParams,
    threads: usize,
) -> MdExchangeOutcome {
    run_md_exchange_par_inner(dims, params, threads, false, None).0
}

/// [`run_md_exchange_par`] with runtime profiling enabled: also returns
/// the engine's [`ParProfile`](anton_des::ParProfile). The simulated
/// outcome is bit-identical to the unprofiled run.
pub fn run_md_exchange_par_profiled(
    dims: TorusDims,
    params: MdExchangeParams,
    threads: usize,
) -> (MdExchangeOutcome, anton_des::ParProfile) {
    let (out, prof) = run_md_exchange_par_inner(dims, params, threads, true, None);
    (out, prof.expect("profiling was enabled"))
}

/// [`run_md_exchange_par`] with an explicit window-bound mode instead
/// of the `ANTON_LOOKAHEAD` env default — for A/B comparisons of
/// adaptive vs. uniform-global windows. The simulated outcome is
/// bit-identical in both modes (asserted by `bench/par_speedup` and the
/// tests here); only window counts and wall clock differ.
pub fn run_md_exchange_par_mode(
    dims: TorusDims,
    params: MdExchangeParams,
    threads: usize,
    mode: LookaheadMode,
) -> MdExchangeOutcome {
    run_md_exchange_par_inner(dims, params, threads, false, Some(mode)).0
}

/// [`run_md_exchange_par_mode`] with runtime profiling enabled.
pub fn run_md_exchange_par_mode_profiled(
    dims: TorusDims,
    params: MdExchangeParams,
    threads: usize,
    mode: LookaheadMode,
) -> (MdExchangeOutcome, anton_des::ParProfile) {
    run_md_exchange_par_mode_profiled_timed(
        dims,
        params,
        threads,
        mode,
        anton_net::Timing::default(),
    )
}

/// [`run_md_exchange_par_mode_profiled`] under a caller-supplied
/// [`Timing`](anton_net::Timing) model.
pub fn run_md_exchange_par_mode_profiled_timed(
    dims: TorusDims,
    params: MdExchangeParams,
    threads: usize,
    mode: LookaheadMode,
    timing: anton_net::Timing,
) -> (MdExchangeOutcome, anton_des::ParProfile) {
    let (out, prof) = run_md_exchange_par_with(dims, params, threads, true, Some(mode), timing);
    (out, prof.expect("profiling was enabled"))
}

fn run_md_exchange_par_inner(
    dims: TorusDims,
    params: MdExchangeParams,
    threads: usize,
    profile: bool,
    mode: Option<LookaheadMode>,
) -> (MdExchangeOutcome, Option<anton_des::ParProfile>) {
    run_md_exchange_par_with(
        dims,
        params,
        threads,
        profile,
        mode,
        anton_net::Timing::default(),
    )
}

fn run_md_exchange_par_with(
    dims: TorusDims,
    params: MdExchangeParams,
    threads: usize,
    profile: bool,
    mode: Option<LookaheadMode>,
    timing: anton_net::Timing,
) -> (MdExchangeOutcome, Option<anton_des::ParProfile>) {
    let mut sim = ParSimulation::new(
        threads,
        move || Fabric::with_faults(dims, timing.clone(), FaultPlan::none()),
        make_node(params),
    );
    if let Some(mode) = mode {
        sim.set_lookahead_mode(mode);
    }
    if profile {
        sim.enable_runtime_profiling();
    }
    assert!(
        sim.run_guarded(SimTime(u64::MAX / 2), 1_000_000_000)
            .is_completed(),
        "exchange workload completes"
    );
    let events = sim.events_processed();
    let out = outcome(
        (0..dims.node_count()).map(|i| {
            let p = sim.program(NodeId(i));
            (p.finished_at.expect("completed"), p.checksum)
        }),
        sim.merged_stats(),
        events,
    );
    (out, sim.take_runtime_profile())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        let dims = TorusDims::new(4, 4, 4);
        let params = MdExchangeParams {
            steps: 3,
            ..Default::default()
        };
        let seq = run_md_exchange(dims, params);
        for threads in [1, 2, 4] {
            let par = run_md_exchange_par(dims, params, threads);
            assert_eq!(par.makespan, seq.makespan, "{threads} threads");
            assert_eq!(par.checksums, seq.checksums);
            assert_eq!(par.stats.packets_sent, seq.stats.packets_sent);
            assert_eq!(par.stats.link_traversals, seq.stats.link_traversals);
        }
    }

    #[test]
    fn checksums_match_the_analytic_fold() {
        // Every node receives, per step, the six slot payloads its
        // neighbors emitted; totals are a pure function of the schedule.
        let dims = TorusDims::new(2, 2, 2);
        let params = MdExchangeParams {
            steps: 2,
            values_per_msg: 2,
            compute_ns: 100.0,
            compute_skew_ns: 0.0,
        };
        let out = run_md_exchange(dims, params);
        let mut want = vec![0.0f64; dims.node_count() as usize];
        for step in 0..params.steps {
            for node in 0..dims.node_count() {
                for (slot, (dim, dir)) in directions().into_iter().enumerate() {
                    let peer = neighbor(NodeId(node), dims, dim, dir);
                    for v in payload_values(peer, step, slot ^ 1, params.values_per_msg) {
                        want[node as usize] += v;
                    }
                }
            }
        }
        for (got, want) in out.checksums.iter().zip(&want) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn streamed_observability_is_exact_and_shard_invariant() {
        let dims = TorusDims::new(4, 4, 4);
        let params = MdExchangeParams {
            steps: 3,
            ..Default::default()
        };
        let cfg = StreamConfig::default();
        let plain = run_md_exchange(dims, params);
        let (seq_out, seq_sum, footprint) = run_md_exchange_streamed(dims, params, cfg);
        // Zero observer effect: the observed run is bit-identical.
        assert_eq!(seq_out.makespan, plain.makespan);
        assert_eq!(seq_out.checksums, plain.checksums);
        assert_eq!(seq_out.events, plain.events);
        // Streamed fold agrees with the offline flight-recorder fold.
        let (_, flight) = run_md_exchange_recorded(dims, params);
        let (lcs, stats) = anton_obs::fold_lifecycles(flight.iter());
        let exact = anton_obs::BreakdownSummary::from_lifecycles(&lcs);
        assert_eq!(seq_sum.breakdown(), exact);
        assert_eq!(seq_sum.fold, stats);
        // Sharded summaries merge to the identical summary.
        for threads in [1, 2, 4] {
            let (par_out, par_sum) = run_md_exchange_streamed_par(dims, params, threads, cfg);
            assert_eq!(par_out.makespan, plain.makespan, "{threads} threads");
            assert_eq!(par_sum, seq_sum, "{threads} threads");
        }
        // The observer's heap stays bounded and is accounted.
        assert!(footprint.peak_bytes > 0);
        assert!(footprint.peak_partials > 0);
    }

    #[test]
    fn adaptive_and_global_windows_agree_and_adaptive_never_needs_more() {
        let dims = TorusDims::new(4, 4, 4);
        let params = MdExchangeParams {
            steps: 3,
            ..Default::default()
        };
        let seq = run_md_exchange(dims, params);
        let (glob, pg) = run_md_exchange_par_mode_profiled(dims, params, 2, LookaheadMode::Global);
        let (adap, pa) =
            run_md_exchange_par_mode_profiled(dims, params, 2, LookaheadMode::Adaptive);
        // Same simulated machine in all three executions.
        assert_eq!(glob.makespan, seq.makespan);
        assert_eq!(adap.makespan, seq.makespan);
        assert_eq!(adap.checksums, glob.checksums);
        assert_eq!(adap.checksums, seq.checksums);
        assert_eq!(adap.events, glob.events);
        // Adaptive windows are never narrower than global ones, and the
        // recovered-events accounting is zero by construction under the
        // global bound.
        assert!(pa.windows <= pg.windows, "{} vs {}", pa.windows, pg.windows);
        assert_eq!(pg.recovered_events, 0);
        assert_eq!(pg.extended_shard_windows, 0);
        // Window counts (and recovered accounting) are thread-invariant.
        let (_, pa4) = run_md_exchange_par_mode_profiled(dims, params, 4, LookaheadMode::Adaptive);
        assert_eq!(pa4.windows, pa.windows);
        assert_eq!(pa4.recovered_events, pa.recovered_events);
        assert_eq!(pa4.extended_shard_windows, pa.extended_shard_windows);
    }

    /// With spatial load imbalance (per-slab compute skew) the shard
    /// event streams stagger, and the adaptive per-pair bounds genuinely
    /// widen windows past the uniform global bound — while the simulated
    /// outcome stays bit-identical to the sequential engine.
    #[test]
    fn compute_skew_lets_adaptive_windows_recover_events() {
        let dims = TorusDims::new(4, 4, 4);
        let params = MdExchangeParams {
            steps: 3,
            compute_skew_ns: 60.0,
            ..Default::default()
        };
        let seq = run_md_exchange(dims, params);
        let (glob, pg) = run_md_exchange_par_mode_profiled(dims, params, 2, LookaheadMode::Global);
        let (adap, pa) =
            run_md_exchange_par_mode_profiled(dims, params, 2, LookaheadMode::Adaptive);
        assert_eq!(glob.makespan, seq.makespan);
        assert_eq!(adap.makespan, seq.makespan);
        assert_eq!(adap.checksums, seq.checksums);
        assert_eq!(adap.events, glob.events);
        assert!(
            pa.windows < pg.windows,
            "skewed workload should need fewer adaptive windows ({} vs {})",
            pa.windows,
            pg.windows
        );
        assert!(pa.recovered_events > 0);
        assert!(pa.extended_shard_windows > 0);
        assert_eq!(pg.recovered_events, 0);
    }

    #[test]
    fn makespan_scales_with_steps() {
        let dims = TorusDims::new(2, 2, 2);
        let one = run_md_exchange(
            dims,
            MdExchangeParams {
                steps: 1,
                ..Default::default()
            },
        );
        let five = run_md_exchange(
            dims,
            MdExchangeParams {
                steps: 5,
                ..Default::default()
            },
        );
        assert!(five.makespan > one.makespan);
    }
}
