//! The bond program: static assignment of bonded force terms to nodes.
//!
//! "We simplify this communication on Anton by statically assigning
//! bonded force terms to nodes, so that the set of destinations for a
//! given atom is fixed. … The assignment of bond terms to nodes (which we
//! refer to as the bond program) is chosen to minimize communication
//! latency for the initial placement of atoms, but as the system evolves
//! and atoms migrate this communication latency increases … We therefore
//! regenerate the bond program every 100,000–200,000 time steps"
//! (§IV.B.2, Figure 11).

use crate::decomp::Decomposition;
use anton_md::{ChemicalSystem, Vec3};
use anton_topo::{hop_count, Coord, NodeId};

/// One node's share of bonded work.
#[derive(Debug, Clone, Default)]
pub struct NodeTerms {
    /// Bond indices assigned here.
    pub bonds: Vec<u32>,
    /// Angle indices assigned here.
    pub angles: Vec<u32>,
    /// Dihedral indices assigned here.
    pub dihedrals: Vec<u32>,
}

impl NodeTerms {
    /// Total bonded terms at this node.
    pub fn len(&self) -> usize {
        self.bonds.len() + self.angles.len() + self.dihedrals.len()
    }

    /// No terms assigned here.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The static term→node assignment plus derived routing tables.
#[derive(Debug, Clone)]
pub struct BondProgram {
    /// Node of each bond / angle / dihedral (parallel to the system's
    /// term lists).
    pub bond_nodes: Vec<Coord>,
    /// Node of each angle term.
    pub angle_nodes: Vec<Coord>,
    /// Node of each dihedral term.
    pub dihedral_nodes: Vec<Coord>,
    /// Terms grouped per node.
    pub terms_at: Vec<NodeTerms>,
    /// For each atom: the distinct term nodes needing its position
    /// (sorted; may include the atom's own current home node — senders
    /// skip the self entry at send time).
    pub atom_destinations: Vec<Vec<Coord>>,
}

impl BondProgram {
    /// Build from the positions the system had at generation time: each
    /// term lands on the strict owner box of its central atom — the
    /// assignment that minimizes communication for the *current*
    /// placement.
    pub fn generate(sys: &ChemicalSystem, decomp: &Decomposition, positions: &[Vec3]) -> Self {
        let dims = decomp.dims;
        let n_nodes = dims.node_count() as usize;
        let mut terms_at = vec![NodeTerms::default(); n_nodes];
        let mut atom_destinations: Vec<Vec<Coord>> = vec![Vec::new(); sys.atoms.len()];

        let note = |atom: usize, node: Coord, dests: &mut Vec<Vec<Coord>>| {
            if !dests[atom].contains(&node) {
                dests[atom].push(node);
            }
        };

        let bond_nodes: Vec<Coord> = sys
            .bonds
            .iter()
            .enumerate()
            .map(|(t, b)| {
                let node = decomp.strict_owner(positions[b.i]);
                terms_at[node.node_id(dims).index()].bonds.push(t as u32);
                note(b.i, node, &mut atom_destinations);
                note(b.j, node, &mut atom_destinations);
                node
            })
            .collect();
        let angle_nodes: Vec<Coord> = sys
            .angles
            .iter()
            .enumerate()
            .map(|(t, a)| {
                let node = decomp.strict_owner(positions[a.j]);
                terms_at[node.node_id(dims).index()].angles.push(t as u32);
                note(a.i, node, &mut atom_destinations);
                note(a.j, node, &mut atom_destinations);
                note(a.k_atom, node, &mut atom_destinations);
                node
            })
            .collect();
        let dihedral_nodes: Vec<Coord> = sys
            .dihedrals
            .iter()
            .enumerate()
            .map(|(t, d)| {
                let node = decomp.strict_owner(positions[d.j]);
                terms_at[node.node_id(dims).index()]
                    .dihedrals
                    .push(t as u32);
                note(d.i, node, &mut atom_destinations);
                note(d.j, node, &mut atom_destinations);
                note(d.k_atom, node, &mut atom_destinations);
                note(d.l, node, &mut atom_destinations);
                node
            })
            .collect();

        for d in &mut atom_destinations {
            d.sort_by_key(|c| c.node_id(dims).0);
        }
        BondProgram {
            bond_nodes,
            angle_nodes,
            dihedral_nodes,
            terms_at,
            atom_destinations,
        }
    }

    /// Mean network hops from each atom's current owner to its bond
    /// destinations — the staleness metric behind Figure 11.
    pub fn mean_destination_hops(&self, owners: &[NodeId], decomp: &Decomposition) -> f64 {
        let mut total = 0u64;
        let mut count = 0u64;
        for (atom, dests) in self.atom_destinations.iter().enumerate() {
            let home = owners[atom].coord(decomp.dims);
            for &d in dests {
                total += hop_count(home, d, decomp.dims) as u64;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Position packets each node must send for bonded computation given
    /// current owners: (sender, atom, destination) triples with local
    /// destinations skipped.
    pub fn position_sends(
        &self,
        owners: &[NodeId],
        decomp: &Decomposition,
    ) -> Vec<(NodeId, u32, Coord)> {
        let mut out = Vec::new();
        for (atom, dests) in self.atom_destinations.iter().enumerate() {
            let home = owners[atom];
            for &d in dests {
                if d.node_id(decomp.dims) != home {
                    out.push((home, atom as u32, d));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_md::{PeriodicBox, SystemBuilder};
    use anton_topo::TorusDims;

    fn setup() -> (anton_md::ChemicalSystem, Decomposition) {
        let sys = SystemBuilder::tiny(300, 24.0, 44).build();
        let decomp = Decomposition::new(TorusDims::new(4, 4, 4), PeriodicBox::cubic(24.0), 5.0);
        (sys, decomp)
    }

    #[test]
    fn every_term_is_assigned_exactly_once() {
        let (sys, decomp) = setup();
        let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
        let bp = BondProgram::generate(&sys, &decomp, &positions);
        assert_eq!(bp.bond_nodes.len(), sys.bonds.len());
        assert_eq!(bp.angle_nodes.len(), sys.angles.len());
        let total: usize = bp.terms_at.iter().map(|t| t.len()).sum();
        assert_eq!(
            total,
            sys.bonds.len() + sys.angles.len() + sys.dihedrals.len()
        );
    }

    #[test]
    fn fresh_program_has_zero_hops_for_tight_molecules() {
        // Water molecules are ≤2 Å across; with 6 Å boxes the central
        // atom's box owns the whole molecule in nearly every case, so
        // mean hops at generation time is near zero.
        let (sys, decomp) = setup();
        let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
        let bp = BondProgram::generate(&sys, &decomp, &positions);
        let owners = decomp.assign_atoms(&positions);
        let hops = bp.mean_destination_hops(&owners, &decomp);
        assert!(hops < 0.7, "fresh bond program mean hops = {hops}");
    }

    #[test]
    fn drifted_atoms_increase_destination_hops() {
        let (sys, decomp) = setup();
        let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
        let bp = BondProgram::generate(&sys, &decomp, &positions);
        let owners = decomp.assign_atoms(&positions);
        let fresh = bp.mean_destination_hops(&owners, &decomp);
        // Shift everything by two boxes: every molecule is now far from
        // its bond terms.
        let drifted: Vec<Vec3> = positions
            .iter()
            .map(|&p| decomp.pbox.wrap(p + Vec3::new(12.0, 12.0, 0.0)))
            .collect();
        let owners2 = decomp.assign_atoms(&drifted);
        let stale = bp.mean_destination_hops(&owners2, &decomp);
        assert!(
            stale > fresh + 1.0,
            "stale program should cost more hops: {fresh} → {stale}"
        );
        // Regeneration restores locality.
        let bp2 = BondProgram::generate(&sys, &decomp, &drifted);
        let regen = bp2.mean_destination_hops(&owners2, &decomp);
        assert!(regen < fresh + 0.3, "regenerated hops = {regen}");
    }

    #[test]
    fn position_sends_skip_local_destinations() {
        let (sys, decomp) = setup();
        let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
        let bp = BondProgram::generate(&sys, &decomp, &positions);
        let owners = decomp.assign_atoms(&positions);
        for (sender, atom, dest) in bp.position_sends(&owners, &decomp) {
            assert_eq!(owners[atom as usize], sender);
            assert_ne!(dest.node_id(decomp.dims), sender);
        }
    }
}
