//! Property tests of the canonical spec encoding: the content hash
//! must be a pure function of the spec's *semantics* — invariant under
//! TOML formatting and round-trips, and moved by every semantic field.

use anton_des::LookaheadMode;
use anton_net::ObsMode;
use anton_scenario::{
    AlgorithmSpec, ChaosSpec, FaultSpec, RecoverySpec, ScenarioSpec, TimingProfile, Workload,
};
use proptest::prelude::*;

/// Build a spec from drawn numerics. Discrete choices are decoded from
/// integer draws (the in-repo proptest shim has no `prop_oneof`).
#[allow(clippy::too_many_arguments)]
fn build_spec(
    dims: (u32, u32, u32),
    timing: u8,
    threads: u32,
    lookahead: u8,
    obs: u8,
    chaos_seed: u64,
    chaos_level: u32,
    fault_seed: u64,
    drop_milli: u32,
    workload: Workload,
) -> ScenarioSpec {
    ScenarioSpec {
        name: "prop".to_owned(),
        dims,
        timing: if timing == 0 {
            TimingProfile::Anton1
        } else {
            TimingProfile::Anton3
        },
        threads,
        lookahead: if lookahead == 0 {
            LookaheadMode::Global
        } else {
            LookaheadMode::Adaptive
        },
        obs: match obs % 3 {
            0 => ObsMode::Off,
            1 => ObsMode::Flight,
            _ => ObsMode::Stream,
        },
        chaos: ChaosSpec {
            seed: chaos_seed,
            level: chaos_level,
        },
        fault: FaultSpec {
            seed: fault_seed,
            drop_rate: f64::from(drop_milli) / 1000.0,
            corrupt_rate: 0.0,
        },
        recovery: RecoverySpec::default(),
        workload,
    }
}

fn md_workload(steps: u32, vpm: u32, compute_ns: f64, skew_ns: f64) -> Workload {
    Workload::MdExchange {
        steps,
        values_per_msg: vpm,
        compute_ns,
        compute_skew_ns: skew_ns,
    }
}

proptest! {
    /// TOML round-trips preserve the spec exactly, hence the hash: the
    /// canonical encoding survives its own writer/parser pair for any
    /// drawn configuration.
    #[test]
    fn roundtrip_preserves_hash(
        nx in 1u32..9, ny in 1u32..9, nz in 1u32..9,
        threads in 1u32..9,
        knobs in (0u8..2, 0u8..2, 0u8..3),
        seeds in (0u64..1_000_000, 0u64..1_000_000),
        steps in 1u32..50,
        compute_ns in 0.0f64..1000.0,
    ) {
        let (timing, lookahead, obs) = knobs;
        let (chaos_seed, fault_seed) = seeds;
        let spec = build_spec(
            (nx, ny, nz), timing, threads, lookahead, obs,
            chaos_seed, chaos_seed as u32 % 4, fault_seed, fault_seed as u32 % 1000,
            md_workload(steps, 4, compute_ns, 0.0),
        );
        let parsed = ScenarioSpec::from_toml_str(&spec.to_toml())
            .expect("canonical TOML re-parses");
        prop_assert_eq!(&spec, &parsed);
        prop_assert_eq!(spec.content_hash(), parsed.content_hash());
        prop_assert_eq!(spec.hash_hex().len(), 16);
    }

    /// Hash is formatting-independent: rewriting the canonical TOML
    /// with shuffled key order inside each section, extra whitespace,
    /// and comments parses to the same hash.
    #[test]
    fn hash_ignores_toml_formatting(
        steps in 1u32..50,
        vpm in 1u32..9,
        compute_ns in 0.0f64..1000.0,
        skew_ns in 0.0f64..100.0,
    ) {
        let spec = build_spec(
            (4, 4, 4), 0, 2, 1, 0, 1, 0, 1, 0,
            md_workload(steps, vpm, compute_ns, skew_ns),
        );
        // A differently-formatted document for the same semantics:
        // reversed key order per section, noise comments, underscores.
        let noisy = format!(
            "# scrambled by hand\nname = \"prop\"\n\n\
             [workload]\ncompute_skew_ns = {skew:?}\ncompute_ns = {cns:?}   # per-step cost\n\
             values_per_msg = {vpm}\nsteps = {steps}\nkind = \"md_exchange\"\n\n\
             [recovery]\nseed = 1\nenabled = false\n\n\
             [fault]\ncorrupt_rate = 0.0\ndrop_rate = 0.0\nseed = 1\n\n\
             [chaos]\nlevel = 0\nseed = 1\n\n\
             [engine]\nobs = \"off\"\nlookahead = \"adaptive\"\nthreads = 2\ntiming = \"anton1\"\n\n\
             [topology]\nnz = 4\nny = 4\nnx = 4\n",
            skew = skew_ns, cns = compute_ns,
        );
        let parsed = ScenarioSpec::from_toml_str(&noisy).expect("noisy TOML parses");
        prop_assert_eq!(spec.content_hash(), parsed.content_hash());
    }

    /// Flipping any single semantic field moves the hash: no knob is
    /// silently outside the content address.
    #[test]
    fn every_semantic_field_moves_the_hash(
        nx in 2u32..8,
        threads in 1u32..8,
        chaos_seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        drop_milli in 0u32..999,
        steps in 1u32..49,
        compute_ns in 0.0f64..999.0,
        skew_ns in 0.0f64..99.0,
    ) {
        let base = build_spec(
            (nx, 4, 4), 0, threads, 1, 0,
            chaos_seed, 0, fault_seed, drop_milli,
            md_workload(steps, 4, compute_ns, skew_ns),
        );
        let h = base.content_hash();

        let mut flipped = Vec::new();

        let mut s = base.clone();
        s.dims.0 = nx + 1;
        flipped.push(("dims", s));

        let mut s = base.clone();
        s.timing = TimingProfile::Anton3;
        flipped.push(("timing", s));

        let mut s = base.clone();
        s.threads = threads + 1;
        flipped.push(("threads", s));

        let mut s = base.clone();
        s.lookahead = LookaheadMode::Global;
        flipped.push(("lookahead", s));

        let mut s = base.clone();
        s.obs = ObsMode::Stream;
        flipped.push(("obs", s));

        let mut s = base.clone();
        s.chaos.seed = chaos_seed + 1;
        flipped.push(("chaos.seed", s));

        let mut s = base.clone();
        s.chaos.level = 3;
        flipped.push(("chaos.level", s));

        let mut s = base.clone();
        s.fault.seed = fault_seed + 1;
        flipped.push(("fault.seed", s));

        let mut s = base.clone();
        s.fault.drop_rate = f64::from(drop_milli + 1) / 1000.0;
        flipped.push(("fault.drop_rate", s));

        let mut s = base.clone();
        s.recovery = RecoverySpec { enabled: true, seed: 1 };
        flipped.push(("recovery.enabled", s));

        let mut s = base.clone();
        s.workload = md_workload(steps + 1, 4, compute_ns, skew_ns);
        flipped.push(("workload.steps", s));

        let mut s = base.clone();
        s.workload = md_workload(steps, 4, compute_ns + 1.0, skew_ns);
        flipped.push(("workload.compute_ns", s));

        let mut s = base.clone();
        s.workload = md_workload(steps, 4, compute_ns, skew_ns + 1.0);
        flipped.push(("workload.compute_skew_ns", s));

        let mut s = base.clone();
        s.workload = Workload::AllReduce {
            algorithm: AlgorithmSpec::DimensionOrdered,
            vlen: 4,
            seed: 42,
            reps: 1,
        };
        flipped.push(("workload.kind", s));

        for (field, s) in flipped {
            prop_assert_ne!(
                s.content_hash(), h,
                "flipping {} did not move the content hash", field
            );
        }
    }

    /// Recovering-workload death schedules are hash-affecting, entry by
    /// entry: dropping, reordering-with-change, or shifting a death
    /// moves the hash.
    #[test]
    fn death_schedule_moves_the_hash(
        seed in 0u64..1_000_000,
        node_a in 1u32..32, node_b in 32u32..63,
        at_a in 100u64..2000, at_b in 2000u64..4000,
    ) {
        let mk = |deaths: Vec<(u32, u64)>| {
            let mut s = build_spec(
                (4, 4, 4), 0, 1, 1, 0, seed, 1, seed, 1,
                Workload::Recovering { vlen: 2, seed, deaths },
            );
            s.recovery = RecoverySpec { enabled: true, seed };
            s
        };
        let both = mk(vec![(node_a, at_a), (node_b, at_b)]);
        let one = mk(vec![(node_a, at_a)]);
        let moved = mk(vec![(node_a, at_a + 1), (node_b, at_b)]);
        let swapped = mk(vec![(node_b, at_a), (node_a, at_b)]);
        prop_assert_ne!(both.content_hash(), one.content_hash());
        prop_assert_ne!(both.content_hash(), moved.content_hash());
        prop_assert_ne!(both.content_hash(), swapped.content_hash());
        // And the full spec still round-trips through TOML.
        let parsed = ScenarioSpec::from_toml_str(&both.to_toml()).expect("round-trip");
        prop_assert_eq!(both.content_hash(), parsed.content_hash());
    }
}
