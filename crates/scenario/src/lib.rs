//! # anton-scenario — first-class scenario specs and the run ledger
//!
//! The provenance layer of the simulator: a declarative
//! [`ScenarioSpec`] describes *everything* that affects a run —
//! topology, timing profile, workload, fault and recovery policy,
//! chaos knobs, thread budget, lookahead and observability modes — and
//! hashes to a stable content address ([`ScenarioSpec::content_hash`])
//! that is independent of spec-file formatting. Runs executed from a
//! spec land in a content-addressed ledger ([`ledger::RunRecord`])
//! keyed by that hash, alongside the engine fingerprint they produced,
//! so any committed experiment can be replayed and checked bit-exactly
//! from nothing but its hash (`scenario verify`).
//!
//! The standing experiments the bench binaries run are captured as
//! [`presets`], so a bin's wiring and the spec the CLI hashes are the
//! same object.

#![warn(missing_docs)]

pub mod ledger;
pub mod presets;
pub mod spec;
pub mod toml;

pub use ledger::{
    env_snapshot, toolchain_snapshot, LedgerEntry, LedgerIndex, RunRecord, CAPTURED_ENV,
};
pub use spec::{
    AlgorithmSpec, ChaosSpec, FaultSpec, RecoverySpec, ScenarioSpec, TimingProfile, Workload,
};
