//! The content-addressed run ledger.
//!
//! Every `scenario run` drops one [`RunRecord`] at
//! `target/obs/ledger/<spec-hash>.json`: the canonical spec text it ran
//! (so the record is self-reproducing), the engine fingerprints at each
//! probed thread count, the full observatory report, and a
//! toolchain/environment snapshot. The committed [`LedgerIndex`]
//! (`LEDGER.json`) maps hashes to human names and spec paths so
//! `scenario verify --all` can replay every committed experiment from
//! nothing but the index.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use anton_obs::{validate_json, Lex, ObservatoryReport};

use crate::spec::ScenarioSpec;

/// Environment knobs captured into every run record. These are the
/// engine-behavior knobs: anything here that differs between two hosts
/// can explain a fingerprint mismatch, which is why they're snapshotted.
pub const CAPTURED_ENV: [&str; 9] = [
    "ANTON_THREADS",
    "ANTON_SHARDS",
    "ANTON_LOOKAHEAD",
    "ANTON_OBS_MODE",
    "ANTON_OBS_RESERVOIR",
    "ANTON_OBS_TOPK",
    "ANTON_CHAOS_SEED",
    "ANTON_CHAOS_LEVEL",
    "ANTON_CHAOS_EXTENDED",
];

/// The `ANTON_*` knobs that are actually set right now, as a map.
pub fn env_snapshot() -> BTreeMap<String, String> {
    CAPTURED_ENV
        .iter()
        .filter_map(|k| std::env::var(k).ok().map(|v| (k.to_string(), v)))
        .collect()
}

/// The compiler that built the engine (`rustc --version`), or
/// `"unknown"` when the toolchain isn't on PATH (records stay
/// comparable either way — an unknown toolchain simply can't vouch for
/// binary identity).
pub fn toolchain_snapshot() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// One completed run: everything needed to reproduce it and everything
/// observed while running it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The spec's 16-hex content hash (the record's address).
    pub spec_hash: String,
    /// The spec's human name.
    pub spec_name: String,
    /// The canonical TOML form of the spec — re-parse this to re-run.
    pub spec_toml: String,
    /// Engine fingerprint per probed configuration (key `"t<threads>"`,
    /// value 16-hex). Bit-determinism means every key maps to the same
    /// value; the record keeps them separate so a violation is visible.
    pub fingerprints: BTreeMap<String, String>,
    /// `rustc --version` of the engine build.
    pub toolchain: String,
    /// The `ANTON_*` knobs set when the run happened.
    pub env: BTreeMap<String, String>,
    /// The full observatory report collected during the run.
    pub observatory: ObservatoryReport,
}

impl RunRecord {
    /// Assemble a record for `spec` with environment and toolchain
    /// snapshots taken now.
    pub fn new(
        spec: &ScenarioSpec,
        fingerprints: BTreeMap<String, String>,
        observatory: ObservatoryReport,
    ) -> RunRecord {
        RunRecord {
            spec_hash: spec.hash_hex(),
            spec_name: spec.name.clone(),
            spec_toml: spec.to_toml(),
            fingerprints,
            toolchain: toolchain_snapshot(),
            env: env_snapshot(),
            observatory,
        }
    }

    /// The record's path inside a ledger directory.
    pub fn path_in(dir: &Path, hash: &str) -> PathBuf {
        dir.join(format!("{hash}.json"))
    }

    /// Serialize. Deterministic for a given record (maps iterate
    /// sorted), so re-running an identical spec in an identical
    /// environment rewrites an identical file.
    pub fn to_json(&self) -> String {
        let esc = anton_obs::json::escape;
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"spec_hash\": {},\n", esc(&self.spec_hash)));
        out.push_str(&format!("  \"spec_name\": {},\n", esc(&self.spec_name)));
        out.push_str(&format!("  \"spec_toml\": {},\n", esc(&self.spec_toml)));
        out.push_str("  \"fingerprints\": {");
        push_string_map(&mut out, &self.fingerprints);
        out.push_str("},\n");
        out.push_str(&format!("  \"toolchain\": {},\n", esc(&self.toolchain)));
        out.push_str("  \"env\": {");
        push_string_map(&mut out, &self.env);
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"observatory\": {}\n",
            self.observatory.to_json().trim_end()
        ));
        out.push_str("}\n");
        out
    }

    /// Parse a serialized record (strict: validates the JSON, then
    /// requires exactly this schema's shape).
    pub fn parse(input: &str) -> Result<RunRecord, String> {
        validate_json(input).map_err(|e| e.to_string())?;
        let mut p = Lex::new(input);
        p.expect(b'{')?;
        let mut schema = None;
        let mut spec_hash = None;
        let mut spec_name = None;
        let mut spec_toml = None;
        let mut fingerprints = None;
        let mut toolchain = None;
        let mut env = None;
        let mut observatory = None;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "schema" => schema = Some(p.number()?),
                "spec_hash" => spec_hash = Some(p.string()?),
                "spec_name" => spec_name = Some(p.string()?),
                "spec_toml" => spec_toml = Some(p.string()?),
                "fingerprints" => fingerprints = Some(parse_string_map(&mut p)?),
                "toolchain" => toolchain = Some(p.string()?),
                "env" => env = Some(parse_string_map(&mut p)?),
                "observatory" => observatory = Some(ObservatoryReport::parse_object(&mut p)?),
                other => return Err(format!("unknown run-record key {other:?}")),
            }
            if !p.comma_or(b'}')? {
                break;
            }
        }
        if schema != Some(1.0) {
            return Err("run record schema must be 1".to_owned());
        }
        Ok(RunRecord {
            spec_hash: spec_hash.ok_or("missing spec_hash")?,
            spec_name: spec_name.ok_or("missing spec_name")?,
            spec_toml: spec_toml.ok_or("missing spec_toml")?,
            fingerprints: fingerprints.ok_or("missing fingerprints")?,
            toolchain: toolchain.ok_or("missing toolchain")?,
            env: env.ok_or("missing env")?,
            observatory: observatory.ok_or("missing observatory")?,
        })
    }

    /// Write the record into `dir` (created if needed) at its
    /// content-addressed path.
    pub fn store(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = RunRecord::path_in(dir, &self.spec_hash);
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Load and parse the record stored for `hash` in `dir`.
    pub fn load(dir: &Path, hash: &str) -> Result<RunRecord, String> {
        let path = RunRecord::path_in(dir, hash);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        RunRecord::parse(&text)
    }
}

fn push_string_map(out: &mut String, map: &BTreeMap<String, String>) {
    let esc = anton_obs::json::escape;
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    {}: {}", esc(k), esc(v)));
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
}

fn parse_string_map(p: &mut Lex<'_>) -> Result<BTreeMap<String, String>, String> {
    p.expect(b'{')?;
    let mut out = BTreeMap::new();
    if p.peek() == Some(b'}') {
        p.expect(b'}')?;
        return Ok(out);
    }
    loop {
        let k = p.string()?;
        p.expect(b':')?;
        let v = p.string()?;
        out.insert(k, v);
        if !p.comma_or(b'}')? {
            return Ok(out);
        }
    }
}

/// One committed index entry: where a spec lives and what it should
/// reproduce.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// The spec's content hash (16-hex).
    pub hash: String,
    /// The spec's human name.
    pub name: String,
    /// Repo-relative path of the committed spec file.
    pub spec_path: String,
    /// The engine fingerprint the spec must reproduce (16-hex).
    pub fingerprint: String,
    /// Free-form context for readers of the committed index.
    pub note: String,
}

/// The committed `LEDGER.json`: a name→hash→spec-path index over the
/// content-addressed records, small enough to live in git while the
/// records themselves stay under `target/`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerIndex {
    /// The committed entries, sorted by name then hash.
    pub entries: Vec<LedgerEntry>,
}

impl LedgerIndex {
    /// Serialize, deterministically.
    pub fn to_json(&self) -> String {
        let esc = anton_obs::json::escape;
        let mut out = String::from("{\n  \"schema\": 1,\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"hash\": {},\n", esc(&e.hash)));
            out.push_str(&format!("      \"name\": {},\n", esc(&e.name)));
            out.push_str(&format!("      \"spec_path\": {},\n", esc(&e.spec_path)));
            out.push_str(&format!(
                "      \"fingerprint\": {},\n",
                esc(&e.fingerprint)
            ));
            out.push_str(&format!("      \"note\": {}\n", esc(&e.note)));
            out.push_str("    }");
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parse a serialized index (strict shape, like [`RunRecord::parse`]).
    pub fn parse(input: &str) -> Result<LedgerIndex, String> {
        validate_json(input).map_err(|e| e.to_string())?;
        let mut p = Lex::new(input);
        p.expect(b'{')?;
        let mut schema = None;
        let mut entries = Vec::new();
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "schema" => schema = Some(p.number()?),
                "entries" => {
                    p.expect(b'[')?;
                    if p.peek() == Some(b']') {
                        p.expect(b']')?;
                    } else {
                        loop {
                            entries.push(parse_entry(&mut p)?);
                            if !p.comma_or(b']')? {
                                break;
                            }
                        }
                    }
                }
                other => return Err(format!("unknown ledger-index key {other:?}")),
            }
            if !p.comma_or(b'}')? {
                break;
            }
        }
        if schema != Some(1.0) {
            return Err("ledger index schema must be 1".to_owned());
        }
        Ok(LedgerIndex { entries })
    }

    /// Load an index from disk; a missing file is an empty index (the
    /// first `scenario run --index` bootstraps it).
    pub fn load(path: &Path) -> Result<LedgerIndex, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => LedgerIndex::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(LedgerIndex::default()),
            Err(e) => Err(format!("read {}: {e}", path.display())),
        }
    }

    /// Write the index to disk.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Insert or replace the entry with this hash, keeping the index
    /// sorted by name then hash.
    pub fn upsert(&mut self, entry: LedgerEntry) {
        self.entries.retain(|e| e.hash != entry.hash);
        self.entries.push(entry);
        self.entries
            .sort_by(|a, b| (&a.name, &a.hash).cmp(&(&b.name, &b.hash)));
    }

    /// Find an entry by exact hash, unique hash prefix, or exact name.
    pub fn resolve(&self, key: &str) -> Option<&LedgerEntry> {
        if let Some(e) = self.entries.iter().find(|e| e.hash == key || e.name == key) {
            return Some(e);
        }
        let mut by_prefix = self.entries.iter().filter(|e| e.hash.starts_with(key));
        match (by_prefix.next(), by_prefix.next()) {
            (Some(e), None) => Some(e),
            _ => None,
        }
    }

    /// The names in the index, for "unknown name" hints.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }
}

fn parse_entry(p: &mut Lex<'_>) -> Result<LedgerEntry, String> {
    p.expect(b'{')?;
    let mut hash = None;
    let mut name = None;
    let mut spec_path = None;
    let mut fingerprint = None;
    let mut note = None;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "hash" => hash = Some(p.string()?),
            "name" => name = Some(p.string()?),
            "spec_path" => spec_path = Some(p.string()?),
            "fingerprint" => fingerprint = Some(p.string()?),
            "note" => note = Some(p.string()?),
            other => return Err(format!("unknown ledger-entry key {other:?}")),
        }
        if !p.comma_or(b'}')? {
            break;
        }
    }
    Ok(LedgerEntry {
        hash: hash.ok_or("entry missing hash")?,
        name: name.ok_or("entry missing name")?,
        spec_path: spec_path.ok_or("entry missing spec_path")?,
        fingerprint: fingerprint.ok_or("entry missing fingerprint")?,
        note: note.unwrap_or_default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_obs::Section;

    fn sample_record() -> RunRecord {
        let spec = crate::presets::md_balanced();
        let mut obs = ObservatoryReport::new("test run");
        obs.metrics.set("makespan_us", 12.5);
        obs.set_section(
            "congestion",
            Section::values(BTreeMap::from([("hot0_busy_ns".to_owned(), 42.0)])),
        );
        let mut fps = BTreeMap::new();
        fps.insert("t1".to_owned(), "458e528e99e105c2".to_owned());
        fps.insert("t4".to_owned(), "458e528e99e105c2".to_owned());
        let mut rec = RunRecord::new(&spec, fps, obs);
        // Pin the host-dependent snapshots so the test is hermetic.
        rec.toolchain = "rustc 1.0.0-test".to_owned();
        rec.env = BTreeMap::from([("ANTON_THREADS".to_owned(), "4".to_owned())]);
        rec
    }

    #[test]
    fn run_record_round_trips() {
        let rec = sample_record();
        let json = rec.to_json();
        validate_json(&json).expect("valid JSON");
        let parsed = RunRecord::parse(&json).expect("parses");
        assert_eq!(rec, parsed);
        // The embedded spec text reproduces the hash it claims.
        let spec = ScenarioSpec::from_toml_str(&parsed.spec_toml).expect("spec parses");
        assert_eq!(spec.hash_hex(), parsed.spec_hash);
    }

    #[test]
    fn run_record_store_and_load() {
        let dir = std::env::temp_dir().join("anton_scenario_ledger_test");
        let _ = std::fs::remove_dir_all(&dir);
        let rec = sample_record();
        let path = rec.store(&dir).expect("store");
        assert!(path.ends_with(format!("{}.json", rec.spec_hash)));
        let loaded = RunRecord::load(&dir, &rec.spec_hash).expect("load");
        assert_eq!(rec, loaded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_round_trips_and_resolves() {
        let mut idx = LedgerIndex::default();
        idx.upsert(LedgerEntry {
            hash: "aaaa000011112222".to_owned(),
            name: "md_balanced".to_owned(),
            spec_path: "specs/md_balanced.toml".to_owned(),
            fingerprint: "458e528e99e105c2".to_owned(),
            note: "balanced MD exchange".to_owned(),
        });
        idx.upsert(LedgerEntry {
            hash: "bbbb000011112222".to_owned(),
            name: "md_skewed".to_owned(),
            spec_path: "specs/md_skewed.toml".to_owned(),
            fingerprint: "1111222233334444".to_owned(),
            note: String::new(),
        });
        let parsed = LedgerIndex::parse(&idx.to_json()).expect("parses");
        assert_eq!(idx, parsed);

        assert_eq!(idx.resolve("md_skewed").unwrap().hash, "bbbb000011112222");
        assert_eq!(idx.resolve("aaaa").unwrap().name, "md_balanced");
        assert_eq!(idx.resolve("aaaa000011112222").unwrap().name, "md_balanced");
        assert!(idx.resolve("cccc").is_none(), "unknown prefix");
        assert!(idx.resolve("").is_none(), "ambiguous prefix");
        assert_eq!(idx.names(), vec!["md_balanced", "md_skewed"]);

        // Upserting an existing hash replaces the entry.
        idx.upsert(LedgerEntry {
            hash: "aaaa000011112222".to_owned(),
            name: "md_balanced".to_owned(),
            spec_path: "specs/md_balanced.toml".to_owned(),
            fingerprint: "5555666677778888".to_owned(),
            note: "updated".to_owned(),
        });
        assert_eq!(idx.entries.len(), 2);
        assert_eq!(
            idx.resolve("md_balanced").unwrap().fingerprint,
            "5555666677778888"
        );
    }

    #[test]
    fn missing_index_is_empty() {
        let idx = LedgerIndex::load(Path::new("/nonexistent/LEDGER.json")).expect("empty");
        assert!(idx.entries.is_empty());
    }
}
