//! The [`ScenarioSpec`] model: a complete, declarative description of
//! one simulation run — topology, timing profile, workload, fault and
//! recovery policy, chaos knobs, and engine configuration — with a
//! canonical byte encoding and a stable content hash.
//!
//! The hash is the provenance primitive everything else builds on: two
//! specs hash equal iff they describe the same experiment, independent
//! of key order, table order, comments, or integer-vs-float spelling in
//! the source file. That holds because hashing never touches the source
//! text: the file is parsed into the typed struct, the struct is
//! rendered to sorted `key=value` lines ([`ScenarioSpec::canonical_bytes`]),
//! and the FNV-1a hash of those bytes is the identity.

use std::collections::BTreeMap;

use anton_core::MdExchangeParams;
use anton_des::{LookaheadMode, SimTime};
use anton_net::{FaultPlan, ObsMode, RecoveryConfig, Timing};
use anton_obs::fnv1a64;
use anton_topo::{Coord, NodeId, TorusDims};

use crate::toml::{self, Value};

/// Which calibrated machine generation the fabric models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingProfile {
    /// The paper's machine: 162 ns one-hop, 822 ns diameter
    /// ([`Timing::anton1`]).
    #[default]
    Anton1,
    /// The successor-generation profile ([`Timing::anton3`]).
    Anton3,
}

impl TimingProfile {
    /// Canonical lowercase name (`"anton1"` / `"anton3"`).
    pub fn name(self) -> &'static str {
        match self {
            TimingProfile::Anton1 => "anton1",
            TimingProfile::Anton3 => "anton3",
        }
    }

    /// Parse a profile name; `None` for anything unknown.
    pub fn parse_str(s: &str) -> Option<TimingProfile> {
        match s {
            "anton1" => Some(TimingProfile::Anton1),
            "anton3" => Some(TimingProfile::Anton3),
            _ => None,
        }
    }

    /// The calibrated [`Timing`] table for this profile.
    pub fn timing(self) -> Timing {
        match self {
            TimingProfile::Anton1 => Timing::anton1(),
            TimingProfile::Anton3 => Timing::anton3(),
        }
    }
}

/// Collective algorithm selector, mirrored from
/// [`anton_collectives::Algorithm`] so spec files can name it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgorithmSpec {
    /// Anton's dimension-ordered multicast counted-write reduction.
    #[default]
    DimensionOrdered,
    /// Radix-2 butterfly.
    Butterfly,
    /// Unidirectional ring.
    Ring,
}

impl AlgorithmSpec {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmSpec::DimensionOrdered => "dimension_ordered",
            AlgorithmSpec::Butterfly => "butterfly",
            AlgorithmSpec::Ring => "ring",
        }
    }

    /// Parse an algorithm name; `None` for anything unknown.
    pub fn parse_str(s: &str) -> Option<AlgorithmSpec> {
        match s {
            "dimension_ordered" => Some(AlgorithmSpec::DimensionOrdered),
            "butterfly" => Some(AlgorithmSpec::Butterfly),
            "ring" => Some(AlgorithmSpec::Ring),
            _ => None,
        }
    }

    /// The engine-side algorithm value.
    pub fn algorithm(self) -> anton_collectives::Algorithm {
        match self {
            AlgorithmSpec::DimensionOrdered => anton_collectives::Algorithm::DimensionOrdered,
            AlgorithmSpec::Butterfly => anton_collectives::Algorithm::Butterfly,
            AlgorithmSpec::Ring => anton_collectives::Algorithm::Ring,
        }
    }
}

/// What the simulated machine runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// The MD neighbor-exchange skeleton (`anton_core::parstep`).
    MdExchange {
        /// Simulated time steps.
        steps: u32,
        /// f64 values per neighbor message.
        values_per_msg: u32,
        /// Per-step force-computation time, ns.
        compute_ns: f64,
        /// Extra compute per unit Z coordinate, ns (spatial imbalance).
        compute_skew_ns: f64,
    },
    /// A packet-level all-reduce ([`anton_collectives::allreduce`]).
    AllReduce {
        /// Algorithm to run.
        algorithm: AlgorithmSpec,
        /// f64 values reduced per node.
        vlen: u32,
        /// Seed for the deterministic per-node inputs.
        seed: u64,
        /// Back-to-back repetitions (fingerprint covers all of them).
        reps: u32,
    },
    /// The self-healing all-reduce under injected faults
    /// ([`anton_collectives::recovering`]).
    Recovering {
        /// f64 values reduced per node.
        vlen: u32,
        /// Seed for the deterministic per-node inputs.
        seed: u64,
        /// Hard node deaths as `[node_index, time_ns]` pairs.
        deaths: Vec<(u32, u64)>,
    },
    /// The Table-2 one-way latency microbenchmark.
    PingPong {
        /// Source coordinate.
        from: (u32, u32, u32),
        /// Destination coordinate.
        to: (u32, u32, u32),
        /// Payload size in bytes.
        payload_bytes: u32,
        /// Measure both directions.
        bidirectional: bool,
        /// Repetitions averaged into the reported latency.
        reps: u32,
    },
}

impl Workload {
    /// Canonical workload kind name.
    pub fn kind(&self) -> &'static str {
        match self {
            Workload::MdExchange { .. } => "md_exchange",
            Workload::AllReduce { .. } => "all_reduce",
            Workload::Recovering { .. } => "recovering",
            Workload::PingPong { .. } => "ping_pong",
        }
    }
}

/// Fault-injection policy (spec-side mirror of [`FaultPlan`]'s
/// rate-based knobs; node deaths live on the workload that schedules
/// them).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for the fault plan's deterministic draws.
    pub seed: u64,
    /// Per-traversal transient drop probability.
    pub drop_rate: f64,
    /// Per-traversal payload-corruption probability.
    pub corrupt_rate: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 1,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }
}

/// Recovery policy (spec-side mirror of [`RecoveryConfig`]'s
/// constructors).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverySpec {
    /// Whether the self-healing subsystem is on.
    pub enabled: bool,
    /// Seed for backoff jitter and ack-ambiguity draws.
    pub seed: u64,
}

impl Default for RecoverySpec {
    fn default() -> Self {
        RecoverySpec {
            enabled: false,
            seed: 1,
        }
    }
}

/// Chaos-harness knobs (spec-side mirror of `ANTON_CHAOS_SEED` /
/// `ANTON_CHAOS_LEVEL`).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Campaign seed.
    pub seed: u64,
    /// Intensity level, 0 (off) through 3.
    pub level: u32,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec { seed: 1, level: 0 }
    }
}

/// A complete, declarative description of one simulation run.
///
/// Everything that affects simulated results or engine behavior is a
/// field here and participates in [`ScenarioSpec::content_hash`];
/// nothing else does.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable scenario name (hash-affecting: two experiments
    /// with different names are different ledger entries).
    pub name: String,
    /// Torus dimensions.
    pub dims: (u32, u32, u32),
    /// Machine-generation timing profile.
    pub timing: TimingProfile,
    /// Worker-thread budget for the parallel engine (1 = sequential).
    pub threads: u32,
    /// Conservative-window lookahead mode.
    pub lookahead: LookaheadMode,
    /// Observability recorder mode.
    pub obs: ObsMode,
    /// Chaos-harness knobs.
    pub chaos: ChaosSpec,
    /// Fault-injection policy.
    pub fault: FaultSpec,
    /// Recovery policy.
    pub recovery: RecoverySpec,
    /// What the machine runs.
    pub workload: Workload,
}

impl ScenarioSpec {
    // ---- typed accessors (spec → engine values) -------------------------

    /// Torus dimensions as the engine type.
    pub fn torus_dims(&self) -> TorusDims {
        TorusDims::new(self.dims.0, self.dims.1, self.dims.2)
    }

    /// The calibrated timing table for the spec's profile.
    pub fn timing_table(&self) -> Timing {
        self.timing.timing()
    }

    /// The fault plan implied by [`ScenarioSpec::fault`] (rates only;
    /// deaths are scheduled by [`ScenarioSpec::deaths`]).
    pub fn fault_plan(&self) -> FaultPlan {
        if self.fault.drop_rate == 0.0 && self.fault.corrupt_rate == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::seeded(self.fault.seed)
                .with_drop_rate(self.fault.drop_rate)
                .with_corrupt_rate(self.fault.corrupt_rate)
        }
    }

    /// The recovery configuration implied by [`ScenarioSpec::recovery`].
    pub fn recovery_config(&self) -> RecoveryConfig {
        if self.recovery.enabled {
            RecoveryConfig::recovering(self.recovery.seed)
        } else {
            RecoveryConfig::disabled()
        }
    }

    /// MD-exchange parameters, if the workload is one.
    pub fn md_params(&self) -> Option<MdExchangeParams> {
        match &self.workload {
            Workload::MdExchange {
                steps,
                values_per_msg,
                compute_ns,
                compute_skew_ns,
            } => Some(MdExchangeParams {
                steps: *steps,
                values_per_msg: *values_per_msg as usize,
                compute_ns: *compute_ns,
                compute_skew_ns: *compute_skew_ns,
            }),
            _ => None,
        }
    }

    /// Scheduled node deaths as engine values (empty unless the
    /// workload carries a death schedule).
    pub fn deaths(&self) -> Vec<(NodeId, SimTime)> {
        match &self.workload {
            Workload::Recovering { deaths, .. } => deaths
                .iter()
                .map(|&(node, ns)| (NodeId(node), SimTime::from_ns(ns)))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Coordinates of every scheduled death on this spec's torus.
    pub fn death_coords(&self) -> Vec<(Coord, SimTime)> {
        let dims = self.torus_dims();
        self.deaths()
            .into_iter()
            .map(|(node, at)| (node.coord(dims), at))
            .collect()
    }

    // ---- canonical encoding and hashing ---------------------------------

    /// The spec as a sorted `key=value\n` byte stream — the canonical
    /// form the content hash is computed over. Keys are the same dotted
    /// keys the TOML form uses; floats render via `{:?}` so `250.0`
    /// and `2.5e2` in source text encode identically.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        for (k, v) in self.canonical_map() {
            out.push_str(&k);
            out.push('=');
            out.push_str(&v);
            out.push('\n');
        }
        out.into_bytes()
    }

    /// The 64-bit FNV-1a content hash of [`ScenarioSpec::canonical_bytes`].
    pub fn content_hash(&self) -> u64 {
        fnv1a64(&self.canonical_bytes())
    }

    /// The content hash as the fixed-width 16-char lowercase hex form
    /// used for ledger filenames and CLI arguments.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash())
    }

    fn canonical_map(&self) -> BTreeMap<String, String> {
        let mut m = BTreeMap::new();
        let mut put = |k: &str, v: String| {
            m.insert(k.to_owned(), v);
        };
        put("name", self.name.clone());
        put("topology.nx", self.dims.0.to_string());
        put("topology.ny", self.dims.1.to_string());
        put("topology.nz", self.dims.2.to_string());
        put("engine.timing", self.timing.name().to_owned());
        put("engine.threads", self.threads.to_string());
        put("engine.lookahead", self.lookahead.to_string());
        put("engine.obs", self.obs.to_string());
        put("chaos.seed", self.chaos.seed.to_string());
        put("chaos.level", self.chaos.level.to_string());
        put("fault.seed", self.fault.seed.to_string());
        put("fault.drop_rate", format!("{:?}", self.fault.drop_rate));
        put(
            "fault.corrupt_rate",
            format!("{:?}", self.fault.corrupt_rate),
        );
        put("recovery.enabled", self.recovery.enabled.to_string());
        put("recovery.seed", self.recovery.seed.to_string());
        put("workload.kind", self.workload.kind().to_owned());
        match &self.workload {
            Workload::MdExchange {
                steps,
                values_per_msg,
                compute_ns,
                compute_skew_ns,
            } => {
                put("workload.steps", steps.to_string());
                put("workload.values_per_msg", values_per_msg.to_string());
                put("workload.compute_ns", format!("{compute_ns:?}"));
                put("workload.compute_skew_ns", format!("{compute_skew_ns:?}"));
            }
            Workload::AllReduce {
                algorithm,
                vlen,
                seed,
                reps,
            } => {
                put("workload.algorithm", algorithm.name().to_owned());
                put("workload.vlen", vlen.to_string());
                put("workload.seed", seed.to_string());
                put("workload.reps", reps.to_string());
            }
            Workload::Recovering { vlen, seed, deaths } => {
                put("workload.vlen", vlen.to_string());
                put("workload.seed", seed.to_string());
                let rendered: Vec<String> = deaths
                    .iter()
                    .map(|(node, ns)| format!("[{node},{ns}]"))
                    .collect();
                put("workload.deaths", format!("[{}]", rendered.join(",")));
            }
            Workload::PingPong {
                from,
                to,
                payload_bytes,
                bidirectional,
                reps,
            } => {
                put(
                    "workload.from",
                    format!("[{},{},{}]", from.0, from.1, from.2),
                );
                put("workload.to", format!("[{},{},{}]", to.0, to.1, to.2));
                put("workload.payload_bytes", payload_bytes.to_string());
                put("workload.bidirectional", bidirectional.to_string());
                put("workload.reps", reps.to_string());
            }
        }
        m
    }

    // ---- TOML form ------------------------------------------------------

    /// Render the canonical TOML form: fixed section order, every field
    /// explicit. `parse(to_toml())` round-trips to an equal spec (and
    /// therefore an equal hash).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name = {}\n", toml::quote(&self.name)));
        out.push_str("\n[topology]\n");
        out.push_str(&format!("nx = {}\n", self.dims.0));
        out.push_str(&format!("ny = {}\n", self.dims.1));
        out.push_str(&format!("nz = {}\n", self.dims.2));
        out.push_str("\n[engine]\n");
        out.push_str(&format!("timing = \"{}\"\n", self.timing.name()));
        out.push_str(&format!("threads = {}\n", self.threads));
        out.push_str(&format!("lookahead = \"{}\"\n", self.lookahead));
        out.push_str(&format!("obs = \"{}\"\n", self.obs));
        out.push_str("\n[chaos]\n");
        out.push_str(&format!("seed = {}\n", self.chaos.seed));
        out.push_str(&format!("level = {}\n", self.chaos.level));
        out.push_str("\n[fault]\n");
        out.push_str(&format!("seed = {}\n", self.fault.seed));
        out.push_str(&format!(
            "drop_rate = {}\n",
            float_toml(self.fault.drop_rate)
        ));
        out.push_str(&format!(
            "corrupt_rate = {}\n",
            float_toml(self.fault.corrupt_rate)
        ));
        out.push_str("\n[recovery]\n");
        out.push_str(&format!("enabled = {}\n", self.recovery.enabled));
        out.push_str(&format!("seed = {}\n", self.recovery.seed));
        out.push_str("\n[workload]\n");
        out.push_str(&format!("kind = \"{}\"\n", self.workload.kind()));
        match &self.workload {
            Workload::MdExchange {
                steps,
                values_per_msg,
                compute_ns,
                compute_skew_ns,
            } => {
                out.push_str(&format!("steps = {steps}\n"));
                out.push_str(&format!("values_per_msg = {values_per_msg}\n"));
                out.push_str(&format!("compute_ns = {}\n", float_toml(*compute_ns)));
                out.push_str(&format!(
                    "compute_skew_ns = {}\n",
                    float_toml(*compute_skew_ns)
                ));
            }
            Workload::AllReduce {
                algorithm,
                vlen,
                seed,
                reps,
            } => {
                out.push_str(&format!("algorithm = \"{}\"\n", algorithm.name()));
                out.push_str(&format!("vlen = {vlen}\n"));
                out.push_str(&format!("seed = {seed}\n"));
                out.push_str(&format!("reps = {reps}\n"));
            }
            Workload::Recovering { vlen, seed, deaths } => {
                out.push_str(&format!("vlen = {vlen}\n"));
                out.push_str(&format!("seed = {seed}\n"));
                let rendered: Vec<String> = deaths
                    .iter()
                    .map(|(node, ns)| format!("[{node}, {ns}]"))
                    .collect();
                out.push_str(&format!("deaths = [{}]\n", rendered.join(", ")));
            }
            Workload::PingPong {
                from,
                to,
                payload_bytes,
                bidirectional,
                reps,
            } => {
                out.push_str(&format!("from = [{}, {}, {}]\n", from.0, from.1, from.2));
                out.push_str(&format!("to = [{}, {}, {}]\n", to.0, to.1, to.2));
                out.push_str(&format!("payload_bytes = {payload_bytes}\n"));
                out.push_str(&format!("bidirectional = {bidirectional}\n"));
                out.push_str(&format!("reps = {reps}\n"));
            }
        }
        out
    }

    /// Parse a spec from its TOML form. Strict: every key must be one
    /// this model has a field for (a typo'd knob silently reverting to
    /// a default would poison the content hash's meaning), required
    /// sections are `name`, `[topology]`, and `[workload]`; `[engine]`,
    /// `[chaos]`, `[fault]`, and `[recovery]` default as documented on
    /// their spec types.
    pub fn from_toml_str(input: &str) -> Result<ScenarioSpec, String> {
        let mut map = toml::parse(input)?;
        let mut take = |k: &str| map.remove(k);

        let name = take("name")
            .ok_or("missing top-level `name`")?
            .as_str()
            .ok_or("`name` must be a string")?
            .to_owned();
        if name.is_empty() {
            return Err("`name` must be non-empty".to_owned());
        }

        let dims = (
            req_u32(&mut take, "topology.nx")?,
            req_u32(&mut take, "topology.ny")?,
            req_u32(&mut take, "topology.nz")?,
        );

        let timing = match take("engine.timing") {
            None => TimingProfile::default(),
            Some(v) => {
                let s = v.as_str().ok_or("`engine.timing` must be a string")?;
                TimingProfile::parse_str(s)
                    .ok_or_else(|| format!("unknown timing profile {s:?} (anton1|anton3)"))?
            }
        };
        let threads = match take("engine.threads") {
            None => 1,
            Some(v) => as_u32(&v, "engine.threads")?,
        };
        if threads == 0 {
            return Err("`engine.threads` must be >= 1".to_owned());
        }
        let lookahead = match take("engine.lookahead") {
            None => LookaheadMode::default(),
            Some(v) => {
                let s = v.as_str().ok_or("`engine.lookahead` must be a string")?;
                match s {
                    "global" => LookaheadMode::Global,
                    "adaptive" => LookaheadMode::Adaptive,
                    other => {
                        return Err(format!(
                            "unknown lookahead mode {other:?} (global|adaptive)"
                        ))
                    }
                }
            }
        };
        let obs = match take("engine.obs") {
            None => ObsMode::Off,
            Some(v) => {
                let s = v.as_str().ok_or("`engine.obs` must be a string")?;
                ObsMode::parse_str(s)
                    .ok_or_else(|| format!("unknown obs mode {s:?} (off|flight|stream)"))?
            }
        };

        let chaos = ChaosSpec {
            seed: opt_u64(&mut take, "chaos.seed", 1)?,
            level: opt_u32(&mut take, "chaos.level", 0)?,
        };
        if chaos.level > 3 {
            return Err("`chaos.level` must be 0..=3".to_owned());
        }
        let fault = FaultSpec {
            seed: opt_u64(&mut take, "fault.seed", 1)?,
            drop_rate: opt_rate(&mut take, "fault.drop_rate")?,
            corrupt_rate: opt_rate(&mut take, "fault.corrupt_rate")?,
        };
        let recovery = RecoverySpec {
            enabled: match take("recovery.enabled") {
                None => false,
                Some(v) => v.as_bool().ok_or("`recovery.enabled` must be a boolean")?,
            },
            seed: opt_u64(&mut take, "recovery.seed", 1)?,
        };

        let kind = take("workload.kind")
            .ok_or("missing `workload.kind`")?
            .as_str()
            .ok_or("`workload.kind` must be a string")?
            .to_owned();
        let workload = match kind.as_str() {
            "md_exchange" => Workload::MdExchange {
                steps: req_u32(&mut take, "workload.steps")?,
                values_per_msg: req_u32(&mut take, "workload.values_per_msg")?,
                compute_ns: req_f64(&mut take, "workload.compute_ns")?,
                compute_skew_ns: match take("workload.compute_skew_ns") {
                    None => 0.0,
                    Some(v) => as_f64(&v, "workload.compute_skew_ns")?,
                },
            },
            "all_reduce" => Workload::AllReduce {
                algorithm: match take("workload.algorithm") {
                    None => AlgorithmSpec::default(),
                    Some(v) => {
                        let s = v.as_str().ok_or("`workload.algorithm` must be a string")?;
                        AlgorithmSpec::parse_str(s).ok_or_else(|| {
                            format!("unknown algorithm {s:?} (dimension_ordered|butterfly|ring)")
                        })?
                    }
                },
                vlen: req_u32(&mut take, "workload.vlen")?,
                seed: opt_u64(&mut take, "workload.seed", 42)?,
                reps: opt_u32(&mut take, "workload.reps", 1)?,
            },
            "recovering" => Workload::Recovering {
                vlen: req_u32(&mut take, "workload.vlen")?,
                seed: opt_u64(&mut take, "workload.seed", 42)?,
                deaths: match take("workload.deaths") {
                    None => Vec::new(),
                    Some(v) => parse_deaths(&v)?,
                },
            },
            "ping_pong" => Workload::PingPong {
                from: req_coord(&mut take, "workload.from")?,
                to: req_coord(&mut take, "workload.to")?,
                payload_bytes: opt_u32(&mut take, "workload.payload_bytes", 0)?,
                bidirectional: match take("workload.bidirectional") {
                    None => false,
                    Some(v) => v
                        .as_bool()
                        .ok_or("`workload.bidirectional` must be a boolean")?,
                },
                reps: opt_u32(&mut take, "workload.reps", 1)?,
            },
            other => {
                return Err(format!(
                    "unknown workload kind {other:?} \
                     (md_exchange|all_reduce|recovering|ping_pong)"
                ))
            }
        };

        if let Some(k) = map.keys().next() {
            return Err(format!("unknown key {k:?} for this spec"));
        }

        for (axis, n) in [("nx", dims.0), ("ny", dims.1), ("nz", dims.2)] {
            if n == 0 {
                return Err(format!("`topology.{axis}` must be >= 1"));
            }
        }
        let spec = ScenarioSpec {
            name,
            dims,
            timing,
            threads,
            lookahead,
            obs,
            chaos,
            fault,
            recovery,
            workload,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Structural checks beyond per-field types: coordinates inside the
    /// torus, death nodes in range.
    fn validate(&self) -> Result<(), String> {
        let count = (self.dims.0 as u64) * (self.dims.1 as u64) * (self.dims.2 as u64);
        match &self.workload {
            Workload::PingPong { from, to, .. } => {
                for (label, c) in [("from", from), ("to", to)] {
                    if c.0 >= self.dims.0 || c.1 >= self.dims.1 || c.2 >= self.dims.2 {
                        return Err(format!(
                            "`workload.{label}` [{}, {}, {}] is outside the \
                             {}x{}x{} torus",
                            c.0, c.1, c.2, self.dims.0, self.dims.1, self.dims.2
                        ));
                    }
                }
            }
            Workload::Recovering { deaths, .. } => {
                for (node, _) in deaths {
                    if u64::from(*node) >= count {
                        return Err(format!(
                            "death node {node} is outside the {count}-node torus"
                        ));
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }
}

/// Render an f64 so the TOML form parses back to the same bits and
/// always reads as a float (`{:?}` already prints `250.0`, not `250`).
fn float_toml(f: f64) -> String {
    format!("{f:?}")
}

// ---- small typed-extraction helpers (take closures so `from_toml_str`
// can consume its map while reporting precise key names) ----------------

fn as_u32(v: &Value, key: &str) -> Result<u32, String> {
    v.as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

fn as_f64(v: &Value, key: &str) -> Result<f64, String> {
    v.as_f64()
        .filter(|f| f.is_finite())
        .ok_or_else(|| format!("`{key}` must be a number"))
}

fn req_u32(take: &mut impl FnMut(&str) -> Option<Value>, key: &str) -> Result<u32, String> {
    let v = take(key).ok_or_else(|| format!("missing `{key}`"))?;
    as_u32(&v, key)
}

fn req_f64(take: &mut impl FnMut(&str) -> Option<Value>, key: &str) -> Result<f64, String> {
    let v = take(key).ok_or_else(|| format!("missing `{key}`"))?;
    as_f64(&v, key)
}

fn opt_u32(
    take: &mut impl FnMut(&str) -> Option<Value>,
    key: &str,
    default: u32,
) -> Result<u32, String> {
    match take(key) {
        None => Ok(default),
        Some(v) => as_u32(&v, key),
    }
}

fn opt_u64(
    take: &mut impl FnMut(&str) -> Option<Value>,
    key: &str,
    default: u64,
) -> Result<u64, String> {
    match take(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn opt_rate(take: &mut impl FnMut(&str) -> Option<Value>, key: &str) -> Result<f64, String> {
    match take(key) {
        None => Ok(0.0),
        Some(v) => {
            let f = as_f64(&v, key)?;
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("`{key}` must be a probability in [0, 1]"));
            }
            Ok(f)
        }
    }
}

fn req_coord(
    take: &mut impl FnMut(&str) -> Option<Value>,
    key: &str,
) -> Result<(u32, u32, u32), String> {
    let v = take(key).ok_or_else(|| format!("missing `{key}`"))?;
    let arr = v
        .as_arr()
        .filter(|a| a.len() == 3)
        .ok_or_else(|| format!("`{key}` must be a 3-element coordinate array"))?;
    let mut c = [0u32; 3];
    for (i, item) in arr.iter().enumerate() {
        c[i] = as_u32(item, key)?;
    }
    Ok((c[0], c[1], c[2]))
}

fn parse_deaths(v: &Value) -> Result<Vec<(u32, u64)>, String> {
    let arr = v
        .as_arr()
        .ok_or("`workload.deaths` must be an array of [node, time_ns] pairs")?;
    let mut out = Vec::with_capacity(arr.len());
    for item in arr {
        let pair = item
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or("each death must be a [node, time_ns] pair")?;
        let node = as_u32(&pair[0], "workload.deaths[..][0]")?;
        let ns = pair[1]
            .as_u64()
            .ok_or("death time_ns must be a non-negative integer")?;
        out.push((node, ns));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn md_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "md_test".to_owned(),
            dims: (8, 8, 8),
            timing: TimingProfile::Anton1,
            threads: 4,
            lookahead: LookaheadMode::Adaptive,
            obs: ObsMode::Off,
            chaos: ChaosSpec::default(),
            fault: FaultSpec::default(),
            recovery: RecoverySpec::default(),
            workload: Workload::MdExchange {
                steps: 30,
                values_per_msg: 4,
                compute_ns: 250.0,
                compute_skew_ns: 0.0,
            },
        }
    }

    #[test]
    fn toml_round_trip_preserves_spec_and_hash() {
        let spec = md_spec();
        let parsed = ScenarioSpec::from_toml_str(&spec.to_toml()).expect("round-trips");
        assert_eq!(spec, parsed);
        assert_eq!(spec.content_hash(), parsed.content_hash());
    }

    #[test]
    fn hash_ignores_formatting_but_not_fields() {
        let compact = "\
name = \"x\"
[topology]
nx = 2
ny = 2
nz = 2
[workload]
kind = \"md_exchange\"
steps = 3
values_per_msg = 4
compute_ns = 250.0
";
        let reordered = "\
name = \"x\"   # top-level keys precede any table

[workload]
compute_ns = 2.5e2   # same number, different spelling
steps = 3
kind = \"md_exchange\"
values_per_msg = 4

# comment lines and blank lines are free
[topology]
nz = 2
nx = 2
ny = 2
";
        let a = ScenarioSpec::from_toml_str(compact).expect("compact parses");
        let b = ScenarioSpec::from_toml_str(reordered).expect("reordered parses");
        assert_eq!(a.content_hash(), b.content_hash());

        let skewed = compact.replace("compute_ns = 250.0", "compute_ns = 251.0");
        let c = ScenarioSpec::from_toml_str(&skewed).expect("skewed parses");
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected() {
        let base = md_spec().to_toml();
        for mutation in [
            base.replace("steps = 30", "steps = 30\nturbo = true"),
            base.replace("[engine]", "[engine]\nwarp = 9"),
            base.replace("threads = 4", "threads = 0"),
            base.replace("\"adaptive\"", "\"psychic\""),
            base.replace("kind = \"md_exchange\"", "kind = \"md_exchnage\""),
            base.replace("drop_rate = 0.0", "drop_rate = 1.5"),
            base.replace("nx = 8", "nx = 0"),
        ] {
            assert!(
                ScenarioSpec::from_toml_str(&mutation).is_err(),
                "should reject: {mutation}"
            );
        }
    }

    #[test]
    fn workload_variants_round_trip() {
        let mut spec = md_spec();
        for workload in [
            Workload::AllReduce {
                algorithm: AlgorithmSpec::Butterfly,
                vlen: 4,
                seed: 42,
                reps: 6,
            },
            Workload::Recovering {
                vlen: 2,
                seed: 1,
                deaths: vec![(5, 900), (12, 1400)],
            },
            Workload::PingPong {
                from: (0, 0, 0),
                to: (4, 4, 4),
                payload_bytes: 32,
                bidirectional: true,
                reps: 8,
            },
        ] {
            spec.workload = workload;
            let parsed = ScenarioSpec::from_toml_str(&spec.to_toml()).expect("round-trips");
            assert_eq!(spec, parsed);
        }
    }

    #[test]
    fn out_of_range_coordinates_are_rejected() {
        let mut spec = md_spec();
        spec.workload = Workload::PingPong {
            from: (0, 0, 0),
            to: (8, 0, 0),
            payload_bytes: 0,
            bidirectional: false,
            reps: 1,
        };
        assert!(ScenarioSpec::from_toml_str(&spec.to_toml()).is_err());
        spec.workload = Workload::Recovering {
            vlen: 2,
            seed: 1,
            deaths: vec![(512, 900)],
        };
        assert!(ScenarioSpec::from_toml_str(&spec.to_toml()).is_err());
    }

    #[test]
    fn accessors_map_to_engine_values() {
        let spec = md_spec();
        assert_eq!(spec.torus_dims(), TorusDims::new(8, 8, 8));
        let md = spec.md_params().expect("md workload");
        assert_eq!(md.steps, 30);
        assert_eq!(md.values_per_msg, 4);
        assert!(!spec.recovery_config().enabled);
        assert!(spec.deaths().is_empty());

        let mut rec = md_spec();
        rec.recovery = RecoverySpec {
            enabled: true,
            seed: 7,
        };
        rec.workload = Workload::Recovering {
            vlen: 2,
            seed: 1,
            deaths: vec![(5, 900)],
        };
        assert!(rec.recovery_config().enabled);
        assert_eq!(rec.deaths(), vec![(NodeId(5), SimTime::from_ns(900))]);
        let coords = rec.death_coords();
        assert_eq!(coords.len(), 1);
    }
}
