//! A strict, dependency-free parser for the TOML subset scenario spec
//! files use: `#` comments, `[table]` / `[table.sub]` headers, and
//! `key = value` pairs whose values are strings, integers, floats,
//! booleans, or (possibly nested) arrays of those. No inline tables,
//! no arrays-of-tables, no multi-line strings, no datetimes — a spec
//! that needs those is a spec this model doesn't have a field for.
//!
//! Parsing produces a flat, dot-keyed `BTreeMap<String, Value>`
//! (`[engine]` + `threads = 4` → `"engine.threads"`), which is what
//! makes the canonical encoding trivially independent of key and table
//! order in the source file: the map iterates sorted, whatever the
//! file looked like.

use std::collections::BTreeMap;

/// One parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer literal (no float syntax in the source).
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `[v, v, ...]`, possibly nested.
    Arr(Vec<Value>),
}

impl Value {
    /// The value as an `f64`, coercing integers (so `250` and `250.0`
    /// are the same spec).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a spec document into a flat dot-keyed map. Errors carry the
/// 1-based line number. Duplicate keys (after table flattening) are
/// rejected.
pub fn parse(input: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut out = BTreeMap::new();
    let mut prefix = String::new();
    for (ln, raw) in input.lines().enumerate() {
        let ln = ln + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {ln}: unterminated table header"))?
                .trim();
            if name.is_empty() || !name.split('.').all(is_bare_key) {
                return Err(format!("line {ln}: bad table name {name:?}"));
            }
            prefix = name.to_owned();
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| format!("line {ln}: expected `key = value`"))?;
        let key = line[..eq].trim();
        if !is_bare_key(key) {
            return Err(format!("line {ln}: bad key {key:?}"));
        }
        let full = if prefix.is_empty() {
            key.to_owned()
        } else {
            format!("{prefix}.{key}")
        };
        let (value, rest) =
            parse_value(line[eq + 1..].trim()).map_err(|e| format!("line {ln}: {e}"))?;
        if !rest.trim().is_empty() {
            return Err(format!("line {ln}: trailing characters after value"));
        }
        if out.insert(full.clone(), value).is_some() {
            return Err(format!("line {ln}: duplicate key {full:?}"));
        }
    }
    Ok(out)
}

/// Drop a `#` comment, honoring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'"' => in_str = !in_str,
            b'\\' if in_str => {} // escapes stay inside the string
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn is_bare_key(k: &str) -> bool {
    !k.is_empty()
        && k.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Parse one value at the head of `s`; return it plus the unconsumed
/// tail (arrays recurse through here for their elements).
fn parse_value(s: &str) -> Result<(Value, &str), String> {
    let s = s.trim_start();
    if let Some(rest) = s.strip_prefix('[') {
        let mut items = Vec::new();
        let mut rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix(']') {
            return Ok((Value::Arr(items), r));
        }
        loop {
            let (v, r) = parse_value(rest)?;
            items.push(v);
            rest = r.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
                // Allow a trailing comma before the closer.
                if let Some(r) = rest.strip_prefix(']') {
                    return Ok((Value::Arr(items), r));
                }
                continue;
            }
            if let Some(r) = rest.strip_prefix(']') {
                return Ok((Value::Arr(items), r));
            }
            return Err("expected ',' or ']' in array".to_owned());
        }
    }
    if let Some(rest) = s.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((Value::Str(out), &rest[i + 1..])),
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    other => return Err(format!("bad string escape {other:?}")),
                },
                c => out.push(c),
            }
        }
        return Err("unterminated string".to_owned());
    }
    if let Some(rest) = s.strip_prefix("true") {
        return Ok((Value::Bool(true), rest));
    }
    if let Some(rest) = s.strip_prefix("false") {
        return Ok((Value::Bool(false), rest));
    }
    // A number: scan the longest run of number-ish characters.
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E' | '_')))
        .unwrap_or(s.len());
    if end == 0 {
        return Err(format!("expected a value at {s:?}"));
    }
    let tok = s[..end].replace('_', "");
    let rest = &s[end..];
    if tok.contains(['.', 'e', 'E']) {
        let f: f64 = tok
            .parse()
            .map_err(|_| format!("bad float literal {tok:?}"))?;
        if !f.is_finite() {
            return Err(format!("non-finite float literal {tok:?}"));
        }
        Ok((Value::Float(f), rest))
    } else {
        let i: i64 = tok
            .parse()
            .map_err(|_| format!("bad integer literal {tok:?}"))?;
        Ok((Value::Int(i), rest))
    }
}

/// Escape a string into a quoted TOML literal (the writer-side dual of
/// [`parse`]'s string handling).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_keys_and_values() {
        let doc = r#"
# a comment
name = "md # not a comment"

[topology]
nx = 8
ny = 8

[workload.md_exchange]
compute_ns = 250.0
skewed = false
deaths = [[5, 900], [12, 1400]]
"#;
        let m = parse(doc).expect("parses");
        assert_eq!(
            m.get("name"),
            Some(&Value::Str("md # not a comment".to_owned()))
        );
        assert_eq!(m.get("topology.nx"), Some(&Value::Int(8)));
        assert_eq!(
            m.get("workload.md_exchange.compute_ns"),
            Some(&Value::Float(250.0))
        );
        assert_eq!(
            m.get("workload.md_exchange.skewed"),
            Some(&Value::Bool(false))
        );
        let deaths = m
            .get("workload.md_exchange.deaths")
            .and_then(|v| v.as_arr())
            .expect("array");
        assert_eq!(deaths.len(), 2);
        assert_eq!(deaths[0].as_arr().unwrap()[1], Value::Int(900));
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "key",
            "[unterminated",
            "k = ",
            "k = \"open",
            "k = 1 2",
            "k = [1, ",
            "k = nan",
            "a = 1\na = 2",
            "[t]\nx = 1\n[t2]\nx = 1 1",
        ] {
            assert!(parse(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn integer_and_float_spellings_coerce() {
        let m = parse("a = 250\nb = 250.0\nc = 2.5e2").expect("parses");
        for k in ["a", "b", "c"] {
            assert_eq!(m[k].as_f64(), Some(250.0));
        }
    }

    #[test]
    fn quote_round_trips() {
        for s in ["plain", "has \"quotes\"", "back\\slash", "line\nbreak"] {
            let doc = format!("k = {}", quote(s));
            let m = parse(&doc).expect("parses");
            assert_eq!(m["k"].as_str(), Some(s));
        }
    }
}
