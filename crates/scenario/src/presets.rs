//! The repo's standing experiments as [`ScenarioSpec`] constructors.
//!
//! Every bench binary that used to wire its own dims/params/fault
//! constants builds its world from one of these instead, so the spec
//! hash printed by the `scenario` CLI and the workload a bin like
//! `par_speedup` runs can never drift apart. The constants here are
//! the committed baselines' constants: changing one changes a content
//! hash, which is exactly the point.

use crate::spec::{
    AlgorithmSpec, ChaosSpec, FaultSpec, RecoverySpec, ScenarioSpec, TimingProfile, Workload,
};
use anton_des::LookaheadMode;
use anton_net::ObsMode;

/// Engine defaults shared by the presets: Anton-1 timing, 4 worker
/// threads, adaptive windows, no recorder.
fn base(name: &str, dims: (u32, u32, u32), workload: Workload) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_owned(),
        dims,
        timing: TimingProfile::Anton1,
        threads: 4,
        lookahead: LookaheadMode::Adaptive,
        obs: ObsMode::Off,
        chaos: ChaosSpec::default(),
        fault: FaultSpec::default(),
        recovery: RecoverySpec::default(),
        workload,
    }
}

/// The PR-4/PR-9 acceptance workload: a 30-step, perfectly balanced
/// 8×8×8 MD neighbor exchange (`par_speedup`'s balanced half).
pub fn md_balanced() -> ScenarioSpec {
    base(
        "md_balanced",
        (8, 8, 8),
        Workload::MdExchange {
            steps: 30,
            values_per_msg: 4,
            compute_ns: 250.0,
            compute_skew_ns: 0.0,
        },
    )
}

/// The spatially imbalanced variant: 40 ns of extra compute per unit Z
/// staggers the per-slab event streams — the regime where adaptive
/// per-pair lookahead beats the global bound (`par_speedup`'s skewed
/// half).
pub fn md_skewed() -> ScenarioSpec {
    base(
        "md_skewed",
        (8, 8, 8),
        Workload::MdExchange {
            steps: 30,
            values_per_msg: 4,
            compute_ns: 250.0,
            compute_skew_ns: 40.0,
        },
    )
}

/// The 8×8×8 dimension-ordered all-reduce batch from the PR-4 workload:
/// 4 values per node, seed 42, six back-to-back repetitions.
pub fn allreduce_888() -> ScenarioSpec {
    base(
        "allreduce_888",
        (8, 8, 8),
        Workload::AllReduce {
            algorithm: AlgorithmSpec::DimensionOrdered,
            vlen: 4,
            seed: 42,
            reps: 6,
        },
    )
}

/// The number of chaos-campaign intensity levels (0 = quiet fabric).
pub const CHAOS_LEVEL_COUNT: u32 = 4;

/// Per-level transient drop probability of the chaos campaign.
pub const CHAOS_DROP_RATES: [f64; CHAOS_LEVEL_COUNT as usize] = [0.0, 1e-3, 5e-3, 2e-2];

/// Per-level mid-collective node-death count of the chaos campaign.
pub const CHAOS_DEATHS: [usize; CHAOS_LEVEL_COUNT as usize] = [0, 1, 2, 3];

/// splitmix64 — the deterministic chooser for chaos death schedules.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seed-derived death schedule on the 4×4×4 chaos torus: `count`
/// distinct victims (never node 0, the immortal root) at times inside
/// the collective's ~4 µs active window, so deaths genuinely straddle
/// in-flight work.
fn chaos_death_schedule(seed: u64, level: u32, count: usize) -> Vec<(u32, u64)> {
    let n: u64 = 4 * 4 * 4;
    let mut out: Vec<(u32, u64)> = Vec::with_capacity(count);
    let mut k = 0u64;
    while out.len() < count {
        let h = mix(seed ^ mix(u64::from(level)) ^ k);
        k += 1;
        let node = 1 + (h % (n - 1)) as u32;
        if out.iter().any(|(v, _)| *v == node) {
            continue;
        }
        let at_ns = 200 + (h >> 32) % 3_500;
        out.push((node, at_ns));
    }
    out.sort_by_key(|&(v, at)| (at, v));
    out
}

/// One cell of the chaos campaign: the recovering all-reduce on the
/// 4×4×4 torus under the level's drop rate and seed-derived death
/// schedule, with recovery keyed to the same seed (`chaos_campaign`'s
/// cell wiring).
pub fn chaos_cell(seed: u64, level: u32) -> ScenarioSpec {
    assert!(level < CHAOS_LEVEL_COUNT, "chaos level must be 0..=3");
    let idx = level as usize;
    let mut spec = base(
        &format!("chaos_l{level}_seed{seed}"),
        (4, 4, 4),
        Workload::Recovering {
            vlen: 2,
            seed,
            deaths: chaos_death_schedule(seed, level, CHAOS_DEATHS[idx]),
        },
    );
    spec.threads = 2;
    spec.chaos = ChaosSpec { seed, level };
    spec.fault = FaultSpec {
        seed,
        drop_rate: CHAOS_DROP_RATES[idx],
        corrupt_rate: 0.0,
    };
    spec.recovery = RecoverySpec {
        enabled: true,
        seed,
    };
    spec
}

/// A scale-observatory probe: the MD exchange at `steps = 4` under the
/// streaming (bounded-memory) observer on an `n × n × n` torus
/// (`scale_probe`'s per-size run).
pub fn scale_md(n: u32) -> ScenarioSpec {
    let mut spec = base(
        &format!("scale_md_{n}x{n}x{n}"),
        (n, n, n),
        Workload::MdExchange {
            steps: 4,
            values_per_msg: 4,
            compute_ns: 250.0,
            compute_skew_ns: 0.0,
        },
    );
    spec.threads = 1;
    spec.obs = ObsMode::Stream;
    spec
}

/// Figure 6's instrumented transfer: a single-hop (+X) 0-byte
/// unidirectional counted remote write on the 512-node machine,
/// recorded over 8 repetitions (`fig6_breakdown`'s workload).
pub fn fig6_pingpong() -> ScenarioSpec {
    let mut spec = base(
        "fig6_pingpong",
        (8, 8, 8),
        Workload::PingPong {
            from: (0, 0, 0),
            to: (1, 0, 0),
            payload_bytes: 0,
            bidirectional: false,
            reps: 8,
        },
    );
    spec.threads = 1;
    spec.obs = ObsMode::Flight;
    spec
}

/// The observatory's causal-blame workload: the 512-node diameter
/// transfer (corner to node (4,4,4)), recorded over 4 repetitions.
pub fn causal_pingpong() -> ScenarioSpec {
    let mut spec = base(
        "causal_pingpong",
        (8, 8, 8),
        Workload::PingPong {
            from: (0, 0, 0),
            to: (4, 4, 4),
            payload_bytes: 0,
            bidirectional: false,
            reps: 4,
        },
    );
    spec.threads = 1;
    spec.obs = ObsMode::Flight;
    spec
}

/// The observatory's parallel-runtime workload: an 8-step balanced
/// 8×8×8 MD exchange profiled at 1 vs 2 threads.
pub fn observatory_md() -> ScenarioSpec {
    let mut spec = base(
        "observatory_md",
        (8, 8, 8),
        Workload::MdExchange {
            steps: 8,
            values_per_msg: 4,
            compute_ns: 250.0,
            compute_skew_ns: 0.0,
        },
    );
    spec.threads = 2;
    spec
}

/// The observatory's recovery cell: 0.1% transient drops plus one
/// mid-collective node death (node 5 at 900 ns) on the 4×4×4 torus,
/// everything keyed to seed 1.
pub fn observatory_recovery() -> ScenarioSpec {
    let mut spec = base(
        "observatory_recovery",
        (4, 4, 4),
        Workload::Recovering {
            vlen: 2,
            seed: 1,
            deaths: vec![(5, 900)],
        },
    );
    spec.threads = 1;
    spec.chaos = ChaosSpec { seed: 1, level: 1 };
    spec.fault = FaultSpec {
        seed: 1,
        drop_rate: 1e-3,
        corrupt_rate: 0.0,
    };
    spec.recovery = RecoverySpec {
        enabled: true,
        seed: 1,
    };
    spec
}

/// Every named preset, for CLI listing and exhaustive tests.
pub fn all() -> Vec<ScenarioSpec> {
    vec![
        md_balanced(),
        md_skewed(),
        allreduce_888(),
        chaos_cell(1, 1),
        scale_md(16),
        fig6_pingpong(),
        causal_pingpong(),
        observatory_md(),
        observatory_recovery(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_round_trip_and_hash_distinctly() {
        let mut hashes = std::collections::BTreeSet::new();
        for spec in all() {
            let parsed = crate::ScenarioSpec::from_toml_str(&spec.to_toml())
                .unwrap_or_else(|e| panic!("{} round-trips: {e}", spec.name));
            assert_eq!(spec, parsed, "{}", spec.name);
            assert!(
                hashes.insert(spec.content_hash()),
                "{} collides with another preset",
                spec.name
            );
        }
    }

    #[test]
    fn chaos_death_schedule_matches_campaign_wiring() {
        // Level 3 schedules three distinct victims, none of them the
        // immortal root, all inside the collective's active window.
        for seed in 1..=3 {
            let spec = chaos_cell(seed, 3);
            let deaths = match &spec.workload {
                Workload::Recovering { deaths, .. } => deaths.clone(),
                _ => unreachable!(),
            };
            assert_eq!(deaths.len(), 3);
            let nodes: std::collections::BTreeSet<u32> = deaths.iter().map(|&(n, _)| n).collect();
            assert_eq!(nodes.len(), 3, "victims are distinct");
            for &(node, at_ns) in &deaths {
                assert!(node >= 1 && node < 64, "victim on-torus, never root");
                assert!((200..3_700).contains(&at_ns), "death inside the window");
            }
            assert!(
                deaths.windows(2).all(|w| w[0].1 <= w[1].1),
                "sorted by time"
            );
        }
        // Level 0 is the quiet cell.
        let quiet = chaos_cell(1, 0);
        assert!(quiet.deaths().is_empty());
        assert_eq!(quiet.fault.drop_rate, 0.0);
    }
}
