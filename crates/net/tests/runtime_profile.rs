//! The parallel-runtime observatory must be a pure observer: enabling
//! profiling or telemetry on [`ParSimulation`] may not perturb any
//! simulated observable, the deterministic profile fields must be
//! thread-count-invariant, and the speedup attribution must telescope
//! exactly on a real run — not just on the hand-built profiles of the
//! unit tests.

use anton_des::{Heartbeat, SimTime, TelemetryConfig, TelemetrySink};
use anton_net::{
    ClientAddr, ClientKind, CounterId, Ctx, Fabric, FaultPlan, NodeProgram, Packet, ParSimulation,
    Payload, ProgEvent,
};
use anton_obs::runtime::{RuntimeSummary, SpeedupAttribution};
use anton_topo::{NodeId, TorusDims};
use std::sync::{Arc, Mutex};

const C_TOK: CounterId = CounterId(7);
const ADDR: u64 = 0x1000;

/// Every node forwards a token to the next node id `rounds` times —
/// guaranteed cross-shard traffic on every shard boundary.
struct Relay {
    left: u32,
    finished_at: Option<SimTime>,
}

impl Relay {
    fn arm_and_send(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let me = ClientAddr::new(node, ClientKind::Slice(0));
        ctx.watch_counter(me, C_TOK, 1);
        let total = ctx.dims().node_count();
        let next = NodeId((node.0 + 1) % total);
        let pkt = Packet::write(
            me,
            ClientAddr::new(next, ClientKind::Slice(0)),
            ADDR,
            Payload::F64s(vec![node.0 as f64 + self.left as f64]),
        )
        .with_payload_bytes(8)
        .with_counter(C_TOK);
        ctx.send(pkt);
    }
}

impl NodeProgram for Relay {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => self.arm_and_send(node, ctx),
            ProgEvent::CounterReached { .. } => {
                let me = ClientAddr::new(node, ClientKind::Slice(0));
                let _ = ctx.mem_take(me, ADDR);
                ctx.reset_counter(me, C_TOK);
                self.left -= 1;
                if self.left > 0 {
                    self.arm_and_send(node, ctx);
                } else {
                    self.finished_at = Some(ctx.now());
                }
            }
            _ => unreachable!(),
        }
    }
}

fn build(dims: TorusDims) -> Fabric {
    Fabric::with_faults(dims, anton_net::Timing::default(), FaultPlan::none())
}

fn make(rounds: u32) -> impl FnMut(NodeId) -> Relay {
    move |_| Relay {
        left: rounds,
        finished_at: None,
    }
}

struct Observables {
    stats: anton_net::NetStats,
    now: SimTime,
    events: u64,
    finished: Vec<SimTime>,
    flight_len: usize,
}

fn run_relay(
    dims: TorusDims,
    rounds: u32,
    threads: usize,
    profile: bool,
) -> (Observables, Option<anton_des::ParProfile>) {
    let mut sim = ParSimulation::new(threads, move || build(dims), make(rounds));
    sim.attach_flight_recorders();
    if profile {
        sim.enable_runtime_profiling();
    }
    assert!(sim
        .run_guarded(SimTime(u64::MAX / 2), 10_000_000)
        .is_completed());
    let obs = Observables {
        stats: sim.merged_stats(),
        now: sim.now(),
        events: sim.events_processed(),
        finished: (0..dims.node_count())
            .map(|i| sim.program(NodeId(i)).finished_at.expect("finished"))
            .collect(),
        flight_len: sim.merged_flight_events().len(),
    };
    (obs, sim.take_runtime_profile())
}

#[test]
fn profiling_does_not_perturb_any_observable() {
    let dims = TorusDims::new(4, 4, 4);
    let (plain, none) = run_relay(dims, 3, 4, false);
    assert!(none.is_none(), "no profile without opting in");
    let (profiled, prof) = run_relay(dims, 3, 4, true);
    assert_eq!(plain.stats, profiled.stats);
    assert_eq!(plain.now, profiled.now);
    assert_eq!(plain.events, profiled.events);
    assert_eq!(plain.finished, profiled.finished);
    assert_eq!(plain.flight_len, profiled.flight_len);
    let prof = prof.expect("profile was enabled");
    assert_eq!(prof.events, profiled.events, "profile counts every event");
}

#[test]
fn profile_fields_are_thread_count_invariant() {
    let dims = TorusDims::new(4, 4, 4);
    let (_, one) = run_relay(dims, 3, 1, true);
    let one = one.unwrap();
    for threads in [2, 4] {
        let (_, many) = run_relay(dims, 3, threads, true);
        let many = many.unwrap();
        assert_eq!(many.windows, one.windows, "{threads} threads");
        assert_eq!(many.events, one.events);
        assert_eq!(many.shard_events, one.shard_events);
        assert_eq!(many.traffic, one.traffic);
    }
    // Sanity on the deterministic fields themselves.
    assert_eq!(one.shard_events.iter().sum::<u64>(), one.events);
    assert!(
        one.cross_shard_events() > 0,
        "the relay ring must cross shard boundaries"
    );
    let summary = RuntimeSummary::from_profile(&one);
    assert_eq!(summary.events, one.events);
    assert!(summary.cross_shard_fraction > 0.0 && summary.cross_shard_fraction <= 1.0);
}

#[test]
fn attribution_telescopes_on_a_real_run() {
    let dims = TorusDims::new(4, 4, 4);
    let (_, seq) = run_relay(dims, 4, 1, true);
    let seq = seq.unwrap();
    let (_, par) = run_relay(dims, 4, 4, true);
    let par = par.unwrap();
    let attr = SpeedupAttribution::from_profile(seq.wall_ns, &par);
    assert_eq!(attr.threads, 4);
    assert!(attr.par_wall_ns > 0.0);
    // The decomposition is algebraically exact; the error budget only
    // covers float rounding, far inside the 5% acceptance bound.
    let tolerance = 0.05 * attr.gap_ns.abs().max(1000.0);
    assert!(
        attr.telescoping_error_ns() <= tolerance,
        "error {} ns vs gap {} ns",
        attr.telescoping_error_ns(),
        attr.gap_ns
    );
    assert!(attr.speedup() > 0.0);
    assert!(attr.table().contains("speedup attribution"));
}

/// A sink that stores every heartbeat for inspection.
#[derive(Default)]
struct Capture(Mutex<Vec<Heartbeat>>);

impl TelemetrySink for Capture {
    fn emit(&self, beat: &Heartbeat) {
        self.0.lock().unwrap().push(beat.clone());
    }
}

#[test]
fn telemetry_streams_heartbeats_without_perturbing_the_run() {
    let dims = TorusDims::new(4, 4, 4);
    let (plain, _) = run_relay(dims, 3, 4, false);

    let sink = Arc::new(Capture::default());
    let mut sim = ParSimulation::new(4, move || build(dims), make(3));
    sim.enable_telemetry(TelemetryConfig {
        period: std::time::Duration::ZERO,
        sink: sink.clone(),
    });
    assert!(sim
        .run_guarded(SimTime(u64::MAX / 2), 10_000_000)
        .is_completed());
    assert_eq!(sim.merged_stats(), plain.stats, "telemetry is an observer");
    assert_eq!(sim.events_processed(), plain.events);

    let beats = sink.0.lock().unwrap();
    assert!(
        !beats.is_empty(),
        "zero-period telemetry beats every window"
    );
    for pair in beats.windows(2) {
        assert!(pair[1].sim_ps >= pair[0].sim_ps, "sim time is monotone");
        assert!(pair[1].events >= pair[0].events, "event count is monotone");
    }
    let last = beats.last().unwrap();
    assert_eq!(
        last.shard_pending.len(),
        sim.plan().shard_count(),
        "one occupancy slot per shard"
    );
    assert!(last.to_json_line().starts_with("{\"type\":\"heartbeat\""));
    anton_obs::validate_json(&last.to_json_line()).expect("heartbeat line is JSON");
}
