//! End-to-end fabric tests: counted remote writes over the simulated
//! machine reproduce the paper's headline latencies, multicast delivers
//! exactly once, accumulation sums deterministically, and FIFOs drain.

use anton_des::{SimDuration, SimTime};
use anton_net::{
    ClientAddr, ClientKind, CounterId, Ctx, Fabric, NodeProgram, Packet, PatternId, Payload,
    ProgEvent, Simulation,
};
use anton_topo::{Coord, Dim, MulticastPattern, NodeId, TorusDims};

fn slice0(node: NodeId) -> ClientAddr {
    ClientAddr::new(node, ClientKind::Slice(0))
}

/// One-way measurement: node A sends a counted remote write to node B at
/// t=0; B records when its watch fires.
struct OneWay {
    src: NodeId,
    dst: NodeId,
    payload_bytes: u32,
    fired_at: std::rc::Rc<std::cell::Cell<Option<SimTime>>>,
}

impl NodeProgram for OneWay {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => {
                if node == self.dst {
                    ctx.watch_counter(slice0(self.dst), CounterId(0), 1);
                }
                if node == self.src {
                    let pkt =
                        Packet::write(slice0(self.src), slice0(self.dst), 0x100, Payload::Empty)
                            .with_payload_bytes(self.payload_bytes)
                            .with_counter(CounterId(0));
                    ctx.send(pkt);
                }
            }
            ProgEvent::CounterReached { .. } => {
                assert_eq!(node, self.dst);
                self.fired_at.set(Some(ctx.now()));
            }
            _ => {}
        }
    }
}

fn one_way(dims: TorusDims, src: Coord, dst: Coord, payload: u32) -> SimDuration {
    let fired = std::rc::Rc::new(std::cell::Cell::new(None));
    let fabric = Fabric::new(dims);
    let f2 = fired.clone();
    let (s, d) = (src.node_id(dims), dst.node_id(dims));
    let mut sim = Simulation::new(fabric, move |_| OneWay {
        src: s,
        dst: d,
        payload_bytes: payload,
        fired_at: f2.clone(),
    });
    sim.run();
    fired.get().expect("message must arrive") - SimTime::ZERO
}

#[test]
fn single_x_hop_is_162_ns() {
    let dims = TorusDims::anton_512();
    let d = one_way(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 0);
    assert_eq!(d, SimDuration::from_ns(162));
}

#[test]
fn local_write_is_106_ns() {
    // 0-hop case of Figure 5: between clients on the same node we still
    // cross the on-chip ring. Use two different slices on one node.
    struct Local {
        fired: std::rc::Rc<std::cell::Cell<Option<SimTime>>>,
    }
    impl NodeProgram for Local {
        fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
            match pe {
                ProgEvent::Start => {
                    let dst = ClientAddr::new(node, ClientKind::Slice(1));
                    ctx.watch_counter(dst, CounterId(0), 1);
                    let pkt = Packet::write(slice0(node), dst, 0, Payload::Empty)
                        .with_counter(CounterId(0));
                    ctx.send(pkt);
                }
                ProgEvent::CounterReached { .. } => self.fired.set(Some(ctx.now())),
                _ => {}
            }
        }
    }
    let fired = std::rc::Rc::new(std::cell::Cell::new(None));
    let f2 = fired.clone();
    let mut sim = Simulation::new(Fabric::new(TorusDims::new(1, 1, 1)), move |_| Local {
        fired: f2.clone(),
    });
    sim.run();
    assert_eq!(fired.get().unwrap(), SimTime::from_ns(106));
}

#[test]
fn des_matches_analytic_for_all_hop_counts() {
    // Figure 5's sweep: hops 1–4 along X, 5–8 add Y, 9–12 add Z.
    let dims = TorusDims::anton_512();
    let timing = anton_net::Timing::default();
    let src = Coord::new(0, 0, 0);
    for hops in 1..=12u32 {
        let hx = hops.min(4);
        let hy = hops.saturating_sub(4).min(4);
        let hz = hops.saturating_sub(8).min(4);
        let dst = Coord::new(hx, hy, hz);
        for payload in [0u32, 256] {
            let sim = one_way(dims, src, dst, payload);
            let analytic = timing.analytic_latency([hx, hy, hz], payload);
            assert_eq!(
                sim, analytic,
                "hops={hops} payload={payload}: sim {sim} vs analytic {analytic}"
            );
        }
    }
}

#[test]
fn twelve_hop_zero_byte_latency_is_822_ns() {
    // 162 + 3·76 + 8·54 = 822 ns, consistent with Figure 5's ~850 ns scale.
    let dims = TorusDims::anton_512();
    let d = one_way(dims, Coord::new(0, 0, 0), Coord::new(4, 4, 4), 0);
    assert_eq!(d, SimDuration::from_ns(822));
}

/// Counted remote writes from many sources: the counter fires exactly
/// when the predetermined number of packets has arrived (Figure 4).
struct Gather {
    target: NodeId,
    senders: Vec<NodeId>,
    fired: std::rc::Rc<std::cell::Cell<Option<(SimTime, u64)>>>,
}

impl NodeProgram for Gather {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => {
                if node == self.target {
                    ctx.watch_counter(slice0(self.target), CounterId(7), self.senders.len() as u64);
                }
                if let Some(i) = self.senders.iter().position(|&s| s == node) {
                    let pkt = Packet::write(
                        slice0(node),
                        slice0(self.target),
                        0x1000 + i as u64 * 0x20,
                        Payload::F64s(vec![i as f64, 2.0 * i as f64, 3.0]),
                    )
                    .with_counter(CounterId(7));
                    ctx.send(pkt);
                }
            }
            ProgEvent::CounterReached { client, counter } => {
                assert_eq!(client, ClientKind::Slice(0));
                assert_eq!(counter, CounterId(7));
                let v = ctx.read_counter(slice0(node), counter);
                self.fired.set(Some((ctx.now(), v)));
            }
            _ => {}
        }
    }
}

#[test]
fn counter_fires_exactly_at_target_from_multiple_sources() {
    let dims = TorusDims::anton_512();
    let target = Coord::new(4, 4, 4).node_id(dims);
    let senders: Vec<NodeId> = [(0, 0, 0), (1, 4, 4), (4, 0, 4), (7, 7, 7)]
        .iter()
        .map(|&(x, y, z)| Coord::new(x, y, z).node_id(dims))
        .collect();
    let fired = std::rc::Rc::new(std::cell::Cell::new(None));
    let (f2, s2) = (fired.clone(), senders.clone());
    let mut sim = Simulation::new(Fabric::new(dims), move |_| Gather {
        target,
        senders: s2.clone(),
        fired: f2.clone(),
    });
    sim.run();
    let (t, count) = fired.get().expect("gather must complete");
    assert_eq!(count, 4);
    // The last arrival dominates: sender (1,4,4) is 3+0+0... check it's at
    // least the farthest sender's uncontended latency.
    let timing = anton_net::Timing::default();
    let worst = timing.analytic_latency([4, 1, 0], 24); // (0,0,0)→(4,4,4) is [4,4,4]
    let far = timing.analytic_latency([4, 4, 4], 24);
    assert!(t >= SimTime::ZERO + (worst - SimDuration::ZERO));
    assert!(
        t >= SimTime::ZERO + (far - SimDuration::ZERO),
        "t={t} far={far}"
    );
    // All four payloads landed at distinct addresses.
    let mem_count = (0..4)
        .filter(|i| {
            sim.world
                .fabric
                .mem_read(slice0(target), 0x1000 + *i as u64 * 0x20)
                .is_some()
        })
        .count();
    assert_eq!(mem_count, 4);
}

/// Multicast: one injected packet delivers to the whole pattern set
/// exactly once, and the sender pays a single injection.
struct Mcast {
    src: NodeId,
    members: Vec<NodeId>,
    arrivals: std::rc::Rc<std::cell::RefCell<Vec<(NodeId, SimTime)>>>,
}

impl NodeProgram for Mcast {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => {
                if self.members.contains(&node) {
                    ctx.watch_counter(slice0(node), CounterId(3), 1);
                }
                if node == self.src {
                    let pkt = Packet::write(
                        slice0(node),
                        slice0(node), // overridden by multicast
                        0x40,
                        Payload::F64s(vec![9.0]),
                    )
                    .with_counter(CounterId(3))
                    .into_multicast(PatternId(0), ClientKind::Slice(0));
                    ctx.send(pkt);
                }
            }
            ProgEvent::CounterReached { .. } => {
                self.arrivals.borrow_mut().push((node, ctx.now()));
            }
            _ => {}
        }
    }
}

#[test]
fn multicast_delivers_to_every_member_once() {
    let dims = TorusDims::anton_512();
    let src = Coord::new(0, 0, 0);
    // Broadcast along the X ring (the all-reduce building block).
    let pattern = MulticastPattern::line_broadcast(src, Dim::X, dims, false);
    let members: Vec<NodeId> = pattern.delivery_set();
    let mut fabric = Fabric::new(dims);
    fabric.register_pattern(PatternId(0), &pattern);
    let arrivals = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let (a2, m2) = (arrivals.clone(), members.clone());
    let src_id = src.node_id(dims);
    let mut sim = Simulation::new(fabric, move |_| Mcast {
        src: src_id,
        members: m2.clone(),
        arrivals: a2.clone(),
    });
    sim.run();
    let mut got = arrivals.borrow().clone();
    got.sort_by_key(|&(n, _)| n);
    assert_eq!(got.len(), 7);
    assert_eq!(got.iter().map(|&(n, _)| n).collect::<Vec<_>>(), members);
    // One injection, one packet per tree edge: 7 link traversals, not
    // 1+2+3+4+3+2+1 = 16 as unicasts would need.
    assert_eq!(sim.world.fabric.stats.packets_sent, 1);
    assert_eq!(sim.world.fabric.stats.link_traversals, 7);
    assert_eq!(sim.world.fabric.stats.packets_delivered, 7);
    // Nearest members (1 hop) arrive at 162 ns + payload tail; farthest
    // (4 hops) at 162+3*76 + tail.
    let tail = anton_net::Timing::default().payload_tail(8);
    assert_eq!(tail, SimDuration::ZERO); // 8 B rides in the header
    let t1 = got
        .iter()
        .find(|&&(n, _)| n == Coord::new(1, 0, 0).node_id(dims))
        .unwrap()
        .1;
    assert_eq!(t1, SimTime::from_ns(162));
    let t4 = got
        .iter()
        .find(|&&(n, _)| n == Coord::new(4, 0, 0).node_id(dims))
        .unwrap()
        .1;
    assert_eq!(t4, SimTime::from_ns(162 + 3 * 76));
}

/// Accumulation memories sum force contributions from many nodes; the
/// result is exact and order-independent, and the accumulation counter's
/// watch fires with the documented extra polling latency.
struct Accumulators {
    target: NodeId,
    senders: Vec<NodeId>,
    done: std::rc::Rc<std::cell::Cell<Option<SimTime>>>,
}

impl NodeProgram for Accumulators {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => {
                let accum = ClientAddr::new(self.target, ClientKind::Accum(0));
                if node == self.target {
                    ctx.watch_counter(accum, CounterId(1), self.senders.len() as u64);
                }
                if let Some(i) = self.senders.iter().position(|&s| s == node) {
                    let vals = vec![(i as i32 + 1) * 100, -(i as i32), 7];
                    let pkt = Packet::accumulate(slice0(node), accum, 0x200, vals)
                        .with_counter(CounterId(1));
                    ctx.send(pkt);
                }
            }
            ProgEvent::CounterReached { client, .. } => {
                assert_eq!(client, ClientKind::Accum(0));
                self.done.set(Some(ctx.now()));
            }
            _ => {}
        }
    }
}

#[test]
fn accumulation_sums_and_polling_penalty_applies() {
    let dims = TorusDims::new(4, 4, 4);
    let target = Coord::new(0, 0, 0).node_id(dims);
    let senders: Vec<NodeId> = (1..=3).map(|x| Coord::new(x, 0, 0).node_id(dims)).collect();
    let done = std::rc::Rc::new(std::cell::Cell::new(None));
    let (d2, s2) = (done.clone(), senders.clone());
    let mut sim = Simulation::new(Fabric::new(dims), move |_| Accumulators {
        target,
        senders: s2.clone(),
        done: d2.clone(),
    });
    sim.run();
    let t = done.get().expect("accumulation must complete");
    // Sum: (100-0+7)+(200-1+7)+(300-2+7) = [600, -3, 21].
    let sums = sim
        .world
        .fabric
        .accum_read(ClientAddr::new(target, ClientKind::Accum(0)), 0x200, 3);
    assert_eq!(sums, vec![600, -3, 21]);
    // Farthest sender: 2 X hops with wrap (x=3 in a 4-ring is 1 hop... take
    // x=2: 2 hops). The fire time must include the 100 ns accumulation
    // counter polling penalty on top of the last tail arrival.
    let timing = anton_net::Timing::default();
    let last = timing.analytic_latency([2, 0, 0], 12); // x=2 is farthest (2 hops)
    let expect = SimTime::ZERO + last + SimDuration::from_ns_f64(timing.accum_poll_extra_ns);
    assert_eq!(t, expect);
}

/// FIFO messages (migration-style traffic) arrive via the hardware queue
/// and are drained serially by software.
struct FifoTest {
    src: NodeId,
    dst: NodeId,
    n: u32,
    got: std::rc::Rc<std::cell::RefCell<Vec<(u64, SimTime)>>>,
}

impl NodeProgram for FifoTest {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start if node == self.src => {
                for i in 0..self.n {
                    let pkt = Packet::fifo(
                        slice0(node),
                        slice0(self.dst),
                        Payload::Bytes(vec![i as u8; 16]),
                    )
                    .with_tag(i as u64)
                    .with_in_order();
                    ctx.send(pkt);
                }
            }
            ProgEvent::FifoMessage { pkt, .. } => {
                assert_eq!(node, self.dst);
                self.got.borrow_mut().push((pkt.tag, ctx.now()));
            }
            _ => {}
        }
    }
}

#[test]
fn fifo_messages_arrive_in_order_and_serially() {
    let dims = TorusDims::new(4, 4, 4);
    let src = Coord::new(0, 0, 0).node_id(dims);
    let dst = Coord::new(1, 0, 0).node_id(dims);
    let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let g2 = got.clone();
    let mut sim = Simulation::new(Fabric::new(dims), move |_| FifoTest {
        src,
        dst,
        n: 10,
        got: g2.clone(),
    });
    sim.run();
    let msgs = got.borrow();
    assert_eq!(msgs.len(), 10);
    // In-order delivery (fixed pair, in_order flag set).
    let tags: Vec<u64> = msgs.iter().map(|&(t, _)| t).collect();
    assert_eq!(tags, (0..10).collect::<Vec<_>>());
    // Software pops are serialized: consecutive services at least
    // fifo_pop_ns apart.
    for w in msgs.windows(2) {
        let gap = (w[1].1 - w[0].1).as_ns_f64();
        assert!(gap >= 49.9, "gap={gap}");
    }
}

/// Link contention: many simultaneous full packets across one link
/// serialize at the effective link bandwidth.
struct Burst {
    src: NodeId,
    dst: NodeId,
    n: u64,
    done: std::rc::Rc<std::cell::Cell<Option<SimTime>>>,
}

impl NodeProgram for Burst {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => {
                if node == self.dst {
                    ctx.watch_counter(slice0(self.dst), CounterId(0), self.n);
                }
                if node == self.src {
                    for i in 0..self.n {
                        let pkt = Packet::write(
                            slice0(node),
                            slice0(self.dst),
                            i * 0x200,
                            Payload::Empty,
                        )
                        .with_payload_bytes(256)
                        .with_counter(CounterId(0));
                        ctx.send(pkt);
                    }
                }
            }
            ProgEvent::CounterReached { .. } => self.done.set(Some(ctx.now())),
            _ => {}
        }
    }
}

#[test]
fn bursts_serialize_at_link_bandwidth() {
    let dims = TorusDims::new(4, 4, 4);
    let src = Coord::new(0, 0, 0).node_id(dims);
    let dst = Coord::new(1, 0, 0).node_id(dims);
    let n = 64u64;
    let done = std::rc::Rc::new(std::cell::Cell::new(None));
    let d2 = done.clone();
    let mut sim = Simulation::new(Fabric::new(dims), move |_| Burst {
        src,
        dst,
        n,
        done: d2.clone(),
    });
    sim.run();
    let t = done.get().unwrap().as_ns_f64();
    // 64 × 256 B data at the 36.8 Gbit/s effective rate = 3562 ns of
    // serialization, plus one base latency. Allow small slack for the
    // pipelined first/last packet accounting.
    let serialization = 64.0 * 256.0 * 8.0 / 36.8;
    assert!(
        t > serialization && t < serialization + 400.0,
        "t={t} serialization={serialization}"
    );
    // Effective delivered data bandwidth approaches 36.8 Gbit/s.
    let gbps = 64.0 * 256.0 * 8.0 / t;
    assert!(gbps > 33.0 && gbps < 36.9, "gbps={gbps}");
}

/// Determinism: the same scenario twice gives identical timings and stats.
#[test]
fn fabric_is_deterministic() {
    let run = || {
        let dims = TorusDims::anton_512();
        let target = Coord::new(4, 4, 4).node_id(dims);
        let senders: Vec<NodeId> = (0..64u32).map(NodeId).collect();
        let fired = std::rc::Rc::new(std::cell::Cell::new(None));
        let (f2, s2) = (fired.clone(), senders.clone());
        let mut sim = Simulation::new(Fabric::new(dims), move |_| Gather {
            target,
            senders: s2.clone(),
            fired: f2.clone(),
        });
        sim.run();
        (
            fired.get(),
            sim.world.fabric.stats.packets_delivered,
            sim.world.fabric.stats.link_traversals,
            sim.engine.events_processed(),
        )
    };
    assert_eq!(run(), run());
}

/// FIFO backpressure end to end: flooding a slice with more messages
/// than the 64-entry hardware FIFO holds parks the excess in the network
/// and still delivers everything, in order, as software drains.
struct Flood {
    src: NodeId,
    dst: NodeId,
    n: u64,
    got: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
}

impl NodeProgram for Flood {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start if node == self.src => {
                for i in 0..self.n {
                    let pkt =
                        Packet::fifo(slice0(node), slice0(self.dst), Payload::Bytes(vec![0; 8]))
                            .with_tag(i)
                            .with_in_order();
                    ctx.send(pkt);
                }
            }
            ProgEvent::FifoMessage { pkt, .. } => {
                self.got.borrow_mut().push(pkt.tag);
            }
            _ => {}
        }
    }
}

#[test]
fn fifo_backpressure_preserves_order_and_loses_nothing() {
    let dims = TorusDims::new(4, 1, 1);
    let src = Coord::new(0, 0, 0).node_id(dims);
    let dst = Coord::new(1, 0, 0).node_id(dims);
    let n = 3 * anton_net::FIFO_CAPACITY as u64; // 3x overload
    let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let g2 = got.clone();
    let mut sim = Simulation::new(Fabric::new(dims), move |_| Flood {
        src,
        dst,
        n,
        got: g2.clone(),
    });
    sim.run();
    let tags = got.borrow().clone();
    assert_eq!(tags.len(), n as usize, "lossless under backpressure");
    assert_eq!(tags, (0..n).collect::<Vec<_>>(), "in order");
    assert!(
        sim.world.fabric.fifo_backpressure_events(slice0(dst)) > 0,
        "the FIFO must actually have filled"
    );
}

/// The per-source buffer-counter table (the HTIS mechanism): one
/// COUNTER_BY_SOURCE label resolves to different counters per origin.
struct BySource {
    target: NodeId,
    senders: Vec<NodeId>,
    fires: std::rc::Rc<std::cell::RefCell<Vec<u16>>>,
}

impl NodeProgram for BySource {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => {
                if node == self.target {
                    let mut map = std::collections::HashMap::new();
                    for (i, &s) in self.senders.iter().enumerate() {
                        map.insert(s, CounterId(16 + i as u16));
                        ctx.watch_counter(
                            ClientAddr::new(node, ClientKind::Htis),
                            CounterId(16 + i as u16),
                            2,
                        );
                    }
                    ctx.set_source_counter_map(ClientAddr::new(node, ClientKind::Htis), map);
                }
                if self.senders.contains(&node) {
                    for k in 0..2u64 {
                        let pkt = Packet::write(
                            slice0(node),
                            ClientAddr::new(self.target, ClientKind::Htis),
                            0x100 + node.0 as u64 * 8 + k,
                            Payload::Empty,
                        )
                        .with_counter(anton_net::COUNTER_BY_SOURCE);
                        ctx.send(pkt);
                    }
                }
            }
            ProgEvent::CounterReached { counter, client } => {
                assert_eq!(client, ClientKind::Htis);
                self.fires.borrow_mut().push(counter.0);
            }
            _ => {}
        }
    }
}

#[test]
fn per_source_buffer_counters_fire_independently() {
    let dims = TorusDims::new(4, 4, 1);
    let target = Coord::new(0, 0, 0).node_id(dims);
    let senders: Vec<NodeId> = [(1u32, 0u32), (2, 0), (0, 1)]
        .iter()
        .map(|&(x, y)| Coord::new(x, y, 0).node_id(dims))
        .collect();
    let fires = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let (f2, s2) = (fires.clone(), senders.clone());
    let mut sim = Simulation::new(Fabric::new(dims), move |_| BySource {
        target,
        senders: s2.clone(),
        fires: f2.clone(),
    });
    sim.run();
    let mut got = fires.borrow().clone();
    got.sort_unstable();
    assert_eq!(got, vec![16, 17, 18], "one fire per source buffer");
}

/// Header-resident payloads (≤8 B) add no serialization tail: their
/// one-hop latency equals the 0-byte latency, while a full 256-byte
/// payload pays ~50 ns of tail (§III.A).
#[test]
fn header_resident_payloads_skip_serialization() {
    let dims = TorusDims::new(4, 1, 1);
    let t0 = one_way(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 0);
    let t8 = one_way(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 8);
    let t256 = one_way(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 256);
    assert_eq!(t0, t8, "8-byte payloads ride in the header");
    let tail = (t256 - t0).as_ns_f64();
    assert!((45.0..60.0).contains(&tail), "256-byte tail {tail} ns");
}
