//! Property tests of the timing model and failure-injection tests of
//! the fabric's guard rails.

use anton_net::{
    ClientAddr, ClientKind, CounterId, Ctx, Fabric, FabricError, NodeProgram, Packet, PatternId,
    Payload, ProgEvent, Simulation, Timing,
};
use anton_topo::{Coord, MulticastPattern, NodeId, TorusDims};
use proptest::prelude::*;

proptest! {
    /// Latency is monotone in hops and payload, and additive per
    /// dimension.
    #[test]
    fn analytic_latency_monotone(
        hx in 0u32..5, hy in 0u32..5, hz in 0u32..5,
        p in 0u32..257,
    ) {
        let p = p.min(256);
        let t = Timing::default();
        let base = t.analytic_latency([hx, hy, hz], p);
        // More hops never reduce latency.
        prop_assert!(t.analytic_latency([hx + 1, hy, hz], p) > base);
        prop_assert!(t.analytic_latency([hx, hy + 1, hz], p) > base);
        prop_assert!(t.analytic_latency([hx, hy, hz + 1], p) > base);
        // More payload never reduces latency.
        if p < 256 {
            prop_assert!(t.analytic_latency([hx, hy, hz], p + 1) >= base);
        }
    }

    /// Wire occupancy is monotone in payload and dominated by the
    /// effective-bandwidth bound.
    #[test]
    fn link_occupancy_bounds(p in 0u32..257) {
        let p = p.min(256);
        let t = Timing::default();
        let occ = t.link_occupancy(p);
        if p > 8 {
            prop_assert!(occ > t.link_occupancy(p - 1).min(occ));
        }
        // Effective data rate never exceeds the raw link rate.
        if p > 0 {
            let gbps = p as f64 * 8.0 / occ.as_ns_f64();
            prop_assert!(gbps < anton_net::LINK_RAW_GBPS);
        }
    }

    /// X hops are always at least as expensive as Y/Z hops (the paper's
    /// on-chip-ring asymmetry).
    #[test]
    fn x_dimension_is_the_expensive_one(h in 1u32..5) {
        let t = Timing::default();
        let x = t.analytic_latency([h, 0, 0], 0);
        let y = t.analytic_latency([0, h, 0], 0);
        let z = t.analytic_latency([0, 0, h], 0);
        prop_assert!(x >= y);
        prop_assert_eq!(y, z);
    }
}

// ---- failure injection: the fabric's guard rails must trip ----

struct BadProgram {
    mode: u8,
}

impl NodeProgram for BadProgram {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        if !matches!(pe, ProgEvent::Start) || node.0 != 0 {
            return;
        }
        let me = ClientAddr::new(node, ClientKind::Slice(0));
        match self.mode {
            // Double-watching one counter is a program bug.
            0 => {
                ctx.watch_counter(me, CounterId(0), 5);
                ctx.watch_counter(me, CounterId(0), 7);
            }
            // Sending from an accumulation memory is impossible in
            // hardware.
            1 => {
                let pkt = Packet {
                    uid: 0,
                    src: ClientAddr::new(node, ClientKind::Accum(0)),
                    dest: anton_net::Destination::Unicast(me),
                    kind: anton_net::PacketKind::Write,
                    addr: 0,
                    payload_bytes: 0,
                    crc: anton_net::payload_crc(&Payload::Empty),
                    payload: Payload::Empty,
                    counter: None,
                    in_order: false,
                    tag: 0,
                    route: None,
                    order_seq: None,
                    reinjects: 0,
                };
                ctx.send(pkt);
            }
            // A COUNTER_BY_SOURCE packet with no buffer table programmed.
            2 => {
                let pkt = Packet::write(
                    me,
                    ClientAddr::new(NodeId(1), ClientKind::Htis),
                    0,
                    Payload::Empty,
                )
                .with_counter(anton_net::COUNTER_BY_SOURCE);
                ctx.send(pkt);
            }
            // A multicast referencing an unregistered pattern.
            3 => {
                let pkt = Packet::write(me, me, 0, Payload::Empty)
                    .into_multicast(PatternId(99), ClientKind::Slice(0));
                ctx.send(pkt);
            }
            _ => unreachable!(),
        }
    }
}

fn run_bad(mode: u8) -> Simulation<BadProgram> {
    let dims = TorusDims::new(2, 1, 1);
    let mut sim = Simulation::new(Fabric::new(dims), move |_| BadProgram { mode });
    sim.run();
    sim
}

#[test]
#[should_panic(expected = "pending watch")]
fn double_watch_panics() {
    run_bad(0);
}

#[test]
#[should_panic(expected = "cannot send")]
fn accumulation_memory_cannot_send() {
    run_bad(1);
}

/// A COUNTER_BY_SOURCE packet with no buffer table is recorded as a
/// recoverable error on the hot deliver path, not a panic: the write
/// lands, no counter bumps, and the stall is the watchdog's to report.
#[test]
fn by_source_counter_without_mapping_is_recorded() {
    let sim = run_bad(2);
    let fabric = &sim.world.fabric;
    assert_eq!(fabric.stats.delivery_errors, 1);
    assert!(matches!(
        fabric.errors(),
        [FabricError::MissingSourceCounter {
            node: NodeId(1),
            src: NodeId(0)
        }]
    ));
    // The write itself was applied.
    assert_eq!(fabric.stats.packets_delivered, 1);
}

/// A multicast referencing an unregistered pattern is dropped at the
/// source with a recorded error, not a panic.
#[test]
fn unregistered_multicast_pattern_is_recorded() {
    let sim = run_bad(3);
    let fabric = &sim.world.fabric;
    assert_eq!(fabric.stats.packets_unreachable, 1);
    assert_eq!(fabric.stats.packets_delivered, 0);
    assert!(matches!(
        fabric.errors(),
        [FabricError::PatternUnknown {
            pattern: PatternId(99),
            node: NodeId(0)
        }]
    ));
}

#[test]
#[should_panic(expected = "already registered")]
fn duplicate_pattern_registration_panics() {
    let dims = TorusDims::new(4, 1, 1);
    let mut fabric = Fabric::new(dims);
    let p = MulticastPattern::build(Coord::new(0, 0, 0), &[Coord::new(1, 0, 0)], dims);
    fabric.register_pattern(PatternId(0), &p);
    fabric.register_pattern(PatternId(0), &p);
}

/// `NetStats::diff` saturates (to zero) instead of panicking or
/// wrapping when a counter was reset between the two snapshots — the
/// documented semantics for diffing across per-step fabric boundaries.
#[test]
fn netstats_diff_saturates_on_counter_reset() {
    let older = anton_net::NetStats {
        packets_sent: 100,
        payload_bytes_delivered: 4096,
        sent_by_node: vec![60, 40],
        ..Default::default()
    };
    let fresh = anton_net::NetStats {
        packets_sent: 7,       // reset + 7 new sends
        sent_by_node: vec![7], // fresh fabric, fewer nodes
        ..Default::default()
    };
    let d = fresh.diff(&older);
    assert_eq!(d.packets_sent, 0, "reset counter saturates to zero");
    assert_eq!(d.payload_bytes_delivered, 0);
    assert_eq!(d.sent_by_node, vec![0]);
    // The normal direction stays exact.
    let d2 = older.diff(&fresh);
    assert_eq!(d2.packets_sent, 93);
    assert_eq!(d2.sent_by_node, vec![53, 40]);
}
