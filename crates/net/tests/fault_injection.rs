//! Integration tests of the fault-injection + link-reliability layer:
//! zero-cost fault-free plans, deterministic seeded degradation, the
//! stall watchdog, and routing around permanent failures.

use anton_des::{SimDuration, SimTime};
use anton_net::{
    ClientAddr, ClientKind, CounterId, Ctx, Fabric, FabricError, FaultPlan, NetStats, NodeProgram,
    Packet, Payload, ProgEvent, RetryPolicy, RunReport, Simulation,
};
use anton_topo::{Coord, Dim, Dir, LinkDir, NodeId, TorusDims};
use proptest::prelude::*;

/// Node 0 sends `n` counted writes to `dst`'s slice 0; `dst` watches the
/// counter (optionally with a watchdog deadline).
struct CountedWrites {
    n: u32,
    dst: NodeId,
    deadline_ns: Option<f64>,
}

impl NodeProgram for CountedWrites {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        if !matches!(pe, ProgEvent::Start) {
            return;
        }
        if node == self.dst {
            let me = ClientAddr::new(node, ClientKind::Slice(0));
            match self.deadline_ns {
                Some(ns) => ctx.watch_counter_deadline(
                    me,
                    CounterId(0),
                    self.n as u64,
                    SimDuration::from_ns_f64(ns),
                ),
                None => ctx.watch_counter(me, CounterId(0), self.n as u64),
            }
        }
        if node == NodeId(0) {
            let me = ClientAddr::new(node, ClientKind::Slice(0));
            let dst = ClientAddr::new(self.dst, ClientKind::Slice(0));
            for i in 0..self.n {
                let pkt = Packet::write(me, dst, 0x100 + i as u64 * 8, Payload::Token(i as u64))
                    .with_counter(CounterId(0));
                ctx.send(pkt);
            }
        }
    }
}

fn run_counted(
    dims: TorusDims,
    fault: FaultPlan,
    n: u32,
    dst: NodeId,
    deadline_ns: Option<f64>,
) -> (RunReport, SimTime, NetStats, Simulation<CountedWrites>) {
    let fabric = Fabric::with_faults(dims, anton_net::Timing::default(), fault);
    let mut sim = Simulation::new(fabric, move |_| CountedWrites {
        n,
        dst,
        deadline_ns,
    });
    let report = sim.run_guarded(SimTime(u64::MAX / 2), 10_000_000);
    let now = sim.now();
    let stats = sim.world.fabric.stats.clone();
    (report, now, stats, sim)
}

#[test]
fn seeded_zero_rate_plan_is_bit_identical_to_none() {
    let dims = TorusDims::new(4, 2, 2);
    let (ra, ta, sa, _) = run_counted(dims, FaultPlan::none(), 20, NodeId(3), None);
    let (rb, tb, sb, _) = run_counted(dims, FaultPlan::seeded(99), 20, NodeId(3), None);
    assert!(ra.is_completed() && rb.is_completed());
    assert_eq!(ta, tb, "zero-rate plan must not perturb timing");
    assert_eq!(sa, sb, "zero-rate plan must not perturb traffic stats");
    assert_eq!(sa.faults_dropped + sa.retransmits + sa.packets_lost, 0);
}

#[test]
fn drop_rate_degrades_latency_and_recovers_all_packets() {
    let dims = TorusDims::new(4, 1, 1);
    let n = 200;
    let (r0, t0, s0, _) = run_counted(dims, FaultPlan::none(), n, NodeId(2), None);
    let plan = FaultPlan::seeded(7)
        .with_drop_rate(0.05)
        .with_corrupt_rate(0.02);
    let (r1, t1, s1, _) = run_counted(dims, plan, n, NodeId(2), None);
    assert!(r0.is_completed());
    assert!(
        r1.is_completed(),
        "retransmission must recover every packet"
    );
    assert_eq!(
        s1.packets_delivered, n as u64,
        "no packet may be lost at 5%/2%"
    );
    assert!(
        s1.faults_dropped > 0 && s1.faults_corrupted > 0,
        "faults must fire"
    );
    assert_eq!(s1.retransmits, s1.faults_dropped + s1.faults_corrupted);
    assert!(t1 > t0, "retransmissions must cost simulated time");
    assert_eq!(s0.packets_delivered, s1.packets_delivered);
}

#[test]
fn same_seed_reproduces_the_run_and_different_seed_differs() {
    let dims = TorusDims::new(4, 1, 1);
    let plan = |seed| FaultPlan::seeded(seed).with_drop_rate(0.1);
    let (_, ta, sa, _) = run_counted(dims, plan(1), 300, NodeId(2), None);
    let (_, tb, sb, _) = run_counted(dims, plan(1), 300, NodeId(2), None);
    let (_, tc, sc, _) = run_counted(dims, plan(2), 300, NodeId(2), None);
    assert_eq!((ta, &sa), (tb, &sb), "same seed + plan => identical trace");
    assert!(
        (tc, &sc) != (ta, &sa),
        "different seeds should perturb the run (300 draws at 10%)"
    );
}

/// Satellite (d): a deliberately lost packet must produce a bounded-time
/// timeout report naming the stuck counter and node, not a hang.
#[test]
fn lost_packet_triggers_watchdog_and_stall_report() {
    let dims = TorusDims::new(4, 1, 1);
    // Every traversal fails and the budget is tiny: all packets are lost.
    let plan = FaultPlan::seeded(3)
        .with_drop_rate(1.0)
        .with_retry(RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        });
    let dst = NodeId(2);
    let (report, now, stats, sim) = run_counted(dims, plan, 4, dst, Some(10_000.0));
    assert!(
        now < SimTime(u64::MAX / 4),
        "run must terminate in bounded sim time"
    );
    assert_eq!(stats.packets_delivered, 0);
    assert_eq!(stats.packets_lost, 4);
    assert!(stats.retry_budget_exhausted > 0);
    let stall = report.stall().expect("run must be diagnosed as stalled");
    assert_eq!(stall.stuck.len(), 1, "exactly one watch never fired");
    let stuck = &stall.stuck[0];
    assert_eq!(stuck.node, dst);
    assert_eq!(stuck.client, ClientKind::Slice(0));
    assert_eq!(stuck.counter, CounterId(0));
    assert_eq!((stuck.current, stuck.target), (0, 4));
    // The deadline expired and produced a watchdog report naming the
    // same counter, at the 10 µs deadline.
    assert_eq!(stall.watchdog.len(), 1);
    let wd = &stall.watchdog[0];
    assert_eq!(
        (wd.node, wd.counter, wd.current, wd.target),
        (dst, CounterId(0), 0, 4)
    );
    assert_eq!(wd.at, SimTime::ZERO + SimDuration::from_ns_f64(10_000.0));
    // The error log explains *why*: retry budgets ran out.
    assert!(sim
        .world
        .fabric
        .errors()
        .iter()
        .any(|e| matches!(e, FabricError::RetryBudgetExhausted { .. })));
    // The report embeds the traffic snapshot, so a chaos-induced stall
    // is diagnosable from the report alone — no fabric access needed.
    assert_eq!(stall.stats, stats);
    assert_eq!(stall.stats.packets_lost, 4);
    assert!(stall.stats.retry_budget_exhausted > 0);
    let shown = format!("{stall}");
    assert!(
        shown.contains("4 lost"),
        "Display names the losses: {shown}"
    );
}

#[test]
fn permanent_cable_failure_detours_and_completes() {
    let dims = TorusDims::new(4, 1, 1);
    let (r0, t0, _, _) = run_counted(dims, FaultPlan::none(), 10, NodeId(1), None);
    // Kill the direct 0 -> 1 cable before any traffic: the route must go
    // the long way around the X ring (3 hops instead of 1).
    let xp = LinkDir {
        dim: Dim::X,
        dir: Dir::Plus,
    };
    let plan = FaultPlan::none().fail_cable_at(Coord::new(0, 0, 0), xp, SimTime::ZERO);
    let (r1, t1, s1, _) = run_counted(dims, plan, 10, NodeId(1), None);
    assert!(r0.is_completed() && r1.is_completed());
    assert_eq!(s1.packets_delivered, 10);
    assert_eq!(s1.link_traversals, 30, "detour takes 3 hops per packet");
    assert!(t1 > t0, "the detour must cost latency");
}

#[test]
fn isolated_destination_is_unreachable_not_a_hang() {
    let dims = TorusDims::new(4, 1, 1);
    let dst = NodeId(2);
    let plan = FaultPlan::none().fail_node_at(Coord::new(2, 0, 0), SimTime::ZERO);
    let (report, now, stats, sim) = run_counted(dims, plan, 5, dst, None);
    assert!(now < SimTime(u64::MAX / 4));
    assert_eq!(stats.packets_unreachable, 5);
    assert_eq!(stats.packets_delivered, 0);
    let stall = report.stall().expect("stall must be diagnosed");
    assert_eq!(stall.stuck.len(), 1);
    assert_eq!(stall.stuck[0].node, dst);
    assert!(sim
        .world
        .fabric
        .errors()
        .iter()
        .any(|e| matches!(e, FabricError::Unreachable { dst: d, .. } if *d == dst)));
}

#[test]
fn mid_run_link_death_loses_packets_in_flight() {
    let dims = TorusDims::new(4, 1, 1);
    // The 0 -> 1 link dies at 1 µs; a long stream through it loses
    // whatever had not yet cleared the link and reroutes the rest.
    let xp = LinkDir {
        dim: Dim::X,
        dir: Dir::Plus,
    };
    let plan = FaultPlan::none().fail_link_at(Coord::new(0, 0, 0), xp, SimTime(1_000_000));
    let (report, _, stats, _) = run_counted(dims, plan, 100, NodeId(1), None);
    assert_eq!(
        stats.packets_delivered + stats.packets_lost + stats.packets_unreachable,
        100,
        "every packet is accounted for"
    );
    assert!(
        stats.packets_delivered > 0,
        "early packets beat the failure"
    );
    assert!(
        stats.packets_lost + stats.packets_unreachable > 0,
        "late packets hit the dead link"
    );
    // Losses starve the watch; the quiescence detector reports it.
    assert!(!report.is_completed());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite (c): drops-only plans never overshoot the counted
    /// target, account for every packet, and replay bit-identically.
    #[test]
    fn drops_only_plans_account_for_every_packet(
        seed in 0u64..1000,
        rate in 0.0f64..0.3,
        n in 1u32..40,
    ) {
        let dims = TorusDims::new(4, 2, 1);
        let dst = NodeId(5);
        let plan = FaultPlan::seeded(seed).with_drop_rate(rate);
        let (ra, ta, sa, sim_a) = run_counted(dims, plan.clone(), n, dst, None);
        let addr = ClientAddr::new(dst, ClientKind::Slice(0));
        let count = sim_a.world.fabric.counter_read(addr, CounterId(0));
        // Never overshoot: drops can only lose increments, not mint them.
        prop_assert!(count <= n as u64);
        prop_assert_eq!(count, sa.packets_delivered);
        prop_assert_eq!(
            sa.packets_sent,
            sa.packets_delivered + sa.packets_lost + sa.packets_unreachable
        );
        // Completion iff nothing was lost.
        prop_assert_eq!(ra.is_completed(), sa.packets_lost == 0);
        // Same seed, same plan => bit-identical replay.
        let (rb, tb, sb, _) = run_counted(dims, plan, n, dst, None);
        prop_assert_eq!(ta, tb);
        prop_assert_eq!(sa, sb);
        prop_assert_eq!(ra.is_completed(), rb.is_completed());
    }
}
