//! Integration + property tests of the runtime fault-recovery layer:
//! deterministic failure detection, fault-avoiding reinjection with
//! in-order reassembly, duplicate suppression of counted writes, and
//! bit-identity of recovery-disabled runs with the baseline fabric.

use anton_des::{SimDuration, SimTime};
use anton_net::{
    ClientAddr, ClientKind, CounterId, Ctx, Fabric, FaultPlan, NodeProgram, Packet, Payload,
    ProgEvent, RecoveryConfig, RetryPolicy, Simulation,
};
use anton_obs::VerdictCause;
use anton_topo::{Coord, Dim, Dir, LinkDir, NodeId, TorusDims};
use proptest::prelude::*;

fn xp() -> LinkDir {
    LinkDir {
        dim: Dim::X,
        dir: Dir::Plus,
    }
}

/// Every `(src, dst)` pair streams `n` in-order FIFO messages carrying
/// ascending tokens; destinations log `(source, token)` in arrival
/// order.
struct Streams {
    n: u32,
    pairs: Vec<(NodeId, NodeId)>,
    received: Vec<(NodeId, u64)>,
}

impl NodeProgram for Streams {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => {
                for &(src, dst) in &self.pairs {
                    if src != node {
                        continue;
                    }
                    let me = ClientAddr::new(node, ClientKind::Slice(0));
                    let to = ClientAddr::new(dst, ClientKind::Slice(0));
                    for i in 0..self.n {
                        let pkt = Packet::fifo(me, to, Payload::Token(i as u64))
                            .with_tag(i as u64)
                            .with_in_order();
                        ctx.send(pkt);
                    }
                }
            }
            ProgEvent::FifoMessage { pkt, .. } => {
                let Payload::Token(t) = pkt.payload else {
                    panic!("stream messages carry tokens");
                };
                self.received.push((pkt.src.node, t));
            }
            _ => {}
        }
    }
}

fn run_streams(
    dims: TorusDims,
    plan: FaultPlan,
    recovery: RecoveryConfig,
    pairs: &[(NodeId, NodeId)],
    n: u32,
) -> Simulation<Streams> {
    let fabric = Fabric::with_recovery(dims, anton_net::Timing::default(), plan, recovery);
    let pairs = pairs.to_vec();
    let mut sim = Simulation::new(fabric, move |_| Streams {
        n,
        pairs: pairs.clone(),
        received: Vec::new(),
    });
    sim.run_guarded(SimTime(u64::MAX / 2), 50_000_000);
    sim
}

/// Node 0 streams `n` counted writes to `dst`; used to exercise the
/// duplicate-suppression path under forced retry-budget exhaustion.
struct Counted {
    n: u32,
    dst: NodeId,
}

impl NodeProgram for Counted {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        if !matches!(pe, ProgEvent::Start) || node != NodeId(0) {
            return;
        }
        let me = ClientAddr::new(node, ClientKind::Slice(0));
        let to = ClientAddr::new(self.dst, ClientKind::Slice(0));
        for i in 0..self.n {
            let pkt = Packet::write(me, to, 0x100 + i as u64 * 8, Payload::Token(i as u64))
                .with_counter(CounterId(0));
            ctx.send(pkt);
        }
    }
}

fn run_counted(
    dims: TorusDims,
    plan: FaultPlan,
    recovery: RecoveryConfig,
    n: u32,
    dst: NodeId,
) -> Simulation<Counted> {
    let fabric = Fabric::with_recovery(dims, anton_net::Timing::default(), plan, recovery);
    let mut sim = Simulation::new(fabric, move |_| Counted { n, dst });
    sim.run_guarded(SimTime(u64::MAX / 2), 50_000_000);
    sim
}

// ---- failure detection ----

#[test]
fn heartbeat_detector_promotes_a_dead_link_to_a_verdict() {
    // A zero-time plan death is globally known and routed around before
    // any packet moves; the detector only has work when a link dies
    // *mid-run* with traffic queued on it.
    let dims = TorusDims::new(4, 1, 1);
    let rec = RecoveryConfig::recovering(1);
    let death = SimTime(1_000_000); // 1 µs, inside the stream's window
    let plan = FaultPlan::none().fail_link_at(Coord::new(0, 0, 0), xp(), death);
    let sim = run_streams(dims, plan, rec, &[(NodeId(0), NodeId(1))], 100);
    let verdicts = sim.world.fabric.verdicts();
    assert!(!verdicts.is_empty(), "a dead link must produce a verdict");
    let v = &verdicts[0];
    assert_eq!(v.node, NodeId(0));
    assert_eq!(v.link, Some(xp()));
    assert_eq!(v.cause, VerdictCause::Heartbeat);
    // The verdict lands one idle deadline past the failed attempt:
    // after the death, within death + heartbeat + one queue drain.
    assert!(v.at > death, "detection cannot precede the death");
    assert!(
        v.at <= death + SimDuration::from_ns_f64(rec.heartbeat_timeout_ns + 2_000.0),
        "detection must be prompt: {v:?}"
    );
    // Idempotent: one verdict per link, however many packets hit it.
    assert_eq!(
        verdicts
            .iter()
            .filter(|v| v.node == NodeId(0) && v.link == Some(xp()))
            .count(),
        1
    );
}

#[test]
fn six_link_verdicts_escalate_to_a_node_down_verdict() {
    // Node (1,1,1) streams to all six face neighbors, so every one of
    // its outgoing links has a queue straddling the death time; each
    // queue's first post-death reservation condemns its link, and the
    // sixth condemnation escalates to a NodeDown verdict.
    let dims = TorusDims::new(4, 4, 4);
    let rec = RecoveryConfig::recovering(2);
    let me = Coord::new(1, 1, 1);
    let dead = NodeId(1 + 4 + 16);
    let plan = FaultPlan::none().fail_node_at(me, SimTime(1_500_000));
    let neighbors = [22u32, 20, 25, 17, 37, 5]; // X± Y± Z± of (1,1,1)
    let pairs: Vec<(NodeId, NodeId)> = neighbors.iter().map(|&d| (dead, NodeId(d))).collect();
    let sim = run_streams(dims, plan, rec, &pairs, 80);
    let verdicts = sim.world.fabric.verdicts();
    assert_eq!(
        verdicts
            .iter()
            .filter(|v| v.node == dead && v.link.is_some())
            .count(),
        6,
        "all six links must be condemned: {verdicts:?}"
    );
    assert!(
        verdicts.iter().any(|v| v.node == dead && v.link.is_none()),
        "all-links-dead must escalate to NodeDown: {verdicts:?}"
    );
    assert_eq!(sim.world.fabric.recovery_stats().node_verdicts, 1);
}

#[test]
fn retry_budget_exhaustion_promotes_with_the_retry_budget_cause() {
    let dims = TorusDims::new(4, 1, 1);
    let rec = RecoveryConfig::recovering(3);
    let plan = FaultPlan::seeded(3)
        .with_drop_rate(1.0)
        .with_retry(RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        });
    let sim = run_streams(dims, plan, rec, &[(NodeId(0), NodeId(2))], 3);
    let verdicts = sim.world.fabric.verdicts();
    assert!(verdicts
        .iter()
        .any(|v| v.cause == VerdictCause::RetryBudget));
}

// ---- dynamic rerouting ----

#[test]
fn mid_run_link_death_reroutes_and_loses_nothing() {
    // Without recovery this exact scenario loses packets (see
    // fault_injection.rs::mid_run_link_death_loses_packets_in_flight);
    // with it, every packet is detoured around the dead link.
    let dims = TorusDims::new(4, 1, 1);
    let plan = FaultPlan::none().fail_link_at(Coord::new(0, 0, 0), xp(), SimTime(1_000_000));
    let rec = RecoveryConfig::recovering(4);
    let sim = run_streams(dims, plan, rec, &[(NodeId(0), NodeId(1))], 100);
    let stats = &sim.world.fabric.stats;
    let recovery = sim.world.fabric.recovery_stats();
    assert_eq!(stats.packets_delivered, 100, "{recovery:?}");
    assert_eq!(stats.packets_lost + stats.packets_unreachable, 0);
    assert!(recovery.reinjections > 0, "in-flight packets were re-sent");
    assert!(recovery.link_verdicts >= 1);
    let received = &sim.world.programs[1].received;
    assert_eq!(received.len(), 100);
    // In-order reassembly: tokens arrive in send order despite the
    // detoured packets racing the originals.
    for (i, (_, t)) in received.iter().enumerate() {
        assert_eq!(*t, i as u64, "stream delivered out of order");
    }
}

// ---- duplicate suppression ----

#[test]
fn ack_ambiguous_duplicates_are_forked_and_suppressed() {
    // A Y dimension gives condemned X links an escape route, so the
    // occasional false RetryBudget condemnation does not cut the source
    // off entirely.
    let dims = TorusDims::new(4, 2, 1);
    // Frequent budget exhaustions (one retry) with every exhausted
    // attempt ack-ambiguous: each one forks a crossed duplicate.
    let plan = FaultPlan::seeded(5)
        .with_drop_rate(0.2)
        .with_retry(RetryPolicy {
            max_retries: 1,
            ..RetryPolicy::default()
        });
    let rec = RecoveryConfig::recovering(5).with_dup_delivery_rate(1.0);
    let n = 80;
    let sim = run_counted(dims, plan, rec, n, NodeId(2));
    let stats = &sim.world.fabric.stats;
    let recovery = sim.world.fabric.recovery_stats();
    assert!(recovery.duplicate_forks > 0, "exhaustions must fork");
    assert!(
        recovery.duplicates_suppressed > 0,
        "forked duplicates that land must be suppressed: {recovery:?}"
    );
    // Exactly-once effect: the counter saw each distinct packet exactly
    // once — duplicates never mint increments — and every packet is
    // either delivered or accounted lost.
    let count = sim.world.fabric.counter_read(
        ClientAddr::new(NodeId(2), ClientKind::Slice(0)),
        CounterId(0),
    );
    assert_eq!(count, stats.packets_delivered);
    // Conservation: no send ever takes effect more than once, and the
    // only sends that may be missing are the ones whose reinject budget
    // ran out. (Equality with `n - packets_lost_unrecovered` would be
    // too strict: an exhausted packet's final crossed fork can still
    // land, so the effect arrives even though the source gave up.)
    assert!(count <= n as u64, "over-counted effects: {recovery:?}");
    assert!(
        count + recovery.packets_lost_unrecovered >= n as u64,
        "unaccounted packets: {recovery:?}"
    );
}

// ---- recovery-disabled bit-identity ----

#[test]
fn disabled_recovery_is_bit_identical_to_the_baseline_constructor() {
    let dims = TorusDims::new(4, 2, 1);
    let plan = FaultPlan::seeded(9).with_drop_rate(0.08);
    let pairs = [(NodeId(0), NodeId(5)), (NodeId(3), NodeId(6))];
    let run = |fabric: Fabric| {
        let pairs = pairs.to_vec();
        let mut sim = Simulation::new(fabric, move |_| Streams {
            n: 40,
            pairs: pairs.clone(),
            received: Vec::new(),
        });
        sim.run_guarded(SimTime(u64::MAX / 2), 50_000_000);
        sim
    };
    let a = run(Fabric::with_faults(
        dims,
        anton_net::Timing::default(),
        plan.clone(),
    ));
    let b = run(Fabric::with_recovery(
        dims,
        anton_net::Timing::default(),
        plan,
        RecoveryConfig::disabled(),
    ));
    assert_eq!(a.now(), b.now());
    assert_eq!(a.world.fabric.stats, b.world.fabric.stats);
    assert_eq!(
        format!("{:?}", a.world.fabric.stats),
        format!("{:?}", b.world.fabric.stats)
    );
    // No recovery machinery may have engaged in either run.
    assert_eq!(
        b.world.fabric.recovery_stats(),
        a.world.fabric.recovery_stats()
    );
    assert_eq!(b.world.fabric.verdicts().len(), 0);
    assert_eq!(b.world.fabric.recovery_stats().reinjections, 0);
}

// ---- properties ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Detector promotion is a pure function of the seed: identical
    /// plans produce identical verdict logs, twice over.
    #[test]
    fn detector_promotion_is_deterministic_per_seed(
        seed in 0u64..500,
        death_ns in 100u64..1_200,
    ) {
        let dims = TorusDims::new(4, 1, 1);
        let plan = FaultPlan::seeded(seed)
            .with_drop_rate(0.05)
            .fail_link_at(Coord::new(0, 0, 0), xp(), SimTime::from_ns(death_ns));
        let rec = RecoveryConfig::recovering(seed);
        let pairs = [(NodeId(0), NodeId(1)), (NodeId(3), NodeId(1))];
        let a = run_streams(dims, plan.clone(), rec, &pairs, 40);
        let b = run_streams(dims, plan, rec, &pairs, 40);
        prop_assert_eq!(
            format!("{:?}", a.world.fabric.verdicts()),
            format!("{:?}", b.world.fabric.verdicts())
        );
        prop_assert_eq!(a.world.fabric.recovery_stats(), b.world.fabric.recovery_stats());
        prop_assert_eq!(a.now(), b.now());
        // The dead link is eventually noticed (traffic crosses it).
        prop_assert!(a.world.fabric.recovery_stats().link_verdicts >= 1);
    }

    /// Rerouted + reinjected delivery preserves per-(src, dst) payload
    /// order, and recovery loses nothing a live route can carry.
    #[test]
    fn rerouted_delivery_preserves_per_pair_order(
        seed in 0u64..500,
        rate in 0.0f64..0.04,
        n in 1u32..30,
        death_ns in 200u64..4_000,
    ) {
        let dims = TorusDims::new(4, 2, 1);
        let plan = FaultPlan::seeded(seed)
            .with_drop_rate(rate)
            .fail_link_at(Coord::new(0, 0, 0), xp(), SimTime::from_ns(death_ns));
        let rec = RecoveryConfig::recovering(seed);
        let pairs = [
            (NodeId(0), NodeId(3)),
            (NodeId(4), NodeId(3)),
            (NodeId(1), NodeId(6)),
        ];
        let sim = run_streams(dims, plan, rec, &pairs, n);
        let stats = &sim.world.fabric.stats;
        prop_assert_eq!(
            stats.packets_delivered,
            (pairs.len() as u64) * n as u64,
            "recovery must deliver every message"
        );
        for &(src, dst) in &pairs {
            let got: Vec<u64> = sim.world.programs[dst.index()]
                .received
                .iter()
                .filter(|(s, _)| *s == src)
                .map(|(_, t)| *t)
                .collect();
            let want: Vec<u64> = (0..n as u64).collect();
            prop_assert_eq!(&got, &want, "pair {:?} -> {:?} out of order", src, dst);
        }
    }

    /// Duplicate suppression never double-applies a counted write: the
    /// destination counter exactly matches distinct deliveries, at any
    /// ack-ambiguity rate.
    #[test]
    fn duplicates_never_double_apply_counted_writes(
        seed in 0u64..500,
        dup_rate in 0.0f64..1.0,
        n in 1u32..50,
    ) {
        let dims = TorusDims::new(4, 1, 1);
        let plan = FaultPlan::seeded(seed)
            .with_drop_rate(0.3)
            .with_retry(RetryPolicy { max_retries: 1, ..RetryPolicy::default() });
        let rec = RecoveryConfig::recovering(seed).with_dup_delivery_rate(dup_rate);
        let sim = run_counted(dims, plan, rec, n, NodeId(2));
        let stats = &sim.world.fabric.stats;
        let recovery = sim.world.fabric.recovery_stats();
        let count = sim.world.fabric.counter_read(
            ClientAddr::new(NodeId(2), ClientKind::Slice(0)),
            CounterId(0),
        );
        prop_assert!(count <= n as u64, "a counter can never overshoot");
        prop_assert_eq!(count, stats.packets_delivered);
        // Suppression only ever fires when ambiguity forked a duplicate.
        prop_assert!(recovery.duplicates_suppressed <= recovery.duplicate_forks);
        if dup_rate == 0.0 {
            prop_assert_eq!(recovery.duplicate_forks, 0);
        }
    }

    /// With recovery disabled the whole subsystem is inert: identical
    /// statistics and timing to the pre-recovery constructor, no
    /// verdicts, no reinjections, under any transient plan.
    #[test]
    fn disabled_recovery_never_perturbs_a_run(
        seed in 0u64..500,
        rate in 0.0f64..0.2,
        n in 1u32..30,
    ) {
        let dims = TorusDims::new(4, 2, 1);
        let plan = FaultPlan::seeded(seed).with_drop_rate(rate);
        let pairs = [(NodeId(0), NodeId(5))];
        let base = {
            let fabric = Fabric::with_faults(dims, anton_net::Timing::default(), plan.clone());
            let pairs = pairs.to_vec();
            let mut sim = Simulation::new(fabric, move |_| Streams {
                n,
                pairs: pairs.clone(),
                received: Vec::new(),
            });
            sim.run_guarded(SimTime(u64::MAX / 2), 50_000_000);
            sim
        };
        let off = run_streams(dims, plan, RecoveryConfig::disabled(), &pairs, n);
        prop_assert_eq!(base.now(), off.now());
        prop_assert_eq!(&base.world.fabric.stats, &off.world.fabric.stats);
        prop_assert_eq!(off.world.fabric.verdicts().len(), 0);
        prop_assert_eq!(off.world.fabric.recovery_stats(), &Default::default());
    }
}
