//! Sharded-parallel simulation vs. the sequential reference: the merged
//! observables must be *bit-identical* at every thread count, and equal
//! to a plain [`Simulation`] of the same machine.

use anton_des::{SimDuration, SimTime};
use anton_net::{
    merge_flight_events, ClientAddr, ClientKind, CounterId, Ctx, Fabric, FaultPlan, NodeProgram,
    Packet, ParSimulation, Payload, ProgEvent, ShardPlan, Simulation,
};
use anton_obs::FlightEvent;
use anton_topo::{NodeId, TorusDims};

const C_TOK: CounterId = CounterId(7);
const ADDR: u64 = 0x1000;

/// Every node forwards a token to the next node id `rounds` times:
/// cross-shard traffic in both directions on every shard boundary.
struct Relay {
    left: u32,
    finished_at: Option<SimTime>,
}

impl Relay {
    fn arm_and_send(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let me = ClientAddr::new(node, ClientKind::Slice(0));
        ctx.watch_counter(me, C_TOK, 1);
        let total = ctx.dims().node_count();
        let next = NodeId((node.0 + 1) % total);
        let pkt = Packet::write(
            me,
            ClientAddr::new(next, ClientKind::Slice(0)),
            ADDR,
            Payload::F64s(vec![node.0 as f64 + self.left as f64]),
        )
        .with_payload_bytes(8)
        .with_counter(C_TOK);
        ctx.send(pkt);
    }
}

impl NodeProgram for Relay {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => self.arm_and_send(node, ctx),
            ProgEvent::CounterReached { .. } => {
                let me = ClientAddr::new(node, ClientKind::Slice(0));
                let _ = ctx.mem_take(me, ADDR);
                ctx.reset_counter(me, C_TOK);
                self.left -= 1;
                if self.left > 0 {
                    self.arm_and_send(node, ctx);
                } else {
                    self.finished_at = Some(ctx.now());
                }
            }
            _ => unreachable!(),
        }
    }
}

fn build(dims: TorusDims) -> Fabric {
    Fabric::with_faults(dims, anton_net::Timing::default(), FaultPlan::none())
}

fn make(rounds: u32) -> impl FnMut(NodeId) -> Relay {
    move |_| Relay {
        left: rounds,
        finished_at: None,
    }
}

struct Observables {
    stats: anton_net::NetStats,
    now: SimTime,
    events: u64,
    finished: Vec<SimTime>,
    flight: Vec<FlightEvent>,
}

fn run_par(dims: TorusDims, rounds: u32, threads: usize) -> Observables {
    let mut sim = ParSimulation::new(threads, move || build(dims), make(rounds));
    sim.attach_flight_recorders();
    assert!(sim
        .run_guarded(SimTime(u64::MAX / 2), 10_000_000)
        .is_completed());
    Observables {
        stats: sim.merged_stats(),
        now: sim.now(),
        events: sim.events_processed(),
        finished: (0..dims.node_count())
            .map(|i| sim.program(NodeId(i)).finished_at.expect("finished"))
            .collect(),
        flight: sim.merged_flight_events(),
    }
}

#[test]
fn thread_counts_are_bit_identical() {
    let dims = TorusDims::new(4, 4, 4);
    let base = run_par(dims, 3, 1);
    for threads in [2, 4, 8] {
        let other = run_par(dims, 3, threads);
        assert_eq!(other.stats, base.stats, "{threads} threads");
        assert_eq!(other.now, base.now);
        assert_eq!(other.events, base.events);
        assert_eq!(other.finished, base.finished);
        assert_eq!(other.flight.len(), base.flight.len());
        for (a, b) in other.flight.iter().zip(&base.flight) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }
}

#[test]
fn par_matches_the_sequential_simulation() {
    let dims = TorusDims::new(4, 4, 4);
    let par = run_par(dims, 3, 4);

    let mut seq = Simulation::new(build(dims), make(3));
    assert!(seq
        .run_guarded(SimTime(u64::MAX / 2), 10_000_000)
        .is_completed());
    // Same per-node traffic, same latencies. (Total event counts differ
    // by bookkeeping: the sharded run seeds one Start per shard.)
    assert_eq!(par.stats.packets_sent, seq.world.fabric.stats.packets_sent);
    assert_eq!(
        par.stats.packets_delivered,
        seq.world.fabric.stats.packets_delivered
    );
    assert_eq!(
        par.stats.link_traversals,
        seq.world.fabric.stats.link_traversals
    );
    assert_eq!(par.stats.sent_by_node, seq.world.fabric.stats.sent_by_node);
    assert_eq!(
        par.stats.delivered_by_node,
        seq.world.fabric.stats.delivered_by_node
    );
    assert_eq!(par.now, seq.now());
    let seq_finished: Vec<SimTime> = seq
        .world
        .programs
        .iter()
        .map(|p| p.finished_at.expect("finished"))
        .collect();
    assert_eq!(par.finished, seq_finished);
}

#[test]
fn shard_plan_slabs_the_longest_axis() {
    let plan = ShardPlan::new(TorusDims::new(4, 4, 8), 8);
    assert_eq!(plan.shard_count(), 8);
    // Z is longest: consecutive node ids land in the same slab.
    let dims = plan.dims();
    for node in 0..dims.node_count() {
        let s = plan.shard_of_node(NodeId(node));
        assert!(s < 8);
    }
    // All 16 nodes of one z-plane share a shard.
    let s0 = plan.shard_of_node(NodeId(0));
    for node in 0..16 {
        assert_eq!(plan.shard_of_node(NodeId(node)), s0);
    }
}

#[test]
fn flight_merge_is_stable_by_time_then_shard() {
    // Two streams with interleaved and tied timestamps.
    let mk = |t: u64, label: &str| FlightEvent::Phase {
        label: label.to_string(),
        at: SimTime(t),
    };
    let a = vec![mk(1, "a0"), mk(5, "a1"), mk(5, "a2")];
    let b = vec![mk(2, "b0"), mk(5, "b1")];
    let merged = merge_flight_events(vec![a, b]);
    let keys: Vec<(u64, String)> = merged
        .iter()
        .map(|e| match e {
            FlightEvent::Phase { label, at } => (at.0, label.clone()),
            other => panic!("unexpected event {other:?}"),
        })
        .collect();
    // Time order first; within the t=5 tie, shard 0's events precede
    // shard 1's.
    let want: Vec<(u64, String)> = [(1, "a0"), (2, "b0"), (5, "a1"), (5, "a2"), (5, "b1")]
        .iter()
        .map(|(t, l)| (*t, l.to_string()))
        .collect();
    assert_eq!(keys, want);
}

#[test]
fn relay_makespan_is_plausible() {
    // One round on a 64-node ring: each token makes a 1-id hop; the
    // longest of those (wrap-around) bounds completion. All well under
    // a microsecond per round of the paper's 162 ns-scale hops.
    let dims = TorusDims::new(4, 4, 4);
    let o = run_par(dims, 1, 2);
    let us = (o.now - SimTime::ZERO).as_us_f64();
    assert!(us < 2.0, "{us} µs");
    assert!(o.now > SimTime::ZERO);
    let _ = SimDuration::ZERO;
}
