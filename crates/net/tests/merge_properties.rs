//! Shard-order independence of the parallel runtime's reductions.
//!
//! The parallel executor merges per-shard [`NetStats`] and per-shard
//! [`MetricsRegistry`] instances in deterministic shard order, but the
//! *result* must not depend on that order (or on how workers group
//! shards): both merges have to be commutative and associative, so any
//! worker/shard partition reduces to the same machine-wide totals. The
//! properties are checked over randomized inputs and all orderings of a
//! three-shard merge — every way two workers could have pre-reduced a
//! subset before the final fold.

use anton_des::SimDuration;
use anton_net::NetStats;
use anton_obs::{
    stream::log2_bucket, MetricsRegistry, MetricsSnapshot, QuantileSketch, Reservoir,
    SpaceSavingTopK, StreamingMoments,
};
use proptest::prelude::*;

/// Build a `NetStats` from 13 scalar counters and two per-node vectors.
fn stats(scalars: &[u64], sent: &[u64], delivered: &[u64]) -> NetStats {
    NetStats {
        packets_sent: scalars[0],
        packets_delivered: scalars[1],
        payload_bytes_delivered: scalars[2],
        link_traversals: scalars[3],
        sent_by_node: sent.to_vec(),
        delivered_by_node: delivered.to_vec(),
        faults_dropped: scalars[4],
        faults_corrupted: scalars[5],
        retransmits: scalars[6],
        retry_budget_exhausted: scalars[7],
        packets_unreachable: scalars[8],
        packets_lost: scalars[9],
        delivery_errors: scalars[10],
    }
}

/// Build a small registry whose key set and values derive from `spec`:
/// counters `c0..`, gauges `g0..`, one histogram fed every sample.
/// Varying lengths give partially overlapping key sets across shards.
fn registry(counters: &[u64], gauges: &[u64], samples: &[u64]) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    for (i, v) in counters.iter().enumerate() {
        m.inc(&format!("c{i}"), *v);
    }
    for (i, v) in gauges.iter().enumerate() {
        m.set_gauge(&format!("g{i}"), *v as f64);
    }
    for ns in samples {
        m.observe("lat", SimDuration::from_ns(*ns));
    }
    m
}

fn merged_stats(order: &[&NetStats]) -> NetStats {
    let mut acc = NetStats::default();
    for s in order {
        acc.merge(s);
    }
    acc
}

fn merged_snapshot(order: &[&MetricsRegistry]) -> MetricsSnapshot {
    let mut acc = MetricsRegistry::new();
    for m in order {
        acc.merge(m);
    }
    acc.snapshot()
}

proptest! {
    /// `NetStats::merge` is commutative and associative: every
    /// permutation of three shard blocks — and every pre-reduction of a
    /// pair before the final fold — yields identical totals.
    #[test]
    fn net_stats_merge_is_order_independent(
        sa in prop::collection::vec(0u64..1_000_000, 11..12),
        sb in prop::collection::vec(0u64..1_000_000, 11..12),
        sc in prop::collection::vec(0u64..1_000_000, 11..12),
        va in prop::collection::vec(0u64..1000, 0..5),
        vb in prop::collection::vec(0u64..1000, 0..5),
        vc in prop::collection::vec(0u64..1000, 0..5),
    ) {
        let a = stats(&sa, &va, &vb);
        let b = stats(&sb, &vb, &vc);
        let c = stats(&sc, &vc, &va);
        let base = merged_stats(&[&a, &b, &c]);
        // Commutativity: all six shard orders agree.
        for order in [
            [&a, &c, &b], [&b, &a, &c], [&b, &c, &a], [&c, &a, &b], [&c, &b, &a],
        ] {
            prop_assert_eq!(&merged_stats(&order), &base);
        }
        // Associativity: a worker pre-reducing (b, c) before the final
        // fold changes nothing.
        let mut bc = NetStats::default();
        bc.merge(&b);
        bc.merge(&c);
        let mut assoc = a.clone();
        assoc.merge(&bc);
        prop_assert_eq!(&assoc, &base);
    }

    /// `MetricsRegistry::merge` (counters add, gauges max, histograms
    /// pool) is order-independent down to the flattened snapshot, even
    /// with partially overlapping key sets.
    #[test]
    fn metrics_merge_is_order_independent(
        ca in prop::collection::vec(0u64..1000, 0..4),
        cb in prop::collection::vec(0u64..1000, 0..4),
        cc in prop::collection::vec(0u64..1000, 0..4),
        ga in prop::collection::vec(0u64..1000, 0..3),
        gb in prop::collection::vec(0u64..1000, 0..3),
        gc in prop::collection::vec(0u64..1000, 0..3),
        ha in prop::collection::vec(1u64..100_000, 0..6),
        hb in prop::collection::vec(1u64..100_000, 0..6),
        hc in prop::collection::vec(1u64..100_000, 0..6),
    ) {
        let a = registry(&ca, &ga, &ha);
        let b = registry(&cb, &gb, &hb);
        let c = registry(&cc, &gc, &hc);
        let base = merged_snapshot(&[&a, &b, &c]);
        for order in [
            [&a, &c, &b], [&b, &a, &c], [&b, &c, &a], [&c, &a, &b], [&c, &b, &a],
        ] {
            prop_assert_eq!(&merged_snapshot(&order), &base);
        }
        // Associativity via pre-reduced (b, c).
        let mut bc = MetricsRegistry::new();
        bc.merge(&b);
        bc.merge(&c);
        let mut assoc = a.clone();
        assoc.merge(&bc);
        prop_assert_eq!(&assoc.snapshot(), &base);
    }

    /// Merging an empty registry is the identity — shards that ran no
    /// events contribute nothing.
    #[test]
    fn metrics_merge_empty_is_identity(
        ca in prop::collection::vec(0u64..1000, 0..4),
        ha in prop::collection::vec(1u64..100_000, 0..6),
    ) {
        let a = registry(&ca, &[7, 9], &ha);
        let before = a.snapshot();
        let mut merged = a.clone();
        merged.merge(&MetricsRegistry::new());
        prop_assert_eq!(&merged.snapshot(), &before);
        let mut from_empty = MetricsRegistry::new();
        from_empty.merge(&a);
        prop_assert_eq!(&from_empty.snapshot(), &before);
    }

    /// `QuantileSketch::merge` is bit-deterministic under every shard
    /// permutation and under pre-reduction of any pair: bucket counts
    /// are plain integer adds, so no order can perturb them.
    #[test]
    fn quantile_sketch_merge_is_order_independent(
        pa in prop::collection::vec(0u64..10_000_000_000, 0..40),
        pb in prop::collection::vec(0u64..10_000_000_000, 0..40),
        pc in prop::collection::vec(0u64..10_000_000_000, 0..40),
    ) {
        let a = sketch(&pa);
        let b = sketch(&pb);
        let c = sketch(&pc);
        let base = merged_sketch(&[&a, &b, &c]);
        for order in [
            [&a, &c, &b], [&b, &a, &c], [&b, &c, &a], [&c, &a, &b], [&c, &b, &a],
        ] {
            prop_assert_eq!(&merged_sketch(&order), &base);
        }
        let mut bc = QuantileSketch::new();
        bc.merge(&b);
        bc.merge(&c);
        let mut assoc = a.clone();
        assoc.merge(&bc);
        prop_assert_eq!(&assoc, &base);
        // The merge pools everything: count and exact sum add.
        prop_assert_eq!(base.count(), (pa.len() + pb.len() + pc.len()) as u64);
        let want: u128 = pa.iter().chain(&pb).chain(&pc).map(|&p| p as u128).sum();
        prop_assert_eq!(base.sum_ps(), want);
    }

    /// `StreamingMoments::merge` is order-independent: count, sum and
    /// sum-of-squares are exact integer accumulators, so shard order
    /// (and pre-reduction) cannot introduce float drift.
    #[test]
    fn streaming_moments_merge_is_order_independent(
        pa in prop::collection::vec(0u64..10_000_000_000, 0..40),
        pb in prop::collection::vec(0u64..10_000_000_000, 0..40),
        pc in prop::collection::vec(0u64..10_000_000_000, 0..40),
    ) {
        let a = moments(&pa);
        let b = moments(&pb);
        let c = moments(&pc);
        let base = merged_moments(&[&a, &b, &c]);
        for order in [
            [&a, &c, &b], [&b, &a, &c], [&b, &c, &a], [&c, &a, &b], [&c, &b, &a],
        ] {
            prop_assert_eq!(&merged_moments(&order), &base);
        }
        let mut bc = StreamingMoments::new();
        bc.merge(&b);
        bc.merge(&c);
        let mut assoc = a.clone();
        assoc.merge(&bc);
        prop_assert_eq!(&assoc, &base);
    }

    /// `SpaceSavingTopK::merge` (exact union-sum over disjoint-owner
    /// shards) is commutative and associative, including the carried
    /// per-key error bounds.
    #[test]
    fn topk_merge_is_order_independent(
        ka in prop::collection::vec(0u64..64_000_000, 0..30),
        kb in prop::collection::vec(0u64..64_000_000, 0..30),
        kc in prop::collection::vec(0u64..64_000_000, 0..30),
    ) {
        let a = topk(&ka);
        let b = topk(&kb);
        let c = topk(&kc);
        let base = merged_topk(&[&a, &b, &c]);
        for order in [
            [&a, &c, &b], [&b, &a, &c], [&b, &c, &a], [&c, &a, &b], [&c, &b, &a],
        ] {
            prop_assert_eq!(merged_topk(&order).top(64), base.top(64));
        }
        let mut bc = SpaceSavingTopK::new(16);
        bc.merge(&b);
        bc.merge(&c);
        let mut assoc = a.clone();
        assoc.merge(&bc);
        prop_assert_eq!(assoc.top(64), base.top(64));
    }

    /// `Reservoir::merge` (bottom-k priority sampling) keeps the same
    /// sample whatever order the shards arrive in — the kept set is the
    /// k smallest hash priorities over the union of offers.
    #[test]
    fn reservoir_merge_is_order_independent(
        ia in prop::collection::vec(0u64..1_000_000, 0..30),
        ib in prop::collection::vec(0u64..1_000_000, 0..30),
        ic in prop::collection::vec(0u64..1_000_000, 0..30),
    ) {
        let a = reservoir(&ia);
        let b = reservoir(&ib);
        let c = reservoir(&ic);
        let base = merged_reservoir(&[&a, &b, &c]);
        for order in [
            [&a, &c, &b], [&b, &a, &c], [&b, &c, &a], [&c, &a, &b], [&c, &b, &a],
        ] {
            let m = merged_reservoir(&order);
            prop_assert_eq!(
                m.entries().map(|(id, v)| (id, *v)).collect::<Vec<_>>(),
                base.entries().map(|(id, v)| (id, *v)).collect::<Vec<_>>()
            );
        }
        let mut bc = Reservoir::new(8, 42);
        bc.merge(&b);
        bc.merge(&c);
        let mut assoc = a.clone();
        assoc.merge(&bc);
        prop_assert_eq!(
            assoc.entries().map(|(id, v)| (id, *v)).collect::<Vec<_>>(),
            base.entries().map(|(id, v)| (id, *v)).collect::<Vec<_>>()
        );
    }

    /// The streaming sketch tracks the exact `LogHistogram` to within
    /// one log2 bucket at every quantile, on any shared input stream —
    /// the bounded-error contract `scale_probe` relies on at scale.
    #[test]
    fn sketch_quantiles_track_exact_histogram(
        ps in prop::collection::vec(1u64..100_000_000_000, 1..200),
        qs in prop::collection::vec(0.0f64..1.0, 1..6),
    ) {
        let mut reg = MetricsRegistry::new();
        let mut sk = QuantileSketch::new();
        for &p in &ps {
            reg.observe("lat", SimDuration(p));
            sk.record_ps(p);
        }
        let hist = reg.histogram("lat").unwrap();
        for &q in &qs {
            let exact = hist.quantile(q).unwrap().as_ps();
            let approx = sk.quantile_ps(q).unwrap();
            let (be, ba) = (log2_bucket(exact), log2_bucket(approx));
            prop_assert!(
                be.abs_diff(ba) <= 1,
                "q={q}: sketch {approx} vs exact {exact} ({ba} vs {be})"
            );
        }
    }
}

/// Feed raw picosecond samples into a sketch.
fn sketch(ps: &[u64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &p in ps {
        s.record_ps(p);
    }
    s
}

fn merged_sketch(order: &[&QuantileSketch]) -> QuantileSketch {
    let mut acc = QuantileSketch::new();
    for s in order {
        acc.merge(s);
    }
    acc
}

fn moments(ps: &[u64]) -> StreamingMoments {
    let mut m = StreamingMoments::new();
    for &p in ps {
        m.record(SimDuration(p));
    }
    m
}

fn merged_moments(order: &[&StreamingMoments]) -> StreamingMoments {
    let mut acc = StreamingMoments::new();
    for m in order {
        acc.merge(m);
    }
    acc
}

/// A small-capacity table so evictions actually happen while filling.
/// Each raw sample packs a key (low 6 bits of the quotient space) and a
/// weight, since this proptest build has no tuple strategies.
fn topk(offers: &[u64]) -> SpaceSavingTopK<u32> {
    let mut t = SpaceSavingTopK::new(16);
    for &raw in offers {
        t.offer((raw % 64) as u32, raw / 64);
    }
    t
}

fn merged_topk(order: &[&SpaceSavingTopK<u32>]) -> SpaceSavingTopK<u32> {
    let mut acc = SpaceSavingTopK::new(16);
    for t in order {
        acc.merge(t);
    }
    acc
}

fn reservoir(ids: &[u64]) -> Reservoir<u64> {
    let mut r = Reservoir::new(8, 42);
    for &id in ids {
        r.offer(id, id * 3);
    }
    r
}

fn merged_reservoir(order: &[&Reservoir<u64>]) -> Reservoir<u64> {
    let mut acc = Reservoir::new(8, 42);
    for r in order {
        acc.merge(r);
    }
    acc
}
