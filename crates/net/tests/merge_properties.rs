//! Shard-order independence of the parallel runtime's reductions.
//!
//! The parallel executor merges per-shard [`NetStats`] and per-shard
//! [`MetricsRegistry`] instances in deterministic shard order, but the
//! *result* must not depend on that order (or on how workers group
//! shards): both merges have to be commutative and associative, so any
//! worker/shard partition reduces to the same machine-wide totals. The
//! properties are checked over randomized inputs and all orderings of a
//! three-shard merge — every way two workers could have pre-reduced a
//! subset before the final fold.

use anton_des::SimDuration;
use anton_net::NetStats;
use anton_obs::{MetricsRegistry, MetricsSnapshot};
use proptest::prelude::*;

/// Build a `NetStats` from 13 scalar counters and two per-node vectors.
fn stats(scalars: &[u64], sent: &[u64], delivered: &[u64]) -> NetStats {
    NetStats {
        packets_sent: scalars[0],
        packets_delivered: scalars[1],
        payload_bytes_delivered: scalars[2],
        link_traversals: scalars[3],
        sent_by_node: sent.to_vec(),
        delivered_by_node: delivered.to_vec(),
        faults_dropped: scalars[4],
        faults_corrupted: scalars[5],
        retransmits: scalars[6],
        retry_budget_exhausted: scalars[7],
        packets_unreachable: scalars[8],
        packets_lost: scalars[9],
        delivery_errors: scalars[10],
    }
}

/// Build a small registry whose key set and values derive from `spec`:
/// counters `c0..`, gauges `g0..`, one histogram fed every sample.
/// Varying lengths give partially overlapping key sets across shards.
fn registry(counters: &[u64], gauges: &[u64], samples: &[u64]) -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    for (i, v) in counters.iter().enumerate() {
        m.inc(&format!("c{i}"), *v);
    }
    for (i, v) in gauges.iter().enumerate() {
        m.set_gauge(&format!("g{i}"), *v as f64);
    }
    for ns in samples {
        m.observe("lat", SimDuration::from_ns(*ns));
    }
    m
}

fn merged_stats(order: &[&NetStats]) -> NetStats {
    let mut acc = NetStats::default();
    for s in order {
        acc.merge(s);
    }
    acc
}

fn merged_snapshot(order: &[&MetricsRegistry]) -> MetricsSnapshot {
    let mut acc = MetricsRegistry::new();
    for m in order {
        acc.merge(m);
    }
    acc.snapshot()
}

proptest! {
    /// `NetStats::merge` is commutative and associative: every
    /// permutation of three shard blocks — and every pre-reduction of a
    /// pair before the final fold — yields identical totals.
    #[test]
    fn net_stats_merge_is_order_independent(
        sa in prop::collection::vec(0u64..1_000_000, 11..12),
        sb in prop::collection::vec(0u64..1_000_000, 11..12),
        sc in prop::collection::vec(0u64..1_000_000, 11..12),
        va in prop::collection::vec(0u64..1000, 0..5),
        vb in prop::collection::vec(0u64..1000, 0..5),
        vc in prop::collection::vec(0u64..1000, 0..5),
    ) {
        let a = stats(&sa, &va, &vb);
        let b = stats(&sb, &vb, &vc);
        let c = stats(&sc, &vc, &va);
        let base = merged_stats(&[&a, &b, &c]);
        // Commutativity: all six shard orders agree.
        for order in [
            [&a, &c, &b], [&b, &a, &c], [&b, &c, &a], [&c, &a, &b], [&c, &b, &a],
        ] {
            prop_assert_eq!(&merged_stats(&order), &base);
        }
        // Associativity: a worker pre-reducing (b, c) before the final
        // fold changes nothing.
        let mut bc = NetStats::default();
        bc.merge(&b);
        bc.merge(&c);
        let mut assoc = a.clone();
        assoc.merge(&bc);
        prop_assert_eq!(&assoc, &base);
    }

    /// `MetricsRegistry::merge` (counters add, gauges max, histograms
    /// pool) is order-independent down to the flattened snapshot, even
    /// with partially overlapping key sets.
    #[test]
    fn metrics_merge_is_order_independent(
        ca in prop::collection::vec(0u64..1000, 0..4),
        cb in prop::collection::vec(0u64..1000, 0..4),
        cc in prop::collection::vec(0u64..1000, 0..4),
        ga in prop::collection::vec(0u64..1000, 0..3),
        gb in prop::collection::vec(0u64..1000, 0..3),
        gc in prop::collection::vec(0u64..1000, 0..3),
        ha in prop::collection::vec(1u64..100_000, 0..6),
        hb in prop::collection::vec(1u64..100_000, 0..6),
        hc in prop::collection::vec(1u64..100_000, 0..6),
    ) {
        let a = registry(&ca, &ga, &ha);
        let b = registry(&cb, &gb, &hb);
        let c = registry(&cc, &gc, &hc);
        let base = merged_snapshot(&[&a, &b, &c]);
        for order in [
            [&a, &c, &b], [&b, &a, &c], [&b, &c, &a], [&c, &a, &b], [&c, &b, &a],
        ] {
            prop_assert_eq!(&merged_snapshot(&order), &base);
        }
        // Associativity via pre-reduced (b, c).
        let mut bc = MetricsRegistry::new();
        bc.merge(&b);
        bc.merge(&c);
        let mut assoc = a.clone();
        assoc.merge(&bc);
        prop_assert_eq!(&assoc.snapshot(), &base);
    }

    /// Merging an empty registry is the identity — shards that ran no
    /// events contribute nothing.
    #[test]
    fn metrics_merge_empty_is_identity(
        ca in prop::collection::vec(0u64..1000, 0..4),
        ha in prop::collection::vec(1u64..100_000, 0..6),
    ) {
        let a = registry(&ca, &[7, 9], &ha);
        let before = a.snapshot();
        let mut merged = a.clone();
        merged.merge(&MetricsRegistry::new());
        prop_assert_eq!(&merged.snapshot(), &before);
        let mut from_empty = MetricsRegistry::new();
        from_empty.merge(&a);
        prop_assert_eq!(&from_empty.snapshot(), &before);
    }
}
