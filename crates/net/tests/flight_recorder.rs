//! Integration tests of the flight recorder against the live fabric:
//! exact stage accounting under random contended traffic, byte-identical
//! trace exports across runs, and the zero-observer-effect guarantee.

use anton_des::SimTime;
use anton_net::{
    ClientAddr, ClientKind, Ctx, Fabric, FaultPlan, NodeProgram, Packet, Payload, ProgEvent,
    Simulation, Timing,
};
use anton_obs::{fold_lifecycles, ChromeTraceBuilder, FlightRecorder, SharedFlightRecorder, Stage};
use anton_topo::{NodeId, TorusDims};
use proptest::prelude::*;
use std::rc::Rc;

fn slice0(node: NodeId) -> ClientAddr {
    ClientAddr::new(node, ClientKind::Slice(0))
}

/// Every node fires its planned unicast writes at start; contention on
/// injection ports and links is what makes the stage accounting
/// interesting.
struct PlannedTraffic {
    /// (src, dst, payload_bytes) per planned packet.
    plan: Rc<Vec<(u32, u32, u32)>>,
}

impl NodeProgram for PlannedTraffic {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        if !matches!(pe, ProgEvent::Start) {
            return;
        }
        for &(src, dst, bytes) in self.plan.iter() {
            if NodeId(src) != node {
                continue;
            }
            let pkt = Packet::write(slice0(node), slice0(NodeId(dst)), 0x40, Payload::Empty)
                .with_payload_bytes(bytes);
            ctx.send(pkt);
        }
    }
}

/// Run a plan and return (end time, traffic stats, metrics JSON) — the
/// metrics come from `Fabric::export_metrics`, covering the `net.*`
/// counters and the `mem.*` FIFO/counter aggregates.
fn run_planned(
    dims: TorusDims,
    plan: Rc<Vec<(u32, u32, u32)>>,
    recorder: Option<SharedFlightRecorder>,
) -> (SimTime, anton_net::NetStats, String) {
    let mut fabric = Fabric::with_faults(dims, Timing::default(), FaultPlan::none());
    if let Some(rec) = recorder {
        fabric.set_recorder(Box::new(rec));
    }
    let p2 = plan.clone();
    let mut sim = Simulation::new(fabric, move |_| PlannedTraffic { plan: p2.clone() });
    assert!(sim
        .run_guarded(SimTime(u64::MAX / 2), 10_000_000)
        .is_completed());
    let mut reg = anton_obs::MetricsRegistry::new();
    sim.world.fabric.export_metrics(&mut reg);
    (
        sim.now(),
        sim.world.fabric.stats.clone(),
        reg.snapshot().to_json(),
    )
}

/// Derive a traffic plan from raw random words: (src, dst,
/// payload_bytes) per packet, all within the machine.
fn decode_plan(dims: TorusDims, raw: &[u64]) -> Vec<(u32, u32, u32)> {
    let n = dims.node_count() as u64;
    raw.iter()
        .map(|&r| {
            let src = (r % n) as u32;
            let dst = ((r >> 16) % n) as u32;
            let bytes = ((r >> 32) % 257) as u32;
            (src, dst, bytes)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every delivered unicast packet, the five recorded stage
    /// durations sum *exactly* (to the picosecond) to its end-to-end
    /// latency — under arbitrary cross-traffic, port contention, and
    /// payload sizes, local sends included.
    #[test]
    fn stage_durations_sum_to_end_to_end(
        x in 2u32..4, y in 2u32..4, z in 2u32..4,
        raw in prop::collection::vec(0u64..u64::MAX, 1..40),
    ) {
        let dims = TorusDims::new(x, y, z);
        let plan = Rc::new(decode_plan(dims, &raw));
        let rec = FlightRecorder::new().into_shared();
        let (_, _, metrics) = run_planned(dims, plan.clone(), Some(rec.clone()));
        prop_assert!(metrics.contains("\"net.packets_sent\""));
        prop_assert!(metrics.contains("\"mem.counter_increments\""));

        let rec = rec.borrow();
        let (lives, fold) = fold_lifecycles(rec.events());
        // Unicast writes only: every planned packet completes.
        prop_assert_eq!(fold.incomplete, 0);
        prop_assert_eq!(fold.multicast, 0);
        prop_assert_eq!(lives.len(), plan.len());
        for lc in &lives {
            let sum: u64 = Stage::ALL.iter().map(|&s| lc.stage(s).as_ps()).sum();
            prop_assert_eq!(
                sum,
                lc.end_to_end().as_ps(),
                "packet {:?}: stages must telescope exactly",
                lc.pkt
            );
        }
    }

    /// Same plan, same seed ⇒ byte-identical Chrome trace export, and a
    /// recorder-equipped run is indistinguishable (simulated time and
    /// traffic stats) from an unrecorded one.
    #[test]
    fn trace_export_is_deterministic_and_unobtrusive(
        x in 2u32..4, y in 2u32..4, z in 2u32..4,
        raw in prop::collection::vec(0u64..u64::MAX, 1..40),
    ) {
        let dims = TorusDims::new(x, y, z);
        let plan = Rc::new(decode_plan(dims, &raw));

        let export = |rec: &SharedFlightRecorder| {
            let rec = rec.borrow();
            let (lives, _) = fold_lifecycles(rec.events());
            let mut trace = ChromeTraceBuilder::new();
            for lc in &lives {
                trace.add_lifecycle(1, lc);
            }
            trace.finish()
        };

        let rec_a = FlightRecorder::new().into_shared();
        let (end_a, stats_a, metrics_a) = run_planned(dims, plan.clone(), Some(rec_a.clone()));
        let rec_b = FlightRecorder::new().into_shared();
        let (end_b, stats_b, metrics_b) = run_planned(dims, plan.clone(), Some(rec_b.clone()));
        let json_a = export(&rec_a);
        prop_assert_eq!(json_a.clone(), export(&rec_b), "same run, same bytes");
        prop_assert_eq!(end_a, end_b);
        anton_obs::validate_json(&json_a).expect("export is well-formed JSON");
        anton_obs::validate_json(&metrics_a).expect("metrics are well-formed JSON");

        // Observer effect: none. The unrecorded run matches exactly.
        let (end_plain, stats_plain, metrics_plain) = run_planned(dims, plan, None);
        prop_assert_eq!(end_a, end_plain);
        prop_assert_eq!(format!("{stats_a:?}"), format!("{stats_plain:?}"));
        prop_assert_eq!(format!("{stats_a:?}"), format!("{stats_b:?}"));
        prop_assert_eq!(metrics_a.clone(), metrics_b);
        prop_assert_eq!(metrics_a, metrics_plain);
    }
}
