//! Property tests of the causal event-graph reconstruction against the
//! live fabric: the DAG is acyclic, its critical path telescopes to the
//! recorded makespan exactly, slack is zero along the path, and a
//! zero-perturbation retiming reproduces every recorded event time
//! bit-for-bit — under arbitrary contended traffic, and under packet
//! drops with retransmission.

use anton_des::SimTime;
use anton_net::{
    ClientAddr, ClientKind, Ctx, Fabric, FaultPlan, NodeProgram, Packet, Payload, ProgEvent,
    Simulation, Timing,
};
use anton_obs::{
    retime, CausalGraph, FlightEvent, FlightRecorder, Perturbation, SharedFlightRecorder,
};
use anton_topo::{NodeId, TorusDims};
use proptest::prelude::*;
use proptest::TestCaseError;
use std::rc::Rc;

fn slice0(node: NodeId) -> ClientAddr {
    ClientAddr::new(node, ClientKind::Slice(0))
}

/// Every node fires its planned unicast writes at start; contention on
/// injection ports and links makes the causal structure interesting.
struct PlannedTraffic {
    plan: Rc<Vec<(u32, u32, u32)>>,
}

impl NodeProgram for PlannedTraffic {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        if !matches!(pe, ProgEvent::Start) {
            return;
        }
        for &(src, dst, bytes) in self.plan.iter() {
            if NodeId(src) != node {
                continue;
            }
            let pkt = Packet::write(slice0(node), slice0(NodeId(dst)), 0x40, Payload::Empty)
                .with_payload_bytes(bytes);
            ctx.send(pkt);
        }
    }
}

fn run_planned(
    dims: TorusDims,
    plan: Rc<Vec<(u32, u32, u32)>>,
    fault: FaultPlan,
) -> SharedFlightRecorder {
    let rec = FlightRecorder::new().into_shared();
    let mut fabric = Fabric::with_faults(dims, Timing::default(), fault);
    fabric.set_recorder(Box::new(rec.clone()));
    let p2 = plan.clone();
    let mut sim = Simulation::new(fabric, move |_| PlannedTraffic { plan: p2.clone() });
    assert!(sim
        .run_guarded(SimTime(u64::MAX / 2), 10_000_000)
        .is_completed());
    rec
}

fn decode_plan(dims: TorusDims, raw: &[u64]) -> Vec<(u32, u32, u32)> {
    let n = dims.node_count() as u64;
    raw.iter()
        .map(|&r| {
            let src = (r % n) as u32;
            let dst = ((r >> 16) % n) as u32;
            let bytes = ((r >> 32) % 257) as u32;
            (src, dst, bytes)
        })
        .collect()
}

fn build_graph(dims: TorusDims, rec: &SharedFlightRecorder) -> CausalGraph {
    let timing = Timing::default();
    let rec = rec.borrow();
    CausalGraph::build(dims, rec.events(), |b| timing.injection_occupancy(b))
}

/// Independent acyclicity check: Kahn's algorithm must consume every
/// node (the builder's own invariant is `src < dst`, checked too).
fn assert_acyclic(g: &CausalGraph) -> Result<(), TestCaseError> {
    let n = g.len();
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    for e in g.edges() {
        prop_assert!(e.src < e.dst, "stream order must be topological");
        indeg[e.dst as usize] += 1;
        out[e.src as usize].push(e.dst);
    }
    let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
    let mut seen = 0usize;
    while let Some(i) = queue.pop() {
        seen += 1;
        for &d in &out[i as usize] {
            indeg[d as usize] -= 1;
            if indeg[d as usize] == 0 {
                queue.push(d);
            }
        }
    }
    prop_assert_eq!(seen, n, "Kahn's algorithm must drain the whole graph");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fault-free random traffic: the reconstructed DAG is internally
    /// consistent and acyclic, the critical path ends at the latest
    /// recorded delivery and telescopes to the makespan *exactly*, path
    /// slack is zero, and all slacks are well-formed.
    #[test]
    fn critical_path_telescopes_to_recorded_makespan(
        x in 2u32..4, y in 2u32..4, z in 2u32..4,
        raw in prop::collection::vec(0u64..u64::MAX, 1..40),
    ) {
        let dims = TorusDims::new(x, y, z);
        let plan = Rc::new(decode_plan(dims, &raw));
        let rec = run_planned(dims, plan.clone(), FaultPlan::none());
        let g = build_graph(dims, &rec);
        prop_assert!(!g.is_empty());
        g.check_consistency().map_err(TestCaseError)?;
        assert_acyclic(&g)?;

        // The latest recorded delivery, computed from the raw stream
        // independently of the graph.
        let last_deliver = rec
            .borrow()
            .events()
            .filter_map(|e| match e {
                FlightEvent::Deliver { at, .. } => Some(at.as_ps()),
                _ => None,
            })
            .max()
            .expect("plan delivers at least one packet");

        let path = g.critical_path().expect("nonempty graph has a path");
        prop_assert_eq!(path.end.as_ps(), last_deliver, "path must end at the last delivery");
        // Telescoping: the path's edge lags sum to its span exactly.
        let lag_sum: u64 = path
            .edges
            .iter()
            .map(|&e| g.edges()[e as usize].lag.as_ps())
            .sum();
        prop_assert_eq!(lag_sum, path.span().as_ps(), "edge lags must telescope");
        let blame = anton_obs::Blame::from_path(&g, &path);
        prop_assert_eq!(blame.total().as_ps(), path.span().as_ps());

        // Slack: zero on the critical path, defined for its members.
        let slack = g.slack();
        for &n in &path.nodes {
            prop_assert_eq!(
                slack[n as usize].map(|s| s.as_ps()),
                Some(0),
                "critical-path node {} must have zero slack", n
            );
        }
    }

    /// A zero perturbation replays the DAG to the recorded times
    /// bit-for-bit — every node, not just the terminal.
    #[test]
    fn zero_perturbation_retiming_is_bit_for_bit(
        x in 2u32..4, y in 2u32..4, z in 2u32..4,
        raw in prop::collection::vec(0u64..u64::MAX, 1..30),
    ) {
        let dims = TorusDims::new(x, y, z);
        let plan = Rc::new(decode_plan(dims, &raw));
        let rec = run_planned(dims, plan, FaultPlan::none());
        let g = build_graph(dims, &rec);
        let replay = retime(&g, &Perturbation::none());
        for (i, node) in g.nodes().iter().enumerate() {
            prop_assert_eq!(
                replay.times[i], node.time,
                "node {} ({:?}) must replay exactly", i, node.kind
            );
        }
        prop_assert_eq!(replay.delta_ps(&g), 0);
    }

    /// Under packet drops with retransmission the reconstruction stays
    /// exact: the graph is still consistent and acyclic, retransmission
    /// delays land on Retransmit/Residual edges, and the identity
    /// replay still reproduces every recorded time.
    #[test]
    fn faulty_traffic_reconstructs_exactly(
        x in 2u32..4, y in 2u32..4,
        raw in prop::collection::vec(0u64..u64::MAX, 1..25),
        seed in 0u64..1000,
    ) {
        let dims = TorusDims::new(x, y, 2);
        let plan = Rc::new(decode_plan(dims, &raw));
        let fault = FaultPlan::seeded(seed).with_drop_rate(0.08);
        let rec = run_planned(dims, plan, fault);
        let g = build_graph(dims, &rec);
        g.check_consistency().map_err(TestCaseError)?;
        assert_acyclic(&g)?;
        let replay = retime(&g, &Perturbation::none());
        for (i, node) in g.nodes().iter().enumerate() {
            prop_assert_eq!(replay.times[i], node.time);
        }
    }
}
