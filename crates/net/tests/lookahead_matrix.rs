//! Property tests for the per-shard-pair lookahead matrix: under random
//! shard plans the per-pair bounds always dominate the global 54 ns
//! floor, direct entries exist exactly on ring-adjacent slabs, and a
//! sharded run — adaptive or global windows, any thread count — stays
//! bit-identical to the sequential reference while the engine's per-pair
//! runtime assertion stays armed.

use anton_des::par::LookaheadMode;
use anton_des::SimTime;
use anton_net::{
    ClientAddr, ClientKind, CounterId, Ctx, Fabric, FaultPlan, NodeProgram, Packet, ParSimulation,
    Payload, ProgEvent, ShardPlan, Simulation, Timing,
};
use anton_topo::{NodeId, TorusDims};
use proptest::prelude::*;

const C_TOK: CounterId = CounterId(3);
const ADDR: u64 = 0x2000;

/// Every node forwards a token to the node `stride` ids ahead `left`
/// times — cross-shard traffic across several slab boundaries at once
/// when the stride exceeds a slab's thickness.
struct Relay {
    stride: u32,
    left: u32,
    finished_at: Option<SimTime>,
}

impl Relay {
    fn arm_and_send(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let me = ClientAddr::new(node, ClientKind::Slice(0));
        ctx.watch_counter(me, C_TOK, 1);
        let total = ctx.dims().node_count();
        let next = NodeId((node.0 + self.stride) % total);
        let pkt = Packet::write(
            me,
            ClientAddr::new(next, ClientKind::Slice(0)),
            ADDR,
            Payload::F64s(vec![node.0 as f64 + self.left as f64]),
        )
        .with_payload_bytes(8)
        .with_counter(C_TOK);
        ctx.send(pkt);
    }
}

impl NodeProgram for Relay {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => self.arm_and_send(node, ctx),
            ProgEvent::CounterReached { .. } => {
                let me = ClientAddr::new(node, ClientKind::Slice(0));
                let _ = ctx.mem_take(me, ADDR);
                ctx.reset_counter(me, C_TOK);
                self.left -= 1;
                if self.left > 0 {
                    self.arm_and_send(node, ctx);
                } else {
                    self.finished_at = Some(ctx.now());
                }
            }
            _ => unreachable!(),
        }
    }
}

fn build(dims: TorusDims) -> Fabric {
    Fabric::with_faults(dims, Timing::default(), FaultPlan::none())
}

#[allow(clippy::type_complexity)]
fn run_sharded(
    dims: TorusDims,
    plan: ShardPlan,
    stride: u32,
    rounds: u32,
    threads: usize,
    mode: LookaheadMode,
) -> (anton_net::NetStats, SimTime, u64, Vec<SimTime>) {
    let mut sim = ParSimulation::with_plan(
        threads,
        plan,
        move || build(dims),
        |_| Relay {
            stride,
            left: rounds,
            finished_at: None,
        },
    );
    sim.set_lookahead_mode(mode);
    sim.run();
    (
        sim.merged_stats(),
        sim.now(),
        sim.events_processed(),
        (0..dims.node_count())
            .map(|i| sim.program(NodeId(i)).finished_at.expect("finished"))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under random dims and shard counts, the matrix has direct entries
    /// exactly on ring-adjacent slab pairs, every entry dominates the
    /// engine's global floor, and the min-plus closure is exactly the
    /// slab ring distance times the per-axis hop bound.
    #[test]
    fn random_plans_never_dip_below_the_global_bound(
        nx in 2u32..9, ny in 2u32..9, nz in 2u32..9,
        nshards in 1usize..10,
    ) {
        let dims = TorusDims::new(nx, ny, nz);
        let plan = ShardPlan::new(dims, nshards);
        let t = Timing::default();
        let floor = t.conservative_lookahead();
        let hop = t.min_hop_delay(plan.axis());
        prop_assert!(hop >= floor);
        let m = plan.lookahead_matrix(&t);
        let n = plan.shard_count();
        prop_assert_eq!(m.shards(), n);
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                match m.direct(a, b) {
                    Some(d) => {
                        prop_assert_eq!(plan.slab_ring_distance(a, b), 1);
                        prop_assert_eq!(d, hop);
                        prop_assert!(d >= floor);
                    }
                    None => prop_assert!(plan.slab_ring_distance(a, b) != 1),
                }
            }
        }
        let dist = m.closure_ps();
        for a in 0..n {
            for b in 0..n {
                let want = plan.slab_ring_distance(a, b) as u64 * hop.0;
                prop_assert_eq!(dist[a * n + b], want);
            }
        }
    }

    /// Random plans and relay strides: adaptive and global windows at
    /// several thread counts all reproduce the sequential reference
    /// bit-for-bit — with the engine's per-pair cross-shard assertion
    /// armed throughout, so no event ever beat the matrix's claim.
    #[test]
    fn sharded_runs_match_sequential_under_random_plans(
        nz in 2u32..6,
        nshards in 1usize..6,
        stride in 1u32..7,
        rounds in 1u32..3,
    ) {
        let dims = TorusDims::new(3, 3, nz);
        let plan = ShardPlan::new(dims, nshards);

        let mut seq = Simulation::new(build(dims), |_| Relay {
            stride,
            left: rounds,
            finished_at: None,
        });
        seq.run();
        let want_now = seq.now();
        let want_finished: Vec<SimTime> = seq
            .world
            .programs
            .iter()
            .map(|p| p.finished_at.expect("finished"))
            .collect();

        let reference = run_sharded(dims, plan, stride, rounds, 1, LookaheadMode::Adaptive);
        // Whole-struct equality only holds among sharded runs (the
        // sharded mode seeds one Start per shard); against the
        // sequential world, compare the traffic observables.
        let ws = &seq.world.fabric.stats;
        prop_assert_eq!(reference.0.packets_sent, ws.packets_sent);
        prop_assert_eq!(reference.0.packets_delivered, ws.packets_delivered);
        prop_assert_eq!(reference.0.link_traversals, ws.link_traversals);
        prop_assert_eq!(&reference.0.sent_by_node, &ws.sent_by_node);
        prop_assert_eq!(&reference.0.delivered_by_node, &ws.delivered_by_node);
        prop_assert_eq!(reference.1, want_now);
        prop_assert_eq!(&reference.3, &want_finished);
        for threads in [2, 4] {
            for mode in [LookaheadMode::Adaptive, LookaheadMode::Global] {
                let got = run_sharded(dims, plan, stride, rounds, threads, mode);
                prop_assert_eq!(&got, &reference, "{} threads, {} windows", threads, mode);
            }
        }
    }
}
