//! Timing model, calibrated to the paper's published numbers.
//!
//! Figure 6 breaks a single-hop (X-dimension) counted remote write into:
//!
//! ```text
//! send initiated in processing slice            36 ns
//! 2 send-side on-chip router hops               19 ns
//! X+ link adapter (incl. torus wire, ≤4 ns)     20 ns
//! X− link adapter on the receiving node         20 ns
//! 3 receive-side on-chip router hops            25 ns
//! delivery to slice memory + successful poll    42 ns
//! --------------------------------------------------
//! total                                        162 ns
//! ```
//!
//! Figure 5 gives per-transit-node costs of **76 ns/hop in X** and
//! **54 ns/hop in Y and Z** ("the X hops traverse more on-chip routers per
//! node"). Both adapters plus wire account for 40 ns of a transit, so the
//! on-chip ring crossing costs 36 ns when passing straight through in X
//! and 14 ns in Y/Z; a dimension turn is modeled halfway between.
//!
//! Bandwidths come from Figure 1/6: 50.6 Gbit/s raw per link direction
//! (36.8 Gbit/s effective data bandwidth), 124.2 Gbit/s on-chip ring.

use anton_des::SimDuration;
use anton_topo::Dim;

/// Header size in bytes (§III.A: "Packets contain 32 bytes of header and
/// 0 to 256 bytes of payload").
pub const HEADER_BYTES: u32 = 32;

/// Maximum payload bytes per packet.
pub const MAX_PAYLOAD_BYTES: u32 = 256;

/// Payloads of up to this many bytes ride inside the header for free
/// (§III.A: "for writes of up to 8 bytes, the data can be transported
/// directly in the header").
pub const IN_HEADER_PAYLOAD_BYTES: u32 = 8;

/// Wire encoding expansion (8b/10b-style line coding + CRC/gap,
/// amortized per byte). Chosen so a full 256-byte-payload packet
/// achieves approximately the paper's 36.8 Gbit/s effective data
/// bandwidth on a 50.6 Gbit/s raw link — `256/(288×1.25) × 50.6 =
/// 36.0 Gbit/s` — while a 28-byte payload reaches ~51% of it, matching
/// §III.D's "50% of the maximum possible data bandwidth is achieved
/// with 28-byte messages".
pub const WIRE_ENCODING_FACTOR: f64 = 1.25;

/// Raw link signaling rate, Gbit/s per direction (§III.A).
pub const LINK_RAW_GBPS: f64 = 50.6;

/// Effective data bandwidth per link direction, Gbit/s (§III.A).
pub const LINK_EFFECTIVE_GBPS: f64 = 36.8;

/// On-chip ring bandwidth, Gbit/s (Figure 6).
pub const RING_GBPS: f64 = 124.2;

/// All fixed latency components, in nanoseconds. Grouped in a struct so
/// experiments can perturb them (ablations) without touching globals.
///
/// ```
/// use anton_net::Timing;
/// let t = Timing::default();
/// // The paper's headline: one X hop, software to software.
/// assert_eq!(t.analytic_latency([1, 0, 0], 0).as_ns_f64(), 162.0);
/// // The 8×8×8 diameter.
/// assert_eq!(t.analytic_latency([4, 4, 4], 0).as_ns_f64(), 822.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Timing {
    /// Packet assembly + send initiation in a processing slice (36 ns).
    /// This is the pipeline *latency* of one send; back-to-back sends
    /// issue faster (see `send_issue_ns`).
    pub send_setup_ns: f64,
    /// Core occupancy per send: the slices "have hardware support for
    /// quickly assembling packets" (§III.A), so a Tensilica core can
    /// issue another send well before the previous one's 36 ns pipeline
    /// completes. Calibrated to Figure 7's near-flat Anton curve
    /// ("sending many fine-grained messages … is nearly as efficient as
    /// sending fewer, large messages").
    pub send_issue_ns: f64,
    /// Send-side traversal of 2 on-chip routers (19 ns).
    pub send_ring_ns: f64,
    /// One link adapter, wire delay folded in (20 ns; Figure 6 caption).
    pub adapter_ns: f64,
    /// Receive-side traversal of 3 on-chip routers (25 ns).
    pub recv_ring_ns: f64,
    /// Delivery into client memory + counter update + successful local
    /// poll (42 ns).
    pub deliver_poll_ns: f64,
    /// Ring crossing for a straight-through X transit (36 ns ⇒ 76 ns/hop).
    pub transit_ring_x_ns: f64,
    /// Ring crossing for a straight-through Y/Z transit (14 ns ⇒ 54 ns/hop).
    pub transit_ring_yz_ns: f64,
    /// Ring crossing when the packet turns between dimensions. Set equal
    /// to the Y/Z straight crossing so that Figure 5's measured 54 ns/hop
    /// slope holds from the very first Y hop (the Y/Z/X± adapters sit
    /// close together on the ring; only the X+→X− pass-through is long).
    pub transit_ring_turn_ns: f64,
    /// On-chip ring traversal for a purely local (same-node) write,
    /// client to client. 106 ns total local latency = 36 + 28 + 42.
    pub local_ring_ns: f64,
    /// Extra latency for a processing slice to poll an accumulation-memory
    /// counter across the on-chip ring (§III.B: "thus incur larger polling
    /// latencies"; §IV.B.4 calls this overhead "much larger" than local
    /// polls). Estimated as a ring round trip plus poll issue. (calibrated)
    pub accum_poll_extra_ns: f64,
    /// Portion of `deliver_poll_ns` that occupies the receiving Tensilica
    /// core (the successful poll itself). Send setup occupies the sender's
    /// core for `send_setup_ns`; overlap of the two on one core is what
    /// makes bidirectional ping-pong slightly slower than unidirectional
    /// (Figure 5).
    pub poll_busy_ns: f64,
    /// Cost for software to pop one message from the hardware FIFO
    /// (pointer check, read, head-pointer advance). (calibrated)
    pub fifo_pop_ns: f64,
    /// Raw link rate in Gbit/s.
    pub link_raw_gbps: f64,
    /// On-chip ring rate in Gbit/s.
    pub ring_gbps: f64,
}

impl Default for Timing {
    fn default() -> Self {
        Timing {
            send_setup_ns: 36.0,
            send_issue_ns: 11.0,
            send_ring_ns: 19.0,
            adapter_ns: 20.0,
            recv_ring_ns: 25.0,
            deliver_poll_ns: 42.0,
            transit_ring_x_ns: 36.0,
            transit_ring_yz_ns: 14.0,
            transit_ring_turn_ns: 14.0,
            local_ring_ns: 28.0,
            accum_poll_extra_ns: 100.0,
            poll_busy_ns: 12.0,
            fifo_pop_ns: 50.0,
            link_raw_gbps: LINK_RAW_GBPS,
            ring_gbps: RING_GBPS,
        }
    }
}

impl Timing {
    /// The Anton-1 calibration from the SC 2010 paper — identical to
    /// [`Timing::default`], under its profile name so scenario specs can
    /// select it explicitly.
    pub fn anton1() -> Self {
        Timing::default()
    }

    /// A second calibrated profile motivated by the Anton 3 network
    /// paper (arXiv:2201.08357): one process generation and a full
    /// redesign later, fixed per-hop costs are roughly halved and link
    /// and ring rates roughly quadrupled. The edge values here are this
    /// model's calibration choice (scaled from the Anton-1 numbers),
    /// not measured Anton 3 figures — the profile exists so experiments
    /// can ask "which conclusions survive a faster network?".
    ///
    /// ```
    /// use anton_net::Timing;
    /// let t = Timing::anton3();
    /// // Exactly half the Anton-1 one-hop and diameter latencies.
    /// assert_eq!(t.analytic_latency([1, 0, 0], 0).as_ns_f64(), 81.0);
    /// assert_eq!(t.analytic_latency([4, 4, 4], 0).as_ns_f64(), 411.0);
    /// ```
    pub fn anton3() -> Self {
        Timing {
            send_setup_ns: 18.0,
            send_issue_ns: 5.5,
            send_ring_ns: 9.5,
            adapter_ns: 10.0,
            recv_ring_ns: 12.5,
            deliver_poll_ns: 21.0,
            transit_ring_x_ns: 18.0,
            transit_ring_yz_ns: 7.0,
            transit_ring_turn_ns: 7.0,
            local_ring_ns: 14.0,
            accum_poll_extra_ns: 50.0,
            poll_busy_ns: 6.0,
            fifo_pop_ns: 25.0,
            link_raw_gbps: LINK_RAW_GBPS * 4.0,
            ring_gbps: RING_GBPS * 4.0,
        }
    }

    /// Look up a calibrated profile by name: `"anton1"` or `"anton3"`.
    /// Returns `None` for unknown names (callers own the error message).
    pub fn named(name: &str) -> Option<Self> {
        match name {
            "anton1" => Some(Timing::anton1()),
            "anton3" => Some(Timing::anton3()),
            _ => None,
        }
    }

    /// Bytes that actually cross a torus link for a given payload size
    /// (small payloads ride in the header; everything expands by the
    /// line-coding factor).
    pub fn wire_bytes(&self, payload_bytes: u32) -> u32 {
        assert!(payload_bytes <= MAX_PAYLOAD_BYTES, "payload too large");
        let body = if payload_bytes <= IN_HEADER_PAYLOAD_BYTES {
            0
        } else {
            payload_bytes
        };
        (((HEADER_BYTES + body) as f64) * WIRE_ENCODING_FACTOR).ceil() as u32
    }

    /// Time a packet occupies one torus link direction.
    pub fn link_occupancy(&self, payload_bytes: u32) -> SimDuration {
        SimDuration::for_bytes_at_gbps(self.wire_bytes(payload_bytes) as u64, self.link_raw_gbps)
    }

    /// Time a packet occupies a client's on-chip injection port.
    pub fn injection_occupancy(&self, payload_bytes: u32) -> SimDuration {
        let body = if payload_bytes <= IN_HEADER_PAYLOAD_BYTES {
            0
        } else {
            payload_bytes
        };
        SimDuration::for_bytes_at_gbps((HEADER_BYTES + body) as u64, self.ring_gbps)
    }

    /// Incremental tail latency of a payload beyond the base (0-byte)
    /// packet: the payload flits must arrive before the counter bumps.
    pub fn payload_tail(&self, payload_bytes: u32) -> SimDuration {
        let body = if payload_bytes <= IN_HEADER_PAYLOAD_BYTES {
            0
        } else {
            payload_bytes
        };
        SimDuration::for_bytes_at_gbps(
            (body as f64 * WIRE_ENCODING_FACTOR).ceil() as u64,
            self.link_raw_gbps,
        )
    }

    /// Ring-crossing latency for a transit from incoming dimension
    /// `in_dim` to outgoing `out_dim`.
    pub fn transit_ring(&self, in_dim: Dim, out_dim: Dim) -> SimDuration {
        let ns = if in_dim == out_dim {
            match in_dim {
                Dim::X => self.transit_ring_x_ns,
                Dim::Y | Dim::Z => self.transit_ring_yz_ns,
            }
        } else {
            self.transit_ring_turn_ns
        };
        SimDuration::from_ns_f64(ns)
    }

    fn ns(&self, v: f64) -> SimDuration {
        SimDuration::from_ns_f64(v)
    }

    /// Send-side fixed latency before the first link (setup + 2 router
    /// hops).
    pub fn send_overhead(&self) -> SimDuration {
        self.ns(self.send_setup_ns + self.send_ring_ns)
    }

    /// Head latency across one link: both adapters (wire folded in).
    pub fn link_head(&self) -> SimDuration {
        self.ns(self.adapter_ns * 2.0)
    }

    /// Receive-side fixed latency after the last link (3 router hops +
    /// delivery + poll).
    pub fn recv_overhead(&self) -> SimDuration {
        self.ns(self.recv_ring_ns + self.deliver_poll_ns)
    }

    /// Fixed latency of a same-node client-to-client write.
    pub fn local_latency(&self) -> SimDuration {
        self.ns(self.send_setup_ns + self.local_ring_ns + self.deliver_poll_ns)
    }

    /// **Analytic** uncontended end-to-end latency for a unicast write
    /// whose route takes the given per-dimension hops `[hx, hy, hz]`.
    /// The DES produces exactly this when nothing contends; the benches
    /// cross-check the two.
    pub fn analytic_latency(&self, hops: [u32; 3], payload_bytes: u32) -> SimDuration {
        let total_hops: u32 = hops.iter().sum();
        if total_hops == 0 {
            return self.local_latency() + self.payload_tail_onchip(payload_bytes);
        }
        let mut d = self.send_overhead() + self.recv_overhead();
        // Every hop crosses one link.
        d += self.link_head() * total_hops as u64;
        // Transits: hops minus the final arrival; dimension-ordered order
        // means hx−1 straight-X transits (if more X hops follow), etc.
        // Count straight transits per dimension and turns between
        // dimensions actually used.
        let dims_used: Vec<Dim> = Dim::ALL
            .iter()
            .copied()
            .filter(|d| hops[d.index()] > 0)
            .collect();
        for (i, &dim) in dims_used.iter().enumerate() {
            let straight = hops[dim.index()] - 1;
            let ring = match dim {
                Dim::X => self.transit_ring_x_ns,
                Dim::Y | Dim::Z => self.transit_ring_yz_ns,
            };
            d += SimDuration::from_ns_f64(ring * straight as f64);
            if i + 1 < dims_used.len() {
                d += self.ns(self.transit_ring_turn_ns);
            }
        }
        d + self.payload_tail(payload_bytes)
    }

    /// Conservative parallel-execution lookahead: a lower bound on the
    /// delay of **any** event that crosses a torus link, i.e. the minimum
    /// time by which one node can affect a *different* node. This is the
    /// paper's fixed-latency property turned into simulator leverage: the
    /// fastest possible link crossing is both adapters ([`link_head`],
    /// 40 ns by default) plus the cheapest ring crossing a transit can
    /// take (the Y/Z straight or turn crossing, 14 ns) — 54 ns. Every
    /// fabric event that hops between nodes (`HopArrive`) is scheduled at
    /// least this far in the future, so shards of the torus can advance
    /// independently inside windows of this width ([`anton_des::par`]).
    ///
    /// [`link_head`]: Timing::link_head
    pub fn conservative_lookahead(&self) -> SimDuration {
        let min_ring = self
            .transit_ring_x_ns
            .min(self.transit_ring_yz_ns)
            .min(self.transit_ring_turn_ns);
        self.link_head() + SimDuration::from_ns_f64(min_ring)
    }

    /// Minimum latency of one hop whose **outgoing** link runs along
    /// `axis`: both link adapters plus the cheapest ring crossing that
    /// can feed that axis (straight-through if the packet is already
    /// travelling in `axis`, or a turn from any other dimension —
    /// whichever is smaller). This is the per-link-class refinement of
    /// [`conservative_lookahead`]: a slab shard boundary perpendicular
    /// to `axis` can only be crossed by a hop *out* along `axis`, so the
    /// per-pair lookahead matrix ([`crate::par::ShardPlan::lookahead_matrix`])
    /// uses this bound for adjacent slabs instead of the global minimum
    /// over all axes. With default timing every axis bottoms out at
    /// 54 ns (the 14 ns turn crossing dominates even for X), so the
    /// matrix's leverage comes from *distance* — non-adjacent slabs
    /// compose this bound once per intervening ring step.
    ///
    /// ```
    /// use anton_net::Timing;
    /// use anton_topo::Dim;
    /// let t = Timing::default();
    /// for axis in Dim::ALL {
    ///     assert_eq!(t.min_hop_delay(axis).as_ns_f64(), 54.0);
    ///     assert!(t.min_hop_delay(axis) >= t.conservative_lookahead());
    /// }
    /// ```
    ///
    /// [`conservative_lookahead`]: Timing::conservative_lookahead
    pub fn min_hop_delay(&self, axis: Dim) -> SimDuration {
        let min_ring = Dim::ALL
            .iter()
            .map(|&in_dim| self.transit_ring(in_dim, axis))
            .min()
            .expect("three dims");
        self.link_head() + min_ring
    }

    /// Tail time of a payload crossing only the on-chip ring.
    pub fn payload_tail_onchip(&self, payload_bytes: u32) -> SimDuration {
        let body = if payload_bytes <= IN_HEADER_PAYLOAD_BYTES {
            0
        } else {
            payload_bytes
        };
        SimDuration::for_bytes_at_gbps(body as u64, self.ring_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_x_hop_is_162_ns() {
        let t = Timing::default();
        let d = t.analytic_latency([1, 0, 0], 0);
        assert_eq!(d, SimDuration::from_ns(162));
    }

    #[test]
    fn local_write_is_106_ns() {
        let t = Timing::default();
        assert_eq!(t.analytic_latency([0, 0, 0], 0), SimDuration::from_ns(106));
    }

    #[test]
    fn per_hop_increments_match_figure5() {
        let t = Timing::default();
        // Each extra X hop adds 76 ns.
        for hx in 1..4 {
            let a = t.analytic_latency([hx, 0, 0], 0);
            let b = t.analytic_latency([hx + 1, 0, 0], 0);
            assert_eq!(b - a, SimDuration::from_ns(76), "hx={hx}");
        }
        // Each extra Y or Z hop adds 54 ns (beyond the first in that dim).
        let a = t.analytic_latency([4, 1, 0], 0);
        let b = t.analytic_latency([4, 2, 0], 0);
        assert_eq!(b - a, SimDuration::from_ns(54));
        let c = t.analytic_latency([4, 4, 1], 0);
        let d = t.analytic_latency([4, 4, 2], 0);
        assert_eq!(d - c, SimDuration::from_ns(54));
    }

    #[test]
    fn max_distance_in_8x8x8_is_under_a_microsecond() {
        // Figure 5: 12 hops ≈ 5× the single-hop latency.
        let t = Timing::default();
        let d12 = t.analytic_latency([4, 4, 4], 0);
        let d1 = t.analytic_latency([1, 0, 0], 0);
        let ratio = d12.as_ns_f64() / d1.as_ns_f64();
        assert!((4.5..5.5).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn wire_bytes_and_effective_bandwidth() {
        let t = Timing::default();
        // Full packet approaches the paper's 36.8 Gbit/s effective rate.
        let occ = t.link_occupancy(256);
        let eff = 256.0 * 8.0 / occ.as_ns_f64(); // Gbit/s
        assert!((eff - LINK_EFFECTIVE_GBPS).abs() < 1.0, "eff={eff}");
        // The half-bandwidth message size is ~28 bytes (§III.D).
        let eff28 = 28.0 * 8.0 / t.link_occupancy(28).as_ns_f64();
        let frac = eff28 / LINK_EFFECTIVE_GBPS;
        assert!((0.4..0.6).contains(&frac), "28-byte fraction {frac}");
        // ≤8-byte payloads ride in the header: same occupancy as 0 B.
        assert_eq!(t.link_occupancy(8), t.link_occupancy(0));
        assert_eq!(t.payload_tail(4), SimDuration::ZERO);
        assert!(t.link_occupancy(9) > t.link_occupancy(8));
    }

    #[test]
    #[should_panic(expected = "payload too large")]
    fn oversized_payload_rejected() {
        Timing::default().wire_bytes(257);
    }

    #[test]
    fn payload_tail_grows_latency() {
        let t = Timing::default();
        let d0 = t.analytic_latency([1, 0, 0], 0);
        let d256 = t.analytic_latency([1, 0, 0], 256);
        let delta = (d256 - d0).as_ns_f64();
        // 256 B × 1.25 encoding at 50.6 Gbit/s ≈ 50.6 ns.
        assert!((delta - 50.6).abs() < 1.0, "delta={delta}");
    }

    #[test]
    fn turns_cost_like_yz_straight_crossings() {
        let t = Timing::default();
        let turn = t.transit_ring(Dim::X, Dim::Y).as_ns_f64();
        let x = t.transit_ring(Dim::X, Dim::X).as_ns_f64();
        let yz = t.transit_ring(Dim::Y, Dim::Y).as_ns_f64();
        assert_eq!(turn, yz);
        assert!(turn < x);
    }

    /// The parallel-execution lookahead is the cheapest link crossing:
    /// 2×20 ns adapters + the 14 ns Y/Z ring crossing. It must never
    /// exceed the cheapest analytic hop increment, or the conservative
    /// windows would be unsound.
    #[test]
    fn conservative_lookahead_bounds_every_hop() {
        let t = Timing::default();
        let look = t.conservative_lookahead();
        assert_eq!(look, SimDuration::from_ns(54));
        // Cheapest observable per-hop latency increments (Figure 5).
        let y_inc = t.analytic_latency([4, 2, 0], 0) - t.analytic_latency([4, 1, 0], 0);
        let x_inc = t.analytic_latency([2, 0, 0], 0) - t.analytic_latency([1, 0, 0], 0);
        assert!(look <= y_inc);
        assert!(look <= x_inc);
        // And even the *first* hop's wire portion alone is ≥ the bound.
        assert!(t.link_head() + t.transit_ring(Dim::Y, Dim::Y) >= look);
    }

    /// Per-axis hop bounds dominate the global lookahead, and with the
    /// default calibration all three axes share the 54 ns floor (the
    /// turn crossing undercuts even the long X straight-through).
    #[test]
    fn min_hop_delay_matches_cheapest_crossing_per_axis() {
        let t = Timing::default();
        for axis in Dim::ALL {
            let hop = t.min_hop_delay(axis);
            assert!(hop >= t.conservative_lookahead(), "{axis:?}");
            assert_eq!(hop, SimDuration::from_ns(54), "{axis:?}");
            // It really is the min over incoming dimensions.
            for in_dim in Dim::ALL {
                assert!(hop <= t.link_head() + t.transit_ring(in_dim, axis));
            }
        }
        // A timing where X transits get cheap makes the X bound drop
        // below Y/Z — the per-axis refinement is not vacuous.
        let skewed = Timing {
            transit_ring_x_ns: 4.0,
            ..Timing::default()
        };
        assert!(skewed.min_hop_delay(Dim::X) < skewed.min_hop_delay(Dim::Y));
        assert_eq!(
            skewed.min_hop_delay(Dim::X),
            skewed.conservative_lookahead()
        );
    }

    #[test]
    fn y_and_z_hops_add_54_even_at_turns() {
        let t = Timing::default();
        // The Figure 5 sweep: 4 X hops, then add Y hops one at a time.
        let base = t.analytic_latency([4, 0, 0], 0);
        let one_y = t.analytic_latency([4, 1, 0], 0);
        assert_eq!(one_y - base, SimDuration::from_ns(54));
        // And the full 12-hop diameter lands at 162 + 3·76 + 8·54 = 822.
        assert_eq!(t.analytic_latency([4, 4, 4], 0), SimDuration::from_ns(822));
    }
}
