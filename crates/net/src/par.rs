//! Parallel simulation of the fabric: torus regions as DES shards.
//!
//! ## Sharding
//!
//! The torus is sliced into slabs along one axis ([`ShardPlan`]); every
//! fabric event names the node it executes on, so the shard map routes it
//! to the slab owning that node. The conservative lookahead comes from
//! the timing model ([`Timing::conservative_lookahead`]): the only events
//! that cross nodes — and therefore possibly shards — are `HopArrive`s,
//! and every one of them is scheduled at least one link crossing
//! (adapters + cheapest ring transit, 54 ns by default) in the future.
//! Deliveries, FIFO service, program dispatches, and watchdog checks are
//! all node-local. The parallel engine asserts this bound at runtime.
//!
//! ## Shard worlds
//!
//! Each shard owns a **full fabric replica** built by the same
//! constructor closure (identical dims, timing, fault plan, multicast
//! tables) but is *authoritative only for its own nodes*: an event for
//! node `n` executes exclusively on `n`'s owning shard, so each node's
//! link/port/core/memory state is touched by exactly one replica, and a
//! replica's non-owned state simply stays at its initial value. Per-link
//! fault draws are keyed on per-link attempt sequence numbers, which
//! advance only on the owning replica — so a sharded run draws the same
//! faults the sequential run does. Statistics, recorded flight events,
//! trace intervals, error logs, and watchdog reports are merged across
//! replicas in deterministic shard order after the run.
//!
//! Packet uids are node-scoped in this mode
//! ([`Fabric::enable_node_scoped_uids`]): a uid must be derivable from
//! the sending node's own history, or different shardings would label
//! packets differently.
//!
//! ## Determinism
//!
//! [`ParSimulation`] runs bit-identically at any thread count, and its
//! merged statistics equal a sequential [`Simulation`] of the same
//! machine (asserted in `tests/par_sim.rs` and in the CI determinism
//! cross-check). The shard *count* is part of the plan, not derived from
//! the thread count, precisely so that thread count never influences
//! event partitioning.

use crate::fabric::{Ev, Fabric, NetStats, ProgEvent};
use crate::timing::Timing;
use crate::world::{Ctx, NodeProgram, RunReport, SimWorld, StallReport, StuckWatch};
use anton_des::par::{ParEngine, ShardMap};
use anton_des::{EventHandler, RunOutcome, Scheduler, SimDuration, SimTime, Tracer};
use anton_obs::{FlightEvent, SharedFlightRecorder};
use anton_topo::{Dim, NodeId, TorusDims};

/// How the torus is sliced into shards: slabs perpendicular to one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    dims: TorusDims,
    axis: Dim,
    nshards: usize,
}

impl ShardPlan {
    /// Slab the torus along its longest axis into `nshards` slabs
    /// (clamped to the axis length; ties prefer Z, whose slabs are
    /// contiguous in node-id order).
    pub fn new(dims: TorusDims, nshards: usize) -> ShardPlan {
        let axis = *Dim::ALL
            .iter()
            .max_by_key(|d| (dims.len(**d), d.index()))
            .expect("three dims");
        let nshards = nshards.clamp(1, dims.len(axis) as usize);
        ShardPlan {
            dims,
            axis,
            nshards,
        }
    }

    /// The default plan: one shard per plane of the longest axis (8 for
    /// an 8×8×8 machine), overridable via the `ANTON_SHARDS` env var.
    /// The shard count is part of the *simulation configuration* — it
    /// must not depend on the worker-thread count, or different thread
    /// counts would partition events differently.
    pub fn auto(dims: TorusDims) -> ShardPlan {
        let default = Dim::ALL.iter().map(|&d| dims.len(d)).max().unwrap() as usize;
        let n = std::env::var("ANTON_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(default);
        ShardPlan::new(dims, n)
    }

    /// Machine dimensions.
    pub fn dims(&self) -> TorusDims {
        self.dims
    }

    /// The slab axis.
    pub fn axis(&self) -> Dim {
        self.axis
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.nshards
    }

    /// The shard owning `node`.
    pub fn shard_of_node(&self, node: NodeId) -> usize {
        let c = node.coord(self.dims).get(self.axis) as usize;
        c * self.nshards / self.dims.len(self.axis) as usize
    }
}

/// Worker-thread count for parallel runs: the `ANTON_THREADS` env var,
/// defaulting to 1 (sequential reference execution). Thread count never
/// affects simulated results — only wall-clock time.
pub fn threads_from_env() -> usize {
    std::env::var("ANTON_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// The shard map for fabric events: route to the named node's slab.
pub struct EvShardMap {
    plan: ShardPlan,
    lookahead: SimDuration,
}

impl EvShardMap {
    /// Build from a plan and the timing model whose
    /// [`Timing::conservative_lookahead`] bounds cross-node events.
    pub fn new(plan: ShardPlan, timing: &Timing) -> EvShardMap {
        EvShardMap {
            plan,
            lookahead: timing.conservative_lookahead(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }
}

impl ShardMap<Ev> for EvShardMap {
    fn shard_count(&self) -> usize {
        self.plan.shard_count()
    }

    fn shard_of(&self, event: &Ev) -> usize {
        match event {
            // Start is seeded once per shard (schedule_at_shard); it
            // never flows through shard routing.
            Ev::Start => unreachable!("Ev::Start is seeded per shard"),
            Ev::HopArrive { node, .. }
            | Ev::Deliver { node, .. }
            | Ev::FifoService { node, .. }
            | Ev::Prog { node, .. } => self.plan.shard_of_node(*node),
            Ev::WatchdogCheck { addr, .. } => self.plan.shard_of_node(addr.node),
        }
    }

    fn lookahead(&self) -> SimDuration {
        self.lookahead
    }
}

/// One shard's slice of the machine: a full fabric replica
/// (authoritative for this shard's nodes only) plus one program per
/// node (only the owned ones ever run).
pub struct NodeShardWorld<P: NodeProgram> {
    shard: usize,
    plan: ShardPlan,
    /// This shard's fabric replica.
    pub fabric: Fabric,
    /// One program per node id; non-owned entries stay untouched.
    pub programs: Vec<P>,
}

impl<P: NodeProgram> NodeShardWorld<P> {
    /// Whether this shard owns `node`.
    pub fn owns(&self, node: NodeId) -> bool {
        self.plan.shard_of_node(node) == self.shard
    }

    fn dispatch(&mut self, node: NodeId, pe: ProgEvent, sched: &mut Scheduler<Ev>) {
        debug_assert!(self.owns(node), "program event routed to the wrong shard");
        let mut ctx = Ctx::new(&mut self.fabric, sched);
        self.programs[node.index()].on_event(node, pe, &mut ctx);
    }
}

impl<P: NodeProgram> EventHandler<Ev> for NodeShardWorld<P> {
    fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::Start => {
                // Each shard's Start dispatches only its own nodes, in
                // node-id order (the same relative order the sequential
                // world uses).
                for i in 0..self.programs.len() {
                    let node = NodeId(i as u32);
                    if self.owns(node) {
                        self.dispatch(node, ProgEvent::Start, sched);
                    }
                }
            }
            Ev::HopArrive { pkt, node, in_dim } => {
                debug_assert!(self.owns(node));
                let now = sched.now();
                self.fabric.hop_arrive(pkt, node, in_dim, now, sched);
            }
            Ev::Deliver { pkt, node, client } => {
                debug_assert!(self.owns(node));
                let now = sched.now();
                self.fabric.deliver(pkt, node, client, now, sched);
            }
            Ev::FifoService { node, client } => {
                debug_assert!(self.owns(node));
                let now = sched.now();
                self.fabric.fifo_service(node, client, now, sched);
            }
            Ev::Prog { node, pe } => {
                self.dispatch(node, pe, sched);
            }
            Ev::WatchdogCheck {
                addr,
                counter,
                target,
            } => {
                debug_assert!(self.owns(addr.node));
                let now = sched.now();
                self.fabric.watchdog_check(addr, counter, target, now);
            }
        }
    }
}

/// The parallel counterpart of [`Simulation`]: a sharded machine driven
/// by [`ParEngine`]. Same event model, same results, N-way wall-clock
/// parallelism.
///
/// [`Simulation`]: crate::world::Simulation
pub struct ParSimulation<P: NodeProgram> {
    engine: ParEngine<Ev, EvShardMap>,
    worlds: Vec<NodeShardWorld<P>>,
    recorders: Vec<SharedFlightRecorder>,
}

impl<P: NodeProgram + Send> ParSimulation<P> {
    /// Build a sharded machine. `build_fabric` is called once per shard
    /// and must construct *identical* fabrics (same dims, timing, fault
    /// plan, and pre-registered multicast patterns — register patterns
    /// inside the closure, not afterwards); `make` is called per shard
    /// per node and must be a pure function of the node id. `threads`
    /// picks the worker count (1 = sequential reference execution).
    ///
    /// Mid-run mutation of *other* nodes' fabric state through
    /// [`Ctx::fabric_mut`] (e.g. re-registering a multicast pattern
    /// mid-run) is not supported in the sharded mode: a replica's
    /// pattern tables are only consulted for owned nodes, so pre-run
    /// registration via `build_fabric` is the supported path.
    pub fn new(
        threads: usize,
        mut build_fabric: impl FnMut() -> Fabric,
        mut make: impl FnMut(NodeId) -> P,
    ) -> ParSimulation<P> {
        let probe = build_fabric();
        let dims = probe.dims();
        let plan = ShardPlan::auto(dims);
        let map = EvShardMap::new(plan, probe.timing());
        drop(probe);
        let mut engine = ParEngine::new(map, threads);
        let n = dims.node_count();
        let mut worlds = Vec::with_capacity(plan.shard_count());
        for shard in 0..plan.shard_count() {
            let mut fabric = build_fabric();
            assert_eq!(fabric.dims(), dims, "build_fabric must be deterministic");
            fabric.enable_node_scoped_uids();
            let programs = (0..n).map(|i| make(NodeId(i))).collect();
            worlds.push(NodeShardWorld {
                shard,
                plan,
                fabric,
                programs,
            });
            engine.schedule_at_shard(shard, SimTime::ZERO, Ev::Start);
        }
        ParSimulation {
            engine,
            worlds,
            recorders: Vec::new(),
        }
    }

    /// Install one [`FlightRecorder`](anton_obs::FlightRecorder) per
    /// shard (call before running). Recorded events are merged
    /// deterministically by [`ParSimulation::merged_flight_events`].
    pub fn attach_flight_recorders(&mut self) {
        self.recorders = self
            .worlds
            .iter_mut()
            .map(|w| w.fabric.attach_flight_recorder())
            .collect();
    }

    /// Enable activity tracing on every shard replica.
    pub fn enable_tracing(&mut self) {
        for w in &mut self.worlds {
            w.fabric.enable_tracing();
        }
    }

    /// The shard plan in force.
    pub fn plan(&self) -> &ShardPlan {
        self.engine.map().plan()
    }

    /// The per-shard worlds (fabric replicas and programs).
    pub fn worlds(&self) -> &[NodeShardWorld<P>] {
        &self.worlds
    }

    /// The program instance that actually ran for `node` (the one on the
    /// owning shard — the other replicas' instances never saw an event).
    pub fn program(&self, node: NodeId) -> &P {
        let shard = self.plan().shard_of_node(node);
        &self.worlds[shard].programs[node.index()]
    }

    /// Run to quiescence.
    pub fn run(&mut self) {
        self.engine.run(&mut self.worlds);
    }

    /// Run with a horizon and event budget. Same boundary semantics as
    /// the sequential engine (horizon-stamped events fire); the budget
    /// is enforced at window granularity, identically at every thread
    /// count.
    pub fn run_until(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        self.engine.run_until(&mut self.worlds, horizon, max_events)
    }

    /// Run with a horizon and budget, then diagnose stalls exactly like
    /// [`Simulation::run_guarded`]: completed only if the queues drained
    /// with no counter watch pending anywhere.
    ///
    /// [`Simulation::run_guarded`]: crate::world::Simulation::run_guarded
    pub fn run_guarded(&mut self, horizon: SimTime, max_events: u64) -> RunReport {
        let outcome = self.run_until(horizon, max_events);
        let stuck = self.stuck_watches();
        if outcome == RunOutcome::Drained && stuck.is_empty() {
            RunReport::Completed(outcome)
        } else {
            RunReport::Stalled(StallReport {
                outcome,
                at: self.now(),
                stuck,
                watchdog: self.merged_watchdog_reports(),
            })
        }
    }

    /// Time of the last event processed.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Machine-wide statistics: the shard replicas' counters summed in
    /// shard order. Each event executes on exactly one replica, so the
    /// sum equals the sequential run's single-fabric totals.
    pub fn merged_stats(&self) -> NetStats {
        let mut total = NetStats {
            sent_by_node: vec![0; self.plan().dims().node_count() as usize],
            delivered_by_node: vec![0; self.plan().dims().node_count() as usize],
            ..Default::default()
        };
        for w in &self.worlds {
            total.merge(&w.fabric.stats);
        }
        total
    }

    /// All recorded flight events, merged across shards into one
    /// chronological stream: a stable k-way merge keyed on
    /// `(event time, shard index)`, so the result is deterministic and
    /// respects both time order and (within a timestamp) a fixed shard
    /// order. Requires [`ParSimulation::attach_flight_recorders`].
    pub fn merged_flight_events(&self) -> Vec<FlightEvent> {
        let per_shard: Vec<Vec<FlightEvent>> = self
            .recorders
            .iter()
            .map(|r| r.borrow().events().cloned().collect())
            .collect();
        merge_flight_events(per_shard)
    }

    /// One tracer holding every shard's activity intervals, labels
    /// re-interned in deterministic shard order. Track names and units
    /// are taken from shard 0 (identical on every replica).
    pub fn merged_tracer(&self) -> Tracer {
        let mut merged = Tracer::enabled();
        if let Some(first) = self.worlds.first() {
            for (track, name) in first.fabric.tracer.tracks() {
                merged.name_track(track, name);
                merged.set_track_units(track, first.fabric.tracer.track_units(track));
            }
        }
        for w in &self.worlds {
            let t = &w.fabric.tracer;
            for iv in t.intervals() {
                let label = merged.intern_label(t.label(iv.label));
                merged.record(iv.track, iv.activity, iv.start, iv.end, label);
            }
        }
        merged
    }

    /// Still-pending counter watches across all shards, in node order
    /// (watches only ever exist on a node's owning replica).
    pub fn stuck_watches(&self) -> Vec<StuckWatch> {
        let mut out: Vec<StuckWatch> = self
            .worlds
            .iter()
            .flat_map(|w| w.fabric.stuck_watches())
            .map(|(node, client, counter, target, current)| StuckWatch {
                node,
                client,
                counter,
                target,
                current,
            })
            .collect();
        out.sort_by_key(|s| (s.node.index(), s.client.index(), s.counter.0));
        out
    }

    /// Watchdog reports concatenated in shard order.
    pub fn merged_watchdog_reports(&self) -> Vec<crate::fault::WatchdogReport> {
        self.worlds
            .iter()
            .flat_map(|w| w.fabric.watchdog_reports().iter().cloned())
            .collect()
    }

    /// Recoverable errors concatenated in shard order (each replica's
    /// log is capped independently, so ordering *across* shards is by
    /// shard, not time — use for diagnosis, not cross-run comparison).
    pub fn merged_errors(&self) -> Vec<crate::fault::FabricError> {
        self.worlds
            .iter()
            .flat_map(|w| w.fabric.errors().iter().cloned())
            .collect()
    }
}

/// Stable k-way merge of per-shard flight-event streams by
/// `(time, shard)`. Each shard's stream is already time-ordered (the
/// recorder appends in that shard's execution order), so a linear merge
/// suffices.
pub fn merge_flight_events(per_shard: Vec<Vec<FlightEvent>>) -> Vec<FlightEvent> {
    let total: usize = per_shard.iter().map(|v| v.len()).sum();
    let mut iters: Vec<std::iter::Peekable<std::vec::IntoIter<FlightEvent>>> = per_shard
        .into_iter()
        .map(|v| v.into_iter().peekable())
        .collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(SimTime, usize)> = None;
        for (s, it) in iters.iter_mut().enumerate() {
            if let Some(ev) = it.peek() {
                let key = (ev.at(), s);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        match best {
            Some((_, s)) => out.push(iters[s].next().expect("peeked")),
            None => break,
        }
    }
    out
}

/// A convenience mirror of [`SimWorld`]-based sequential runs for tests:
/// build the same machine sequentially from the same closures.
///
/// [`SimWorld`]: crate::world::SimWorld
pub fn sequential_reference<P: NodeProgram>(
    mut build_fabric: impl FnMut() -> Fabric,
    make: impl FnMut(NodeId) -> P,
) -> crate::world::Simulation<P> {
    crate::world::Simulation::new(build_fabric(), make)
}

// Compile-time guarantee: shard worlds can cross thread boundaries.
fn _assert_send<T: Send>() {}
#[allow(dead_code)]
fn _shard_world_is_send<P: NodeProgram + Send>() {
    _assert_send::<NodeShardWorld<P>>();
    let _ = _assert_send::<SimWorld<P>>;
}
