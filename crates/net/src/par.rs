//! Parallel simulation of the fabric: torus regions as DES shards.
//!
//! ## Sharding
//!
//! The torus is sliced into slabs along one axis ([`ShardPlan`]); every
//! fabric event names the node it executes on, so the shard map routes it
//! to the slab owning that node. The conservative lookahead comes from
//! the timing model ([`Timing::conservative_lookahead`]): the only events
//! that cross nodes — and therefore possibly shards — are `HopArrive`s,
//! and every one of them is scheduled at least one link crossing
//! (adapters + cheapest ring transit, 54 ns by default) in the future.
//! Deliveries, FIFO service, program dispatches, and watchdog checks are
//! all node-local. The parallel engine asserts this bound at runtime.
//!
//! Beyond the single global bound, the plan induces a **per-shard-pair
//! lookahead matrix** ([`ShardPlan::lookahead_matrix`]): a hop can only
//! cross into a *ring-adjacent* slab, so non-adjacent slabs are bounded
//! by the slab ring distance times the per-axis hop minimum
//! ([`Timing::min_hop_delay`]). The engine's adaptive mode (the default;
//! `ANTON_LOOKAHEAD=global` selects the uniform baseline) uses those
//! per-pair bounds to open wider windows for distant slabs and to extend
//! a shard's window when its upstream shards have drained — without
//! changing any simulated result.
//!
//! ## Shard worlds
//!
//! Each shard owns a **full fabric replica** built by the same
//! constructor closure (identical dims, timing, fault plan, multicast
//! tables) but is *authoritative only for its own nodes*: an event for
//! node `n` executes exclusively on `n`'s owning shard, so each node's
//! link/port/core/memory state is touched by exactly one replica, and a
//! replica's non-owned state simply stays at its initial value. Per-link
//! fault draws are keyed on per-link attempt sequence numbers, which
//! advance only on the owning replica — so a sharded run draws the same
//! faults the sequential run does. Statistics, recorded flight events,
//! trace intervals, error logs, and watchdog reports are merged across
//! replicas in deterministic shard order after the run.
//!
//! Packet uids are node-scoped in this mode
//! ([`Fabric::enable_node_scoped_uids`]): a uid must be derivable from
//! the sending node's own history, or different shardings would label
//! packets differently.
//!
//! ## Determinism
//!
//! [`ParSimulation`] runs bit-identically at any thread count, and its
//! merged statistics equal a sequential [`Simulation`](crate::Simulation) of the same
//! machine (asserted in `tests/par_sim.rs` and in the CI determinism
//! cross-check). The shard *count* is part of the plan, not derived from
//! the thread count, precisely so that thread count never influences
//! event partitioning.

use crate::fabric::{Ev, Fabric, NetStats, ProgEvent};
use crate::timing::Timing;
use crate::world::{Ctx, NodeProgram, RunReport, SimWorld, StallReport, StuckWatch};
use anton_des::par::{LookaheadMatrix, LookaheadMode, ParEngine, ShardMap};
use anton_des::{
    EventHandler, ParProfile, RunOutcome, Scheduler, SimDuration, SimTime, StderrTelemetry,
    TelemetryConfig, Tracer,
};
use anton_obs::{FlightEvent, StreamConfig, StreamFootprint, StreamSummary};
use anton_topo::{Dim, NodeId, TorusDims};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Parse a worker/shard count from an env-var value: `Ok(None)` when the
/// variable is unset, `Ok(Some(n))` for a positive integer, `Err(raw)`
/// when set but invalid (`"0"`, `"abc"`, …). Pure so the parsing is unit
/// testable without racing on the process environment.
fn parse_env_count(raw: Option<&str>) -> Result<Option<usize>, String> {
    match raw {
        None => Ok(None),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(s.to_owned()),
        },
    }
}

/// Resolve a raw env-var value through `parse`, falling back to
/// `fallback` on an unset or invalid value. An invalid value (silently
/// accepting it would mask a typo'd `ANTON_SHARDS=abc` forever) warns on
/// stderr — once per variable per process, so loops over simulations
/// don't spam. Every `ANTON_*` knob resolves through this one helper so
/// they all share the same warn-once contract.
fn resolve_env<T: std::fmt::Display>(
    var: &str,
    raw: Option<&str>,
    fallback: T,
    warned: &AtomicBool,
    expected: &str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> T {
    match raw {
        None => fallback,
        Some(s) => match parse(s) {
            Some(v) => v,
            None => {
                if !warned.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "warning: ignoring invalid {var}={s:?} \
                         (expected {expected}); using {fallback}"
                    );
                }
                fallback
            }
        },
    }
}

/// [`resolve_env`] for positive-integer counts.
fn resolve_count(var: &str, raw: Option<&str>, fallback: usize, warned: &AtomicBool) -> usize {
    resolve_env(var, raw, fallback, warned, "a positive integer", |s| {
        parse_env_count(Some(s)).ok().flatten()
    })
}

/// [`resolve_count`] over the live process environment.
fn env_count(var: &str, fallback: usize, warned: &AtomicBool) -> usize {
    let raw = std::env::var(var).ok();
    resolve_count(var, raw.as_deref(), fallback, warned)
}

static SHARDS_WARNED: AtomicBool = AtomicBool::new(false);
static THREADS_WARNED: AtomicBool = AtomicBool::new(false);
static LOOKAHEAD_WARNED: AtomicBool = AtomicBool::new(false);
static TELEMETRY_WARNED: AtomicBool = AtomicBool::new(false);
static OBS_MODE_WARNED: AtomicBool = AtomicBool::new(false);
static OBS_RESERVOIR_WARNED: AtomicBool = AtomicBool::new(false);
static OBS_TOPK_WARNED: AtomicBool = AtomicBool::new(false);

/// Live-telemetry heartbeat period from `ANTON_TELEMETRY_MS`: unset (or
/// invalid, with a once-per-process warning) disables telemetry; `0`
/// emits at every window boundary.
fn telemetry_period_from_env() -> Option<Duration> {
    let raw = std::env::var("ANTON_TELEMETRY_MS").ok()?;
    match raw.trim().parse::<u64>() {
        Ok(ms) => Some(Duration::from_millis(ms)),
        Err(_) => {
            if !TELEMETRY_WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: ignoring invalid ANTON_TELEMETRY_MS={raw:?} \
                     (expected milliseconds); telemetry stays off"
                );
            }
            None
        }
    }
}

/// How the torus is sliced into shards: slabs perpendicular to one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    dims: TorusDims,
    axis: Dim,
    nshards: usize,
}

impl ShardPlan {
    /// Slab the torus along its longest axis into `nshards` slabs
    /// (clamped to the axis length; ties prefer Z, whose slabs are
    /// contiguous in node-id order).
    pub fn new(dims: TorusDims, nshards: usize) -> ShardPlan {
        let axis = *Dim::ALL
            .iter()
            .max_by_key(|d| (dims.len(**d), d.index()))
            .expect("three dims");
        let nshards = nshards.clamp(1, dims.len(axis) as usize);
        ShardPlan {
            dims,
            axis,
            nshards,
        }
    }

    /// The default plan: one shard per plane of the longest axis (8 for
    /// an 8×8×8 machine), overridable via the `ANTON_SHARDS` env var
    /// (invalid values warn once on stderr and fall back to the default).
    /// The shard count is part of the *simulation configuration* — it
    /// must not depend on the worker-thread count, or different thread
    /// counts would partition events differently.
    pub fn auto(dims: TorusDims) -> ShardPlan {
        let default = Dim::ALL.iter().map(|&d| dims.len(d)).max().unwrap() as usize;
        ShardPlan::new(dims, env_count("ANTON_SHARDS", default, &SHARDS_WARNED))
    }

    /// Machine dimensions.
    pub fn dims(&self) -> TorusDims {
        self.dims
    }

    /// The slab axis.
    pub fn axis(&self) -> Dim {
        self.axis
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.nshards
    }

    /// The shard owning `node`.
    pub fn shard_of_node(&self, node: NodeId) -> usize {
        let c = node.coord(self.dims).get(self.axis) as usize;
        c * self.nshards / self.dims.len(self.axis) as usize
    }

    /// Ring distance between two slabs: the slabs are arranged in a ring
    /// along the slab axis (the torus wraps), so slab `a` reaches slab
    /// `b` in `min(|a−b|, n−|a−b|)` slab-boundary crossings.
    pub fn slab_ring_distance(&self, a: usize, b: usize) -> usize {
        let d = a.abs_diff(b);
        d.min(self.nshards - d)
    }

    /// The per-shard-pair lookahead matrix this plan induces under
    /// `timing`: the minimum latency of any single event that can carry
    /// state from slab `a` into slab `b`.
    ///
    /// The only cross-node fabric events are `HopArrive`s, and a hop
    /// changes exactly one coordinate by ±1 — so a hop leaves its slab
    /// only when it travels along the slab axis, and then lands in a
    /// **ring-adjacent** slab (torus wraparound makes the first and last
    /// slabs adjacent). Adjacent pairs therefore get the per-axis bound
    /// [`Timing::min_hop_delay`]; every other pair is unreachable by a
    /// single event, and the engine's min-plus closure composes the
    /// adjacent bound once per intervening slab. A 16-slab machine's
    /// opposite slabs end up with an 8×54 = 432 ns bound instead of the
    /// uniform 54 ns — the leverage behind adaptive windows.
    pub fn lookahead_matrix(&self, timing: &Timing) -> LookaheadMatrix {
        let mut m = LookaheadMatrix::unreachable(self.nshards);
        let hop = timing.min_hop_delay(self.axis);
        for a in 0..self.nshards {
            for b in 0..self.nshards {
                if a != b && self.slab_ring_distance(a, b) == 1 {
                    m.set(a, b, hop);
                }
            }
        }
        m
    }
}

/// Worker-thread count for parallel runs: the `ANTON_THREADS` env var,
/// defaulting to 1 (sequential reference execution); invalid values warn
/// once on stderr and fall back to 1. Thread count never affects
/// simulated results — only wall-clock time.
pub fn threads_from_env() -> usize {
    env_count("ANTON_THREADS", 1, &THREADS_WARNED)
}

/// Parse a lookahead-mode name (`"adaptive"`/`"matrix"` or
/// `"global"`/`"uniform"`, case-insensitive). `None` for anything else.
pub fn parse_lookahead_mode(s: &str) -> Option<LookaheadMode> {
    match s.trim().to_ascii_lowercase().as_str() {
        "adaptive" | "matrix" => Some(LookaheadMode::Adaptive),
        "global" | "uniform" => Some(LookaheadMode::Global),
        _ => None,
    }
}

/// Window-bound mode from `ANTON_LOOKAHEAD`, defaulting to
/// [`LookaheadMode::Adaptive`] (per-shard-pair windows from the slab
/// distance matrix); `global` selects the uniform 54 ns baseline for
/// A/B comparisons. Mode never affects simulated results — only how
/// wide the conservative windows open (asserted by the determinism
/// tests and the `par_speedup` bench). Invalid values warn once on
/// stderr, same contract as the other `ANTON_*` knobs.
pub fn lookahead_mode_from_env() -> LookaheadMode {
    let raw = std::env::var("ANTON_LOOKAHEAD").ok();
    resolve_env(
        "ANTON_LOOKAHEAD",
        raw.as_deref(),
        LookaheadMode::default(),
        &LOOKAHEAD_WARNED,
        "adaptive|global",
        parse_lookahead_mode,
    )
}

/// Which observability recorder to attach to a fabric (or one per
/// shard), selectable at run time via `ANTON_OBS_MODE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// No recorder: the zero-observer-effect baseline.
    #[default]
    Off,
    /// Full O(events) flight recording
    /// ([`anton_obs::FlightRecorder`]) — exact offline analysis on
    /// paper-scale (512-node) machines.
    Flight,
    /// Bounded-memory streaming observability
    /// ([`anton_obs::StreamObserver`]) — O(nodes + links) state for
    /// 100×-scale machines.
    Stream,
}

impl std::fmt::Display for ObsMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ObsMode::Off => "off",
            ObsMode::Flight => "flight",
            ObsMode::Stream => "stream",
        })
    }
}

impl ObsMode {
    /// Parse a mode name (`"off"`, `"flight"`, `"stream"`, plus a few
    /// forgiving aliases). `None` for anything else.
    pub fn parse_str(s: &str) -> Option<ObsMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(ObsMode::Off),
            "flight" | "full" => Some(ObsMode::Flight),
            "stream" | "streaming" | "bounded" => Some(ObsMode::Stream),
            _ => None,
        }
    }
}

/// Observability mode from `ANTON_OBS_MODE`, defaulting to
/// [`ObsMode::Off`]; invalid values warn once on stderr (same warn-once
/// contract as `ANTON_THREADS`/`ANTON_SHARDS`).
pub fn obs_mode_from_env() -> ObsMode {
    let raw = std::env::var("ANTON_OBS_MODE").ok();
    resolve_env(
        "ANTON_OBS_MODE",
        raw.as_deref(),
        ObsMode::Off,
        &OBS_MODE_WARNED,
        "off|flight|stream",
        ObsMode::parse_str,
    )
}

/// Streaming-observer configuration from the environment:
/// `ANTON_OBS_RESERVOIR` (lifecycle sample size) and `ANTON_OBS_TOPK`
/// (heavy-hitter streaming capacity) override the defaults; both are
/// positive integers resolved through the shared warn-once helpers. The
/// sampling seed is intentionally *not* an env knob — runs stay
/// reproducible unless code opts into a different seed.
pub fn obs_stream_config_from_env() -> StreamConfig {
    let d = StreamConfig::default();
    StreamConfig {
        reservoir: env_count("ANTON_OBS_RESERVOIR", d.reservoir, &OBS_RESERVOIR_WARNED),
        topk: env_count("ANTON_OBS_TOPK", d.topk, &OBS_TOPK_WARNED),
        ..d
    }
}

/// The shard map for fabric events: route to the named node's slab.
pub struct EvShardMap {
    plan: ShardPlan,
    lookahead: SimDuration,
    matrix: LookaheadMatrix,
}

impl EvShardMap {
    /// Build from a plan and the timing model whose
    /// [`Timing::conservative_lookahead`] bounds cross-node events (and
    /// whose per-axis [`Timing::min_hop_delay`] feeds the per-pair
    /// matrix for adaptive windows).
    pub fn new(plan: ShardPlan, timing: &Timing) -> EvShardMap {
        EvShardMap {
            plan,
            lookahead: timing.conservative_lookahead(),
            matrix: plan.lookahead_matrix(timing),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }
}

impl ShardMap<Ev> for EvShardMap {
    fn shard_count(&self) -> usize {
        self.plan.shard_count()
    }

    fn shard_of(&self, event: &Ev) -> usize {
        match event {
            // Start is seeded once per shard (schedule_at_shard); it
            // never flows through shard routing.
            Ev::Start => unreachable!("Ev::Start is seeded per shard"),
            Ev::HopArrive { node, .. }
            | Ev::Deliver { node, .. }
            | Ev::FifoService { node, .. }
            | Ev::Prog { node, .. }
            | Ev::Reinject { node, .. } => self.plan.shard_of_node(*node),
            Ev::WatchdogCheck { addr, .. } => self.plan.shard_of_node(addr.node),
        }
    }

    fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    fn lookahead_matrix(&self) -> LookaheadMatrix {
        self.matrix.clone()
    }
}

/// One shard's slice of the machine: a full fabric replica
/// (authoritative for this shard's nodes only) plus one program per
/// node (only the owned ones ever run).
pub struct NodeShardWorld<P: NodeProgram> {
    shard: usize,
    plan: ShardPlan,
    /// This shard's fabric replica.
    pub fabric: Fabric,
    /// One program per node id; non-owned entries stay untouched.
    pub programs: Vec<P>,
}

impl<P: NodeProgram> NodeShardWorld<P> {
    /// Whether this shard owns `node`.
    pub fn owns(&self, node: NodeId) -> bool {
        self.plan.shard_of_node(node) == self.shard
    }

    fn dispatch(&mut self, node: NodeId, pe: ProgEvent, sched: &mut Scheduler<Ev>) {
        debug_assert!(self.owns(node), "program event routed to the wrong shard");
        let mut ctx = Ctx::new(&mut self.fabric, sched);
        self.programs[node.index()].on_event(node, pe, &mut ctx);
    }
}

impl<P: NodeProgram> EventHandler<Ev> for NodeShardWorld<P> {
    fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::Start => {
                // Each shard's Start dispatches only its own nodes, in
                // node-id order (the same relative order the sequential
                // world uses).
                for i in 0..self.programs.len() {
                    let node = NodeId(i as u32);
                    if self.owns(node) {
                        self.dispatch(node, ProgEvent::Start, sched);
                    }
                }
            }
            Ev::HopArrive { pkt, node, in_dim } => {
                debug_assert!(self.owns(node));
                let now = sched.now();
                self.fabric.hop_arrive(pkt, node, in_dim, now, sched);
            }
            Ev::Deliver { pkt, node, client } => {
                debug_assert!(self.owns(node));
                let now = sched.now();
                self.fabric.deliver(pkt, node, client, now, sched);
            }
            Ev::FifoService { node, client } => {
                debug_assert!(self.owns(node));
                let now = sched.now();
                self.fabric.fifo_service(node, client, now, sched);
            }
            Ev::Prog { node, pe } => {
                self.dispatch(node, pe, sched);
            }
            Ev::Reinject { pkt, node } => {
                debug_assert!(self.owns(node));
                let now = sched.now();
                self.fabric.reinject(pkt, node, now, sched);
            }
            Ev::WatchdogCheck {
                addr,
                counter,
                target,
            } => {
                debug_assert!(self.owns(addr.node));
                let now = sched.now();
                self.fabric.watchdog_check(addr, counter, target, now);
            }
        }
    }
}

/// The parallel counterpart of [`Simulation`]: a sharded machine driven
/// by [`ParEngine`]. Same event model, same results, N-way wall-clock
/// parallelism.
///
/// [`Simulation`]: crate::world::Simulation
pub struct ParSimulation<P: NodeProgram> {
    engine: ParEngine<Ev, EvShardMap>,
    worlds: Vec<NodeShardWorld<P>>,
}

impl<P: NodeProgram + Send> ParSimulation<P> {
    /// Build a sharded machine. `build_fabric` is called once per shard
    /// and must construct *identical* fabrics (same dims, timing, fault
    /// plan, and pre-registered multicast patterns — register patterns
    /// inside the closure, not afterwards); `make` is called per shard
    /// per node and must be a pure function of the node id. `threads`
    /// picks the worker count (1 = sequential reference execution).
    ///
    /// Mid-run mutation of *other* nodes' fabric state through
    /// [`Ctx::fabric_mut`] (e.g. re-registering a multicast pattern
    /// mid-run) is not supported in the sharded mode: a replica's
    /// pattern tables are only consulted for owned nodes, so pre-run
    /// registration via `build_fabric` is the supported path.
    pub fn new(
        threads: usize,
        mut build_fabric: impl FnMut() -> Fabric,
        make: impl FnMut(NodeId) -> P,
    ) -> ParSimulation<P> {
        let plan = ShardPlan::auto(build_fabric().dims());
        ParSimulation::with_plan(threads, plan, build_fabric, make)
    }

    /// [`ParSimulation::new`] with an explicit [`ShardPlan`] instead of
    /// [`ShardPlan::auto`] — for tests and experiments that sweep shard
    /// counts or axes without touching the process environment. The
    /// plan's dims must match the fabric the closure builds.
    pub fn with_plan(
        threads: usize,
        plan: ShardPlan,
        mut build_fabric: impl FnMut() -> Fabric,
        mut make: impl FnMut(NodeId) -> P,
    ) -> ParSimulation<P> {
        let probe = build_fabric();
        let dims = probe.dims();
        assert_eq!(dims, plan.dims(), "shard plan built for different dims");
        let map = EvShardMap::new(plan, probe.timing());
        drop(probe);
        let mut engine = ParEngine::new(map, threads);
        engine.set_lookahead_mode(lookahead_mode_from_env());
        let n = dims.node_count();
        let mut worlds = Vec::with_capacity(plan.shard_count());
        for shard in 0..plan.shard_count() {
            let mut fabric = build_fabric();
            assert_eq!(fabric.dims(), dims, "build_fabric must be deterministic");
            fabric.enable_node_scoped_uids();
            let programs = (0..n).map(|i| make(NodeId(i))).collect();
            worlds.push(NodeShardWorld {
                shard,
                plan,
                fabric,
                programs,
            });
            engine.schedule_at_shard(shard, SimTime::ZERO, Ev::Start);
        }
        if let Some(period) = telemetry_period_from_env() {
            engine.enable_telemetry(TelemetryConfig {
                period,
                sink: Arc::new(StderrTelemetry),
            });
        }
        ParSimulation { engine, worlds }
    }

    /// Install one [`FlightRecorder`](anton_obs::FlightRecorder) per
    /// shard (call before running). Each shard's fabric *owns* its
    /// recorder — every hook is a direct push, with no shared-mutex
    /// round trip on the hot path — and the streams are merged
    /// deterministically in shard order by
    /// [`ParSimulation::merged_flight_events`] after the run.
    pub fn attach_flight_recorders(&mut self) {
        for w in &mut self.worlds {
            w.fabric.attach_owned_flight_recorder();
        }
    }

    /// Install one bounded-memory
    /// [`StreamObserver`](anton_obs::StreamObserver) per shard (call
    /// before running). Each shard folds its own packets at delivery;
    /// packets that cross shards stay open and are joined by
    /// [`ParSimulation::merged_stream_summary`] after the run.
    pub fn attach_stream_observers(&mut self, cfg: StreamConfig) {
        for w in &mut self.worlds {
            w.fabric.attach_stream_observer(cfg);
        }
    }

    /// Attach the recorder selected by `ANTON_OBS_MODE` (with
    /// `ANTON_OBS_RESERVOIR`/`ANTON_OBS_TOPK` sizing for stream mode)
    /// to every shard. Returns the mode that was applied.
    pub fn attach_observability_from_env(&mut self) -> ObsMode {
        let mode = obs_mode_from_env();
        match mode {
            ObsMode::Off => {}
            ObsMode::Flight => self.attach_flight_recorders(),
            ObsMode::Stream => self.attach_stream_observers(obs_stream_config_from_env()),
        }
        mode
    }

    /// Select which window bound the engine applies (overriding the
    /// `ANTON_LOOKAHEAD` env default). Call before running. Mode never
    /// changes simulated results — adaptive windows are provably
    /// conservative — only how often shards synchronize.
    pub fn set_lookahead_mode(&mut self, mode: LookaheadMode) {
        self.engine.set_lookahead_mode(mode);
    }

    /// The window-bound mode in force.
    pub fn lookahead_mode(&self) -> LookaheadMode {
        self.engine.lookahead_mode()
    }

    /// The per-shard-pair lookahead matrix the plan induced.
    pub fn lookahead_matrix(&self) -> &LookaheadMatrix {
        self.engine.lookahead_matrix()
    }

    /// Enable runtime profiling on the underlying [`ParEngine`]:
    /// per-worker phase accounting, per-shard event counts, and the
    /// cross-shard traffic matrix, readable after a run through
    /// [`ParSimulation::runtime_profile`]. Profiling never changes
    /// simulated results (asserted by fingerprint tests).
    pub fn enable_runtime_profiling(&mut self) {
        self.engine.enable_profiling();
    }

    /// The accumulated runtime profile, if profiling was enabled.
    pub fn runtime_profile(&self) -> Option<&ParProfile> {
        self.engine.profile()
    }

    /// Take the accumulated runtime profile, resetting the accumulator.
    pub fn take_runtime_profile(&mut self) -> Option<ParProfile> {
        self.engine.take_profile()
    }

    /// Stream live heartbeats to `cfg`'s sink during runs (also
    /// switched on automatically by the `ANTON_TELEMETRY_MS` env var,
    /// which streams JSON lines to stderr).
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.engine.enable_telemetry(cfg);
    }

    /// Enable activity tracing on every shard replica.
    pub fn enable_tracing(&mut self) {
        for w in &mut self.worlds {
            w.fabric.enable_tracing();
        }
    }

    /// The shard plan in force.
    pub fn plan(&self) -> &ShardPlan {
        self.engine.map().plan()
    }

    /// The per-shard worlds (fabric replicas and programs).
    pub fn worlds(&self) -> &[NodeShardWorld<P>] {
        &self.worlds
    }

    /// The program instance that actually ran for `node` (the one on the
    /// owning shard — the other replicas' instances never saw an event).
    pub fn program(&self, node: NodeId) -> &P {
        let shard = self.plan().shard_of_node(node);
        &self.worlds[shard].programs[node.index()]
    }

    /// Run to quiescence.
    pub fn run(&mut self) {
        self.engine.run(&mut self.worlds);
    }

    /// Run with a horizon and event budget. Same boundary semantics as
    /// the sequential engine (horizon-stamped events fire); the budget
    /// is enforced at window granularity, identically at every thread
    /// count.
    pub fn run_until(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        self.engine.run_until(&mut self.worlds, horizon, max_events)
    }

    /// Run with a horizon and budget, then diagnose stalls exactly like
    /// [`Simulation::run_guarded`]: completed only if the queues drained
    /// with no counter watch pending anywhere.
    ///
    /// [`Simulation::run_guarded`]: crate::world::Simulation::run_guarded
    pub fn run_guarded(&mut self, horizon: SimTime, max_events: u64) -> RunReport {
        let outcome = self.run_until(horizon, max_events);
        let stuck = self.stuck_watches();
        if outcome == RunOutcome::Drained && stuck.is_empty() {
            RunReport::Completed(outcome)
        } else {
            RunReport::Stalled(StallReport {
                outcome,
                at: self.now(),
                stuck,
                watchdog: self.merged_watchdog_reports(),
                stats: self.merged_stats(),
            })
        }
    }

    /// Time of the last event processed.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Machine-wide statistics: the shard replicas' counters summed in
    /// shard order. Each event executes on exactly one replica, so the
    /// sum equals the sequential run's single-fabric totals.
    pub fn merged_stats(&self) -> NetStats {
        let mut total = NetStats {
            sent_by_node: vec![0; self.plan().dims().node_count() as usize],
            delivered_by_node: vec![0; self.plan().dims().node_count() as usize],
            ..Default::default()
        };
        for w in &self.worlds {
            total.merge(&w.fabric.stats);
        }
        total
    }

    /// All recorded flight events, merged across shards into one
    /// chronological stream: a stable k-way merge keyed on
    /// `(event time, shard index)`, so the result is deterministic and
    /// respects both time order and (within a timestamp) a fixed shard
    /// order. Requires [`ParSimulation::attach_flight_recorders`].
    pub fn merged_flight_events(&self) -> Vec<FlightEvent> {
        let per_shard: Vec<Vec<FlightEvent>> = self
            .worlds
            .iter()
            .map(|w| {
                w.fabric
                    .flight_recorder()
                    .map(|r| r.events().cloned().collect())
                    .unwrap_or_default()
            })
            .collect();
        merge_flight_events(per_shard)
    }

    /// The per-shard streaming summaries merged in deterministic shard
    /// order — cross-shard partial lifecycles are joined and the result
    /// is finalized, so it is bit-identical to a sequential run's
    /// finalized summary. `None` unless
    /// [`ParSimulation::attach_stream_observers`] was called.
    pub fn merged_stream_summary(&self) -> Option<StreamSummary> {
        let mut acc: Option<StreamSummary> = None;
        for w in &self.worlds {
            let s = w.fabric.stream_summary()?;
            match &mut acc {
                None => acc = Some(s),
                Some(a) => a.merge(&s),
            }
        }
        let mut merged = acc?;
        merged.finalize();
        Some(merged)
    }

    /// Combined footprint of the per-shard stream observers (peaks are
    /// max'd, final live bytes add). `None` unless observers are
    /// attached.
    pub fn stream_footprint(&self) -> Option<StreamFootprint> {
        let mut acc = StreamFootprint::default();
        for w in &self.worlds {
            acc.combine(&w.fabric.stream_observer()?.footprint());
        }
        Some(acc)
    }

    /// One tracer holding every shard's activity intervals, labels
    /// re-interned in deterministic shard order. Track names and units
    /// are taken from shard 0 (identical on every replica).
    pub fn merged_tracer(&self) -> Tracer {
        let mut merged = Tracer::enabled();
        if let Some(first) = self.worlds.first() {
            for (track, name) in first.fabric.tracer.tracks() {
                merged.name_track(track, name);
                merged.set_track_units(track, first.fabric.tracer.track_units(track));
            }
        }
        for w in &self.worlds {
            let t = &w.fabric.tracer;
            for iv in t.intervals() {
                let label = merged.intern_label(t.label(iv.label));
                merged.record(iv.track, iv.activity, iv.start, iv.end, label);
            }
        }
        merged
    }

    /// Still-pending counter watches across all shards, in node order
    /// (watches only ever exist on a node's owning replica).
    pub fn stuck_watches(&self) -> Vec<StuckWatch> {
        let mut out: Vec<StuckWatch> = self
            .worlds
            .iter()
            .flat_map(|w| w.fabric.stuck_watches())
            .map(|(node, client, counter, target, current)| StuckWatch {
                node,
                client,
                counter,
                target,
                current,
            })
            .collect();
        out.sort_by_key(|s| (s.node.index(), s.client.index(), s.counter.0));
        out
    }

    /// Watchdog reports concatenated in shard order.
    pub fn merged_watchdog_reports(&self) -> Vec<crate::fault::WatchdogReport> {
        self.worlds
            .iter()
            .flat_map(|w| w.fabric.watchdog_reports().iter().cloned())
            .collect()
    }

    /// Recoverable errors concatenated in shard order (each replica's
    /// log is capped independently, so ordering *across* shards is by
    /// shard, not time — use for diagnosis, not cross-run comparison).
    pub fn merged_errors(&self) -> Vec<crate::fault::FabricError> {
        self.worlds
            .iter()
            .flat_map(|w| w.fabric.errors().iter().cloned())
            .collect()
    }

    /// Recovery counters summed across shard replicas (each verdict,
    /// reinjection, and suppression executes on exactly one replica, so
    /// the sum equals the sequential run's totals).
    pub fn merged_recovery_stats(&self) -> crate::recovery::RecoveryStats {
        let mut total = crate::recovery::RecoveryStats::default();
        for w in &self.worlds {
            total.merge(w.fabric.recovery_stats());
        }
        total
    }

    /// Failure verdicts merged across shards into one deterministic
    /// stream, ordered by `(verdict time, node, link)` — the same order
    /// a sequential run's single log sorts into.
    pub fn merged_verdicts(&self) -> Vec<crate::recovery::FailureVerdict> {
        let mut out: Vec<crate::recovery::FailureVerdict> = self
            .worlds
            .iter()
            .flat_map(|w| w.fabric.verdicts().iter().cloned())
            .collect();
        out.sort_by_key(|v| (v.at, v.node.index(), v.link.map(|l| l.index())));
        out
    }
}

/// Stable k-way merge of per-shard flight-event streams by
/// `(time, shard)`. Each shard's stream is already time-ordered (the
/// recorder appends in that shard's execution order), so a linear merge
/// suffices.
pub fn merge_flight_events(per_shard: Vec<Vec<FlightEvent>>) -> Vec<FlightEvent> {
    let total: usize = per_shard.iter().map(|v| v.len()).sum();
    let mut iters: Vec<std::iter::Peekable<std::vec::IntoIter<FlightEvent>>> = per_shard
        .into_iter()
        .map(|v| v.into_iter().peekable())
        .collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(SimTime, usize)> = None;
        for (s, it) in iters.iter_mut().enumerate() {
            if let Some(ev) = it.peek() {
                let key = (ev.at(), s);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        match best {
            Some((_, s)) => out.push(iters[s].next().expect("peeked")),
            None => break,
        }
    }
    out
}

/// A convenience mirror of [`SimWorld`]-based sequential runs for tests:
/// build the same machine sequentially from the same closures.
///
/// [`SimWorld`]: crate::world::SimWorld
pub fn sequential_reference<P: NodeProgram>(
    mut build_fabric: impl FnMut() -> Fabric,
    make: impl FnMut(NodeId) -> P,
) -> crate::world::Simulation<P> {
    crate::world::Simulation::new(build_fabric(), make)
}

// Compile-time guarantee: shard worlds can cross thread boundaries.
fn _assert_send<T: Send>() {}
#[allow(dead_code)]
fn _shard_world_is_send<P: NodeProgram + Send>() {
    _assert_send::<NodeShardWorld<P>>();
    let _ = _assert_send::<SimWorld<P>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_env_count_accepts_positive_integers() {
        assert_eq!(parse_env_count(None), Ok(None));
        assert_eq!(parse_env_count(Some("1")), Ok(Some(1)));
        assert_eq!(parse_env_count(Some("8")), Ok(Some(8)));
        assert_eq!(parse_env_count(Some(" 16 ")), Ok(Some(16)));
    }

    #[test]
    fn parse_env_count_rejects_zero_and_garbage() {
        assert_eq!(parse_env_count(Some("0")), Err("0".to_owned()));
        assert_eq!(parse_env_count(Some("abc")), Err("abc".to_owned()));
        assert_eq!(parse_env_count(Some("-3")), Err("-3".to_owned()));
        assert_eq!(parse_env_count(Some("4.5")), Err("4.5".to_owned()));
        assert_eq!(parse_env_count(Some("")), Err("".to_owned()));
    }

    #[test]
    fn resolve_count_falls_back_and_warns_once() {
        let warned = AtomicBool::new(false);
        // Valid: used as-is, no warning flagged.
        assert_eq!(resolve_count("T", Some("3"), 1, &warned), 3);
        assert!(!warned.load(Ordering::Relaxed));
        // Unset: fallback, still no warning.
        assert_eq!(resolve_count("T", None, 7, &warned), 7);
        assert!(!warned.load(Ordering::Relaxed));
        // Invalid: fallback, warning flag trips exactly once.
        assert_eq!(resolve_count("T", Some("0"), 7, &warned), 7);
        assert!(warned.load(Ordering::Relaxed));
        assert_eq!(resolve_count("T", Some("junk"), 7, &warned), 7);
        assert!(warned.load(Ordering::Relaxed));
    }

    #[test]
    fn lookahead_mode_parses_aliases_case_insensitively() {
        for (s, want) in [
            ("adaptive", LookaheadMode::Adaptive),
            ("matrix", LookaheadMode::Adaptive),
            (" Adaptive ", LookaheadMode::Adaptive),
            ("global", LookaheadMode::Global),
            ("uniform", LookaheadMode::Global),
            ("GLOBAL", LookaheadMode::Global),
        ] {
            assert_eq!(parse_lookahead_mode(s), Some(want), "{s:?}");
        }
        for s in ["", "adaptve", "1", "on"] {
            assert_eq!(parse_lookahead_mode(s), None, "{s:?}");
        }
    }

    #[test]
    fn slab_ring_distance_wraps() {
        let plan = ShardPlan::new(TorusDims::new(4, 4, 8), 8);
        assert_eq!(plan.shard_count(), 8);
        assert_eq!(plan.slab_ring_distance(0, 0), 0);
        assert_eq!(plan.slab_ring_distance(0, 1), 1);
        assert_eq!(plan.slab_ring_distance(0, 7), 1); // torus wrap
        assert_eq!(plan.slab_ring_distance(0, 4), 4);
        assert_eq!(plan.slab_ring_distance(2, 7), 3);
        assert_eq!(plan.slab_ring_distance(7, 2), 3);
    }

    /// The 8×8×8 default plan's matrix: adjacent slabs at the 54 ns
    /// per-axis hop bound, everything else unreachable directly; the
    /// closure composes distance — opposite slabs get 4×54 ns.
    #[test]
    fn default_plan_matrix_is_ring_distance_times_hop() {
        let dims = TorusDims::new(8, 8, 8);
        let plan = ShardPlan::new(dims, 8);
        let t = Timing::default();
        let m = plan.lookahead_matrix(&t);
        assert_eq!(m.shards(), 8);
        let hop = t.min_hop_delay(plan.axis());
        assert_eq!(hop, SimDuration::from_ns(54));
        for a in 0..8 {
            for b in 0..8 {
                if a == b {
                    continue;
                }
                match plan.slab_ring_distance(a, b) {
                    1 => assert_eq!(m.direct(a, b), Some(hop), "{a}->{b}"),
                    _ => assert_eq!(m.direct(a, b), None, "{a}->{b}"),
                }
            }
        }
        let dist = m.closure_ps();
        for a in 0..8 {
            for b in 0..8 {
                let want = plan.slab_ring_distance(a, b) as u64 * hop.0;
                assert_eq!(dist[a * 8 + b], want, "{a}->{b}");
            }
        }
        // Every finite bound dominates the global floor the engine
        // validates against.
        assert!(m.min_direct().unwrap() >= t.conservative_lookahead());
    }

    /// A 2-slab plan is a degenerate ring: both directions adjacent, and
    /// the matrix adds nothing over the global bound (adaptive still
    /// helps via self-exclusion and drain extension, not distance).
    #[test]
    fn two_slab_matrix_matches_global_bound() {
        let dims = TorusDims::new(4, 4, 4);
        let plan = ShardPlan::new(dims, 2);
        let t = Timing::default();
        let m = plan.lookahead_matrix(&t);
        assert_eq!(m.direct(0, 1), Some(t.min_hop_delay(plan.axis())));
        assert_eq!(m.direct(1, 0), Some(t.min_hop_delay(plan.axis())));
    }

    #[test]
    fn obs_mode_parses_every_alias_case_insensitively() {
        for (s, want) in [
            ("off", ObsMode::Off),
            ("none", ObsMode::Off),
            ("OFF", ObsMode::Off),
            ("flight", ObsMode::Flight),
            ("full", ObsMode::Flight),
            ("stream", ObsMode::Stream),
            ("streaming", ObsMode::Stream),
            ("bounded", ObsMode::Stream),
            (" Stream ", ObsMode::Stream),
        ] {
            assert_eq!(ObsMode::parse_str(s), Some(want), "{s:?}");
        }
        for s in ["", "fligth", "2", "on"] {
            assert_eq!(ObsMode::parse_str(s), None, "{s:?}");
        }
    }

    #[test]
    fn obs_mode_resolution_falls_back_and_warns_once() {
        let warned = AtomicBool::new(false);
        let resolve = |raw: Option<&str>, warned: &AtomicBool| {
            resolve_env(
                "ANTON_OBS_MODE",
                raw,
                ObsMode::Off,
                warned,
                "off, flight, or stream",
                |s| ObsMode::parse_str(s),
            )
        };
        assert_eq!(resolve(Some("stream"), &warned), ObsMode::Stream);
        assert_eq!(resolve(None, &warned), ObsMode::Off);
        assert!(!warned.load(Ordering::Relaxed));
        assert_eq!(resolve(Some("sideways"), &warned), ObsMode::Off);
        assert!(warned.load(Ordering::Relaxed));
    }
}
