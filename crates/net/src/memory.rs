//! Client-local state: memories, synchronization counters, and the
//! hardware message FIFO.

use crate::packet::{CounterId, Payload, COUNTERS_PER_CLIENT};
use std::collections::HashMap;

/// A client's local memory, addressable by remote write packets
/// (Figure 3: "each network client contains a local memory that can
/// directly accept write packets issued by other clients").
///
/// Modeled as a sparse map from address to the last payload written
/// there. Receive-side buffers are pre-allocated by the software before a
/// simulation begins (§IV.A), which here means the application chooses
/// disjoint addresses; overlapping writes simply overwrite, as hardware
/// would.
#[derive(Debug, Default, Clone)]
pub struct LocalMemory {
    cells: HashMap<u64, Payload>,
}

impl LocalMemory {
    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Store `payload` at `addr`.
    pub fn write(&mut self, addr: u64, payload: Payload) {
        self.cells.insert(addr, payload);
    }

    /// Read the payload last written at `addr`.
    pub fn read(&self, addr: u64) -> Option<&Payload> {
        self.cells.get(&addr)
    }

    /// Remove and return the payload at `addr` (software consuming a
    /// buffer).
    pub fn take(&mut self, addr: u64) -> Option<Payload> {
        self.cells.remove(&addr)
    }

    /// Number of occupied cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell is occupied.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Drain all cells whose address lies in `[lo, hi)`, returning them
    /// sorted by address (deterministic iteration for reproducibility).
    pub fn drain_range(&mut self, lo: u64, hi: u64) -> Vec<(u64, Payload)> {
        let keys: Vec<u64> = self
            .cells
            .keys()
            .copied()
            .filter(|&a| a >= lo && a < hi)
            .collect();
        let mut out: Vec<(u64, Payload)> = keys
            .into_iter()
            .map(|k| (k, self.cells.remove(&k).expect("key just listed")))
            .collect();
        out.sort_by_key(|&(a, _)| a);
        out
    }
}

/// An accumulation memory: write packets *add* their payload, in 4-byte
/// signed quantities, to the current contents (§III.A). Anton used this
/// for force and charge accumulation; fixed-point addition makes the sum
/// independent of arrival order, which is why the machine is
/// deterministic — a property our tests lean on.
#[derive(Debug, Default, Clone)]
pub struct AccumMemory {
    words: HashMap<u64, i32>,
}

impl AccumMemory {
    /// An empty (all-zero) accumulation memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `values` starting at word address `addr/4` (addr must be
    /// 4-byte aligned).
    pub fn accumulate(&mut self, addr: u64, values: &[i32]) {
        assert!(
            addr.is_multiple_of(4),
            "accumulation address must be 4-byte aligned"
        );
        let base = addr / 4;
        for (i, &v) in values.iter().enumerate() {
            let w = self.words.entry(base + i as u64).or_insert(0);
            *w = w.wrapping_add(v);
        }
    }

    /// Plain write (non-accumulating store), used to clear buffers between
    /// time steps.
    pub fn write(&mut self, addr: u64, values: &[i32]) {
        assert!(
            addr.is_multiple_of(4),
            "accumulation address must be 4-byte aligned"
        );
        let base = addr / 4;
        for (i, &v) in values.iter().enumerate() {
            self.words.insert(base + i as u64, v);
        }
    }

    /// Read `n` words starting at `addr`.
    pub fn read(&self, addr: u64, n: usize) -> Vec<i32> {
        assert!(addr.is_multiple_of(4));
        let base = addr / 4;
        (0..n)
            .map(|i| *self.words.get(&(base + i as u64)).unwrap_or(&0))
            .collect()
    }

    /// Zero the `n` words starting at `addr`.
    pub fn clear(&mut self, addr: u64, n: usize) {
        assert!(addr.is_multiple_of(4));
        let base = addr / 4;
        for i in 0..n {
            self.words.remove(&(base + i as u64));
        }
    }
}

/// A client's bank of synchronization counters (§III.B). Write and
/// accumulation packets labeled with a counter id increment it once the
/// memory update completes; software polls (here: registers a watch for)
/// a target value.
#[derive(Debug, Clone)]
pub struct SyncCounters {
    counts: [u64; COUNTERS_PER_CLIENT],
    /// Outstanding watch per counter: fire when count reaches the target.
    watches: [Option<u64>; COUNTERS_PER_CLIENT],
    /// Lifetime increments across the whole bank (resets don't clear it)
    /// — the synchronization-traffic volume this client absorbed.
    total_increments: u64,
    /// Watches that fired across the whole bank.
    watches_fired: u64,
}

impl Default for SyncCounters {
    fn default() -> Self {
        SyncCounters {
            counts: [0; COUNTERS_PER_CLIENT],
            watches: [None; COUNTERS_PER_CLIENT],
            total_increments: 0,
            watches_fired: 0,
        }
    }
}

impl SyncCounters {
    /// A zeroed counter bank with no watches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value.
    pub fn read(&self, id: CounterId) -> u64 {
        self.counts[id.0 as usize]
    }

    /// Reset a counter to zero (software re-arming for the next phase).
    /// Panics if a watch is still pending — resetting under a live watch
    /// is a lost-wakeup bug in the node program.
    pub fn reset(&mut self, id: CounterId) {
        assert!(
            self.watches[id.0 as usize].is_none(),
            "resetting counter {} with a pending watch",
            id.0
        );
        self.counts[id.0 as usize] = 0;
    }

    /// Increment (a labeled packet arrived). Returns true if a pending
    /// watch fired.
    pub fn increment(&mut self, id: CounterId) -> bool {
        let i = id.0 as usize;
        self.counts[i] += 1;
        self.total_increments += 1;
        if let Some(target) = self.watches[i] {
            if self.counts[i] >= target {
                self.watches[i] = None;
                self.watches_fired += 1;
                return true;
            }
        }
        false
    }

    /// Lifetime increments across the bank (unaffected by resets).
    pub fn total_increments(&self) -> u64 {
        self.total_increments
    }

    /// Lifetime watch fires across the bank.
    pub fn watches_fired(&self) -> u64 {
        self.watches_fired
    }

    /// Register a watch: notify when the counter reaches `target`.
    /// Returns true if the target is already met (fires immediately);
    /// in that case no watch is stored.
    pub fn watch(&mut self, id: CounterId, target: u64) -> bool {
        let i = id.0 as usize;
        assert!(
            self.watches[i].is_none(),
            "counter {} already has a pending watch",
            id.0
        );
        if self.counts[i] >= target {
            true
        } else {
            self.watches[i] = Some(target);
            false
        }
    }

    /// Whether a watch is pending on `id`.
    pub fn has_watch(&self, id: CounterId) -> bool {
        self.watches[id.0 as usize].is_some()
    }

    /// All pending watches as `(counter, target)` pairs — the stall
    /// watchdog's view of what this client is still waiting for.
    pub fn pending_watches(&self) -> Vec<(CounterId, u64)> {
        self.watches
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.map(|t| (CounterId(i as u16), t)))
            .collect()
    }
}

/// The hardware-managed circular message FIFO in each processing slice's
/// local memory (§III.C). The Tensilica core polls the tail pointer for
/// new messages and advances the head pointer as it consumes them; if the
/// FIFO fills, backpressure is exerted into the network.
#[derive(Debug, Clone)]
pub struct MsgFifo<T> {
    queue: std::collections::VecDeque<T>,
    capacity: usize,
    /// Messages stalled in the network by backpressure, in arrival order.
    backpressured: std::collections::VecDeque<T>,
    /// Total count of messages that ever hit backpressure (diagnostic).
    backpressure_events: u64,
    /// Deepest the visible queue ever got — how close software draining
    /// came to the backpressure cliff.
    high_watermark: usize,
}

impl<T> MsgFifo<T> {
    /// A FIFO holding up to `capacity` messages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        MsgFifo {
            queue: std::collections::VecDeque::new(),
            capacity,
            backpressured: std::collections::VecDeque::new(),
            backpressure_events: 0,
            high_watermark: 0,
        }
    }

    /// Hardware push on packet arrival. If the FIFO is full the message
    /// parks in the network (backpressure) and is admitted when software
    /// pops. Returns true if the message entered the FIFO immediately.
    pub fn push(&mut self, msg: T) -> bool {
        if self.queue.len() < self.capacity {
            self.queue.push_back(msg);
            self.high_watermark = self.high_watermark.max(self.queue.len());
            true
        } else {
            self.backpressured.push_back(msg);
            self.backpressure_events += 1;
            false
        }
    }

    /// Software pop (poll tail, consume, advance head). Admits one
    /// backpressured message if any is waiting.
    pub fn pop(&mut self) -> Option<T> {
        let msg = self.queue.pop_front();
        if msg.is_some() {
            if let Some(parked) = self.backpressured.pop_front() {
                self.queue.push_back(parked);
            }
        }
        msg
    }

    /// Messages currently visible in the FIFO.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the FIFO is empty (a failed poll).
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Messages parked in the network.
    pub fn backpressured(&self) -> usize {
        self.backpressured.len()
    }

    /// Total backpressure occurrences so far.
    pub fn backpressure_events(&self) -> u64 {
        self.backpressure_events
    }

    /// Deepest the visible queue ever got (occupancy high watermark).
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_memory_write_read_take() {
        let mut m = LocalMemory::new();
        assert!(m.is_empty());
        m.write(0x10, Payload::F64s(vec![1.5]));
        assert_eq!(m.read(0x10), Some(&Payload::F64s(vec![1.5])));
        m.write(0x10, Payload::F64s(vec![2.5])); // overwrite
        assert_eq!(m.take(0x10), Some(Payload::F64s(vec![2.5])));
        assert_eq!(m.read(0x10), None);
    }

    #[test]
    fn drain_range_is_sorted_and_bounded() {
        let mut m = LocalMemory::new();
        for a in [5u64, 3, 9, 7, 100] {
            m.write(a, Payload::Token(a));
        }
        let got = m.drain_range(4, 10);
        let addrs: Vec<u64> = got.iter().map(|&(a, _)| a).collect();
        assert_eq!(addrs, vec![5, 7, 9]);
        assert_eq!(m.len(), 2); // 3 and 100 remain
    }

    #[test]
    fn accumulation_is_order_independent() {
        let mut a = AccumMemory::new();
        let mut b = AccumMemory::new();
        a.accumulate(0, &[1, 2, 3]);
        a.accumulate(0, &[10, 20, 30]);
        b.accumulate(0, &[10, 20, 30]);
        b.accumulate(0, &[1, 2, 3]);
        assert_eq!(a.read(0, 3), b.read(0, 3));
        assert_eq!(a.read(0, 3), vec![11, 22, 33]);
    }

    #[test]
    fn accumulation_wraps_rather_than_panics() {
        let mut a = AccumMemory::new();
        a.accumulate(4, &[i32::MAX]);
        a.accumulate(4, &[1]);
        assert_eq!(a.read(4, 1), vec![i32::MIN]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_accumulation_panics() {
        AccumMemory::new().accumulate(2, &[1]);
    }

    #[test]
    fn counters_fire_at_target() {
        let mut c = SyncCounters::new();
        let id = CounterId(3);
        assert!(!c.watch(id, 3));
        assert!(!c.increment(id));
        assert!(!c.increment(id));
        assert!(c.increment(id)); // reaches 3 → fires
        assert!(!c.has_watch(id));
        assert_eq!(c.read(id), 3);
        // Subsequent increments don't fire again.
        assert!(!c.increment(id));
    }

    #[test]
    fn watch_on_already_met_target_fires_immediately() {
        let mut c = SyncCounters::new();
        let id = CounterId(0);
        c.increment(id);
        c.increment(id);
        assert!(c.watch(id, 2));
        assert!(!c.has_watch(id));
    }

    #[test]
    #[should_panic(expected = "pending watch")]
    fn reset_under_watch_panics() {
        let mut c = SyncCounters::new();
        c.watch(CounterId(1), 5);
        c.reset(CounterId(1));
    }

    #[test]
    fn counters_track_lifetime_totals() {
        let mut c = SyncCounters::new();
        c.watch(CounterId(0), 2);
        c.increment(CounterId(0));
        c.increment(CounterId(0)); // fires
        c.increment(CounterId(1));
        c.reset(CounterId(0));
        assert_eq!(c.total_increments(), 3); // reset doesn't clear totals
        assert_eq!(c.watches_fired(), 1);
    }

    #[test]
    fn fifo_high_watermark_tracks_peak_depth() {
        let mut f = MsgFifo::new(4);
        f.push(1);
        f.push(2);
        f.push(3);
        f.pop();
        f.pop();
        f.push(4);
        assert_eq!(f.len(), 2);
        assert_eq!(f.high_watermark(), 3);
    }

    #[test]
    fn fifo_backpressure_and_drain() {
        let mut f = MsgFifo::new(2);
        assert!(f.push(1));
        assert!(f.push(2));
        assert!(!f.push(3)); // backpressured
        assert!(!f.push(4));
        assert_eq!(f.len(), 2);
        assert_eq!(f.backpressured(), 2);
        assert_eq!(f.backpressure_events(), 2);
        // Pops release parked messages in order.
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.len(), 2); // 2 and 3
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(4));
        assert_eq!(f.pop(), None);
        assert!(f.is_empty());
    }
}
