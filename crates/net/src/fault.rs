//! Fault injection and the link-reliability model.
//!
//! Anton's network is lossless in normal operation, but the hardware
//! carries a link-level CRC + retransmission protocol underneath that
//! guarantee. This module models that sublayer so robustness experiments
//! can inject faults and measure their cost:
//!
//! - A [`FaultPlan`] is a *seeded, deterministic* description of what goes
//!   wrong: transient packet drops and payload corruptions at configurable
//!   per-traversal rates, plus permanent link/cable/node failures at
//!   configurable simulation times.
//! - Transient faults are detected by the link-layer CRC (corruption) or
//!   an ack timeout (drop) and recovered by retransmission with
//!   exponential backoff, up to a per-traversal retry budget. The fabric
//!   folds the retransmission delay into the link reservation, so the
//!   fault-free plan ([`FaultPlan::none`]) is *bit-identical* to a fabric
//!   with no fault layer at all.
//! - Fault decisions are pure functions of `(seed, link, per-link tx
//!   sequence number)` — no RNG stream is consumed — so the same seed and
//!   plan reproduce the same event trace exactly.
//!
//! Unrecoverable problems surface as [`FabricError`] values recorded in
//! the fabric's error log (plus `NetStats` counters) rather than panics,
//! and lost packets are diagnosed by the stall watchdog (see
//! `world::RunReport` and [`WatchdogReport`]).

use crate::packet::{ClientKind, CounterId, PatternId, Payload};
use anton_des::{SimDuration, SimTime};
use anton_topo::{Coord, LinkDir, LinkMask, NodeId, TorusDims};
use std::fmt;

/// Link-layer retransmission parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Sender-side ack timeout before a dropped packet is retransmitted,
    /// nanoseconds. Covers the forward wire time plus the returning ack.
    pub ack_timeout_ns: f64,
    /// Receiver-side nack turnaround after a CRC failure, nanoseconds.
    /// Corruptions are detected as soon as the (bad) packet fully
    /// arrives, so recovery is cheaper than a drop.
    pub nack_ns: f64,
    /// Multiplier applied to the ack timeout per successive drop of the
    /// same packet (exponential backoff).
    pub backoff: f64,
    /// Retransmissions allowed per link traversal before the packet is
    /// declared lost (the retransmit budget).
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            ack_timeout_ns: 500.0,
            nack_ns: 100.0,
            backoff: 2.0,
            max_retries: 8,
        }
    }
}

impl RetryPolicy {
    /// Delay between a dropped attempt's wire time and its retransmission
    /// (`attempt` counts prior failures of this traversal, from 0).
    pub fn drop_penalty(&self, attempt: u32) -> SimDuration {
        SimDuration::from_ns_f64(self.ack_timeout_ns * self.backoff.powi(attempt as i32))
    }

    /// Delay between a corrupted attempt's wire time and its
    /// retransmission.
    pub fn nack_penalty(&self) -> SimDuration {
        SimDuration::from_ns_f64(self.nack_ns)
    }
}

/// A transient fault injected on one link traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientFault {
    /// The packet vanished on the wire; the sender's ack timeout expires.
    Drop,
    /// The packet arrived with a payload error; the link CRC check fails
    /// and the receiver nacks.
    Corrupt,
}

/// What a permanent failure takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// One unidirectional link (traffic leaving `node` via `link`).
    Link {
        /// Node the link leaves from.
        node: Coord,
        /// Which of its six links.
        link: LinkDir,
    },
    /// A physical cable: both directions between `node` and its neighbor.
    Cable {
        /// Either endpoint of the cable.
        node: Coord,
        /// The link direction from that endpoint.
        link: LinkDir,
    },
    /// A whole node: all six outgoing and all six incoming links.
    Node {
        /// The failed node.
        node: Coord,
    },
}

/// A permanent failure and when it strikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermanentFault {
    /// Simulation time from which the target is dead.
    pub at: SimTime,
    /// What dies.
    pub target: FaultTarget,
}

/// Seeded deterministic fault-injection plan. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for per-traversal fault decisions.
    pub seed: u64,
    /// Probability a link traversal drops the packet.
    pub drop_rate: f64,
    /// Probability a link traversal corrupts the payload (caught by the
    /// link CRC and nacked).
    pub corrupt_rate: f64,
    /// Link-layer retransmission policy.
    pub retry: RetryPolicy,
    /// Permanent failures, each with an activation time.
    pub permanent: Vec<PermanentFault>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The fault-free plan. A fabric built with it behaves bit-identically
    /// to one with no fault layer: no fault decisions are drawn and no
    /// timing is perturbed.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            retry: RetryPolicy::default(),
            permanent: Vec::new(),
        }
    }

    /// A transient-fault plan with the given seed (builder entry point).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Set the per-traversal drop rate (builder style).
    pub fn with_drop_rate(mut self, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "drop rate must be a probability");
        self.drop_rate = p;
        self.check_rates();
        self
    }

    /// Set the per-traversal corruption rate (builder style).
    pub fn with_corrupt_rate(mut self, p: f64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&p),
            "corrupt rate must be a probability"
        );
        self.corrupt_rate = p;
        self.check_rates();
        self
    }

    /// Replace the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> FaultPlan {
        self.retry = retry;
        self
    }

    fn check_rates(&self) {
        assert!(
            self.drop_rate + self.corrupt_rate <= 1.0,
            "drop + corrupt rates exceed 1"
        );
    }

    /// Schedule a permanent unidirectional-link failure at `at`.
    pub fn fail_link_at(mut self, node: Coord, link: LinkDir, at: SimTime) -> FaultPlan {
        self.permanent.push(PermanentFault {
            at,
            target: FaultTarget::Link { node, link },
        });
        self
    }

    /// Schedule a permanent cable failure (both directions) at `at`.
    pub fn fail_cable_at(mut self, node: Coord, link: LinkDir, at: SimTime) -> FaultPlan {
        self.permanent.push(PermanentFault {
            at,
            target: FaultTarget::Cable { node, link },
        });
        self
    }

    /// Schedule a permanent whole-node failure at `at`.
    pub fn fail_node_at(mut self, node: Coord, at: SimTime) -> FaultPlan {
        self.permanent.push(PermanentFault {
            at,
            target: FaultTarget::Node { node },
        });
        self
    }

    /// Whether any transient fault rate is nonzero.
    pub fn has_transients(&self) -> bool {
        self.drop_rate > 0.0 || self.corrupt_rate > 0.0
    }

    /// Whether any permanent failure is scheduled.
    pub fn has_permanent(&self) -> bool {
        !self.permanent.is_empty()
    }

    /// Whether the plan injects nothing (the zero-cost fast path).
    pub fn is_none(&self) -> bool {
        !self.has_transients() && !self.has_permanent()
    }

    /// Deterministic fault decision for transmission number `seq` over
    /// the unidirectional link with dense index `link_idx`. Pure function
    /// of `(seed, link_idx, seq)` — retransmissions get fresh sequence
    /// numbers and therefore fresh draws.
    pub fn transient_fault(&self, link_idx: usize, seq: u64) -> Option<TransientFault> {
        let u = hash_unit(self.seed, link_idx as u64, seq);
        if u < self.drop_rate {
            Some(TransientFault::Drop)
        } else if u < self.drop_rate + self.corrupt_rate {
            Some(TransientFault::Corrupt)
        } else {
            None
        }
    }

    /// Expand the permanent failures into per-link death times, indexed
    /// `node*6 + link` like every other link table. Overlapping failures
    /// keep the earliest time.
    pub fn link_death_times(&self, dims: TorusDims) -> Vec<Option<SimTime>> {
        let mut death: Vec<Option<SimTime>> = vec![None; dims.node_count() as usize * 6];
        let mut kill = |node: Coord, link: LinkDir, at: SimTime| {
            let idx = node.node_id(dims).index() * 6 + link.index();
            death[idx] = Some(match death[idx] {
                Some(t) => t.min(at),
                None => at,
            });
        };
        for pf in &self.permanent {
            match pf.target {
                FaultTarget::Link { node, link } => kill(node, link, pf.at),
                FaultTarget::Cable { node, link } => {
                    kill(node, link, pf.at);
                    kill(node.step(link, dims), link.reverse(), pf.at);
                }
                FaultTarget::Node { node } => {
                    for &l in &LinkDir::ALL {
                        kill(node, l, pf.at);
                        kill(node.step(l, dims), l.reverse(), pf.at);
                    }
                }
            }
        }
        death
    }

    /// The mask of links dead at or before `now` (used to route around
    /// permanent failures).
    pub fn mask_at(&self, dims: TorusDims, now: SimTime) -> LinkMask {
        let mut mask = LinkMask::none(dims);
        for (idx, t) in self.link_death_times(dims).iter().enumerate() {
            if matches!(t, Some(t) if *t <= now) {
                let node = NodeId((idx / 6) as u32).coord(dims);
                mask.kill_link(node, LinkDir::from_index(idx % 6));
            }
        }
        mask
    }
}

/// SplitMix64-style avalanche of `(seed, link, seq)` to a uniform value
/// in `[0, 1)`.
pub(crate) fn hash_unit(seed: u64, link: u64, seq: u64) -> f64 {
    let mut z =
        seed ^ link.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seq.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte stream — the
/// payload integrity check of the link layer and of end-to-end delivery.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feed bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u32;
            for _ in 0..8 {
                let mask = (self.state & 1).wrapping_neg();
                self.state = (self.state >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }

    /// Finish and return the checksum.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Integrity checksum of a packet's logical payload. Computed at packet
/// construction, carried in the header, and verified on delivery.
pub fn payload_crc(payload: &Payload) -> u32 {
    let mut c = Crc32::new();
    match payload {
        Payload::Empty => c.update(&[0]),
        Payload::Token(t) => {
            c.update(&[1]);
            c.update(&t.to_le_bytes());
        }
        Payload::Bytes(b) => {
            c.update(&[2]);
            c.update(b);
        }
        Payload::F64s(v) => {
            c.update(&[3]);
            for x in v {
                c.update(&x.to_le_bytes());
            }
        }
        Payload::I32s(v) => {
            c.update(&[4]);
            for x in v {
                c.update(&x.to_le_bytes());
            }
        }
    }
    c.finish()
}

/// A recoverable fabric error. The hot delivery path records these in the
/// fabric's capped error log and bumps `NetStats` counters instead of
/// panicking; simulation always continues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// No surviving route from `src` to `dst` at injection time; the
    /// packet was not sent.
    Unreachable {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// A traversal exhausted its retransmit budget; the packet is lost.
    RetryBudgetExhausted {
        /// Node the link leaves from.
        node: NodeId,
        /// The link that kept failing.
        link: LinkDir,
        /// Attempts made (initial + retransmissions).
        attempts: u32,
    },
    /// A packet in flight hit a permanently dead link and is lost.
    DeadLink {
        /// Node the dead link leaves from.
        node: NodeId,
        /// The dead link.
        link: LinkDir,
    },
    /// A multicast packet referenced a pattern id with no table entry.
    PatternUnknown {
        /// The unknown pattern.
        pattern: PatternId,
        /// Node whose table was consulted.
        node: NodeId,
    },
    /// Routing made no progress (should not happen on a healthy fabric).
    NoRoute {
        /// Node where routing stalled.
        node: NodeId,
        /// Intended destination.
        dst: NodeId,
    },
    /// An accumulation packet carried a non-`I32s` payload; discarded.
    BadAccumPayload {
        /// Delivery node.
        node: NodeId,
        /// Target client.
        client: ClientKind,
    },
    /// A FIFO packet targeted a client with no hardware FIFO; discarded.
    FifoToNonSlice {
        /// Delivery node.
        node: NodeId,
        /// Target client.
        client: ClientKind,
    },
    /// A `COUNTER_BY_SOURCE` packet arrived with no per-source mapping;
    /// the write landed but no counter was bumped.
    MissingSourceCounter {
        /// Delivery node.
        node: NodeId,
        /// Source node the mapping was missing for.
        src: NodeId,
    },
    /// End-to-end payload CRC mismatch at delivery; discarded.
    CorruptDelivery {
        /// Delivery node.
        node: NodeId,
        /// Target client.
        client: ClientKind,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Unreachable { src, dst } => {
                write!(
                    f,
                    "no surviving route from node {} to node {}",
                    src.0, dst.0
                )
            }
            FabricError::RetryBudgetExhausted {
                node,
                link,
                attempts,
            } => write!(
                f,
                "retry budget exhausted after {attempts} attempts on link {link} of node {}",
                node.0
            ),
            FabricError::DeadLink { node, link } => {
                write!(f, "packet lost on dead link {link} of node {}", node.0)
            }
            FabricError::PatternUnknown { pattern, node } => {
                write!(
                    f,
                    "multicast pattern {} unknown at node {}",
                    pattern.0, node.0
                )
            }
            FabricError::NoRoute { node, dst } => {
                write!(
                    f,
                    "routing stalled at node {} toward node {}",
                    node.0, dst.0
                )
            }
            FabricError::BadAccumPayload { node, client } => {
                write!(
                    f,
                    "non-I32s accumulation payload at node {} {client:?}",
                    node.0
                )
            }
            FabricError::FifoToNonSlice { node, client } => {
                write!(
                    f,
                    "FIFO packet for client without FIFO at node {} {client:?}",
                    node.0
                )
            }
            FabricError::MissingSourceCounter { node, src } => write!(
                f,
                "no source-counter mapping at node {} for packets from node {}",
                node.0, src.0
            ),
            FabricError::CorruptDelivery { node, client } => {
                write!(
                    f,
                    "payload CRC mismatch delivering to node {} {client:?}",
                    node.0
                )
            }
        }
    }
}

/// A watchdog deadline that expired: the watched counter had not reached
/// its target when the deadline struck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Node owning the stuck counter.
    pub node: NodeId,
    /// Client owning the stuck counter.
    pub client: ClientKind,
    /// The counter that missed its deadline.
    pub counter: CounterId,
    /// The value it was waiting for.
    pub target: u64,
    /// Its value when the deadline expired.
    pub current: u64,
    /// When the deadline expired.
    pub at: SimTime,
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "watchdog: counter {} of node {} {:?} stuck at {}/{} (deadline {})",
            self.counter.0, self.node.0, self.client, self.current, self.target, self.at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_topo::{Dim, Dir, TorusDims};

    #[test]
    fn none_plan_is_zero_cost() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(!p.has_transients());
        assert!(!p.has_permanent());
        // Even probing draws nothing: rates are zero.
        assert_eq!(p.transient_fault(0, 0), None);
        assert_eq!(p.transient_fault(123, 456), None);
    }

    #[test]
    fn fault_decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7).with_drop_rate(0.3);
        let b = FaultPlan::seeded(7).with_drop_rate(0.3);
        let c = FaultPlan::seeded(8).with_drop_rate(0.3);
        let mut diff = 0;
        for i in 0..1000u64 {
            assert_eq!(a.transient_fault(3, i), b.transient_fault(3, i));
            if a.transient_fault(3, i) != c.transient_fault(3, i) {
                diff += 1;
            }
        }
        assert!(diff > 0, "different seeds must differ somewhere");
    }

    #[test]
    fn fault_rates_are_roughly_honored() {
        let p = FaultPlan::seeded(42)
            .with_drop_rate(0.1)
            .with_corrupt_rate(0.05);
        let mut drops = 0;
        let mut corrupts = 0;
        let n = 20_000u64;
        for i in 0..n {
            match p.transient_fault(1, i) {
                Some(TransientFault::Drop) => drops += 1,
                Some(TransientFault::Corrupt) => corrupts += 1,
                None => {}
            }
        }
        let dr = drops as f64 / n as f64;
        let cr = corrupts as f64 / n as f64;
        assert!((0.08..0.12).contains(&dr), "drop rate {dr}");
        assert!((0.035..0.065).contains(&cr), "corrupt rate {cr}");
    }

    #[test]
    fn backoff_grows_exponentially() {
        let r = RetryPolicy::default();
        assert_eq!(r.drop_penalty(1), r.drop_penalty(0) * 2);
        assert_eq!(r.drop_penalty(3), r.drop_penalty(0) * 8);
        assert!(r.nack_penalty() < r.drop_penalty(0));
    }

    #[test]
    fn death_times_cover_cables_and_nodes() {
        let dims = TorusDims::new(4, 4, 4);
        let t = SimTime(1000);
        let plan = FaultPlan::none()
            .fail_cable_at(
                Coord::new(0, 0, 0),
                LinkDir {
                    dim: Dim::X,
                    dir: Dir::Plus,
                },
                t,
            )
            .fail_node_at(Coord::new(2, 2, 2), SimTime(2000));
        let death = plan.link_death_times(dims);
        let idx = |c: Coord, l: LinkDir| c.node_id(dims).index() * 6 + l.index();
        assert_eq!(
            death[idx(
                Coord::new(0, 0, 0),
                LinkDir {
                    dim: Dim::X,
                    dir: Dir::Plus
                }
            )],
            Some(t)
        );
        assert_eq!(
            death[idx(
                Coord::new(1, 0, 0),
                LinkDir {
                    dim: Dim::X,
                    dir: Dir::Minus
                }
            )],
            Some(t)
        );
        // All 12 links touching the dead node die.
        let dead = Coord::new(2, 2, 2);
        for &l in &LinkDir::ALL {
            assert_eq!(death[idx(dead, l)], Some(SimTime(2000)));
            assert_eq!(
                death[idx(dead.step(l, dims), l.reverse())],
                Some(SimTime(2000))
            );
        }
        // Masks respect activation times.
        assert!(!plan.mask_at(dims, SimTime(999)).any_dead());
        assert_eq!(plan.mask_at(dims, SimTime(1000)).dead_links(), 2);
        assert_eq!(plan.mask_at(dims, SimTime(2000)).dead_links(), 14);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn payload_crc_distinguishes_kinds_and_contents() {
        let a = payload_crc(&Payload::I32s(vec![1, 2]));
        let b = payload_crc(&Payload::I32s(vec![2, 1]));
        let c = payload_crc(&Payload::Bytes(vec![1, 0, 0, 0, 2, 0, 0, 0]));
        assert_ne!(a, b);
        assert_ne!(a, c, "same bytes, different kind tag");
        assert_eq!(a, payload_crc(&Payload::I32s(vec![1, 2])));
    }
}
