//! Node programs and the simulation world.
//!
//! Application logic (the MD schedule, microbenchmarks, collectives) is
//! expressed as a [`NodeProgram`] — one instance per node, reacting to
//! counter fires, FIFO messages, and timers, and acting through [`Ctx`]
//! (send packets, read memories, set timers, model compute time). This is
//! exactly the event-driven shape of Anton's Tensilica-core software:
//! poll a counter, process, push results onward.

use crate::fabric::{Ev, Fabric, ProgEvent};
use crate::packet::{ClientAddr, ClientKind, CounterId, Packet, Payload};
use anton_des::{
    Activity, Engine, EventHandler, RunOutcome, Scheduler, SimDuration, SimTime, TrackId,
};
use anton_topo::{NodeId, TorusDims};

/// Per-node application logic.
pub trait NodeProgram {
    /// React to a program event on this node. `node` is this program's
    /// node id; `ctx` provides the machine interface.
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>);
}

/// The machine interface handed to node programs.
pub struct Ctx<'a, 'b> {
    fabric: &'a mut Fabric,
    sched: &'a mut Scheduler<Ev>,
    _marker: std::marker::PhantomData<&'b ()>,
}

impl<'a, 'b> Ctx<'a, 'b> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Machine dimensions.
    pub fn dims(&self) -> TorusDims {
        self.fabric.dims()
    }

    /// Immutable access to the fabric (stats, timing, memories).
    pub fn fabric(&self) -> &Fabric {
        self.fabric
    }

    /// Mutable access for pattern (re)registration mid-run (bond-program
    /// regeneration reprograms multicast tables).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        self.fabric
    }

    /// Send a packet now.
    pub fn send(&mut self, pkt: Packet) {
        let now = self.sched.now();
        self.fabric.send(pkt, now, self.sched);
    }

    /// Watch a counter: a `CounterReached` event fires when it hits
    /// `target` (immediately if already met).
    pub fn watch_counter(&mut self, addr: ClientAddr, id: CounterId, target: u64) {
        let now = self.sched.now();
        self.fabric.counter_watch(addr, id, target, now, self.sched);
    }

    /// Read a counter's current value.
    pub fn read_counter(&self, addr: ClientAddr, id: CounterId) -> u64 {
        self.fabric.counter_read(addr, id)
    }

    /// Reset a counter for the next phase.
    pub fn reset_counter(&mut self, addr: ClientAddr, id: CounterId) {
        self.fabric.counter_reset(addr, id);
    }

    /// Read local memory.
    pub fn mem_read(&self, addr: ClientAddr, a: u64) -> Option<&Payload> {
        self.fabric.mem_read(addr, a)
    }

    /// Consume local memory.
    pub fn mem_take(&mut self, addr: ClientAddr, a: u64) -> Option<Payload> {
        self.fabric.mem_take(addr, a)
    }

    /// Local (non-network) store into a client memory.
    pub fn mem_write(&mut self, addr: ClientAddr, a: u64, p: Payload) {
        self.fabric.mem_write(addr, a, p);
    }

    /// Drain an address range of local memory, sorted by address.
    pub fn mem_drain_range(&mut self, addr: ClientAddr, lo: u64, hi: u64) -> Vec<(u64, Payload)> {
        self.fabric.mem_drain_range(addr, lo, hi)
    }

    /// Read accumulation-memory words.
    pub fn accum_read(&self, addr: ClientAddr, a: u64, n: usize) -> Vec<i32> {
        self.fabric.accum_read(addr, a, n)
    }

    /// Zero accumulation-memory words.
    pub fn accum_clear(&mut self, addr: ClientAddr, a: u64, n: usize) {
        self.fabric.accum_clear(addr, a, n);
    }

    /// Arrange a `Timer { tag }` event for `client` after `delay`.
    pub fn set_timer(&mut self, node: NodeId, client: ClientKind, delay: SimDuration, tag: u64) {
        self.sched.after(
            delay,
            Ev::Prog { node, pe: ProgEvent::Timer { client, tag } },
        );
    }

    /// Model a computation of length `dur` on `client`: records a busy
    /// interval on `track` (if tracing) and fires `Timer { tag }` when it
    /// completes.
    pub fn compute(
        &mut self,
        node: NodeId,
        client: ClientKind,
        track: TrackId,
        dur: SimDuration,
        tag: u64,
        label: &str,
    ) {
        let now = self.sched.now();
        if self.fabric.tracer.is_enabled() {
            let l = self.fabric.tracer.intern_label(label);
            self.fabric.tracer.record(track, Activity::Busy, now, now + dur, l);
        }
        self.sched.after(
            dur,
            Ev::Prog { node, pe: ProgEvent::Timer { client, tag } },
        );
    }

    /// Record a stall interval (waiting for data) on a trace track.
    pub fn record_stall(&mut self, track: TrackId, from: SimTime, label: &str) {
        let now = self.sched.now();
        if self.fabric.tracer.is_enabled() && now > from {
            let l = self.fabric.tracer.intern_label(label);
            self.fabric.tracer.record(track, Activity::Stalled, from, now, l);
        }
    }

    /// Program a client's per-source buffer counter table.
    pub fn set_source_counter_map(
        &mut self,
        addr: ClientAddr,
        map: std::collections::HashMap<anton_topo::NodeId, crate::packet::CounterId>,
    ) {
        self.fabric.set_source_counter_map(addr, map);
    }

    /// Label subsequent traced link activity with a phase name.
    pub fn set_phase(&mut self, label: &str) {
        self.fabric.set_phase_label(label);
    }
}

/// The complete simulated machine: fabric plus one program per node.
pub struct SimWorld<P: NodeProgram> {
    /// The communication fabric.
    pub fabric: Fabric,
    /// One program per node, indexed by node id.
    pub programs: Vec<P>,
}

impl<P: NodeProgram> SimWorld<P> {
    /// Build from a fabric and a program constructor invoked per node id.
    pub fn new(fabric: Fabric, mut make: impl FnMut(NodeId) -> P) -> Self {
        let n = fabric.dims().node_count();
        let programs = (0..n).map(|i| make(NodeId(i))).collect();
        SimWorld { fabric, programs }
    }

    fn dispatch(&mut self, node: NodeId, pe: ProgEvent, sched: &mut Scheduler<Ev>) {
        let mut ctx = Ctx {
            fabric: &mut self.fabric,
            sched,
            _marker: std::marker::PhantomData,
        };
        self.programs[node.index()].on_event(node, pe, &mut ctx);
    }
}

impl<P: NodeProgram> EventHandler<Ev> for SimWorld<P> {
    fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::Start => {
                for i in 0..self.programs.len() {
                    self.dispatch(NodeId(i as u32), ProgEvent::Start, sched);
                }
            }
            Ev::HopArrive { pkt, node, in_dim } => {
                let now = sched.now();
                self.fabric.hop_arrive(pkt, node, in_dim, now, sched);
            }
            Ev::Deliver { pkt, node, client } => {
                let now = sched.now();
                self.fabric.deliver(pkt, node, client, now, sched);
            }
            Ev::FifoService { node, client } => {
                let now = sched.now();
                self.fabric.fifo_service(node, client, now, sched);
            }
            Ev::Prog { node, pe } => {
                self.dispatch(node, pe, sched);
            }
        }
    }
}

/// Convenience wrapper owning the engine and the world.
pub struct Simulation<P: NodeProgram> {
    /// The event queue and clock.
    pub engine: Engine<Ev>,
    /// The machine and its programs.
    pub world: SimWorld<P>,
}

impl<P: NodeProgram> Simulation<P> {
    /// Build and seed the `Start` event.
    pub fn new(fabric: Fabric, make: impl FnMut(NodeId) -> P) -> Self {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, Ev::Start);
        Simulation {
            engine,
            world: SimWorld::new(fabric, make),
        }
    }

    /// Run to quiescence.
    pub fn run(&mut self) {
        self.engine.run(&mut self.world);
    }

    /// Run with a horizon and event budget.
    pub fn run_until(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        self.engine.run_until(&mut self.world, horizon, max_events)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }
}
