//! Node programs and the simulation world.
//!
//! Application logic (the MD schedule, microbenchmarks, collectives) is
//! expressed as a [`NodeProgram`] — one instance per node, reacting to
//! counter fires, FIFO messages, and timers, and acting through [`Ctx`]
//! (send packets, read memories, set timers, model compute time). This is
//! exactly the event-driven shape of Anton's Tensilica-core software:
//! poll a counter, process, push results onward.

use crate::fabric::{Ev, Fabric, ProgEvent};
use crate::fault::WatchdogReport;
use crate::packet::{ClientAddr, ClientKind, CounterId, Packet, Payload};
use anton_des::{
    Activity, Engine, EventHandler, RunOutcome, Scheduler, SimDuration, SimTime, TrackId,
};
use anton_topo::{NodeId, TorusDims};
use std::fmt;

/// Per-node application logic.
pub trait NodeProgram {
    /// React to a program event on this node. `node` is this program's
    /// node id; `ctx` provides the machine interface.
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>);
}

/// The machine interface handed to node programs.
pub struct Ctx<'a, 'b> {
    fabric: &'a mut Fabric,
    sched: &'a mut Scheduler<Ev>,
    _marker: std::marker::PhantomData<&'b ()>,
}

impl<'a, 'b> Ctx<'a, 'b> {
    /// Assemble a context around a fabric and scheduler (used by the
    /// sequential [`SimWorld`] and the sharded worlds in [`crate::par`]).
    pub(crate) fn new(fabric: &'a mut Fabric, sched: &'a mut Scheduler<Ev>) -> Ctx<'a, 'b> {
        Ctx {
            fabric,
            sched,
            _marker: std::marker::PhantomData,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Machine dimensions.
    pub fn dims(&self) -> TorusDims {
        self.fabric.dims()
    }

    /// Immutable access to the fabric (stats, timing, memories).
    pub fn fabric(&self) -> &Fabric {
        self.fabric
    }

    /// Mutable access for pattern (re)registration mid-run (bond-program
    /// regeneration reprograms multicast tables).
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        self.fabric
    }

    /// Send a packet now.
    pub fn send(&mut self, pkt: Packet) {
        let now = self.sched.now();
        self.fabric.send(pkt, now, self.sched);
    }

    /// Watch a counter: a `CounterReached` event fires when it hits
    /// `target` (immediately if already met).
    pub fn watch_counter(&mut self, addr: ClientAddr, id: CounterId, target: u64) {
        let now = self.sched.now();
        self.fabric.counter_watch(addr, id, target, now, self.sched);
    }

    /// Watch a counter with a stall deadline: like [`Ctx::watch_counter`],
    /// plus a watchdog check `deadline` from now. If the watch is still
    /// pending when the deadline strikes (e.g. the counted packet was
    /// lost), a [`WatchdogReport`] naming the stuck counter is recorded on
    /// the fabric; the simulation continues either way.
    pub fn watch_counter_deadline(
        &mut self,
        addr: ClientAddr,
        id: CounterId,
        target: u64,
        deadline: SimDuration,
    ) {
        self.watch_counter(addr, id, target);
        self.sched.after(
            deadline,
            Ev::WatchdogCheck {
                addr,
                counter: id,
                target,
            },
        );
    }

    /// Read a counter's current value.
    pub fn read_counter(&self, addr: ClientAddr, id: CounterId) -> u64 {
        self.fabric.counter_read(addr, id)
    }

    /// Reset a counter for the next phase.
    pub fn reset_counter(&mut self, addr: ClientAddr, id: CounterId) {
        self.fabric.counter_reset(addr, id);
    }

    /// Read local memory.
    pub fn mem_read(&self, addr: ClientAddr, a: u64) -> Option<&Payload> {
        self.fabric.mem_read(addr, a)
    }

    /// Consume local memory.
    pub fn mem_take(&mut self, addr: ClientAddr, a: u64) -> Option<Payload> {
        self.fabric.mem_take(addr, a)
    }

    /// Local (non-network) store into a client memory.
    pub fn mem_write(&mut self, addr: ClientAddr, a: u64, p: Payload) {
        self.fabric.mem_write(addr, a, p);
    }

    /// Drain an address range of local memory, sorted by address.
    pub fn mem_drain_range(&mut self, addr: ClientAddr, lo: u64, hi: u64) -> Vec<(u64, Payload)> {
        self.fabric.mem_drain_range(addr, lo, hi)
    }

    /// Read accumulation-memory words.
    pub fn accum_read(&self, addr: ClientAddr, a: u64, n: usize) -> Vec<i32> {
        self.fabric.accum_read(addr, a, n)
    }

    /// Zero accumulation-memory words.
    pub fn accum_clear(&mut self, addr: ClientAddr, a: u64, n: usize) {
        self.fabric.accum_clear(addr, a, n);
    }

    /// Arrange a `Timer { tag }` event for `client` after `delay`.
    pub fn set_timer(&mut self, node: NodeId, client: ClientKind, delay: SimDuration, tag: u64) {
        self.sched.after(
            delay,
            Ev::Prog {
                node,
                pe: ProgEvent::Timer { client, tag },
            },
        );
    }

    /// Model a computation of length `dur` on `client`: records a busy
    /// interval on `track` (if tracing) and fires `Timer { tag }` when it
    /// completes.
    pub fn compute(
        &mut self,
        node: NodeId,
        client: ClientKind,
        track: TrackId,
        dur: SimDuration,
        tag: u64,
        label: &str,
    ) {
        let now = self.sched.now();
        if self.fabric.tracer.is_enabled() {
            let l = self.fabric.tracer.intern_label(label);
            self.fabric
                .tracer
                .record(track, Activity::Busy, now, now + dur, l);
        }
        self.sched.after(
            dur,
            Ev::Prog {
                node,
                pe: ProgEvent::Timer { client, tag },
            },
        );
    }

    /// Record a stall interval (waiting for data) on a trace track.
    pub fn record_stall(&mut self, track: TrackId, from: SimTime, label: &str) {
        let now = self.sched.now();
        if self.fabric.tracer.is_enabled() && now > from {
            let l = self.fabric.tracer.intern_label(label);
            self.fabric
                .tracer
                .record(track, Activity::Stalled, from, now, l);
        }
    }

    /// Program a client's per-source buffer counter table.
    pub fn set_source_counter_map(
        &mut self,
        addr: ClientAddr,
        map: std::collections::HashMap<anton_topo::NodeId, crate::packet::CounterId>,
    ) {
        self.fabric.set_source_counter_map(addr, map);
    }

    /// Label subsequent traced link activity with a phase name.
    pub fn set_phase(&mut self, label: &str) {
        let now = self.sched.now();
        self.fabric.set_phase_label(label, now);
    }
}

/// The complete simulated machine: fabric plus one program per node.
pub struct SimWorld<P: NodeProgram> {
    /// The communication fabric.
    pub fabric: Fabric,
    /// One program per node, indexed by node id.
    pub programs: Vec<P>,
}

impl<P: NodeProgram> SimWorld<P> {
    /// Build from a fabric and a program constructor invoked per node id.
    pub fn new(fabric: Fabric, mut make: impl FnMut(NodeId) -> P) -> Self {
        let n = fabric.dims().node_count();
        let programs = (0..n).map(|i| make(NodeId(i))).collect();
        SimWorld { fabric, programs }
    }

    fn dispatch(&mut self, node: NodeId, pe: ProgEvent, sched: &mut Scheduler<Ev>) {
        let mut ctx = Ctx {
            fabric: &mut self.fabric,
            sched,
            _marker: std::marker::PhantomData,
        };
        self.programs[node.index()].on_event(node, pe, &mut ctx);
    }
}

impl<P: NodeProgram> EventHandler<Ev> for SimWorld<P> {
    fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::Start => {
                for i in 0..self.programs.len() {
                    self.dispatch(NodeId(i as u32), ProgEvent::Start, sched);
                }
            }
            Ev::HopArrive { pkt, node, in_dim } => {
                let now = sched.now();
                self.fabric.hop_arrive(pkt, node, in_dim, now, sched);
            }
            Ev::Deliver { pkt, node, client } => {
                let now = sched.now();
                self.fabric.deliver(pkt, node, client, now, sched);
            }
            Ev::FifoService { node, client } => {
                let now = sched.now();
                self.fabric.fifo_service(node, client, now, sched);
            }
            Ev::Prog { node, pe } => {
                self.dispatch(node, pe, sched);
            }
            Ev::WatchdogCheck {
                addr,
                counter,
                target,
            } => {
                let now = sched.now();
                self.fabric.watchdog_check(addr, counter, target, now);
            }
            Ev::Reinject { pkt, node } => {
                let now = sched.now();
                self.fabric.reinject(pkt, node, now, sched);
            }
        }
    }
}

/// One still-pending counter watch at the end of a guarded run: evidence
/// of who is stuck waiting for what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckWatch {
    /// Node owning the stuck counter.
    pub node: NodeId,
    /// Client owning the stuck counter.
    pub client: ClientKind,
    /// The watched counter.
    pub counter: CounterId,
    /// The value the watch waits for.
    pub target: u64,
    /// The value it reached.
    pub current: u64,
}

impl fmt::Display for StuckWatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {} {:?} counter {} stuck at {}/{}",
            self.node.0, self.client, self.counter.0, self.current, self.target
        )
    }
}

/// Diagnosis of a run that failed to complete: why the engine stopped,
/// when, which watches were still pending (the quiescence detector), and
/// every watchdog deadline that expired along the way.
#[derive(Debug, Clone, PartialEq)]
pub struct StallReport {
    /// How the engine stopped (drained-but-stuck, horizon, or budget).
    pub outcome: RunOutcome,
    /// Simulated time when it stopped.
    pub at: SimTime,
    /// Watches still pending — the programs that never got their data.
    pub stuck: Vec<StuckWatch>,
    /// Watchdog deadlines that expired during the run.
    pub watchdog: Vec<WatchdogReport>,
    /// Snapshot of the fabric's traffic counters at the stall: how many
    /// packets were lost, unreachable, or budget-exhausted makes a
    /// chaos-induced stall diagnosable from the report alone.
    pub stats: crate::fabric::NetStats,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simulation stalled ({:?} at {}): {} stuck watch(es), {} watchdog report(s)",
            self.outcome,
            self.at,
            self.stuck.len(),
            self.watchdog.len()
        )?;
        for s in &self.stuck {
            writeln!(f, "  stuck: {s}")?;
        }
        for w in &self.watchdog {
            writeln!(f, "  {w}")?;
        }
        writeln!(
            f,
            "  net: {} sent, {} delivered, {} lost, {} unreachable, {} retry-exhausted, {} delivery error(s)",
            self.stats.packets_sent,
            self.stats.packets_delivered,
            self.stats.packets_lost,
            self.stats.packets_unreachable,
            self.stats.retry_budget_exhausted,
            self.stats.delivery_errors,
        )?;
        Ok(())
    }
}

/// Outcome of [`Simulation::run_guarded`]: either the run completed (all
/// watches satisfied before quiescence) or it stalled with a diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub enum RunReport {
    /// The run completed; no watch was left pending.
    Completed(RunOutcome),
    /// The run did not complete; here is why.
    Stalled(StallReport),
}

impl RunReport {
    /// Whether the run completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunReport::Completed(_))
    }

    /// The stall diagnosis, if the run stalled.
    pub fn stall(&self) -> Option<&StallReport> {
        match self {
            RunReport::Completed(_) => None,
            RunReport::Stalled(s) => Some(s),
        }
    }
}

/// Convenience wrapper owning the engine and the world.
pub struct Simulation<P: NodeProgram> {
    /// The event queue and clock.
    pub engine: Engine<Ev>,
    /// The machine and its programs.
    pub world: SimWorld<P>,
}

impl<P: NodeProgram> Simulation<P> {
    /// Build and seed the `Start` event.
    pub fn new(fabric: Fabric, make: impl FnMut(NodeId) -> P) -> Self {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, Ev::Start);
        Simulation {
            engine,
            world: SimWorld::new(fabric, make),
        }
    }

    /// Run to quiescence.
    pub fn run(&mut self) {
        self.engine.run(&mut self.world);
    }

    /// Run with a horizon and event budget.
    pub fn run_until(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        self.engine.run_until(&mut self.world, horizon, max_events)
    }

    /// [`Simulation::run_until`] with an engine-level instrumentation
    /// probe (see [`anton_des::Probe`]): the probe observes every
    /// processed event's time and the queue depth, feeding event-rate
    /// and queue-occupancy metrics without touching the fabric model.
    pub fn run_until_probed<Pr: anton_des::Probe>(
        &mut self,
        horizon: SimTime,
        max_events: u64,
        probe: &mut Pr,
    ) -> RunOutcome {
        self.engine
            .run_until_probed(&mut self.world, horizon, max_events, probe)
    }

    /// Run with a horizon and event budget, then diagnose: a run counts
    /// as completed only if the event queue drained with *no* counter
    /// watch left pending. Anything else — queue drained but programs
    /// still waiting (a lost packet starved them), horizon reached,
    /// budget exhausted — yields a [`StallReport`] naming every stuck
    /// counter and expired watchdog deadline instead of hanging or
    /// panicking.
    pub fn run_guarded(&mut self, horizon: SimTime, max_events: u64) -> RunReport {
        let outcome = self.run_until(horizon, max_events);
        let stuck: Vec<StuckWatch> = self
            .world
            .fabric
            .stuck_watches()
            .into_iter()
            .map(|(node, client, counter, target, current)| StuckWatch {
                node,
                client,
                counter,
                target,
                current,
            })
            .collect();
        if outcome == RunOutcome::Drained && stuck.is_empty() {
            RunReport::Completed(outcome)
        } else {
            RunReport::Stalled(StallReport {
                outcome,
                at: self.now(),
                stuck,
                watchdog: self.world.fabric.watchdog_reports().to_vec(),
                stats: self.world.fabric.stats.clone(),
            })
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }
}
