//! The network fabric: torus links, on-chip rings, injection ports,
//! multicast tables, and packet delivery.
//!
//! ## Model
//!
//! Packets cut through the network: the *head* of a packet advances with
//! the fixed per-stage latencies of [`crate::timing::Timing`], while each
//! torus link direction is a serial resource occupied for the packet's
//! full wire time (contention backs up subsequent packets in FIFO order).
//! The synchronization counter bumps when the *tail* arrives — base
//! latency plus the payload's serialization time.
//!
//! Anton guarantees lossless, deadlock-free routing via virtual channels
//! (§III.A); we model unbounded link queues, which is lossless and cannot
//! deadlock, and preserves per-pair ordering (deterministic
//! dimension-ordered routes over FIFO links), so the in-order header flag
//! is honored by construction.

use crate::fault::{self, FabricError, FaultPlan, TransientFault, WatchdogReport};
use crate::memory::{AccumMemory, LocalMemory, MsgFifo, SyncCounters};
use crate::packet::{
    ClientAddr, ClientKind, CounterId, Destination, Packet, PacketKind, PatternId, Payload,
    SourceRoute, COUNTER_BY_SOURCE,
};
use crate::recovery::{FailureVerdict, RecoveryConfig, RecoveryStats};
use crate::timing::Timing;
use anton_des::{Activity, Scheduler, SimDuration, SimTime, Tracer, TrackId};
use anton_obs::{
    FlightRecorder, MetricsRegistry, PacketId, Recorder, SharedFlightRecorder, StreamConfig,
    StreamObserver, StreamSummary, VerdictCause,
};
use anton_topo::{Coord, Dim, LinkDir, LinkMask, MulticastPattern, NodeId, Route, TorusDims};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Capacity (in messages) of each slice's hardware message FIFO. The paper
/// doesn't publish the size; migration bursts are tens of messages, so 64
/// exercises backpressure only under deliberately abusive tests.
pub const FIFO_CAPACITY: usize = 64;

/// Cap on the fabric's recoverable-error log: counters keep exact totals,
/// the log keeps the first occurrences for diagnosis.
pub const ERROR_LOG_CAP: usize = 64;

/// Events produced and consumed by the fabric (plus program dispatches).
#[derive(Debug)]
pub enum Ev {
    /// Kick off all node programs at time zero.
    Start,
    /// A packet's head arrived at `node`'s receive adapter having entered
    /// along dimension `in_dim`.
    HopArrive {
        /// The packet in flight.
        pkt: Packet,
        /// The node whose receive adapter the head reached.
        node: NodeId,
        /// Dimension of the link it arrived on.
        in_dim: Dim,
    },
    /// A packet's tail reached its target client at `node`; apply it.
    Deliver {
        /// The arriving packet.
        pkt: Packet,
        /// Delivery node.
        node: NodeId,
        /// Target client on that node.
        client: ClientKind,
    },
    /// Software services one message from a slice's FIFO.
    FifoService {
        /// The node whose FIFO is serviced.
        node: NodeId,
        /// The slice owning the FIFO.
        client: ClientKind,
    },
    /// Dispatch to the node program.
    Prog {
        /// Target node.
        node: NodeId,
        /// The program event.
        pe: ProgEvent,
    },
    /// A watchdog deadline armed by [`crate::world::Ctx::watch_counter_deadline`]
    /// expired; check whether the watch is still pending.
    WatchdogCheck {
        /// Client owning the watched counter.
        addr: ClientAddr,
        /// The watched counter.
        counter: CounterId,
        /// The value the watch waits for.
        target: u64,
    },
    /// A stranded packet re-enters the network at `node` after a
    /// recovery backoff, its route recomputed around detected failures
    /// (runtime fault recovery only). Node-local: the event fires on the
    /// shard owning `node`, so it is exempt from the cross-shard
    /// lookahead bound.
    Reinject {
        /// The stranded packet.
        pkt: Packet,
        /// The node it was stranded at.
        node: NodeId,
    },
}

/// Callbacks into node programs.
#[derive(Debug)]
pub enum ProgEvent {
    /// Simulation start.
    Start,
    /// A watched synchronization counter reached its target.
    CounterReached {
        /// The client whose counter fired.
        client: ClientKind,
        /// Which counter.
        counter: CounterId,
    },
    /// Software popped one message from a client's hardware FIFO.
    FifoMessage {
        /// The slice that drained the message.
        client: ClientKind,
        /// The popped message.
        pkt: Packet,
    },
    /// A timer set via `Ctx::set_timer` or `Ctx::compute` expired.
    Timer {
        /// The client the timer was set for.
        client: ClientKind,
        /// Application-defined tag.
        tag: u64,
    },
}

/// In-order reassembly channel for one source client (runtime fault
/// recovery only): rerouted packets can overtake on disjoint paths, so
/// the destination applies them in sequence order, parking early
/// arrivals.
#[derive(Debug, Default)]
struct InOrderChannel {
    /// Next sequence number to apply.
    next: u64,
    /// Packets that arrived ahead of `next`, keyed by sequence.
    held: BTreeMap<u64, Packet>,
}

/// Per-client simulated state.
#[derive(Debug, Default)]
struct ClientState {
    mem: LocalMemory,
    accum: AccumMemory,
    counters: SyncCounters,
    fifo: Option<MsgFifo<Packet>>,
    /// Pending accumulation-counter watch fire times are handled inline;
    /// nothing else needed per client.
    fifo_service_pending: bool,
    /// Per-source-node counter mapping for COUNTER_BY_SOURCE packets
    /// (the HTIS buffer table).
    source_counters: HashMap<anton_topo::NodeId, CounterId>,
    /// `(source node, uid)` pairs already applied — the counted-write
    /// duplicate check of the recovery protocol (at-least-once
    /// transport, exactly-once effect). Only populated when recovery is
    /// enabled.
    seen: HashSet<(NodeId, u64)>,
    /// In-order reassembly channels, keyed by source client (recovery
    /// runs only).
    inorder: HashMap<ClientAddr, InOrderChannel>,
}

/// Aggregate traffic statistics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct NetStats {
    /// Packets injected by clients (a multicast counts once).
    pub packets_sent: u64,
    /// Deliveries into client memories (a multicast counts per member).
    pub packets_delivered: u64,
    /// Total payload bytes delivered.
    pub payload_bytes_delivered: u64,
    /// Individual link-direction occupations.
    pub link_traversals: u64,
    /// Per-node packets sent / delivered (for the paper's "over 250
    /// messages sent and over 500 received per node per time step").
    pub sent_by_node: Vec<u64>,
    /// Per-node delivery counts.
    pub delivered_by_node: Vec<u64>,
    /// Transient drops injected by the fault plan (recovered by
    /// retransmission unless the budget ran out).
    pub faults_dropped: u64,
    /// Transient corruptions injected (caught by the link CRC and
    /// nacked).
    pub faults_corrupted: u64,
    /// Link-layer retransmissions performed (the retransmit-budget
    /// spend).
    pub retransmits: u64,
    /// Traversals that exhausted the retransmit budget; their packets are
    /// lost.
    pub retry_budget_exhausted: u64,
    /// Packets dropped at injection because no surviving route existed.
    pub packets_unreachable: u64,
    /// Packets lost in flight (dead link mid-route or budget exhaustion).
    pub packets_lost: u64,
    /// Packets discarded or degraded at delivery (bad accumulation
    /// payload, FIFO to a FIFO-less client, missing source-counter
    /// mapping, end-to-end CRC mismatch).
    pub delivery_errors: u64,
}

impl NetStats {
    /// Per-counter delta `self − baseline`: what this phase added on top
    /// of a snapshot taken earlier in the same run. Counters are
    /// cumulative and monotone within one fabric, so a later snapshot
    /// minus an earlier one is exact; per-node vectors shorter in the
    /// baseline are treated as zeros (a fabric never shrinks).
    ///
    /// Saturation semantics: if a counter in `self` is *smaller* than
    /// in `baseline` — the counter was reset between the snapshots
    /// (fresh per-step fabric, restarted run) — the delta saturates to
    /// zero instead of panicking or wrapping. A reset makes the true
    /// delta unknowable from the two snapshots alone; zero is the
    /// conservative reading ("nothing attributable to this phase"),
    /// and callers that need exact per-phase deltas across fabric
    /// boundaries should snapshot per fabric and [`NetStats::merge`]
    /// instead.
    pub fn diff(&self, baseline: &NetStats) -> NetStats {
        let sub = |a: u64, b: u64| a.saturating_sub(b);
        let sub_vec = |a: &[u64], b: &[u64]| {
            a.iter()
                .enumerate()
                .map(|(i, &v)| sub(v, b.get(i).copied().unwrap_or(0)))
                .collect()
        };
        NetStats {
            packets_sent: sub(self.packets_sent, baseline.packets_sent),
            packets_delivered: sub(self.packets_delivered, baseline.packets_delivered),
            payload_bytes_delivered: sub(
                self.payload_bytes_delivered,
                baseline.payload_bytes_delivered,
            ),
            link_traversals: sub(self.link_traversals, baseline.link_traversals),
            sent_by_node: sub_vec(&self.sent_by_node, &baseline.sent_by_node),
            delivered_by_node: sub_vec(&self.delivered_by_node, &baseline.delivered_by_node),
            faults_dropped: sub(self.faults_dropped, baseline.faults_dropped),
            faults_corrupted: sub(self.faults_corrupted, baseline.faults_corrupted),
            retransmits: sub(self.retransmits, baseline.retransmits),
            retry_budget_exhausted: sub(
                self.retry_budget_exhausted,
                baseline.retry_budget_exhausted,
            ),
            packets_unreachable: sub(self.packets_unreachable, baseline.packets_unreachable),
            packets_lost: sub(self.packets_lost, baseline.packets_lost),
            delivery_errors: sub(self.delivery_errors, baseline.delivery_errors),
        }
    }

    /// Fold another stats block into this one (accumulating totals
    /// across the per-step fabrics of a multi-step run). Per-node
    /// vectors grow to the longer of the two.
    pub fn merge(&mut self, other: &NetStats) {
        self.packets_sent += other.packets_sent;
        self.packets_delivered += other.packets_delivered;
        self.payload_bytes_delivered += other.payload_bytes_delivered;
        self.link_traversals += other.link_traversals;
        if self.sent_by_node.len() < other.sent_by_node.len() {
            self.sent_by_node.resize(other.sent_by_node.len(), 0);
        }
        for (s, o) in self.sent_by_node.iter_mut().zip(&other.sent_by_node) {
            *s += o;
        }
        if self.delivered_by_node.len() < other.delivered_by_node.len() {
            self.delivered_by_node
                .resize(other.delivered_by_node.len(), 0);
        }
        for (s, o) in self
            .delivered_by_node
            .iter_mut()
            .zip(&other.delivered_by_node)
        {
            *s += o;
        }
        self.faults_dropped += other.faults_dropped;
        self.faults_corrupted += other.faults_corrupted;
        self.retransmits += other.retransmits;
        self.retry_budget_exhausted += other.retry_budget_exhausted;
        self.packets_unreachable += other.packets_unreachable;
        self.packets_lost += other.packets_lost;
        self.delivery_errors += other.delivery_errors;
    }

    /// Publish every counter into a metrics registry under `net.*`
    /// (per-node vectors export as machine-wide max/total, not one
    /// metric per node).
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        reg.set_counter("net.packets_sent", self.packets_sent);
        reg.set_counter("net.packets_delivered", self.packets_delivered);
        reg.set_counter("net.payload_bytes_delivered", self.payload_bytes_delivered);
        reg.set_counter("net.link_traversals", self.link_traversals);
        reg.set_counter("net.faults_dropped", self.faults_dropped);
        reg.set_counter("net.faults_corrupted", self.faults_corrupted);
        reg.set_counter("net.retransmits", self.retransmits);
        reg.set_counter("net.retry_budget_exhausted", self.retry_budget_exhausted);
        reg.set_counter("net.packets_unreachable", self.packets_unreachable);
        reg.set_counter("net.packets_lost", self.packets_lost);
        reg.set_counter("net.delivery_errors", self.delivery_errors);
        reg.set_gauge(
            "net.max_sent_by_node",
            self.sent_by_node.iter().copied().max().unwrap_or(0) as f64,
        );
        reg.set_gauge(
            "net.max_delivered_by_node",
            self.delivered_by_node.iter().copied().max().unwrap_or(0) as f64,
        );
    }
}

/// The simulated communication fabric of one Anton machine.
pub struct Fabric {
    dims: TorusDims,
    timing: Timing,
    /// The fault-injection plan in force ([`FaultPlan::none`] by default).
    fault: FaultPlan,
    /// Link-layer transmission sequence number per unidirectional link
    /// (advanced per attempt; feeds the deterministic fault decisions).
    link_tx_seq: Vec<u64>,
    /// Permanent death time per unidirectional link, from the plan.
    link_dead_at: Vec<Option<SimTime>>,
    /// Mask of links whose permanent failure has already struck, used to
    /// route around them. `None` when the plan has no permanent failures
    /// (the routing fast path).
    route_mask: Option<LinkMask>,
    /// Permanent failures not yet applied to `route_mask`, sorted by
    /// activation time descending (pop from the back as time advances).
    pending_deaths: Vec<(SimTime, usize)>,
    /// Recoverable errors, capped at [`ERROR_LOG_CAP`].
    errors: Vec<FabricError>,
    /// Expired watchdog deadlines (see [`crate::world::Ctx::watch_counter_deadline`]).
    watchdog_reports: Vec<WatchdogReport>,
    /// Busy-until per unidirectional link, indexed `node*6 + link`.
    link_busy: Vec<SimTime>,
    /// Busy-until per client injection port, indexed `node*7 + client`.
    inject_busy: Vec<SimTime>,
    /// Busy-until per slice Tensilica core, indexed `node*7 + client`
    /// (only slice entries are used).
    core_busy: Vec<SimTime>,
    /// Per-node, per-pattern multicast forwarding tables.
    patterns: Vec<HashMap<PatternId, NodePatternEntry>>,
    clients: Vec<ClientState>,
    /// Aggregate traffic statistics.
    pub stats: NetStats,
    /// Activity tracer (tracks 0–5 are the six link directions).
    pub tracer: Tracer,
    /// Label applied to link-activity intervals; set via
    /// [`crate::world::Ctx::set_phase`].
    current_label: u16,
    /// Packet-lifecycle recorder. `None` (the default) skips every hook
    /// behind a single branch — instrumentation is zero-cost when
    /// disabled, which the microbench guard verifies. `Send` so a fabric
    /// can live inside a parallel-DES shard.
    recorder: Option<Box<dyn Recorder + Send>>,
    /// Next flight-recorder packet id, assigned densely in injection
    /// order (deterministic, so ids are stable across identical runs).
    next_uid: u64,
    /// When set, packet uids are scoped per source node
    /// (`node_index << 40 | per-node counter`) instead of drawn from the
    /// global dense counter. The parallel simulation enables this: each
    /// shard only observes its own nodes' sends, so a global counter
    /// would diverge between shardings — node-scoped ids depend only on
    /// the sending node's own deterministic history. Plain sequential
    /// runs keep the dense ids (sampling `every`-th packet and existing
    /// traces rely on them).
    uid_node_scoped: bool,
    /// Per-node uid counters for the node-scoped mode.
    next_uid_by_node: Vec<u64>,
    /// Runtime fault-recovery policy ([`RecoveryConfig::disabled`] by
    /// default, which keeps every path bit-identical to the
    /// pre-recovery fabric).
    recovery: RecoveryConfig,
    /// Recovery counters, kept separate from [`NetStats`] so the
    /// determinism fingerprints of recovery-disabled runs are unchanged.
    recovery_stats: RecoveryStats,
    /// Per-node bitmask (bit = `LinkDir::index`) of *this node's own*
    /// outgoing links condemned by a failure detector. Strictly
    /// node-local knowledge: a verdict is produced only by events at the
    /// owning node and consulted only when routing at that node, which
    /// is what keeps sequential and sharded-parallel runs bit-identical
    /// (a shard never observes another shard's verdicts, and neither do
    /// we).
    detected_links: Vec<u8>,
    /// Failure-detector verdicts in detection order (diagnosis; also
    /// surfaced as flight-recorder events).
    verdicts: Vec<FailureVerdict>,
    /// Per-(source client, destination client) next in-order sequence
    /// number, assigned at injection (recovery runs only).
    order_tx_seq: HashMap<(ClientAddr, ClientAddr), u64>,
}

#[derive(Debug, Clone, Default)]
struct NodePatternEntry {
    forward: Vec<LinkDir>,
    deliver: bool,
}

fn client_index(node: NodeId, client: ClientKind) -> usize {
    node.index() * 7 + client.index()
}

/// Why a link traversal failed (the caller turns this into either the
/// pre-recovery loss bookkeeping or the runtime-recovery path).
#[derive(Debug, Clone, Copy)]
enum LinkFail {
    /// The link was permanently dead when the attempt would have
    /// started.
    Dead {
        /// When the (blocked) attempt would have started.
        at: SimTime,
    },
    /// The retransmit budget exhausted.
    Budget {
        /// Start of the final failed attempt.
        start: SimTime,
        /// End of the final failed attempt's wire time (= when the
        /// sender gives up; the retry-budget detector's verdict time).
        end: SimTime,
        /// Total attempts made.
        attempts: u32,
        /// Ack ambiguity: the final attempt's data crossed and only the
        /// ack was lost (seeded draw; always false without recovery).
        crossed: bool,
    },
}

impl Fabric {
    /// Build a fabric for the given machine size with default timing.
    pub fn new(dims: TorusDims) -> Fabric {
        Fabric::with_timing(dims, Timing::default())
    }

    /// Build with explicit timing (ablations perturb constants).
    pub fn with_timing(dims: TorusDims, timing: Timing) -> Fabric {
        Fabric::with_faults(dims, timing, FaultPlan::none())
    }

    /// Build with explicit timing and a fault-injection plan.
    pub fn with_faults(dims: TorusDims, timing: Timing, fault: FaultPlan) -> Fabric {
        Fabric::with_recovery(dims, timing, fault, RecoveryConfig::disabled())
    }

    /// Build with explicit timing, a fault-injection plan, and a runtime
    /// fault-recovery policy (DESIGN.md §12).
    pub fn with_recovery(
        dims: TorusDims,
        timing: Timing,
        fault: FaultPlan,
        recovery: RecoveryConfig,
    ) -> Fabric {
        let n = dims.node_count() as usize;
        let mut clients: Vec<ClientState> = Vec::with_capacity(n * 7);
        for _ in 0..n {
            for kind in ClientKind::ALL {
                let mut st = ClientState::default();
                if matches!(kind, ClientKind::Slice(_)) {
                    st.fifo = Some(MsgFifo::new(FIFO_CAPACITY));
                }
                clients.push(st);
            }
        }
        let mut tracer = Tracer::disabled();
        for (i, l) in LinkDir::ALL.iter().enumerate() {
            tracer.name_track(TrackId(i as u16), format!("{l} links"));
        }
        let link_dead_at = fault.link_death_times(dims);
        let (route_mask, pending_deaths) = if fault.has_permanent() {
            let mut mask = LinkMask::none(dims);
            let mut pending: Vec<(SimTime, usize)> = Vec::new();
            for (idx, t) in link_dead_at.iter().enumerate() {
                if let Some(t) = t {
                    if *t == SimTime::ZERO {
                        let node = NodeId((idx / 6) as u32).coord(dims);
                        mask.kill_link(node, LinkDir::from_index(idx % 6));
                    } else {
                        pending.push((*t, idx));
                    }
                }
            }
            pending.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)));
            (Some(mask), pending)
        } else {
            (None, Vec::new())
        };
        Fabric {
            dims,
            timing,
            fault,
            link_tx_seq: vec![0; n * 6],
            link_dead_at,
            route_mask,
            pending_deaths,
            errors: Vec::new(),
            watchdog_reports: Vec::new(),
            link_busy: vec![SimTime::ZERO; n * 6],
            inject_busy: vec![SimTime::ZERO; n * 7],
            core_busy: vec![SimTime::ZERO; n * 7],
            patterns: vec![HashMap::new(); n],
            clients,
            stats: NetStats {
                sent_by_node: vec![0; n],
                delivered_by_node: vec![0; n],
                ..Default::default()
            },
            tracer,
            current_label: 0,
            recorder: None,
            next_uid: 0,
            uid_node_scoped: false,
            next_uid_by_node: Vec::new(),
            recovery,
            recovery_stats: RecoveryStats::default(),
            detected_links: vec![0; n],
            verdicts: Vec::new(),
            order_tx_seq: HashMap::new(),
        }
    }

    /// The runtime fault-recovery policy in force.
    pub fn recovery_config(&self) -> &RecoveryConfig {
        &self.recovery
    }

    /// Recovery-subsystem counters (all zero unless recovery is
    /// enabled).
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery_stats
    }

    /// Failure-detector verdicts issued so far, in detection order.
    pub fn verdicts(&self) -> &[FailureVerdict] {
        &self.verdicts
    }

    /// Switch packet-uid assignment to node-scoped ids
    /// (`node_index << 40 | counter`). Used by the parallel simulation,
    /// where uids must be derivable from per-node history alone; call
    /// before any packet is sent.
    pub fn enable_node_scoped_uids(&mut self) {
        assert_eq!(
            self.next_uid, 0,
            "uid mode must be chosen before the first send"
        );
        self.uid_node_scoped = true;
        self.next_uid_by_node = vec![0; self.dims.node_count() as usize];
    }

    /// Enable activity tracing (disabled by default; costs memory).
    pub fn enable_tracing(&mut self) {
        let mut tracer = Tracer::enabled();
        let units = self.dims.node_count() as u64;
        for (i, l) in LinkDir::ALL.iter().enumerate() {
            tracer.name_track(TrackId(i as u16), format!("{l} links"));
            tracer.set_track_units(TrackId(i as u16), units);
        }
        self.tracer = tracer;
    }

    /// Install an arbitrary packet-lifecycle recorder. Replaces any
    /// recorder already installed.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder + Send>) {
        self.recorder = Some(recorder);
    }

    /// Remove the installed recorder, restoring the zero-cost path.
    pub fn clear_recorder(&mut self) {
        self.recorder = None;
    }

    /// Whether a recorder is installed.
    pub fn has_recorder(&self) -> bool {
        self.recorder.is_some()
    }

    /// Install a fresh [`FlightRecorder`] and return the shared handle:
    /// the fabric feeds it during the run, the caller reads the events
    /// afterwards through the same handle.
    pub fn attach_flight_recorder(&mut self) -> SharedFlightRecorder {
        self.attach_flight_recorder_with(FlightRecorder::new())
    }

    /// Like [`Fabric::attach_flight_recorder`] but with a caller-built
    /// recorder (ring-buffered, sampled, …).
    pub fn attach_flight_recorder_with(&mut self, rec: FlightRecorder) -> SharedFlightRecorder {
        let shared = rec.into_shared();
        self.recorder = Some(Box::new(shared.clone()));
        shared
    }

    /// Install a [`FlightRecorder`] the fabric itself owns: every hook
    /// call is a direct push with no `Arc<Mutex<…>>` round trip, so
    /// per-shard recording in parallel runs stays lock-free. Read the
    /// captured events back through [`Fabric::flight_recorder`].
    pub fn attach_owned_flight_recorder(&mut self) {
        self.attach_owned_flight_recorder_with(FlightRecorder::new());
    }

    /// Like [`Fabric::attach_owned_flight_recorder`] but with a
    /// caller-built recorder (ring-buffered, sampled, …).
    pub fn attach_owned_flight_recorder_with(&mut self, rec: FlightRecorder) {
        self.recorder = Some(Box::new(rec));
    }

    /// The installed recorder's [`FlightRecorder`] view, when the
    /// recorder owns one (owned recorders report themselves; shared
    /// mutex handles do not — keep their handle instead).
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_deref().and_then(|r| r.as_flight())
    }

    /// Install a bounded-memory [`StreamObserver`] as the fabric's
    /// recorder. Unlike flight recording, delivered packets are folded
    /// into streaming sketches on the fly and their events dropped, so
    /// observability memory stays O(nodes + links) at any scale.
    pub fn attach_stream_observer(&mut self, cfg: StreamConfig) {
        self.recorder = Some(Box::new(StreamObserver::new(cfg)));
    }

    /// The installed recorder's [`StreamObserver`] view, when the
    /// recorder is one.
    pub fn stream_observer(&self) -> Option<&StreamObserver> {
        self.recorder.as_deref().and_then(|r| r.as_stream())
    }

    /// Snapshot of the stream observer's summary, when one is
    /// installed. The snapshot is mergeable across shards; callers
    /// owning the final copy should [`StreamSummary::finalize`] it to
    /// classify still-open packet lifecycles.
    pub fn stream_summary(&self) -> Option<StreamSummary> {
        self.stream_observer().map(|o| o.summary())
    }

    /// Machine dimensions.
    pub fn dims(&self) -> TorusDims {
        self.dims
    }

    /// The timing model in force.
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Install a multicast pattern under `id` (the same id on every node
    /// the tree touches, as the hardware tables work). Panics if any node
    /// would exceed the 256-pattern hardware limit or the id is taken.
    pub fn register_pattern(&mut self, id: PatternId, pattern: &MulticastPattern) {
        assert_eq!(pattern.dims(), self.dims, "pattern built for other dims");
        for (node, entry) in pattern.entries() {
            let table = &mut self.patterns[node.index()];
            assert!(
                !table.contains_key(&id),
                "pattern id {} already registered on node {}",
                id.0,
                node.0
            );
            assert!(
                table.len() < anton_topo::MAX_PATTERNS_PER_NODE,
                "node {} exceeds 256 multicast patterns",
                node.0
            );
            table.insert(
                id,
                NodePatternEntry {
                    forward: entry.forward.clone(),
                    deliver: entry.deliver,
                },
            );
        }
    }

    /// Remove a pattern everywhere (bond-program regeneration reprograms
    /// tables between epochs).
    pub fn unregister_pattern(&mut self, id: PatternId) {
        for table in &mut self.patterns {
            table.remove(&id);
        }
    }

    /// Reserve a unidirectional link for one traversal, folding in the
    /// link-layer reliability protocol: every attempt the fault plan
    /// drops or corrupts charges the link for its wasted wire time plus
    /// the recovery delay (ack timeout with exponential backoff for
    /// silent drops, nack turnaround for CRC-caught corruption). Returns
    /// the start time of the successful attempt, or a [`LinkFail`]
    /// describing why the traversal failed (dead link, or retransmit
    /// budget exhausted) — the caller decides between counting the
    /// packet lost (the pre-recovery behavior, via
    /// [`Fabric::record_link_loss`]) and the runtime-recovery path. With
    /// [`FaultPlan::none`] no draws happen and the timing is identical to
    /// a fabric without the fault layer.
    fn reserve_link(
        &mut self,
        uid: u64,
        node: NodeId,
        link: LinkDir,
        ready: SimTime,
        payload_bytes: u32,
    ) -> Result<SimTime, LinkFail> {
        let idx = node.index() * 6 + link.index();
        let dead_at = self.link_dead_at[idx];
        let occ = self.timing.link_occupancy(payload_bytes);
        let mut start = ready.max(self.link_busy[idx]);
        if matches!(dead_at, Some(d) if start >= d) {
            return Err(LinkFail::Dead { at: start });
        }
        if self.fault.has_transients() {
            let retry = self.fault.retry;
            let mut failed: u32 = 0;
            loop {
                let seq = self.link_tx_seq[idx];
                self.link_tx_seq[idx] += 1;
                let Some(f) = self.fault.transient_fault(idx, seq) else {
                    break;
                };
                let penalty = match f {
                    TransientFault::Drop => {
                        self.stats.faults_dropped += 1;
                        retry.drop_penalty(failed)
                    }
                    TransientFault::Corrupt => {
                        self.stats.faults_corrupted += 1;
                        retry.nack_penalty()
                    }
                };
                if failed >= retry.max_retries {
                    // Budget exhausted: the wire time of the failed
                    // attempts still occupied the link.
                    self.link_busy[idx] = start + occ;
                    self.stats.retry_budget_exhausted += 1;
                    // Ack ambiguity (recovery only): did the final
                    // attempt's data cross with just the ack lost? A
                    // pure seeded draw — false whenever recovery is off.
                    let crossed = self.recovery.final_attempt_crossed(idx as u64, uid);
                    return Err(LinkFail::Budget {
                        start,
                        end: start + occ,
                        attempts: failed + 1,
                        crossed,
                    });
                }
                self.stats.retransmits += 1;
                if let Some(rec) = self.recorder.as_mut() {
                    rec.on_retransmit(PacketId(uid), node, link, failed + 1, start);
                }
                start = start + occ + penalty;
                failed += 1;
                if let Some(d) = dead_at {
                    if start >= d {
                        // The link died mid-retransmit-sequence.
                        self.link_busy[idx] = d;
                        return Err(LinkFail::Dead { at: start });
                    }
                }
            }
        }
        self.link_busy[idx] = start + occ;
        self.stats.link_traversals += 1;
        if self.tracer.is_enabled() {
            self.tracer.record(
                TrackId(link.index() as u16),
                Activity::Busy,
                start,
                start + occ,
                self.current_label,
            );
        }
        if let Some(rec) = self.recorder.as_mut() {
            rec.on_link_reserve(PacketId(uid), node, link, ready, start, start + occ);
        }
        Ok(start)
    }

    /// Record a failed traversal as a packet loss — exactly the
    /// pre-recovery bookkeeping. Multicast branches always take this
    /// path (hardware pattern tables do not reroute); unicast packets
    /// take it when recovery is disabled or the re-injection budget is
    /// spent.
    fn record_link_loss(&mut self, node: NodeId, link: LinkDir, fail: &LinkFail) {
        match *fail {
            LinkFail::Dead { .. } => {
                self.record_error(FabricError::DeadLink { node, link });
            }
            LinkFail::Budget { attempts, .. } => {
                self.record_error(FabricError::RetryBudgetExhausted {
                    node,
                    link,
                    attempts,
                });
            }
        }
        self.stats.packets_lost += 1;
    }

    /// Failure detection: promote a failed traversal to a `LinkDown`
    /// verdict. Retransmit-budget exhaustion is its own evidence (the
    /// protocol gave up at a known time); a silently dead link is
    /// noticed by the heartbeat/idle deadline after the attempt started.
    fn detect(&self, fail: &LinkFail) -> (VerdictCause, SimTime) {
        match *fail {
            LinkFail::Dead { at } => (
                VerdictCause::Heartbeat,
                at + SimDuration::from_ns_f64(self.recovery.heartbeat_timeout_ns),
            ),
            LinkFail::Budget { end, .. } => (VerdictCause::RetryBudget, end),
        }
    }

    /// Issue a `LinkDown` verdict for `node`'s outgoing `link` (idempotent
    /// per link); when it is the node's sixth condemned link, escalate to
    /// a `NodeDown` verdict.
    fn record_verdict(&mut self, node: NodeId, link: LinkDir, cause: VerdictCause, at: SimTime) {
        let bit = 1u8 << link.index();
        let det = &mut self.detected_links[node.index()];
        if *det & bit != 0 {
            return;
        }
        *det |= bit;
        let all_down = *det == 0b0011_1111;
        self.recovery_stats.link_verdicts += 1;
        self.verdicts.push(FailureVerdict {
            node,
            link: Some(link),
            cause,
            at,
        });
        if let Some(rec) = self.recorder.as_mut() {
            rec.on_link_down(node, link, cause, at);
        }
        if all_down {
            self.recovery_stats.node_verdicts += 1;
            self.verdicts.push(FailureVerdict {
                node,
                link: None,
                cause,
                at,
            });
            if let Some(rec) = self.recorder.as_mut() {
                rec.on_node_down(node, at);
            }
        }
    }

    /// The routing mask as seen *from `node`*: the globally-known plan
    /// mask (replica-identical by construction) plus this node's own
    /// detected links. `LinkMask` is updated incrementally — the plan
    /// mask is cloned and at most six `kill_link` calls are applied, not
    /// rebuilt from the fault plan.
    fn local_mask(&self, node: NodeId) -> LinkMask {
        let mut mask = match &self.route_mask {
            Some(m) => m.clone(),
            None => LinkMask::none(self.dims),
        };
        let det = self.detected_links[node.index()];
        if det != 0 {
            let coord = node.coord(self.dims);
            for l in LinkDir::ALL {
                if det & (1 << l.index()) != 0 {
                    mask.kill_link(coord, l);
                }
            }
        }
        mask
    }

    /// A multicast branch failed its traversal: issue the detector
    /// verdict (when recovery is on) but always count the subtree lost —
    /// multicast trees are burned into hardware tables and do not
    /// reroute.
    fn link_failed_multicast(&mut self, node: NodeId, link: LinkDir, fail: &LinkFail) {
        if self.recovery.enabled {
            let (cause, at) = self.detect(fail);
            self.record_verdict(node, link, cause, at);
        }
        self.record_link_loss(node, link, fail);
    }

    /// A unicast packet failed its traversal at `node`. Without recovery
    /// this is exactly the pre-recovery loss; with recovery the fabric
    /// issues the detector verdict, forks the ack-ambiguity duplicate
    /// when the final attempt's data crossed, and re-injects the
    /// stranded packet after a seeded exponential backoff until its
    /// budget runs out.
    fn link_failed_unicast(
        &mut self,
        mut pkt: Packet,
        node: NodeId,
        link: LinkDir,
        fail: LinkFail,
        sched: &mut Scheduler<Ev>,
    ) {
        if !self.recovery.enabled {
            self.record_link_loss(node, link, &fail);
            return;
        }
        let (cause, detect_at) = self.detect(&fail);
        self.record_verdict(node, link, cause, detect_at);

        if let LinkFail::Budget {
            start,
            crossed: true,
            ..
        } = fail
        {
            // The data crossed; only the ack was lost. The duplicate
            // continues downstream on the normal timeline and the
            // counted-write check suppresses whichever copy arrives
            // second. Same arrival arithmetic as a successful traversal,
            // so the conservative cross-shard lookahead bound holds.
            self.recovery_stats.duplicate_forks += 1;
            let next = node
                .coord(self.dims)
                .step(link, self.dims)
                .node_id(self.dims);
            sched.at(
                start + self.timing.link_head(),
                Ev::HopArrive {
                    pkt: pkt.clone(),
                    node: next,
                    in_dim: link.dim,
                },
            );
        }

        if pkt.reinjects >= self.recovery.max_reinjects {
            self.record_link_loss(node, link, &fail);
            self.recovery_stats.packets_lost_unrecovered += 1;
            return;
        }
        pkt.reinjects += 1;
        pkt.route = None; // recomputed around the verdict at re-injection
        let attempt = pkt.reinjects;
        let when = detect_at + self.recovery.backoff_delay(pkt.uid, attempt);
        self.recovery_stats.reinjections += 1;
        if let Some(rec) = self.recorder.as_mut() {
            rec.on_reinject(PacketId(pkt.uid), node, attempt, when);
        }
        sched.at(when, Ev::Reinject { pkt, node });
    }

    /// Handle [`Ev::Reinject`]: a stranded packet re-enters the network
    /// at `node` with a route recomputed from the plan mask plus this
    /// node's own verdicts.
    pub fn reinject(
        &mut self,
        mut pkt: Packet,
        node: NodeId,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        self.advance_deaths(now);
        let Destination::Unicast(dst) = pkt.dest else {
            return; // multicast never re-injects
        };
        if dst.node == node {
            let done =
                now + self.timing.recv_overhead() + self.timing.payload_tail(pkt.payload_bytes);
            sched.at(
                done,
                Ev::Deliver {
                    node,
                    client: dst.client,
                    pkt,
                },
            );
            return;
        }
        let cur = node.coord(self.dims);
        let dst_c = dst.node.coord(self.dims);
        let det = self.detected_links[node.index()];
        let plan_dead = self.route_mask.as_ref().is_some_and(|m| m.any_dead());
        let link = if det != 0 || plan_dead {
            let mask = self.local_mask(node);
            match Route::compute_avoiding(cur, dst_c, self.dims, &mask) {
                Ok(route) => {
                    let steps = route.steps().to_vec();
                    let first = steps[0];
                    pkt.route = Some(SourceRoute {
                        steps: Arc::new(steps),
                        next: 1,
                    });
                    first
                }
                Err(_) => {
                    // No surviving route from here with local knowledge.
                    self.stats.packets_lost += 1;
                    self.record_error(FabricError::NoRoute {
                        node,
                        dst: dst.node,
                    });
                    self.recovery_stats.packets_lost_unrecovered += 1;
                    return;
                }
            }
        } else {
            match Route::next_link_from(cur, dst_c, self.dims) {
                Some(l) => l,
                None => {
                    self.stats.packets_lost += 1;
                    self.record_error(FabricError::NoRoute {
                        node,
                        dst: dst.node,
                    });
                    self.recovery_stats.packets_lost_unrecovered += 1;
                    return;
                }
            }
        };
        // The re-entering packet is buffered in the node's receive
        // adapter: charge one router transit before it is wire-ready
        // (which also keeps the downstream hop arrival outside the
        // conservative cross-shard lookahead window).
        let ready = now + self.timing.transit_ring(link.dim, link.dim);
        match self.reserve_link(pkt.uid, node, link, ready, pkt.payload_bytes) {
            Ok(start) => {
                if let Some(rec) = self.recorder.as_mut() {
                    rec.on_hop_exit(PacketId(pkt.uid), node, start);
                }
                let next = cur.step(link, self.dims).node_id(self.dims);
                sched.at(
                    start + self.timing.link_head(),
                    Ev::HopArrive {
                        pkt,
                        node: next,
                        in_dim: link.dim,
                    },
                );
            }
            Err(fail) => self.link_failed_unicast(pkt, node, link, fail, sched),
        }
    }

    /// Apply permanent failures whose activation time has passed to the
    /// routing mask (no-op unless the plan schedules any).
    fn advance_deaths(&mut self, now: SimTime) {
        while let Some(&(t, idx)) = self.pending_deaths.last() {
            if t > now {
                break;
            }
            self.pending_deaths.pop();
            if let Some(mask) = &mut self.route_mask {
                let node = NodeId((idx / 6) as u32).coord(self.dims);
                mask.kill_link(node, LinkDir::from_index(idx % 6));
            }
        }
    }

    /// Log a recoverable error (capped at [`ERROR_LOG_CAP`]; the stats
    /// counters keep exact totals).
    fn record_error(&mut self, e: FabricError) {
        if self.errors.len() < ERROR_LOG_CAP {
            self.errors.push(e);
        }
    }

    /// Recoverable errors recorded so far (first [`ERROR_LOG_CAP`]).
    pub fn errors(&self) -> &[FabricError] {
        &self.errors
    }

    /// Expired watchdog deadlines recorded so far.
    pub fn watchdog_reports(&self) -> &[WatchdogReport] {
        &self.watchdog_reports
    }

    /// The fault plan in force.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// Send a packet. `now` is the time software issues the send. All
    /// downstream progress is scheduled on `sched`.
    pub fn send(&mut self, mut pkt: Packet, now: SimTime, sched: &mut Scheduler<Ev>) {
        assert!(pkt.src.client.can_send(), "client cannot send packets");
        self.advance_deaths(now);
        let src_node = pkt.src.node;
        pkt.uid = if self.uid_node_scoped {
            let c = &mut self.next_uid_by_node[src_node.index()];
            let uid = ((src_node.index() as u64) << 40) | *c;
            *c += 1;
            uid
        } else {
            let uid = self.next_uid;
            self.next_uid += 1;
            uid
        };
        self.stats.packets_sent += 1;
        self.stats.sent_by_node[src_node.index()] += 1;

        // Recovery: rerouted packets can overtake on disjoint paths, so
        // in-order traffic is sequenced at injection and reassembled at
        // the destination.
        if self.recovery.enabled && pkt.in_order {
            if let Destination::Unicast(dst) = pkt.dest {
                let seq = self.order_tx_seq.entry((pkt.src, dst)).or_insert(0);
                pkt.order_seq = Some(*seq);
                *seq += 1;
            }
        }

        // The sending Tensilica core is occupied briefly per send (the
        // full send_setup is pipeline latency, not occupancy).
        let ci = client_index(src_node, pkt.src.client);
        let t0 = if matches!(pkt.src.client, ClientKind::Slice(_)) {
            let t0 = now.max(self.core_busy[ci]);
            self.core_busy[ci] = t0 + SimDuration::from_ns_f64(self.timing.send_issue_ns);
            t0
        } else {
            now
        };

        // Injection-port serialization onto the on-chip ring.
        let inj_ready = t0 + SimDuration::from_ns_f64(self.timing.send_setup_ns);
        let inj_start = inj_ready.max(self.inject_busy[ci]);
        self.inject_busy[ci] = inj_start + self.timing.injection_occupancy(pkt.payload_bytes);

        match pkt.dest {
            Destination::Unicast(dst) => {
                if dst.node == src_node {
                    // Local client-to-client write over the ring only. The
                    // recorder sees all injection anchors collapsed to the
                    // issue time: a local trip never crosses the injection
                    // port, so the whole ring transit attributes to the
                    // delivery stage and stage sums still telescope.
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.on_inject(
                            PacketId(pkt.uid),
                            src_node,
                            pkt.src.client.index() as u8,
                            Some(dst.node),
                            now,
                            now,
                            now,
                            now,
                            pkt.payload_bytes,
                        );
                    }
                    let done = t0
                        + self.timing.local_latency()
                        + self.timing.payload_tail_onchip(pkt.payload_bytes);
                    sched.at(
                        done,
                        Ev::Deliver {
                            node: dst.node,
                            client: dst.client,
                            pkt,
                        },
                    );
                } else {
                    let src_c = src_node.coord(self.dims);
                    let dst_c = dst.node.coord(self.dims);
                    // When permanent failures are active, compute a full
                    // source route around the dead links at injection (a
                    // per-hop detour could livelock); otherwise keep the
                    // fault-free per-hop dimension-ordered decision.
                    // Runtime verdicts about *this node's own* links
                    // fold into the mask — strictly local knowledge, so
                    // sequential and sharded runs route identically.
                    let det = if self.recovery.enabled {
                        self.detected_links[src_node.index()]
                    } else {
                        0
                    };
                    let link = if det != 0 {
                        let mask = self.local_mask(src_node);
                        match Route::compute_avoiding(src_c, dst_c, self.dims, &mask) {
                            Ok(route) => {
                                let steps = route.steps().to_vec();
                                let first = steps[0];
                                pkt.route = Some(SourceRoute {
                                    steps: Arc::new(steps),
                                    next: 1,
                                });
                                first
                            }
                            Err(_) => {
                                self.stats.packets_unreachable += 1;
                                self.record_error(FabricError::Unreachable {
                                    src: src_node,
                                    dst: dst.node,
                                });
                                return;
                            }
                        }
                    } else {
                        match &self.route_mask {
                            Some(mask) if mask.any_dead() => {
                                match Route::compute_avoiding(src_c, dst_c, self.dims, mask) {
                                    Ok(route) => {
                                        let steps = route.steps().to_vec();
                                        let first = steps[0];
                                        pkt.route = Some(SourceRoute {
                                            steps: Arc::new(steps),
                                            next: 1,
                                        });
                                        first
                                    }
                                    Err(_) => {
                                        self.stats.packets_unreachable += 1;
                                        self.record_error(FabricError::Unreachable {
                                            src: src_node,
                                            dst: dst.node,
                                        });
                                        return;
                                    }
                                }
                            }
                            _ => match Route::next_link_from(src_c, dst_c, self.dims) {
                                Some(l) => l,
                                None => {
                                    self.stats.packets_unreachable += 1;
                                    self.record_error(FabricError::NoRoute {
                                        node: src_node,
                                        dst: dst.node,
                                    });
                                    return;
                                }
                            },
                        }
                    };
                    let ready = inj_start + SimDuration::from_ns_f64(self.timing.send_ring_ns);
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.on_inject(
                            PacketId(pkt.uid),
                            src_node,
                            pkt.src.client.index() as u8,
                            Some(dst.node),
                            now,
                            inj_ready,
                            inj_start,
                            ready,
                            pkt.payload_bytes,
                        );
                    }
                    let start = match self.reserve_link(
                        pkt.uid,
                        src_node,
                        link,
                        ready,
                        pkt.payload_bytes,
                    ) {
                        Ok(start) => start,
                        Err(fail) => {
                            // Lost at the first hop; with recovery this
                            // becomes a verdict + re-injection instead.
                            self.link_failed_unicast(pkt, src_node, link, fail, sched);
                            return;
                        }
                    };
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.on_hop_exit(PacketId(pkt.uid), src_node, start);
                    }
                    let next = src_c.step(link, self.dims).node_id(self.dims);
                    sched.at(
                        start + self.timing.link_head(),
                        Ev::HopArrive {
                            pkt,
                            node: next,
                            in_dim: link.dim,
                        },
                    );
                }
            }
            Destination::Multicast { pattern, client } => {
                // Multicast trees are burned into hardware tables and do
                // NOT reroute around failures: a dead branch silently
                // loses that subtree (reserve_link records the loss).
                let Some(entry) = self.patterns[src_node.index()].get(&pattern).cloned() else {
                    self.stats.packets_unreachable += 1;
                    self.record_error(FabricError::PatternUnknown {
                        pattern,
                        node: src_node,
                    });
                    return;
                };
                if entry.deliver {
                    let done = t0
                        + self.timing.local_latency()
                        + self.timing.payload_tail_onchip(pkt.payload_bytes);
                    sched.at(
                        done,
                        Ev::Deliver {
                            node: src_node,
                            client,
                            pkt: pkt.clone(),
                        },
                    );
                }
                let src_c = src_node.coord(self.dims);
                let ready = inj_start + SimDuration::from_ns_f64(self.timing.send_ring_ns);
                if let Some(rec) = self.recorder.as_mut() {
                    // Multicast: destination unknown at injection (`None`);
                    // the copies' deliveries all carry this packet's id.
                    rec.on_inject(
                        PacketId(pkt.uid),
                        src_node,
                        pkt.src.client.index() as u8,
                        None,
                        now,
                        inj_ready,
                        inj_start,
                        ready,
                        pkt.payload_bytes,
                    );
                }
                for l in entry.forward {
                    let start =
                        match self.reserve_link(pkt.uid, src_node, l, ready, pkt.payload_bytes) {
                            Ok(start) => start,
                            Err(fail) => {
                                // This branch's subtree is lost (the
                                // detector still learns from it).
                                self.link_failed_multicast(src_node, l, &fail);
                                continue;
                            }
                        };
                    let next = src_c.step(l, self.dims).node_id(self.dims);
                    sched.at(
                        start + self.timing.link_head(),
                        Ev::HopArrive {
                            pkt: pkt.clone(),
                            node: next,
                            in_dim: l.dim,
                        },
                    );
                }
            }
        }
    }

    /// Handle a packet head arriving at `node`.
    pub fn hop_arrive(
        &mut self,
        mut pkt: Packet,
        node: NodeId,
        in_dim: Dim,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.on_hop_enter(PacketId(pkt.uid), node, now);
        }
        match pkt.dest {
            Destination::Unicast(dst) => {
                if dst.node == node {
                    let done = now
                        + self.timing.recv_overhead()
                        + self.timing.payload_tail(pkt.payload_bytes);
                    sched.at(
                        done,
                        Ev::Deliver {
                            node,
                            client: dst.client,
                            pkt,
                        },
                    );
                } else {
                    let cur = node.coord(self.dims);
                    let dst_c = dst.node.coord(self.dims);
                    // Source-routed packets follow their precomputed
                    // detour; everything else routes per hop.
                    let link = if let Some(sr) = &mut pkt.route {
                        match sr.steps.get(sr.next as usize).copied() {
                            Some(l) => {
                                sr.next += 1;
                                l
                            }
                            None => {
                                // Route exhausted before reaching dst —
                                // only possible if tables changed
                                // mid-flight; count the packet lost.
                                self.stats.packets_lost += 1;
                                self.record_error(FabricError::NoRoute {
                                    node,
                                    dst: dst.node,
                                });
                                return;
                            }
                        }
                    } else if self.recovery.enabled && self.detected_links[node.index()] != 0 {
                        // This router has condemned some of its own
                        // links: detour around them from here (and pin
                        // the rest of the path so a later hop cannot
                        // route back into the detour).
                        let mask = self.local_mask(node);
                        match Route::compute_avoiding(cur, dst_c, self.dims, &mask) {
                            Ok(route) => {
                                let steps = route.steps().to_vec();
                                let first = steps[0];
                                pkt.route = Some(SourceRoute {
                                    steps: Arc::new(steps),
                                    next: 1,
                                });
                                first
                            }
                            Err(_) => {
                                self.stats.packets_lost += 1;
                                self.record_error(FabricError::NoRoute {
                                    node,
                                    dst: dst.node,
                                });
                                self.recovery_stats.packets_lost_unrecovered += 1;
                                return;
                            }
                        }
                    } else {
                        match Route::next_link_from(cur, dst_c, self.dims) {
                            Some(l) => l,
                            None => {
                                self.stats.packets_lost += 1;
                                self.record_error(FabricError::NoRoute {
                                    node,
                                    dst: dst.node,
                                });
                                return;
                            }
                        }
                    };
                    let ready = now + self.timing.transit_ring(in_dim, link.dim);
                    let start =
                        match self.reserve_link(pkt.uid, node, link, ready, pkt.payload_bytes) {
                            Ok(start) => start,
                            Err(fail) => {
                                // Stranded mid-flight; with recovery the
                                // packet re-injects from this hop.
                                self.link_failed_unicast(pkt, node, link, fail, sched);
                                return;
                            }
                        };
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.on_hop_exit(PacketId(pkt.uid), node, start);
                    }
                    let next = cur.step(link, self.dims).node_id(self.dims);
                    sched.at(
                        start + self.timing.link_head(),
                        Ev::HopArrive {
                            pkt,
                            node: next,
                            in_dim: link.dim,
                        },
                    );
                }
            }
            Destination::Multicast { pattern, client } => {
                let Some(entry) = self.patterns[node.index()].get(&pattern).cloned() else {
                    self.stats.packets_lost += 1;
                    self.record_error(FabricError::PatternUnknown { pattern, node });
                    return;
                };
                if entry.deliver {
                    let done = now
                        + self.timing.recv_overhead()
                        + self.timing.payload_tail(pkt.payload_bytes);
                    sched.at(
                        done,
                        Ev::Deliver {
                            node,
                            client,
                            pkt: pkt.clone(),
                        },
                    );
                }
                let cur = node.coord(self.dims);
                for l in entry.forward {
                    let ready = now + self.timing.transit_ring(in_dim, l.dim);
                    let start = match self.reserve_link(pkt.uid, node, l, ready, pkt.payload_bytes)
                    {
                        Ok(start) => start,
                        Err(fail) => {
                            // This branch's subtree is lost (the
                            // detector still learns from it).
                            self.link_failed_multicast(node, l, &fail);
                            continue;
                        }
                    };
                    let next = cur.step(l, self.dims).node_id(self.dims);
                    sched.at(
                        start + self.timing.link_head(),
                        Ev::HopArrive {
                            pkt: pkt.clone(),
                            node: next,
                            in_dim: l.dim,
                        },
                    );
                }
            }
        }
    }

    /// Apply a delivered packet to its target client. Returns the program
    /// events to dispatch (counter fires, FIFO service scheduling happens
    /// here too).
    pub fn deliver(
        &mut self,
        pkt: Packet,
        node: NodeId,
        client: ClientKind,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        // End-to-end payload integrity: the CRC computed at construction
        // must survive the trip. The link layer retransmits corrupted
        // packets, so a mismatch here means memory corruption beyond the
        // fault model — discard rather than apply bad data.
        if pkt.crc != fault::payload_crc(&pkt.payload) {
            self.stats.delivery_errors += 1;
            self.record_error(FabricError::CorruptDelivery { node, client });
            return;
        }
        if self.recovery.enabled {
            let ci = client_index(node, client);
            // Exactly-once effect over at-least-once transport: the
            // counted-write check drops any copy whose (source node,
            // uid) was already applied — the ack-ambiguity fork, or a
            // re-injected original whose first copy made it through.
            if !self.clients[ci].seen.insert((pkt.src.node, pkt.uid)) {
                self.recovery_stats.duplicates_suppressed += 1;
                if let Some(rec) = self.recorder.as_mut() {
                    rec.on_duplicate_suppressed(PacketId(pkt.uid), node, now);
                }
                return;
            }
            // In-order reassembly: a rerouted packet can overtake on a
            // disjoint path; apply strictly in injection sequence,
            // parking early arrivals until their predecessors land.
            if let (true, Some(seq)) = (pkt.in_order, pkt.order_seq) {
                let src = pkt.src;
                let chan = self.clients[ci].inorder.entry(src).or_default();
                if seq > chan.next {
                    self.recovery_stats.inorder_holds += 1;
                    chan.held.insert(seq, pkt);
                    return;
                }
                debug_assert_eq!(seq, chan.next, "duplicate below the seen check");
                chan.next += 1;
                self.apply_delivery(pkt, node, client, now, sched);
                // Drain consecutively-held successors at this instant.
                loop {
                    let chan = self.clients[ci]
                        .inorder
                        .get_mut(&src)
                        .expect("channel created above");
                    let next_seq = chan.next;
                    let Some(held) = chan.held.remove(&next_seq) else {
                        break;
                    };
                    chan.next += 1;
                    self.apply_delivery(held, node, client, now, sched);
                }
                return;
            }
        }
        self.apply_delivery(pkt, node, client, now, sched);
    }

    /// Apply a delivery that passed the CRC and (when recovery is
    /// enabled) the duplicate/ordering gates: bump the stats, mutate the
    /// client state, and fire counters. This is the entire pre-recovery
    /// delivery path, unchanged.
    fn apply_delivery(
        &mut self,
        pkt: Packet,
        node: NodeId,
        client: ClientKind,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        self.stats.packets_delivered += 1;
        self.stats.payload_bytes_delivered += pkt.payload_bytes as u64;
        self.stats.delivered_by_node[node.index()] += 1;
        if let Some(rec) = self.recorder.as_mut() {
            rec.on_deliver(PacketId(pkt.uid), node, client.index() as u8, now);
        }
        let ci = client_index(node, client);
        let counter = pkt.counter;
        let pkt_src = pkt.src.node;
        let uid = pkt.uid;
        match pkt.kind {
            PacketKind::Write => {
                self.clients[ci].mem.write(pkt.addr, pkt.payload);
            }
            PacketKind::Accumulate => {
                assert!(
                    matches!(client, ClientKind::Accum(_)),
                    "accumulate delivered to non-accumulation client"
                );
                match &pkt.payload {
                    Payload::I32s(vs) => self.clients[ci].accum.accumulate(pkt.addr, vs),
                    Payload::Empty => {}
                    _other => {
                        self.stats.delivery_errors += 1;
                        self.record_error(FabricError::BadAccumPayload { node, client });
                        return;
                    }
                }
            }
            PacketKind::Fifo => {
                let Some(fifo) = self.clients[ci].fifo.as_mut() else {
                    self.stats.delivery_errors += 1;
                    self.record_error(FabricError::FifoToNonSlice { node, client });
                    return;
                };
                fifo.push(pkt);
                if !self.clients[ci].fifo_service_pending {
                    self.clients[ci].fifo_service_pending = true;
                    sched.at(now, Ev::FifoService { node, client });
                }
                // FIFO messages never carry counters: synchronization of
                // FIFO traffic uses separate in-order counted writes
                // (§IV.B.5), and nothing in hardware bumps a counter on a
                // FIFO push.
                return;
            }
        }
        let counter = match counter {
            Some(c) if c == COUNTER_BY_SOURCE => {
                match self.clients[ci].source_counters.get(&pkt_src) {
                    Some(&mapped) => Some(mapped),
                    None => {
                        // The write landed, but no counter can be bumped:
                        // the program's buffer table is missing an entry.
                        // The resulting stall is the watchdog's to report.
                        self.stats.delivery_errors += 1;
                        self.record_error(FabricError::MissingSourceCounter { node, src: pkt_src });
                        None
                    }
                }
            }
            other => other,
        };
        if let Some(cid) = counter {
            let mut fire_at = None;
            if self.clients[ci].counters.increment(cid) {
                // A watch fired. Slices and the HTIS poll their own
                // counters locally (cost already inside deliver_poll);
                // accumulation-memory counters are polled by a slice
                // across the ring and see extra latency (§III.B).
                // A slice's poll only *succeeds* once its Tensilica core
                // is free — a core mid-send delays noticing the arrival,
                // which is why bidirectional ping-pong runs slightly
                // slower than unidirectional in Figure 5.
                let visible = if matches!(client, ClientKind::Slice(_)) {
                    now.max(self.core_busy[ci])
                } else {
                    now
                };
                let extra = if client.local_poll() {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_ns_f64(self.timing.accum_poll_extra_ns)
                };
                fire_at = Some(visible + extra);
                sched.at(
                    visible + extra,
                    Ev::Prog {
                        node,
                        pe: ProgEvent::CounterReached {
                            client,
                            counter: cid,
                        },
                    },
                );
            }
            if let Some(rec) = self.recorder.as_mut() {
                rec.on_counter_update(
                    PacketId(uid),
                    node,
                    client.index() as u8,
                    cid.0,
                    now,
                    fire_at,
                );
            }
        }
    }

    /// Service one FIFO message: when the Tensilica core is free, pop,
    /// charge the software cost, dispatch to the program, and re-arm if
    /// messages remain. The pop itself waits for the core — the hardware
    /// queue (and then network backpressure) absorbs bursts faster than
    /// software can drain (§III.C).
    pub fn fifo_service(
        &mut self,
        node: NodeId,
        client: ClientKind,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let ci = client_index(node, client);
        // The servicing Tensilica core is a serial resource: retry when
        // it frees up (fifo_service_pending stays set).
        let free = self.core_busy[ci];
        if free > now {
            sched.at(free, Ev::FifoService { node, client });
            return;
        }
        let done = now + SimDuration::from_ns_f64(self.timing.fifo_pop_ns);
        let fifo = self.clients[ci].fifo.as_mut().expect("slice has a FIFO");
        match fifo.pop() {
            Some(pkt) => {
                self.core_busy[ci] = done;
                let more = !fifo.is_empty();
                self.clients[ci].fifo_service_pending = more;
                sched.at(
                    done,
                    Ev::Prog {
                        node,
                        pe: ProgEvent::FifoMessage { client, pkt },
                    },
                );
                if more {
                    sched.at(done, Ev::FifoService { node, client });
                }
            }
            None => {
                self.clients[ci].fifo_service_pending = false;
            }
        }
    }

    // ----- client-state accessors used by node programs (via Ctx) -----

    /// Read a client's local memory cell.
    pub fn mem_read(&self, addr: ClientAddr, a: u64) -> Option<&Payload> {
        self.clients[client_index(addr.node, addr.client)]
            .mem
            .read(a)
    }

    /// Take (consume) a client's local memory cell.
    pub fn mem_take(&mut self, addr: ClientAddr, a: u64) -> Option<Payload> {
        self.clients[client_index(addr.node, addr.client)]
            .mem
            .take(a)
    }

    /// Write a client's local memory directly (software-local store, no
    /// network traffic).
    pub fn mem_write(&mut self, addr: ClientAddr, a: u64, p: Payload) {
        self.clients[client_index(addr.node, addr.client)]
            .mem
            .write(a, p);
    }

    /// Drain a range of a client's local memory.
    pub fn mem_drain_range(&mut self, addr: ClientAddr, lo: u64, hi: u64) -> Vec<(u64, Payload)> {
        self.clients[client_index(addr.node, addr.client)]
            .mem
            .drain_range(lo, hi)
    }

    /// Read `n` 4-byte words from an accumulation memory.
    pub fn accum_read(&self, addr: ClientAddr, a: u64, n: usize) -> Vec<i32> {
        assert!(matches!(addr.client, ClientKind::Accum(_)));
        self.clients[client_index(addr.node, addr.client)]
            .accum
            .read(a, n)
    }

    /// Zero `n` words of an accumulation memory.
    pub fn accum_clear(&mut self, addr: ClientAddr, a: u64, n: usize) {
        self.clients[client_index(addr.node, addr.client)]
            .accum
            .clear(a, n);
    }

    /// Current value of a synchronization counter.
    pub fn counter_read(&self, addr: ClientAddr, id: CounterId) -> u64 {
        self.clients[client_index(addr.node, addr.client)]
            .counters
            .read(id)
    }

    /// Reset a counter to zero.
    pub fn counter_reset(&mut self, addr: ClientAddr, id: CounterId) {
        self.clients[client_index(addr.node, addr.client)]
            .counters
            .reset(id);
    }

    /// Register a watch; if the target is already met, the `CounterReached`
    /// event fires immediately (plus the accumulation-poll penalty where
    /// applicable).
    pub fn counter_watch(
        &mut self,
        addr: ClientAddr,
        id: CounterId,
        target: u64,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let already = self.clients[client_index(addr.node, addr.client)]
            .counters
            .watch(id, target);
        if already {
            let extra = if addr.client.local_poll() {
                SimDuration::ZERO
            } else {
                SimDuration::from_ns_f64(self.timing.accum_poll_extra_ns)
            };
            sched.at(
                now + extra,
                Ev::Prog {
                    node: addr.node,
                    pe: ProgEvent::CounterReached {
                        client: addr.client,
                        counter: id,
                    },
                },
            );
        }
    }

    /// Watchdog deadline expiry: if the watch armed alongside this
    /// deadline is still pending, record a report naming the stuck
    /// counter (the simulation keeps running — a later arrival may still
    /// satisfy the watch).
    pub fn watchdog_check(&mut self, addr: ClientAddr, id: CounterId, target: u64, now: SimTime) {
        let counters = &self.clients[client_index(addr.node, addr.client)].counters;
        let current = counters.read(id);
        if counters.has_watch(id) && current < target {
            self.watchdog_reports.push(WatchdogReport {
                node: addr.node,
                client: addr.client,
                counter: id,
                target,
                current,
                at: now,
            });
        }
    }

    /// All still-pending counter watches across the machine, as
    /// `(node, client, counter, target, current)` — the quiescence
    /// detector's evidence when a run drains without completing.
    pub fn stuck_watches(&self) -> Vec<(NodeId, ClientKind, CounterId, u64, u64)> {
        let mut out = Vec::new();
        for (ci, st) in self.clients.iter().enumerate() {
            for (id, target) in st.counters.pending_watches() {
                let node = NodeId((ci / 7) as u32);
                let client = ClientKind::ALL[ci % 7];
                out.push((node, client, id, target, st.counters.read(id)));
            }
        }
        out
    }

    /// Program the per-source buffer counter table of a client (the HTIS
    /// buffer mechanism): packets labeled [`COUNTER_BY_SOURCE`] increment
    /// the counter mapped to their source node.
    pub fn set_source_counter_map(
        &mut self,
        addr: ClientAddr,
        map: HashMap<anton_topo::NodeId, CounterId>,
    ) {
        self.clients[client_index(addr.node, addr.client)].source_counters = map;
    }

    /// Mark the phase label applied to subsequently traced link activity
    /// and stamp a phase mark into the flight recorder (if one is
    /// installed).
    pub fn set_phase_label(&mut self, label: &str, now: SimTime) {
        self.current_label = self.tracer.intern_label(label);
        if let Some(rec) = self.recorder.as_mut() {
            rec.on_phase(label, now);
        }
    }

    /// Publish the fabric's instrumentation into a metrics registry:
    /// every [`NetStats`] counter under `net.*`, plus machine-wide
    /// client-memory aggregates under `mem.*` (FIFO occupancy high
    /// watermark and backpressure, synchronization-counter increments
    /// and watch fires).
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        self.stats.record_metrics(reg);
        let mut hw = 0usize;
        let mut backpressure = 0u64;
        let mut incs = 0u64;
        let mut fires = 0u64;
        for st in &self.clients {
            if let Some(f) = &st.fifo {
                hw = hw.max(f.high_watermark());
                backpressure += f.backpressure_events();
            }
            incs += st.counters.total_increments();
            fires += st.counters.watches_fired();
        }
        reg.set_gauge("mem.fifo_high_watermark", hw as f64);
        reg.set_counter("mem.fifo_backpressure_events", backpressure);
        reg.set_counter("mem.counter_increments", incs);
        reg.set_counter("mem.counter_watch_fires", fires);
    }

    /// FIFO backpressure events observed so far on a slice (diagnostics).
    pub fn fifo_backpressure_events(&self, addr: ClientAddr) -> u64 {
        self.clients[client_index(addr.node, addr.client)]
            .fifo
            .as_ref()
            .map(|f| f.backpressure_events())
            .unwrap_or(0)
    }

    /// Coordinates helper.
    pub fn coord(&self, node: NodeId) -> Coord {
        node.coord(self.dims)
    }
}
