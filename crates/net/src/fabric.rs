//! The network fabric: torus links, on-chip rings, injection ports,
//! multicast tables, and packet delivery.
//!
//! ## Model
//!
//! Packets cut through the network: the *head* of a packet advances with
//! the fixed per-stage latencies of [`crate::timing::Timing`], while each
//! torus link direction is a serial resource occupied for the packet's
//! full wire time (contention backs up subsequent packets in FIFO order).
//! The synchronization counter bumps when the *tail* arrives — base
//! latency plus the payload's serialization time.
//!
//! Anton guarantees lossless, deadlock-free routing via virtual channels
//! (§III.A); we model unbounded link queues, which is lossless and cannot
//! deadlock, and preserves per-pair ordering (deterministic
//! dimension-ordered routes over FIFO links), so the in-order header flag
//! is honored by construction.

use crate::memory::{AccumMemory, LocalMemory, MsgFifo, SyncCounters};
use crate::packet::{
    ClientAddr, ClientKind, CounterId, Destination, Packet, PacketKind, PatternId, Payload,
    COUNTER_BY_SOURCE,
};
use crate::timing::Timing;
use anton_des::{Activity, Scheduler, SimDuration, SimTime, Tracer, TrackId};
use anton_topo::{Coord, Dim, LinkDir, MulticastPattern, NodeId, Route, TorusDims};
use std::collections::HashMap;

/// Capacity (in messages) of each slice's hardware message FIFO. The paper
/// doesn't publish the size; migration bursts are tens of messages, so 64
/// exercises backpressure only under deliberately abusive tests.
pub const FIFO_CAPACITY: usize = 64;

/// Events produced and consumed by the fabric (plus program dispatches).
#[derive(Debug)]
pub enum Ev {
    /// Kick off all node programs at time zero.
    Start,
    /// A packet's head arrived at `node`'s receive adapter having entered
    /// along dimension `in_dim`.
    HopArrive {
        /// The packet in flight.
        pkt: Packet,
        /// The node whose receive adapter the head reached.
        node: NodeId,
        /// Dimension of the link it arrived on.
        in_dim: Dim,
    },
    /// A packet's tail reached its target client at `node`; apply it.
    Deliver {
        /// The arriving packet.
        pkt: Packet,
        /// Delivery node.
        node: NodeId,
        /// Target client on that node.
        client: ClientKind,
    },
    /// Software services one message from a slice's FIFO.
    FifoService {
        /// The node whose FIFO is serviced.
        node: NodeId,
        /// The slice owning the FIFO.
        client: ClientKind,
    },
    /// Dispatch to the node program.
    Prog {
        /// Target node.
        node: NodeId,
        /// The program event.
        pe: ProgEvent,
    },
}

/// Callbacks into node programs.
#[derive(Debug)]
pub enum ProgEvent {
    /// Simulation start.
    Start,
    /// A watched synchronization counter reached its target.
    CounterReached {
        /// The client whose counter fired.
        client: ClientKind,
        /// Which counter.
        counter: CounterId,
    },
    /// Software popped one message from a client's hardware FIFO.
    FifoMessage {
        /// The slice that drained the message.
        client: ClientKind,
        /// The popped message.
        pkt: Packet,
    },
    /// A timer set via `Ctx::set_timer` or `Ctx::compute` expired.
    Timer {
        /// The client the timer was set for.
        client: ClientKind,
        /// Application-defined tag.
        tag: u64,
    },
}

/// Per-client simulated state.
#[derive(Debug, Default)]
struct ClientState {
    mem: LocalMemory,
    accum: AccumMemory,
    counters: SyncCounters,
    fifo: Option<MsgFifo<Packet>>,
    /// Pending accumulation-counter watch fire times are handled inline;
    /// nothing else needed per client.
    fifo_service_pending: bool,
    /// Per-source-node counter mapping for COUNTER_BY_SOURCE packets
    /// (the HTIS buffer table).
    source_counters: HashMap<anton_topo::NodeId, CounterId>,
}

/// Aggregate traffic statistics.
#[derive(Debug, Default, Clone)]
pub struct NetStats {
    /// Packets injected by clients (a multicast counts once).
    pub packets_sent: u64,
    /// Deliveries into client memories (a multicast counts per member).
    pub packets_delivered: u64,
    /// Total payload bytes delivered.
    pub payload_bytes_delivered: u64,
    /// Individual link-direction occupations.
    pub link_traversals: u64,
    /// Per-node packets sent / delivered (for the paper's "over 250
    /// messages sent and over 500 received per node per time step").
    pub sent_by_node: Vec<u64>,
    /// Per-node delivery counts.
    pub delivered_by_node: Vec<u64>,
}

/// The simulated communication fabric of one Anton machine.
pub struct Fabric {
    dims: TorusDims,
    timing: Timing,
    /// Busy-until per unidirectional link, indexed `node*6 + link`.
    link_busy: Vec<SimTime>,
    /// Busy-until per client injection port, indexed `node*7 + client`.
    inject_busy: Vec<SimTime>,
    /// Busy-until per slice Tensilica core, indexed `node*7 + client`
    /// (only slice entries are used).
    core_busy: Vec<SimTime>,
    /// Per-node, per-pattern multicast forwarding tables.
    patterns: Vec<HashMap<PatternId, NodePatternEntry>>,
    clients: Vec<ClientState>,
    /// Aggregate traffic statistics.
    pub stats: NetStats,
    /// Activity tracer (tracks 0–5 are the six link directions).
    pub tracer: Tracer,
    /// Label applied to link-activity intervals; set via [`Ctx::set_phase`].
    current_label: u16,
}

#[derive(Debug, Clone, Default)]
struct NodePatternEntry {
    forward: Vec<LinkDir>,
    deliver: bool,
}

fn client_index(node: NodeId, client: ClientKind) -> usize {
    node.index() * 7 + client.index()
}

impl Fabric {
    /// Build a fabric for the given machine size with default timing.
    pub fn new(dims: TorusDims) -> Fabric {
        Fabric::with_timing(dims, Timing::default())
    }

    /// Build with explicit timing (ablations perturb constants).
    pub fn with_timing(dims: TorusDims, timing: Timing) -> Fabric {
        let n = dims.node_count() as usize;
        let mut clients: Vec<ClientState> = Vec::with_capacity(n * 7);
        for _ in 0..n {
            for kind in ClientKind::ALL {
                let mut st = ClientState::default();
                if matches!(kind, ClientKind::Slice(_)) {
                    st.fifo = Some(MsgFifo::new(FIFO_CAPACITY));
                }
                clients.push(st);
            }
        }
        let mut tracer = Tracer::disabled();
        for (i, l) in LinkDir::ALL.iter().enumerate() {
            tracer.name_track(TrackId(i as u16), format!("{l} links"));
        }
        Fabric {
            dims,
            timing,
            link_busy: vec![SimTime::ZERO; n * 6],
            inject_busy: vec![SimTime::ZERO; n * 7],
            core_busy: vec![SimTime::ZERO; n * 7],
            patterns: vec![HashMap::new(); n],
            clients,
            stats: NetStats {
                sent_by_node: vec![0; n],
                delivered_by_node: vec![0; n],
                ..Default::default()
            },
            tracer,
            current_label: 0,
        }
    }

    /// Enable activity tracing (disabled by default; costs memory).
    pub fn enable_tracing(&mut self) {
        let mut tracer = Tracer::enabled();
        for (i, l) in LinkDir::ALL.iter().enumerate() {
            tracer.name_track(TrackId(i as u16), format!("{l} links"));
        }
        self.tracer = tracer;
    }

    /// Machine dimensions.
    pub fn dims(&self) -> TorusDims {
        self.dims
    }

    /// The timing model in force.
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// Install a multicast pattern under `id` (the same id on every node
    /// the tree touches, as the hardware tables work). Panics if any node
    /// would exceed the 256-pattern hardware limit or the id is taken.
    pub fn register_pattern(&mut self, id: PatternId, pattern: &MulticastPattern) {
        assert_eq!(pattern.dims(), self.dims, "pattern built for other dims");
        for (node, entry) in pattern.entries() {
            let table = &mut self.patterns[node.index()];
            assert!(
                !table.contains_key(&id),
                "pattern id {} already registered on node {}",
                id.0,
                node.0
            );
            assert!(
                table.len() < anton_topo::MAX_PATTERNS_PER_NODE,
                "node {} exceeds 256 multicast patterns",
                node.0
            );
            table.insert(
                id,
                NodePatternEntry {
                    forward: entry.forward.clone(),
                    deliver: entry.deliver,
                },
            );
        }
    }

    /// Remove a pattern everywhere (bond-program regeneration reprograms
    /// tables between epochs).
    pub fn unregister_pattern(&mut self, id: PatternId) {
        for table in &mut self.patterns {
            table.remove(&id);
        }
    }

    fn reserve_link(
        &mut self,
        node: NodeId,
        link: LinkDir,
        ready: SimTime,
        payload_bytes: u32,
    ) -> SimTime {
        let idx = node.index() * 6 + link.index();
        let start = ready.max(self.link_busy[idx]);
        let occ = self.timing.link_occupancy(payload_bytes);
        self.link_busy[idx] = start + occ;
        self.stats.link_traversals += 1;
        if self.tracer.is_enabled() {
            self.tracer.record(
                TrackId(link.index() as u16),
                Activity::Busy,
                start,
                start + occ,
                self.current_label,
            );
        }
        start
    }

    /// Send a packet. `now` is the time software issues the send. All
    /// downstream progress is scheduled on `sched`.
    pub fn send(&mut self, pkt: Packet, now: SimTime, sched: &mut Scheduler<Ev>) {
        assert!(pkt.src.client.can_send(), "client cannot send packets");
        let src_node = pkt.src.node;
        self.stats.packets_sent += 1;
        self.stats.sent_by_node[src_node.index()] += 1;

        // The sending Tensilica core is occupied briefly per send (the
        // full send_setup is pipeline latency, not occupancy).
        let ci = client_index(src_node, pkt.src.client);
        let t0 = if matches!(pkt.src.client, ClientKind::Slice(_)) {
            let t0 = now.max(self.core_busy[ci]);
            self.core_busy[ci] = t0 + SimDuration::from_ns_f64(self.timing.send_issue_ns);
            t0
        } else {
            now
        };

        // Injection-port serialization onto the on-chip ring.
        let inj_ready = t0 + SimDuration::from_ns_f64(self.timing.send_setup_ns);
        let inj_start = inj_ready.max(self.inject_busy[ci]);
        self.inject_busy[ci] = inj_start + self.timing.injection_occupancy(pkt.payload_bytes);

        match pkt.dest {
            Destination::Unicast(dst) => {
                if dst.node == src_node {
                    // Local client-to-client write over the ring only.
                    let done = t0
                        + self.timing.local_latency()
                        + self.timing.payload_tail_onchip(pkt.payload_bytes);
                    sched.at(
                        done,
                        Ev::Deliver { node: dst.node, client: dst.client, pkt },
                    );
                } else {
                    let src_c = src_node.coord(self.dims);
                    let dst_c = dst.node.coord(self.dims);
                    let link = Route::next_link_from(src_c, dst_c, self.dims)
                        .expect("distinct nodes have a route");
                    let ready = inj_start + SimDuration::from_ns_f64(self.timing.send_ring_ns);
                    let start = self.reserve_link(src_node, link, ready, pkt.payload_bytes);
                    let next = src_c.step(link, self.dims).node_id(self.dims);
                    sched.at(
                        start + self.timing.link_head(),
                        Ev::HopArrive { pkt, node: next, in_dim: link.dim },
                    );
                }
            }
            Destination::Multicast { pattern, client } => {
                let entry = self.patterns[src_node.index()]
                    .get(&pattern)
                    .unwrap_or_else(|| panic!("pattern {} unknown at source", pattern.0))
                    .clone();
                if entry.deliver {
                    let done = t0
                        + self.timing.local_latency()
                        + self.timing.payload_tail_onchip(pkt.payload_bytes);
                    sched.at(
                        done,
                        Ev::Deliver { node: src_node, client, pkt: pkt.clone() },
                    );
                }
                let src_c = src_node.coord(self.dims);
                let ready = inj_start + SimDuration::from_ns_f64(self.timing.send_ring_ns);
                for l in entry.forward {
                    let start = self.reserve_link(src_node, l, ready, pkt.payload_bytes);
                    let next = src_c.step(l, self.dims).node_id(self.dims);
                    sched.at(
                        start + self.timing.link_head(),
                        Ev::HopArrive { pkt: pkt.clone(), node: next, in_dim: l.dim },
                    );
                }
            }
        }
    }

    /// Handle a packet head arriving at `node`.
    pub fn hop_arrive(
        &mut self,
        pkt: Packet,
        node: NodeId,
        in_dim: Dim,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        match pkt.dest {
            Destination::Unicast(dst) => {
                if dst.node == node {
                    let done = now
                        + self.timing.recv_overhead()
                        + self.timing.payload_tail(pkt.payload_bytes);
                    sched.at(done, Ev::Deliver { node, client: dst.client, pkt });
                } else {
                    let cur = node.coord(self.dims);
                    let dst_c = dst.node.coord(self.dims);
                    let link = Route::next_link_from(cur, dst_c, self.dims)
                        .expect("not yet at destination");
                    let ready = now + self.timing.transit_ring(in_dim, link.dim);
                    let start = self.reserve_link(node, link, ready, pkt.payload_bytes);
                    let next = cur.step(link, self.dims).node_id(self.dims);
                    sched.at(
                        start + self.timing.link_head(),
                        Ev::HopArrive { pkt, node: next, in_dim: link.dim },
                    );
                }
            }
            Destination::Multicast { pattern, client } => {
                let entry = self.patterns[node.index()]
                    .get(&pattern)
                    .unwrap_or_else(|| panic!("pattern {} unknown at node {}", pattern.0, node.0))
                    .clone();
                if entry.deliver {
                    let done = now
                        + self.timing.recv_overhead()
                        + self.timing.payload_tail(pkt.payload_bytes);
                    sched.at(done, Ev::Deliver { node, client, pkt: pkt.clone() });
                }
                let cur = node.coord(self.dims);
                for l in entry.forward {
                    let ready = now + self.timing.transit_ring(in_dim, l.dim);
                    let start = self.reserve_link(node, l, ready, pkt.payload_bytes);
                    let next = cur.step(l, self.dims).node_id(self.dims);
                    sched.at(
                        start + self.timing.link_head(),
                        Ev::HopArrive { pkt: pkt.clone(), node: next, in_dim: l.dim },
                    );
                }
            }
        }
    }

    /// Apply a delivered packet to its target client. Returns the program
    /// events to dispatch (counter fires, FIFO service scheduling happens
    /// here too).
    pub fn deliver(
        &mut self,
        pkt: Packet,
        node: NodeId,
        client: ClientKind,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        self.stats.packets_delivered += 1;
        self.stats.payload_bytes_delivered += pkt.payload_bytes as u64;
        self.stats.delivered_by_node[node.index()] += 1;
        let ci = client_index(node, client);
        let counter = pkt.counter;
        let pkt_src = pkt.src.node;
        match pkt.kind {
            PacketKind::Write => {
                self.clients[ci].mem.write(pkt.addr, pkt.payload);
            }
            PacketKind::Accumulate => {
                assert!(
                    matches!(client, ClientKind::Accum(_)),
                    "accumulate delivered to non-accumulation client"
                );
                match &pkt.payload {
                    Payload::I32s(vs) => self.clients[ci].accum.accumulate(pkt.addr, vs),
                    Payload::Empty => {}
                    other => panic!("accumulation payload must be I32s, got {other:?}"),
                }
            }
            PacketKind::Fifo => {
                let fifo = self.clients[ci]
                    .fifo
                    .as_mut()
                    .expect("FIFO packets must target a processing slice");
                fifo.push(pkt);
                if !self.clients[ci].fifo_service_pending {
                    self.clients[ci].fifo_service_pending = true;
                    sched.at(now, Ev::FifoService { node, client });
                }
                // FIFO messages never carry counters: synchronization of
                // FIFO traffic uses separate in-order counted writes
                // (§IV.B.5), and nothing in hardware bumps a counter on a
                // FIFO push.
                return;
            }
        }
        let counter = match counter {
            Some(c) if c == COUNTER_BY_SOURCE => {
                Some(*self.clients[ci].source_counters.get(&pkt_src).unwrap_or_else(|| {
                    panic!(
                        "COUNTER_BY_SOURCE packet from node {} but no buffer mapping at node {}",
                        pkt_src.0, node.0
                    )
                }))
            }
            other => other,
        };
        if let Some(cid) = counter {
            if self.clients[ci].counters.increment(cid) {
                // A watch fired. Slices and the HTIS poll their own
                // counters locally (cost already inside deliver_poll);
                // accumulation-memory counters are polled by a slice
                // across the ring and see extra latency (§III.B).
                // A slice's poll only *succeeds* once its Tensilica core
                // is free — a core mid-send delays noticing the arrival,
                // which is why bidirectional ping-pong runs slightly
                // slower than unidirectional in Figure 5.
                let visible = if matches!(client, ClientKind::Slice(_)) {
                    now.max(self.core_busy[ci])
                } else {
                    now
                };
                let extra = if client.local_poll() {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_ns_f64(self.timing.accum_poll_extra_ns)
                };
                sched.at(
                    visible + extra,
                    Ev::Prog {
                        node,
                        pe: ProgEvent::CounterReached { client, counter: cid },
                    },
                );
            }
        }
    }

    /// Service one FIFO message: when the Tensilica core is free, pop,
    /// charge the software cost, dispatch to the program, and re-arm if
    /// messages remain. The pop itself waits for the core — the hardware
    /// queue (and then network backpressure) absorbs bursts faster than
    /// software can drain (§III.C).
    pub fn fifo_service(
        &mut self,
        node: NodeId,
        client: ClientKind,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let ci = client_index(node, client);
        // The servicing Tensilica core is a serial resource: retry when
        // it frees up (fifo_service_pending stays set).
        let free = self.core_busy[ci];
        if free > now {
            sched.at(free, Ev::FifoService { node, client });
            return;
        }
        let done = now + SimDuration::from_ns_f64(self.timing.fifo_pop_ns);
        let fifo = self.clients[ci].fifo.as_mut().expect("slice has a FIFO");
        match fifo.pop() {
            Some(pkt) => {
                self.core_busy[ci] = done;
                let more = !fifo.is_empty();
                self.clients[ci].fifo_service_pending = more;
                sched.at(
                    done,
                    Ev::Prog { node, pe: ProgEvent::FifoMessage { client, pkt } },
                );
                if more {
                    sched.at(done, Ev::FifoService { node, client });
                }
            }
            None => {
                self.clients[ci].fifo_service_pending = false;
            }
        }
    }

    // ----- client-state accessors used by node programs (via Ctx) -----

    /// Read a client's local memory cell.
    pub fn mem_read(&self, addr: ClientAddr, a: u64) -> Option<&Payload> {
        self.clients[client_index(addr.node, addr.client)].mem.read(a)
    }

    /// Take (consume) a client's local memory cell.
    pub fn mem_take(&mut self, addr: ClientAddr, a: u64) -> Option<Payload> {
        self.clients[client_index(addr.node, addr.client)].mem.take(a)
    }

    /// Write a client's local memory directly (software-local store, no
    /// network traffic).
    pub fn mem_write(&mut self, addr: ClientAddr, a: u64, p: Payload) {
        self.clients[client_index(addr.node, addr.client)].mem.write(a, p);
    }

    /// Drain a range of a client's local memory.
    pub fn mem_drain_range(&mut self, addr: ClientAddr, lo: u64, hi: u64) -> Vec<(u64, Payload)> {
        self.clients[client_index(addr.node, addr.client)]
            .mem
            .drain_range(lo, hi)
    }

    /// Read `n` 4-byte words from an accumulation memory.
    pub fn accum_read(&self, addr: ClientAddr, a: u64, n: usize) -> Vec<i32> {
        assert!(matches!(addr.client, ClientKind::Accum(_)));
        self.clients[client_index(addr.node, addr.client)].accum.read(a, n)
    }

    /// Zero `n` words of an accumulation memory.
    pub fn accum_clear(&mut self, addr: ClientAddr, a: u64, n: usize) {
        self.clients[client_index(addr.node, addr.client)].accum.clear(a, n);
    }

    /// Current value of a synchronization counter.
    pub fn counter_read(&self, addr: ClientAddr, id: CounterId) -> u64 {
        self.clients[client_index(addr.node, addr.client)].counters.read(id)
    }

    /// Reset a counter to zero.
    pub fn counter_reset(&mut self, addr: ClientAddr, id: CounterId) {
        self.clients[client_index(addr.node, addr.client)].counters.reset(id);
    }

    /// Register a watch; if the target is already met, the `CounterReached`
    /// event fires immediately (plus the accumulation-poll penalty where
    /// applicable).
    pub fn counter_watch(
        &mut self,
        addr: ClientAddr,
        id: CounterId,
        target: u64,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let already = self.clients[client_index(addr.node, addr.client)]
            .counters
            .watch(id, target);
        if already {
            let extra = if addr.client.local_poll() {
                SimDuration::ZERO
            } else {
                SimDuration::from_ns_f64(self.timing.accum_poll_extra_ns)
            };
            sched.at(
                now + extra,
                Ev::Prog {
                    node: addr.node,
                    pe: ProgEvent::CounterReached { client: addr.client, counter: id },
                },
            );
        }
    }

    /// Program the per-source buffer counter table of a client (the HTIS
    /// buffer mechanism): packets labeled [`COUNTER_BY_SOURCE`] increment
    /// the counter mapped to their source node.
    pub fn set_source_counter_map(
        &mut self,
        addr: ClientAddr,
        map: HashMap<anton_topo::NodeId, CounterId>,
    ) {
        self.clients[client_index(addr.node, addr.client)].source_counters = map;
    }

    /// Mark the phase label applied to subsequently traced link activity.
    pub fn set_phase_label(&mut self, label: &str) {
        self.current_label = self.tracer.intern_label(label);
    }

    /// FIFO backpressure events observed so far on a slice (diagnostics).
    pub fn fifo_backpressure_events(&self, addr: ClientAddr) -> u64 {
        self.clients[client_index(addr.node, addr.client)]
            .fifo
            .as_ref()
            .map(|f| f.backpressure_events())
            .unwrap_or(0)
    }

    /// Coordinates helper.
    pub fn coord(&self, node: NodeId) -> Coord {
        node.coord(self.dims)
    }
}
