//! # anton-net — Anton's communication fabric, simulated
//!
//! A packet-level deterministic model of Anton's network (paper §III):
//! the 3D torus of 50.6 Gbit/s links, the six-router on-chip ring, write
//! and accumulation packets, counted remote writes with synchronization
//! counters, precomputed multicast tables, and hardware message FIFOs
//! with backpressure.
//!
//! Latency constants are calibrated to the paper's Figure 6 single-hop
//! breakdown (162 ns end to end) and Figure 5 per-hop slopes (76 ns/hop
//! in X, 54 ns/hop in Y/Z); see [`timing::Timing`].

#![warn(missing_docs)]

pub mod fabric;
pub mod fault;
pub mod memory;
pub mod packet;
pub mod par;
pub mod recovery;
pub mod timing;
pub mod world;

pub use fabric::{Ev, Fabric, NetStats, ProgEvent, ERROR_LOG_CAP, FIFO_CAPACITY};
pub use fault::{
    crc32, payload_crc, Crc32, FabricError, FaultPlan, FaultTarget, PermanentFault, RetryPolicy,
    TransientFault, WatchdogReport,
};
pub use memory::{AccumMemory, LocalMemory, MsgFifo, SyncCounters};
pub use packet::{
    ClientAddr, ClientKind, CounterId, Destination, Packet, PacketKind, PatternId, Payload,
    SourceRoute, COUNTERS_PER_CLIENT, COUNTER_BY_SOURCE,
};
pub use par::{
    lookahead_mode_from_env, merge_flight_events, obs_mode_from_env, obs_stream_config_from_env,
    parse_lookahead_mode, threads_from_env, EvShardMap, NodeShardWorld, ObsMode, ParSimulation,
    ShardPlan,
};
pub use recovery::{
    chaos_level_from_env, chaos_seed_from_env, FailureVerdict, RecoveryConfig, RecoveryStats,
    CHAOS_LEVEL_MAX, CHAOS_SEED_DEFAULT,
};
pub use timing::{
    Timing, HEADER_BYTES, IN_HEADER_PAYLOAD_BYTES, LINK_EFFECTIVE_GBPS, LINK_RAW_GBPS,
    MAX_PAYLOAD_BYTES, RING_GBPS, WIRE_ENCODING_FACTOR,
};
pub use world::{Ctx, NodeProgram, RunReport, SimWorld, Simulation, StallReport, StuckWatch};
