//! Packets and network-client addressing.
//!
//! Three kinds of clients hang off each node's on-chip ring (§III):
//! four processing slices, one HTIS, and two accumulation memories.
//! Packets are one-sided writes (or accumulations, or FIFO messages)
//! addressed to a specific client's local memory, optionally labeled with
//! a synchronization-counter id (§III.B, counted remote writes).

use crate::timing::MAX_PAYLOAD_BYTES;
use anton_topo::NodeId;

/// Which client on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClientKind {
    /// Processing slice 0–3 (each: one Tensilica core + two geometry
    /// cores, §III).
    Slice(u8),
    /// The high-throughput interaction subsystem.
    Htis,
    /// Accumulation memory 0 or 1.
    Accum(u8),
}

impl ClientKind {
    /// All seven clients of a node, in dense-index order.
    pub const ALL: [ClientKind; 7] = [
        ClientKind::Slice(0),
        ClientKind::Slice(1),
        ClientKind::Slice(2),
        ClientKind::Slice(3),
        ClientKind::Htis,
        ClientKind::Accum(0),
        ClientKind::Accum(1),
    ];

    /// Dense index 0..7.
    pub fn index(self) -> usize {
        match self {
            ClientKind::Slice(i) => {
                assert!(i < 4, "slice index out of range");
                i as usize
            }
            ClientKind::Htis => 4,
            ClientKind::Accum(i) => {
                assert!(i < 2, "accumulation memory index out of range");
                5 + i as usize
            }
        }
    }

    /// Inverse of [`ClientKind::index`].
    pub fn from_index(i: usize) -> ClientKind {
        ClientKind::ALL[i]
    }

    /// Whether this client can inject packets (§III.A: accumulation
    /// memories cannot send).
    pub fn can_send(self) -> bool {
        !matches!(self, ClientKind::Accum(_))
    }

    /// Whether counter polls from a slice reach this client's counters
    /// without crossing the ring (§III.B: slices and HTIS poll locally;
    /// accumulation-memory counters are polled across the on-chip
    /// network).
    pub fn local_poll(self) -> bool {
        !matches!(self, ClientKind::Accum(_))
    }
}

/// Full client address: node + client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientAddr {
    /// The node.
    pub node: NodeId,
    /// The client on that node.
    pub client: ClientKind,
}

impl ClientAddr {
    /// Pair a node with one of its clients.
    pub fn new(node: NodeId, client: ClientKind) -> ClientAddr {
        ClientAddr { node, client }
    }
}

/// Identifies one synchronization counter within a client (§III.B:
/// "every network client contains a set of synchronization counters").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CounterId(pub u16);

/// Counter id carried by packets whose receiving client resolves the
/// actual counter from the packet's *source node* (the HTIS buffer
/// mechanism, §IV.B.1: "The HTIS organizes arriving packets into buffers
/// corresponding to the node of origin"; each buffer has its own
/// counter). The mapping is programmed per client via
/// `Fabric::set_source_counter_map`.
pub const COUNTER_BY_SOURCE: CounterId = CounterId(63);

/// Number of synchronization counters per client. The paper doesn't
/// publish the exact count; MD needs a handful per phase (per-dimension
/// FFT counters, HTIS position/potential counters, force counters…), so
/// 64 is comfortably generous.
pub const COUNTERS_PER_CLIENT: usize = 64;

/// A precomputed multicast pattern id (≤256 per node, §III.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternId(pub u16);

/// What the packet does on arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Write payload to the target client's local memory at `addr`.
    Write,
    /// Add payload (4-byte signed quantities) to the accumulation memory
    /// at `addr` (§III.A: accumulation packets). Target must be an
    /// accumulation memory.
    Accumulate,
    /// Append to the target slice's hardware message FIFO (§III.C).
    /// `addr` is ignored.
    Fifo,
}

/// Logical packet contents. The wire size is tracked separately in
/// [`Packet::payload_bytes`]; `data` carries the real values so the
/// reproduction computes genuine physics through the network.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// No logical contents.
    Empty,
    /// Raw little-endian bytes.
    Bytes(Vec<u8>),
    /// 64-bit floats (positions, potentials…). 8 wire bytes each.
    F64s(Vec<f64>),
    /// 32-bit fixed-point quantities (forces, charges for accumulation).
    /// 4 wire bytes each.
    I32s(Vec<i32>),
    /// An application-defined token carrying no modeled bytes of its own
    /// (used for control messages whose wire size is set explicitly).
    Token(u64),
}

impl Payload {
    /// Natural wire size of the payload data in bytes.
    pub fn natural_bytes(&self) -> u32 {
        match self {
            Payload::Empty | Payload::Token(_) => 0,
            Payload::Bytes(b) => b.len() as u32,
            Payload::F64s(v) => (v.len() * 8) as u32,
            Payload::I32s(v) => (v.len() * 4) as u32,
        }
    }
}

/// Where a packet goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// One client on one node.
    Unicast(ClientAddr),
    /// A precomputed multicast pattern; on every delivery node the packet
    /// lands at client `client` (hardware looks up local clients in the
    /// pattern table; our MD mappings always target the same client kind
    /// on every member node, which is how Anton's software used it too).
    Multicast {
        /// The precomputed pattern to follow.
        pattern: PatternId,
        /// The client kind receiving the packet on every member node.
        client: ClientKind,
    },
}

/// A network packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Flight-recorder identity, assigned densely by the fabric at
    /// injection (constructors leave it 0). Multicast copies keep their
    /// original's id, which is how the recorder correlates a tree's
    /// deliveries.
    pub uid: u64,
    /// Sending client.
    pub src: ClientAddr,
    /// Where the packet goes.
    pub dest: Destination,
    /// What it does on arrival.
    pub kind: PacketKind,
    /// Target address within the destination client's local memory.
    pub addr: u64,
    /// Wire payload size in bytes (0–256). Usually
    /// `payload.natural_bytes()`, but control packets may model a size
    /// explicitly.
    pub payload_bytes: u32,
    /// The logical contents.
    pub payload: Payload,
    /// Synchronization counter to increment on arrival, if any.
    pub counter: Option<CounterId>,
    /// §III.A: header flag selecting guaranteed in-order delivery between
    /// fixed source–destination pairs. On the healthy fabric
    /// (deterministic dimension-ordered routes over FIFO links) delivery
    /// is always in order and the flag is honored trivially; under
    /// runtime fault recovery a rerouted packet can overtake, so the
    /// fabric assigns [`Packet::order_seq`] and reassembles at the
    /// destination.
    pub in_order: bool,
    /// Application tag dispatched back to the receiving node program.
    pub tag: u64,
    /// End-to-end payload integrity checksum, computed at construction
    /// ([`crate::fault::payload_crc`]) and verified on delivery. The link
    /// layer additionally CRCs every traversal; this one catches anything
    /// that slips through.
    pub crc: u32,
    /// Source route installed by the fabric when permanent link failures
    /// are active: the precomputed surviving path and the index of the
    /// next step to take. `None` routes dimension-ordered per hop, as the
    /// healthy hardware does.
    pub route: Option<SourceRoute>,
    /// Per-(source client, destination client) sequence number, assigned
    /// at injection for in-order packets when runtime fault recovery is
    /// enabled. The destination holds packets that arrive ahead of the
    /// sequence and applies them in order.
    pub order_seq: Option<u64>,
    /// Recovery re-injections consumed so far, bounded by
    /// [`RecoveryConfig::max_reinjects`](crate::recovery::RecoveryConfig::max_reinjects).
    pub reinjects: u32,
}

/// A packet-carried route around permanently dead links (fault runs
/// only; healthy fabrics never set this).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceRoute {
    /// The full step sequence, shared between clones of the packet.
    pub steps: std::sync::Arc<Vec<anton_topo::LinkDir>>,
    /// Index of the next step to take.
    pub next: u32,
}

impl Packet {
    /// A write packet with the payload's natural size.
    pub fn write(src: ClientAddr, dst: ClientAddr, addr: u64, payload: Payload) -> Packet {
        let bytes = payload.natural_bytes();
        assert!(bytes <= MAX_PAYLOAD_BYTES, "payload exceeds 256 bytes");
        Packet {
            uid: 0,
            src,
            dest: Destination::Unicast(dst),
            kind: PacketKind::Write,
            addr,
            payload_bytes: bytes,
            crc: crate::fault::payload_crc(&payload),
            payload,
            counter: None,
            in_order: false,
            tag: 0,
            route: None,
            order_seq: None,
            reinjects: 0,
        }
    }

    /// An accumulation packet (target must be an accumulation memory).
    pub fn accumulate(src: ClientAddr, dst: ClientAddr, addr: u64, values: Vec<i32>) -> Packet {
        assert!(
            matches!(dst.client, ClientKind::Accum(_)),
            "accumulate packets must target an accumulation memory"
        );
        let payload = Payload::I32s(values);
        let bytes = payload.natural_bytes();
        assert!(bytes <= MAX_PAYLOAD_BYTES, "payload exceeds 256 bytes");
        Packet {
            uid: 0,
            src,
            dest: Destination::Unicast(dst),
            kind: PacketKind::Accumulate,
            addr,
            payload_bytes: bytes,
            crc: crate::fault::payload_crc(&payload),
            payload,
            counter: None,
            in_order: false,
            tag: 0,
            route: None,
            order_seq: None,
            reinjects: 0,
        }
    }

    /// A message destined for the target slice's hardware FIFO.
    pub fn fifo(src: ClientAddr, dst: ClientAddr, payload: Payload) -> Packet {
        let bytes = payload.natural_bytes();
        assert!(bytes <= MAX_PAYLOAD_BYTES, "payload exceeds 256 bytes");
        Packet {
            uid: 0,
            src,
            dest: Destination::Unicast(dst),
            kind: PacketKind::Fifo,
            addr: 0,
            payload_bytes: bytes,
            crc: crate::fault::payload_crc(&payload),
            payload,
            counter: None,
            in_order: false,
            tag: 0,
            route: None,
            order_seq: None,
            reinjects: 0,
        }
    }

    /// Label with a synchronization counter (builder style).
    pub fn with_counter(mut self, c: CounterId) -> Packet {
        self.counter = Some(c);
        self
    }

    /// Set the in-order flag (builder style).
    pub fn with_in_order(mut self) -> Packet {
        self.in_order = true;
        self
    }

    /// Set the application tag (builder style).
    pub fn with_tag(mut self, tag: u64) -> Packet {
        self.tag = tag;
        self
    }

    /// Override the modeled wire payload size (builder style). Used by
    /// microbenchmarks that sweep message size without materializing data.
    pub fn with_payload_bytes(mut self, bytes: u32) -> Packet {
        assert!(bytes <= MAX_PAYLOAD_BYTES, "payload exceeds 256 bytes");
        self.payload_bytes = bytes;
        self
    }

    /// Convert to a multicast packet using `pattern`.
    pub fn into_multicast(mut self, pattern: PatternId, client: ClientKind) -> Packet {
        self.dest = Destination::Multicast { pattern, client };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_topo::NodeId;

    fn addr(n: u32, c: ClientKind) -> ClientAddr {
        ClientAddr::new(NodeId(n), c)
    }

    #[test]
    fn client_kind_index_round_trips() {
        for (i, &k) in ClientKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(ClientKind::from_index(i), k);
        }
    }

    #[test]
    fn accumulation_memories_cannot_send() {
        assert!(!ClientKind::Accum(0).can_send());
        assert!(!ClientKind::Accum(1).local_poll());
        assert!(ClientKind::Slice(2).can_send());
        assert!(ClientKind::Htis.can_send());
        assert!(ClientKind::Htis.local_poll());
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::Empty.natural_bytes(), 0);
        assert_eq!(Payload::F64s(vec![0.0; 3]).natural_bytes(), 24);
        assert_eq!(Payload::I32s(vec![0; 5]).natural_bytes(), 20);
        assert_eq!(Payload::Bytes(vec![0; 7]).natural_bytes(), 7);
        assert_eq!(Payload::Token(9).natural_bytes(), 0);
    }

    #[test]
    fn write_builder() {
        let p = Packet::write(
            addr(0, ClientKind::Slice(0)),
            addr(1, ClientKind::Slice(1)),
            0x100,
            Payload::F64s(vec![1.0, 2.0, 3.0]),
        )
        .with_counter(CounterId(5))
        .with_in_order()
        .with_tag(77);
        assert_eq!(p.payload_bytes, 24);
        assert_eq!(p.counter, Some(CounterId(5)));
        assert!(p.in_order);
        assert_eq!(p.tag, 77);
    }

    #[test]
    #[should_panic(expected = "accumulation memory")]
    fn accumulate_must_target_accum() {
        Packet::accumulate(
            addr(0, ClientKind::Slice(0)),
            addr(1, ClientKind::Slice(1)),
            0,
            vec![1],
        );
    }

    #[test]
    #[should_panic(expected = "exceeds 256")]
    fn oversized_payload_panics() {
        Packet::write(
            addr(0, ClientKind::Slice(0)),
            addr(1, ClientKind::Slice(1)),
            0,
            Payload::F64s(vec![0.0; 40]),
        );
    }
}
