//! Runtime fault recovery: failure detectors, recovery policy, and the
//! chaos-campaign environment knobs (DESIGN.md §12).
//!
//! PR 1 gave the fabric *static* fault handling: seeded transient loss,
//! CRC + ack/retransmit, and routes computed around *pre-declared* dead
//! links. This module adds the runtime half: per-link timeout-based
//! failure **detectors** that promote repeated loss to a
//! [`LinkDown`](anton_obs::FlightEvent::LinkDown) /
//! [`NodeDown`](anton_obs::FlightEvent::NodeDown) verdict at a
//! reproducible simulated time, a **recovery policy** (message-level
//! retry with seeded exponential backoff, bounded re-injection budget,
//! duplicate suppression), and the [`RecoveryStats`] counters the chaos
//! harness asserts over.
//!
//! Everything is deterministic: detection times are pure functions of
//! the event stream, backoff jitter comes from the same seeded
//! split-mix hash as the fault plan's transient draws, and verdicts are
//! strictly **node-local** — a verdict about node *n*'s outgoing link is
//! produced only by events at *n* and consulted only when routing at
//! *n*, so sequential and sharded-parallel runs observe identical
//! knowledge and stay bit-identical.

use crate::fault;
use anton_des::SimDuration;
use anton_des::SimTime;
use anton_obs::VerdictCause;
use anton_topo::{LinkDir, NodeId};
use std::sync::atomic::{AtomicBool, Ordering};

/// Domain-separation salt for backoff-jitter draws (keeps them
/// independent of the fault plan's transient-loss draws).
const BACKOFF_SALT: u64 = 0xB0FF_B0FF_B0FF_B0FF;

/// Domain-separation salt for the ack-ambiguity draw: did the final,
/// unacknowledged attempt's data actually cross the link?
const ACK_AMBIGUITY_SALT: u64 = 0xACC_1057;

/// Policy knobs for the runtime fault-recovery subsystem. Constructed
/// with [`RecoveryConfig::disabled`] (bit-identical to the pre-recovery
/// fabric) or [`RecoveryConfig::recovering`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Master switch. With `enabled == false` every code path in the
    /// fabric is byte-identical to the pre-recovery behavior.
    pub enabled: bool,
    /// Seed for backoff jitter and ack-ambiguity draws (independent of
    /// the fault plan's seed).
    pub seed: u64,
    /// Heartbeat/idle-deadline detector: a send onto a *silently* dead
    /// link (no nacks ever return) is promoted to a `LinkDown` verdict
    /// this long after the attempt started.
    pub heartbeat_timeout_ns: f64,
    /// Message-level retry backoff base (first re-injection waits this
    /// long after the verdict).
    pub backoff_base_ns: f64,
    /// Exponential backoff multiplier per successive re-injection of
    /// the same packet.
    pub backoff_factor: f64,
    /// Seeded uniform jitter added to every backoff, in `[0, this)` ns;
    /// decorrelates recovery bursts after a shared verdict.
    pub backoff_jitter_ns: f64,
    /// Per-packet re-injection budget; a packet stranded more times
    /// than this is counted in
    /// [`RecoveryStats::packets_lost_unrecovered`].
    pub max_reinjects: u32,
    /// Ack-ambiguity probability: when the retransmit budget exhausts,
    /// the chance that the final attempt's *data* crossed and only the
    /// ack was lost — producing a genuine duplicate downstream that the
    /// counted-write check must suppress. 0 disables the model.
    pub dup_delivery_rate: f64,
}

impl RecoveryConfig {
    /// Recovery off: the fabric behaves bit-identically to a build
    /// without this subsystem.
    pub fn disabled() -> RecoveryConfig {
        RecoveryConfig {
            enabled: false,
            seed: 0,
            heartbeat_timeout_ns: 0.0,
            backoff_base_ns: 0.0,
            backoff_factor: 1.0,
            backoff_jitter_ns: 0.0,
            max_reinjects: 0,
            dup_delivery_rate: 0.0,
        }
    }

    /// Recovery on, with defaults sized for the 162 ns-scale fabric:
    /// a 2 µs heartbeat deadline (an ack round trip is well under 1 µs
    /// at the paper's hop latencies), 200 ns base backoff doubling per
    /// attempt with 100 ns seeded jitter, a budget of 6 re-injections,
    /// and a 25% ack-ambiguity rate.
    pub fn recovering(seed: u64) -> RecoveryConfig {
        RecoveryConfig {
            enabled: true,
            seed,
            heartbeat_timeout_ns: 2_000.0,
            backoff_base_ns: 200.0,
            backoff_factor: 2.0,
            backoff_jitter_ns: 100.0,
            max_reinjects: 6,
            dup_delivery_rate: 0.25,
        }
    }

    /// Builder: override the heartbeat/idle deadline.
    pub fn with_heartbeat_timeout_ns(mut self, ns: f64) -> RecoveryConfig {
        assert!(ns >= 0.0 && ns.is_finite());
        self.heartbeat_timeout_ns = ns;
        self
    }

    /// Builder: override the re-injection budget.
    pub fn with_max_reinjects(mut self, n: u32) -> RecoveryConfig {
        self.max_reinjects = n;
        self
    }

    /// Builder: override the ack-ambiguity duplicate rate.
    pub fn with_dup_delivery_rate(mut self, rate: f64) -> RecoveryConfig {
        assert!((0.0..=1.0).contains(&rate));
        self.dup_delivery_rate = rate;
        self
    }

    /// Builder: override the backoff schedule.
    pub fn with_backoff_ns(mut self, base: f64, factor: f64, jitter: f64) -> RecoveryConfig {
        assert!(base >= 0.0 && factor >= 1.0 && jitter >= 0.0);
        self.backoff_base_ns = base;
        self.backoff_factor = factor;
        self.backoff_jitter_ns = jitter;
        self
    }

    /// Seeded exponential backoff before re-injection `attempt`
    /// (1-based) of packet `uid`: `base · factor^(attempt-1)` plus a
    /// uniform jitter drawn from the split-mix hash, so two packets
    /// stranded by the same verdict do not retry in lockstep.
    pub fn backoff_delay(&self, uid: u64, attempt: u32) -> SimDuration {
        let exp = self.backoff_base_ns * self.backoff_factor.powi(attempt.saturating_sub(1) as i32);
        let jitter = self.backoff_jitter_ns
            * fault::hash_unit(self.seed ^ BACKOFF_SALT, uid, u64::from(attempt));
        SimDuration::from_ns_f64(exp + jitter)
    }

    /// Ack-ambiguity draw: when packet `uid`'s retransmit budget
    /// exhausts on link index `link_idx`, did the final attempt's data
    /// cross (ack lost) so a duplicate continues downstream?
    pub fn final_attempt_crossed(&self, link_idx: u64, uid: u64) -> bool {
        self.enabled
            && self.dup_delivery_rate > 0.0
            && fault::hash_unit(self.seed ^ ACK_AMBIGUITY_SALT, link_idx, uid)
                < self.dup_delivery_rate
    }
}

/// One failure-detector verdict, in detection order. `link == None`
/// means the verdict is a `NodeDown` (all six outgoing links of `node`
/// condemned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureVerdict {
    /// The node owning the condemned outgoing link (or the condemned
    /// node itself for `NodeDown`).
    pub node: NodeId,
    /// The condemned link direction, `None` for a node verdict.
    pub link: Option<LinkDir>,
    /// Which detector fired.
    pub cause: VerdictCause,
    /// Simulated detection time.
    pub at: SimTime,
}

/// Counters of the recovery subsystem, kept *separate* from
/// [`NetStats`](crate::NetStats) on purpose: `NetStats` is hashed into
/// the determinism fingerprints, so growing it would shift every
/// committed baseline even for recovery-disabled runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// `LinkDown` verdicts issued.
    pub link_verdicts: u64,
    /// `NodeDown` verdicts issued (a node's sixth link condemned).
    pub node_verdicts: u64,
    /// Stranded packets re-injected with a recomputed route.
    pub reinjections: u64,
    /// Packets that exhausted the re-injection budget (or had no
    /// surviving route) and were dropped for good.
    pub packets_lost_unrecovered: u64,
    /// Deliveries suppressed by the counted-write duplicate check.
    pub duplicates_suppressed: u64,
    /// Ack-ambiguity events: the final unacked attempt's data crossed,
    /// creating the duplicate downstream.
    pub duplicate_forks: u64,
    /// In-order packets parked in a reassembly buffer because an
    /// earlier sequence number was still in flight.
    pub inorder_holds: u64,
}

impl RecoveryStats {
    /// Fold another shard's counters into this one (parallel runs).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.link_verdicts += other.link_verdicts;
        self.node_verdicts += other.node_verdicts;
        self.reinjections += other.reinjections;
        self.packets_lost_unrecovered += other.packets_lost_unrecovered;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.duplicate_forks += other.duplicate_forks;
        self.inorder_holds += other.inorder_holds;
    }
}

// ---------------------------------------------------------------------
// Chaos-campaign environment knobs, in the same unit-tested pure-parse /
// warn-once shape as `ANTON_THREADS` (`par::parse_env_count`).

static CHAOS_SEED_WARNED: AtomicBool = AtomicBool::new(false);
static CHAOS_LEVEL_WARNED: AtomicBool = AtomicBool::new(false);

/// Default base seed for the chaos campaign when `ANTON_CHAOS_SEED` is
/// unset.
pub const CHAOS_SEED_DEFAULT: u64 = 1;

/// Highest fault-intensity level the chaos campaign defines (and the
/// default for `ANTON_CHAOS_LEVEL`).
pub const CHAOS_LEVEL_MAX: u32 = 3;

/// Pure parse of an `ANTON_CHAOS_SEED` value: any `u64`, including 0
/// (unlike thread counts, a zero seed is meaningful). `None` input
/// means the variable is unset. `Err` carries the rejected text.
pub fn parse_env_seed(raw: Option<&str>) -> Result<Option<u64>, String> {
    match raw {
        None => Ok(None),
        Some(s) => match s.trim().parse::<u64>() {
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(s.to_owned()),
        },
    }
}

/// Pure parse of an `ANTON_CHAOS_LEVEL` value: an integer in
/// `0..=`[`CHAOS_LEVEL_MAX`]. `Err` carries the rejected text, including
/// in-range-syntax-but-out-of-bounds values.
pub fn parse_env_level(raw: Option<&str>) -> Result<Option<u32>, String> {
    match raw {
        None => Ok(None),
        Some(s) => match s.trim().parse::<u32>() {
            Ok(n) if n <= CHAOS_LEVEL_MAX => Ok(Some(n)),
            _ => Err(s.to_owned()),
        },
    }
}

fn resolve_seed(var: &str, raw: Option<&str>, fallback: u64, warned: &AtomicBool) -> u64 {
    match parse_env_seed(raw) {
        Ok(Some(n)) => n,
        Ok(None) => fallback,
        Err(bad) => {
            if !warned.swap(true, Ordering::Relaxed) {
                eprintln!("warning: ignoring invalid {var}={bad:?} (want an unsigned integer)");
            }
            fallback
        }
    }
}

fn resolve_level(var: &str, raw: Option<&str>, fallback: u32, warned: &AtomicBool) -> u32 {
    match parse_env_level(raw) {
        Ok(Some(n)) => n,
        Ok(None) => fallback,
        Err(bad) => {
            if !warned.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: ignoring invalid {var}={bad:?} (want an integer in 0..={CHAOS_LEVEL_MAX})"
                );
            }
            fallback
        }
    }
}

/// Base seed for the chaos campaign: `ANTON_CHAOS_SEED`, defaulting to
/// [`CHAOS_SEED_DEFAULT`]. Invalid values warn once per process and
/// fall back to the default.
pub fn chaos_seed_from_env() -> u64 {
    let raw = std::env::var("ANTON_CHAOS_SEED").ok();
    resolve_seed(
        "ANTON_CHAOS_SEED",
        raw.as_deref(),
        CHAOS_SEED_DEFAULT,
        &CHAOS_SEED_WARNED,
    )
}

/// Highest fault-intensity level the chaos campaign sweeps to:
/// `ANTON_CHAOS_LEVEL` in `0..=`[`CHAOS_LEVEL_MAX`], defaulting to the
/// full sweep. Invalid values warn once per process and fall back.
pub fn chaos_level_from_env() -> u32 {
    let raw = std::env::var("ANTON_CHAOS_LEVEL").ok();
    resolve_level(
        "ANTON_CHAOS_LEVEL",
        raw.as_deref(),
        CHAOS_LEVEL_MAX,
        &CHAOS_LEVEL_WARNED,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_seed_accepts_zero_and_whitespace() {
        assert_eq!(parse_env_seed(None), Ok(None));
        assert_eq!(parse_env_seed(Some("0")), Ok(Some(0)));
        assert_eq!(parse_env_seed(Some(" 42 ")), Ok(Some(42)));
        assert_eq!(
            parse_env_seed(Some("18446744073709551615")),
            Ok(Some(u64::MAX))
        );
    }

    #[test]
    fn parse_seed_rejects_garbage() {
        assert_eq!(parse_env_seed(Some("")), Err(String::new()));
        assert_eq!(parse_env_seed(Some("-1")), Err("-1".to_owned()));
        assert_eq!(parse_env_seed(Some("3.5")), Err("3.5".to_owned()));
        assert_eq!(parse_env_seed(Some("many")), Err("many".to_owned()));
    }

    #[test]
    fn parse_level_bounds() {
        assert_eq!(parse_env_level(None), Ok(None));
        assert_eq!(parse_env_level(Some("0")), Ok(Some(0)));
        assert_eq!(parse_env_level(Some("3")), Ok(Some(3)));
        assert_eq!(parse_env_level(Some("4")), Err("4".to_owned()));
        assert_eq!(parse_env_level(Some("-2")), Err("-2".to_owned()));
        assert_eq!(parse_env_level(Some("max")), Err("max".to_owned()));
    }

    #[test]
    fn resolve_falls_back_and_warns_once() {
        let warned = AtomicBool::new(false);
        assert_eq!(resolve_seed("X", Some("bad"), 7, &warned), 7);
        assert!(warned.load(Ordering::Relaxed));
        assert_eq!(resolve_seed("X", Some("9"), 7, &warned), 9);
        assert_eq!(resolve_seed("X", None, 7, &warned), 7);

        let warned = AtomicBool::new(false);
        assert_eq!(resolve_level("Y", Some("99"), 2, &warned), 2);
        assert!(warned.load(Ordering::Relaxed));
        assert_eq!(resolve_level("Y", Some("1"), 2, &warned), 1);
    }

    #[test]
    fn backoff_grows_exponentially_and_is_seeded() {
        let cfg = RecoveryConfig::recovering(11);
        let d1 = cfg.backoff_delay(5, 1);
        let d2 = cfg.backoff_delay(5, 2);
        let d3 = cfg.backoff_delay(5, 3);
        // Base 200/400/800 ns plus jitter in [0, 100): strictly ordered.
        assert!(d1 < d2 && d2 < d3, "{d1:?} {d2:?} {d3:?}");
        // Deterministic per (seed, uid, attempt)…
        assert_eq!(d1, RecoveryConfig::recovering(11).backoff_delay(5, 1));
        // …and decorrelated across uids (jitter differs).
        assert_ne!(d1, cfg.backoff_delay(6, 1));
    }

    #[test]
    fn ack_ambiguity_draw_is_deterministic_and_gated() {
        let cfg = RecoveryConfig::recovering(3).with_dup_delivery_rate(1.0);
        assert!(cfg.final_attempt_crossed(10, 99));
        let never = RecoveryConfig::recovering(3).with_dup_delivery_rate(0.0);
        assert!(!never.final_attempt_crossed(10, 99));
        assert!(!RecoveryConfig::disabled().final_attempt_crossed(10, 99));
        // Roughly rate-proportional over many draws.
        let cfg = RecoveryConfig::recovering(3).with_dup_delivery_rate(0.25);
        let hits = (0..4000)
            .filter(|&u| cfg.final_attempt_crossed(7, u))
            .count();
        assert!((800..1200).contains(&hits), "hits={hits}");
    }
}
