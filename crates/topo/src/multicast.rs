//! Multicast patterns.
//!
//! Anton's network "supports a powerful multicast mechanism that allows a
//! single packet to be sent to an arbitrary set of local or remote
//! destination clients. When a multicast packet is injected into the
//! network or arrives at a node, a table lookup is used to determine the
//! set of local clients and outgoing network links to which the packet
//! should be forwarded. Up to 256 multicast patterns per node can be
//! precomputed" (§III.A).
//!
//! We build patterns as the union of dimension-ordered unicast routes from
//! the source to every destination. Because the route between any pair is
//! unique and deterministic, the union is a tree rooted at the source, so
//! each node receives each multicast packet exactly once — the property
//! the hardware tables rely on.

use crate::coords::{Coord, LinkDir, NodeId, TorusDims};
use crate::route::Route;
use std::collections::BTreeMap;

/// Hardware limit on precomputed multicast patterns per node (§III.A).
pub const MAX_PATTERNS_PER_NODE: usize = 256;

/// Per-node forwarding entry of a multicast pattern.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatternEntry {
    /// Outgoing torus links on which to forward the packet.
    pub forward: Vec<LinkDir>,
    /// Whether this node delivers the packet to a local client.
    pub deliver: bool,
}

/// A multicast tree rooted at `source` covering `destinations`.
///
/// ```
/// use anton_topo::{Coord, MulticastPattern, TorusDims};
/// let dims = TorusDims::anton_512();
/// let src = Coord::new(0, 0, 0);
/// let dests: Vec<Coord> = (1..=4).map(|x| Coord::new(x, 0, 0)).collect();
/// let p = MulticastPattern::build(src, &dests, dims);
/// // A chain of 4 destinations costs 4 link traversals (unicasts: 10).
/// assert_eq!(p.total_link_traversals(), 4);
/// assert_eq!(p.delivery_set().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct MulticastPattern {
    source: Coord,
    dims: TorusDims,
    /// Entries keyed by node id; nodes not present neither forward nor
    /// deliver (they would never see the packet).
    entries: BTreeMap<NodeId, PatternEntry>,
}

impl MulticastPattern {
    /// Build the tree for `source` → each of `destinations` (local delivery
    /// at the source is allowed: a destination equal to the source gets a
    /// `deliver` mark with no network hop).
    pub fn build(source: Coord, destinations: &[Coord], dims: TorusDims) -> MulticastPattern {
        let mut entries: BTreeMap<NodeId, PatternEntry> = BTreeMap::new();
        for &dst in destinations {
            let route = Route::compute(source, dst, dims);
            let mut cur = source;
            for &step in route.steps() {
                let entry = entries.entry(cur.node_id(dims)).or_default();
                if !entry.forward.contains(&step) {
                    entry.forward.push(step);
                }
                cur = cur.step(step, dims);
            }
            entries.entry(dst.node_id(dims)).or_default().deliver = true;
        }
        // Fixed forwarding order for determinism.
        for e in entries.values_mut() {
            e.forward.sort_by_key(|l| l.index());
        }
        MulticastPattern {
            source,
            dims,
            entries,
        }
    }

    /// Broadcast to every node along one ring of the torus passing through
    /// `source` (used by the dimension-ordered all-reduce, §IV.B.4).
    pub fn line_broadcast(
        source: Coord,
        dim: crate::coords::Dim,
        dims: TorusDims,
        include_self: bool,
    ) -> MulticastPattern {
        let n = dims.len(dim);
        let dests: Vec<Coord> = (0..n)
            .filter(|&v| include_self || v != source.get(dim))
            .map(|v| source.with(dim, v))
            .collect();
        MulticastPattern::build(source, &dests, dims)
    }

    /// The source node.
    pub fn source(&self) -> Coord {
        self.source
    }

    /// Torus dimensions the pattern was built for.
    pub fn dims(&self) -> TorusDims {
        self.dims
    }

    /// The entry for `node`, if the packet ever visits it.
    pub fn entry(&self, node: NodeId) -> Option<&PatternEntry> {
        self.entries.get(&node)
    }

    /// All (node, entry) pairs in id order.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, &PatternEntry)> {
        self.entries.iter().map(|(&n, e)| (n, e))
    }

    /// Nodes marked for local delivery.
    pub fn delivery_set(&self) -> Vec<NodeId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.deliver)
            .map(|(&n, _)| n)
            .collect()
    }

    /// Total number of link traversals the multicast performs (tree edges).
    pub fn total_link_traversals(&self) -> usize {
        self.entries.values().map(|e| e.forward.len()).sum()
    }

    /// Maximum hop depth of the tree (latency-determining path length).
    pub fn max_depth(&self) -> u32 {
        self.delivery_set()
            .iter()
            .map(|&n| crate::coords::hop_count(self.source, n.coord(self.dims), self.dims))
            .max()
            .unwrap_or(0)
    }

    /// Simulate delivery: walk the tree and return every node that receives
    /// the packet, with its hop distance. Used by tests and by the
    /// analytical (non-DES) latency paths.
    pub fn walk(&self) -> Vec<(NodeId, u32)> {
        let mut out = Vec::new();
        let mut stack = vec![(self.source, 0u32)];
        while let Some((cur, depth)) = stack.pop() {
            let id = cur.node_id(self.dims);
            if let Some(entry) = self.entries.get(&id) {
                if entry.deliver {
                    out.push((id, depth));
                }
                for &l in &entry.forward {
                    stack.push((cur.step(l, self.dims), depth + 1));
                }
            }
        }
        out.sort_by_key(|&(n, _)| n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::Dim;
    use proptest::prelude::*;

    #[test]
    fn singleton_pattern_is_the_unicast_route() {
        let dims = TorusDims::new(8, 8, 8);
        let src = Coord::new(0, 0, 0);
        let dst = Coord::new(3, 0, 0);
        let p = MulticastPattern::build(src, &[dst], dims);
        assert_eq!(p.delivery_set(), vec![dst.node_id(dims)]);
        assert_eq!(p.total_link_traversals(), 3);
        assert_eq!(p.max_depth(), 3);
    }

    #[test]
    fn self_delivery_needs_no_links() {
        let dims = TorusDims::new(4, 4, 4);
        let src = Coord::new(1, 1, 1);
        let p = MulticastPattern::build(src, &[src], dims);
        assert_eq!(p.delivery_set(), vec![src.node_id(dims)]);
        assert_eq!(p.total_link_traversals(), 0);
    }

    #[test]
    fn line_broadcast_covers_the_ring() {
        let dims = TorusDims::new(8, 8, 8);
        let src = Coord::new(2, 5, 6);
        let p = MulticastPattern::line_broadcast(src, Dim::X, dims, false);
        let mut expected: Vec<NodeId> = (0..8)
            .filter(|&x| x != 2)
            .map(|x| Coord::new(x, 5, 6).node_id(dims))
            .collect();
        expected.sort();
        let mut got = p.delivery_set();
        got.sort();
        assert_eq!(got, expected);
        // Shortest-path both ways: max depth is half the ring.
        assert_eq!(p.max_depth(), 4);
        // Tree property: 7 deliveries but only 8 link traversals at most
        // (4 one way including the tie at distance 4, 3 the other way).
        assert_eq!(p.total_link_traversals(), 7);
    }

    #[test]
    fn multicast_saves_traversals_vs_unicast() {
        // Paper: positions are multicast to as many as 17 HTIS units;
        // the tree shares prefix links that repeated unicasts would re-send.
        let dims = TorusDims::new(8, 8, 8);
        let src = Coord::new(0, 0, 0);
        let dests: Vec<Coord> = (1..=4).map(|x| Coord::new(x, 0, 0)).collect();
        let p = MulticastPattern::build(src, &dests, dims);
        let unicast_total: u32 = dests
            .iter()
            .map(|&d| crate::coords::hop_count(src, d, dims))
            .sum();
        assert_eq!(unicast_total, 10);
        assert_eq!(p.total_link_traversals(), 4); // a single chain
    }

    proptest! {
        /// Every destination receives the packet exactly once, at its
        /// shortest-path hop distance, and non-destinations never deliver.
        #[test]
        fn walk_delivers_exactly_once(
            nx in 1u32..9, ny in 1u32..9, nz in 1u32..9,
            seed in 0u64..1_000_000,
        ) {
            let dims = TorusDims::new(nx, ny, nz);
            let n = dims.node_count() as u64;
            let src = NodeId((seed % n) as u32).coord(dims);
            // Derive a pseudo-random destination set from the seed.
            let mut dests = Vec::new();
            let mut s = seed;
            for _ in 0..(1 + seed % 9) {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let d = NodeId(((s >> 33) % n) as u32).coord(dims);
                if !dests.contains(&d) {
                    dests.push(d);
                }
            }
            let p = MulticastPattern::build(src, &dests, dims);
            let walked = p.walk();
            // Exactly once per destination:
            let mut expect: Vec<NodeId> = dests.iter().map(|c| c.node_id(dims)).collect();
            expect.sort();
            expect.dedup();
            let got: Vec<NodeId> = walked.iter().map(|&(id, _)| id).collect();
            prop_assert_eq!(&got, &expect);
            // At shortest-path depth:
            for (id, depth) in walked {
                prop_assert_eq!(
                    depth,
                    crate::coords::hop_count(src, id.coord(dims), dims)
                );
            }
        }

        /// The tree never uses more link traversals than repeated unicasts.
        #[test]
        fn tree_no_worse_than_unicasts(
            nx in 2u32..9, ny in 2u32..9, nz in 2u32..9,
            seed in 0u64..1_000_000,
        ) {
            let dims = TorusDims::new(nx, ny, nz);
            let n = dims.node_count() as u64;
            let src = NodeId((seed % n) as u32).coord(dims);
            let mut dests = Vec::new();
            let mut s = seed;
            for _ in 0..8 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
                dests.push(NodeId(((s >> 31) % n) as u32).coord(dims));
            }
            dests.sort();
            dests.dedup();
            let p = MulticastPattern::build(src, &dests, dims);
            let unicast: u32 = dests
                .iter()
                .map(|&d| crate::coords::hop_count(src, d, dims))
                .sum();
            prop_assert!(p.total_link_traversals() as u32 <= unicast);
        }
    }
}
