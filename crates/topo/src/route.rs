//! Dimension-ordered shortest-path routing.
//!
//! Packets on Anton route along X, then Y, then Z, taking the shorter way
//! around each ring (Figure 5 caption: "shortest-path routing is used along
//! each torus dimension"). Dimension-ordered routing on a torus with two
//! virtual channels is deadlock-free; we model the route itself here and
//! let `anton-net` handle channel occupancy.
//!
//! For fault experiments, [`Route::compute_avoiding`] routes around a
//! [`LinkMask`] of permanently dead links: it first tries dimension-ordered
//! routing with a per-ring way choice (short way if alive, else the long
//! way around), then falls back to a deterministic breadth-first search
//! over the surviving links, and reports [`RouteError::Unreachable`] when
//! no path exists instead of panicking.

use std::collections::VecDeque;
use std::fmt;

use crate::coords::{hop_count, wrap_step, Coord, Dim, LinkDir, TorusDims};

/// Set of permanently failed unidirectional links, indexed by
/// `node_id * 6 + link_dir` exactly like the network model's per-link
/// tables. An empty mask is the fault-free fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkMask {
    dims: TorusDims,
    dead: Vec<bool>,
    dead_count: usize,
}

impl LinkMask {
    /// A mask with every link alive.
    pub fn none(dims: TorusDims) -> LinkMask {
        LinkMask {
            dims,
            dead: vec![false; dims.node_count() as usize * 6],
            dead_count: 0,
        }
    }

    /// The torus this mask describes.
    pub fn dims(&self) -> TorusDims {
        self.dims
    }

    #[inline]
    fn idx(&self, node: Coord, link: LinkDir) -> usize {
        node.node_id(self.dims).index() * 6 + link.index()
    }

    /// Kill one unidirectional link (traffic leaving `node` via `link`).
    pub fn kill_link(&mut self, node: Coord, link: LinkDir) {
        let i = self.idx(node, link);
        if !self.dead[i] {
            self.dead[i] = true;
            self.dead_count += 1;
        }
    }

    /// Kill a physical cable: both directions between `node` and its
    /// neighbor along `link`.
    pub fn kill_cable(&mut self, node: Coord, link: LinkDir) {
        self.kill_link(node, link);
        let neighbor = node.step(link, self.dims);
        self.kill_link(neighbor, link.reverse());
    }

    /// Kill every link touching `node` (all six outgoing and all six
    /// incoming), isolating it from the fabric.
    pub fn kill_node(&mut self, node: Coord) {
        for &l in &LinkDir::ALL {
            self.kill_cable(node, l);
        }
    }

    /// Is the unidirectional link leaving `node` via `link` dead?
    #[inline]
    pub fn is_dead(&self, node: Coord, link: LinkDir) -> bool {
        self.dead[self.idx(node, link)]
    }

    /// Does the mask contain any dead link at all? Routing takes the
    /// fault-free fast path when this is false.
    #[inline]
    pub fn any_dead(&self) -> bool {
        self.dead_count > 0
    }

    /// Number of dead unidirectional links.
    pub fn dead_links(&self) -> usize {
        self.dead_count
    }
}

/// Routing failure in the presence of permanent link faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No path of surviving links connects `src` to `dst`.
    Unreachable {
        /// Route source.
        src: Coord,
        /// Route destination.
        dst: Coord,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unreachable { src, dst } => {
                write!(f, "no surviving path from {src} to {dst}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A fully materialized route: the sequence of link directions taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    src: Coord,
    dst: Coord,
    steps: Vec<LinkDir>,
}

impl Route {
    /// Compute the dimension-ordered shortest route from `src` to `dst`.
    pub fn compute(src: Coord, dst: Coord, dims: TorusDims) -> Route {
        let mut steps = Vec::new();
        for &dim in &Dim::ALL {
            let (n, dir) = wrap_step(src.get(dim), dst.get(dim), dims.len(dim));
            for _ in 0..n {
                steps.push(LinkDir { dim, dir });
            }
        }
        Route { src, dst, steps }
    }

    /// Source coordinate.
    pub fn src(&self) -> Coord {
        self.src
    }

    /// Destination coordinate.
    pub fn dst(&self) -> Coord {
        self.dst
    }

    /// The link directions in order.
    pub fn steps(&self) -> &[LinkDir] {
        &self.steps
    }

    /// Number of inter-node hops.
    pub fn hops(&self) -> u32 {
        self.steps.len() as u32
    }

    /// The sequence of nodes visited, starting with `src` and ending with
    /// `dst` (length `hops() + 1`).
    pub fn path(&self, dims: TorusDims) -> Vec<Coord> {
        let mut nodes = Vec::with_capacity(self.steps.len() + 1);
        let mut cur = self.src;
        nodes.push(cur);
        for &s in &self.steps {
            cur = cur.step(s, dims);
            nodes.push(cur);
        }
        nodes
    }

    /// Given the current node, the next link to take, if any. Used by the
    /// per-hop network model: routing is recomputed locally at every node
    /// exactly as torus hardware does (the header carries only `dst`).
    pub fn next_link_from(cur: Coord, dst: Coord, dims: TorusDims) -> Option<LinkDir> {
        for &dim in &Dim::ALL {
            let (n, dir) = wrap_step(cur.get(dim), dst.get(dim), dims.len(dim));
            if n > 0 {
                return Some(LinkDir { dim, dir });
            }
        }
        None
    }

    /// Compute a route from `src` to `dst` that avoids every dead link in
    /// `mask`.
    ///
    /// With an all-alive mask this returns exactly [`Route::compute`]'s
    /// route (the fault-free path is bit-identical, so an empty mask is
    /// zero-cost for determinism). Otherwise it first tries
    /// dimension-ordered routing where each ring may take the long way
    /// around a dead segment, and falls back to a deterministic BFS over
    /// surviving links when dimension order alone cannot get through.
    pub fn compute_avoiding(
        src: Coord,
        dst: Coord,
        dims: TorusDims,
        mask: &LinkMask,
    ) -> Result<Route, RouteError> {
        if !mask.any_dead() {
            return Ok(Route::compute(src, dst, dims));
        }
        if let Some(steps) = dimension_ordered_avoiding(src, dst, dims, mask) {
            return Ok(Route { src, dst, steps });
        }
        match bfs_avoiding(src, dst, dims, mask) {
            Some(steps) => Ok(Route { src, dst, steps }),
            None => Err(RouteError::Unreachable { src, dst }),
        }
    }
}

/// Dimension-ordered routing with a per-ring way choice: along each axis
/// take the short way if all its links survive, else the long way around;
/// `None` if some axis is blocked both ways.
fn dimension_ordered_avoiding(
    src: Coord,
    dst: Coord,
    dims: TorusDims,
    mask: &LinkMask,
) -> Option<Vec<LinkDir>> {
    let mut steps = Vec::new();
    let mut cur = src;
    for &dim in &Dim::ALL {
        let len = dims.len(dim);
        let (n_short, dir_short) = wrap_step(cur.get(dim), dst.get(dim), len);
        if n_short == 0 {
            continue;
        }
        // Try the short way first, then the long way around the ring.
        let candidates = [(n_short, dir_short), (len - n_short, dir_short.opposite())];
        let mut advanced = false;
        for &(n, dir) in &candidates {
            let link = LinkDir { dim, dir };
            let mut probe = cur;
            let mut alive = true;
            for _ in 0..n {
                if mask.is_dead(probe, link) {
                    alive = false;
                    break;
                }
                probe = probe.step(link, dims);
            }
            if alive {
                for _ in 0..n {
                    steps.push(link);
                    cur = cur.step(link, dims);
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            return None;
        }
    }
    debug_assert_eq!(cur, dst);
    Some(steps)
}

/// Deterministic breadth-first search over surviving links. Neighbors are
/// expanded in `LinkDir::ALL` order and nodes dequeued FIFO, so the result
/// is a shortest surviving path and identical run over run.
fn bfs_avoiding(src: Coord, dst: Coord, dims: TorusDims, mask: &LinkMask) -> Option<Vec<LinkDir>> {
    if src == dst {
        return Some(Vec::new());
    }
    let n = dims.node_count() as usize;
    // parent[v] = link taken *into* v, or None if unvisited (src is its
    // own marker via `visited`).
    let mut parent: Vec<Option<LinkDir>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[src.node_id(dims).index()] = true;
    queue.push_back(src);
    while let Some(cur) = queue.pop_front() {
        for &link in &LinkDir::ALL {
            if mask.is_dead(cur, link) {
                continue;
            }
            let next = cur.step(link, dims);
            let ni = next.node_id(dims).index();
            if visited[ni] {
                continue;
            }
            visited[ni] = true;
            parent[ni] = Some(link);
            if next == dst {
                // Reconstruct by walking parents back to src.
                let mut steps = Vec::new();
                let mut node = next;
                while node != src {
                    let link = parent[node.node_id(dims).index()]
                        .expect("visited non-src node has a parent link");
                    steps.push(link);
                    node = node.step(link.reverse(), dims);
                }
                steps.reverse();
                return Some(steps);
            }
            queue.push_back(next);
        }
    }
    None
}

/// Convenience: hop count via route computation must equal the closed-form
/// count (checked in tests; exposed for callers who want both).
pub fn route_hops(src: Coord, dst: Coord, dims: TorusDims) -> u32 {
    hop_count(src, dst, dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::Dir;
    use proptest::prelude::*;

    #[test]
    fn route_to_self_is_empty() {
        let dims = TorusDims::new(8, 8, 8);
        let c = Coord::new(3, 4, 5);
        let r = Route::compute(c, c, dims);
        assert_eq!(r.hops(), 0);
        assert_eq!(r.path(dims), vec![c]);
        assert_eq!(Route::next_link_from(c, c, dims), None);
    }

    #[test]
    fn route_is_dimension_ordered() {
        let dims = TorusDims::new(8, 8, 8);
        let r = Route::compute(Coord::new(0, 0, 0), Coord::new(2, 3, 1), dims);
        let dims_seq: Vec<usize> = r.steps().iter().map(|s| s.dim.index()).collect();
        let mut sorted = dims_seq.clone();
        sorted.sort_unstable();
        assert_eq!(dims_seq, sorted, "dims must be non-decreasing");
        assert_eq!(r.hops(), 6);
    }

    #[test]
    fn route_takes_the_short_way_around() {
        let dims = TorusDims::new(8, 8, 8);
        let r = Route::compute(Coord::new(7, 0, 0), Coord::new(1, 0, 0), dims);
        assert_eq!(r.hops(), 2); // 7 → 0 → 1 wrapping forward
        let path = r.path(dims);
        assert_eq!(path[1], Coord::new(0, 0, 0));
    }

    proptest! {
        /// Route length equals closed-form hop count; the path ends at dst;
        /// per-hop local recomputation reproduces the same route.
        #[test]
        fn route_properties(
            nx in 1u32..9, ny in 1u32..9, nz in 1u32..9,
            seed in 0u64..10_000,
        ) {
            let dims = TorusDims::new(nx, ny, nz);
            let n = dims.node_count() as u64;
            let a = crate::coords::NodeId((seed % n) as u32).coord(dims);
            let b = crate::coords::NodeId(((seed / n) % n) as u32).coord(dims);
            let r = Route::compute(a, b, dims);
            prop_assert_eq!(r.hops(), hop_count(a, b, dims));
            let path = r.path(dims);
            prop_assert_eq!(*path.first().unwrap(), a);
            prop_assert_eq!(*path.last().unwrap(), b);
            // Per-hop recomputation agrees with the precomputed route.
            let mut cur = a;
            for &step in r.steps() {
                let next = Route::next_link_from(cur, b, dims).unwrap();
                prop_assert_eq!(next, step);
                cur = cur.step(next, dims);
            }
            prop_assert_eq!(cur, b);
        }

        /// Hop count never exceeds the machine's diameter.
        #[test]
        fn hops_bounded_by_diameter(
            nx in 1u32..9, ny in 1u32..9, nz in 1u32..9,
            seed in 0u64..10_000,
        ) {
            let dims = TorusDims::new(nx, ny, nz);
            let n = dims.node_count() as u64;
            let a = crate::coords::NodeId((seed % n) as u32).coord(dims);
            let b = crate::coords::NodeId(((seed * 31) % n) as u32).coord(dims);
            prop_assert!(hop_count(a, b, dims) <= dims.max_hops());
        }
    }

    /// Walk a route's steps from src checking every link survives `mask`.
    fn assert_route_valid(r: &Route, dims: TorusDims, mask: &LinkMask) {
        let mut cur = r.src();
        for &s in r.steps() {
            assert!(
                !mask.is_dead(cur, s),
                "route crosses dead link {s} at {cur}"
            );
            cur = cur.step(s, dims);
        }
        assert_eq!(cur, r.dst(), "route must end at its destination");
    }

    #[test]
    fn empty_mask_reproduces_fault_free_route() {
        let dims = TorusDims::new(8, 8, 8);
        let mask = LinkMask::none(dims);
        for (a, b) in [
            (Coord::new(0, 0, 0), Coord::new(2, 3, 1)),
            (Coord::new(7, 0, 0), Coord::new(1, 0, 0)),
            (Coord::new(3, 3, 3), Coord::new(3, 3, 3)),
        ] {
            let plain = Route::compute(a, b, dims);
            let avoided = Route::compute_avoiding(a, b, dims, &mask).unwrap();
            assert_eq!(plain, avoided, "empty mask must be bit-identical");
        }
    }

    #[test]
    fn dead_link_takes_the_long_way_around() {
        let dims = TorusDims::new(8, 8, 8);
        let src = Coord::new(0, 0, 0);
        let dst = Coord::new(2, 0, 0);
        let mut mask = LinkMask::none(dims);
        // Kill the first X+ hop out of the source; short way is blocked.
        mask.kill_cable(
            src,
            LinkDir {
                dim: Dim::X,
                dir: Dir::Plus,
            },
        );
        let r = Route::compute_avoiding(src, dst, dims, &mask).unwrap();
        assert_route_valid(&r, dims, &mask);
        // Long way around the 8-ring: 6 X− hops.
        assert_eq!(r.hops(), 6);
        assert!(r
            .steps()
            .iter()
            .all(|s| s.dim == Dim::X && s.dir == Dir::Minus));
    }

    #[test]
    fn blocked_ring_falls_back_to_bfs_detour() {
        let dims = TorusDims::new(4, 4, 4);
        let src = Coord::new(0, 0, 0);
        let dst = Coord::new(1, 0, 0);
        let mut mask = LinkMask::none(dims);
        // Sever the entire x-ring at y=0, z=0 in both directions: the only
        // way from (0,0,0) to (1,0,0) is to leave the ring (e.g. via Y).
        for x in 0..4 {
            mask.kill_cable(
                Coord::new(x, 0, 0),
                LinkDir {
                    dim: Dim::X,
                    dir: Dir::Plus,
                },
            );
        }
        let r = Route::compute_avoiding(src, dst, dims, &mask).unwrap();
        assert_route_valid(&r, dims, &mask);
        // BFS shortest detour: step off the ring, across, and back = 3 hops.
        assert_eq!(r.hops(), 3);
    }

    #[test]
    fn isolated_node_is_unreachable_not_a_panic() {
        let dims = TorusDims::new(4, 4, 4);
        let dead = Coord::new(2, 2, 2);
        let mut mask = LinkMask::none(dims);
        mask.kill_node(dead);
        let err = Route::compute_avoiding(Coord::new(0, 0, 0), dead, dims, &mask).unwrap_err();
        assert_eq!(
            err,
            RouteError::Unreachable {
                src: Coord::new(0, 0, 0),
                dst: dead
            }
        );
        // Routes between other nodes still work around the hole.
        let r =
            Route::compute_avoiding(Coord::new(1, 2, 2), Coord::new(3, 2, 2), dims, &mask).unwrap();
        assert_route_valid(&r, dims, &mask);
    }

    #[test]
    fn kill_cable_kills_both_directions() {
        let dims = TorusDims::new(8, 8, 8);
        let mut mask = LinkMask::none(dims);
        let node = Coord::new(1, 2, 3);
        let link = LinkDir {
            dim: Dim::Y,
            dir: Dir::Minus,
        };
        mask.kill_cable(node, link);
        assert!(mask.is_dead(node, link));
        assert!(mask.is_dead(node.step(link, dims), link.reverse()));
        assert_eq!(mask.dead_links(), 2);
        assert!(mask.any_dead());
    }

    proptest! {
        /// With random cable kills, `compute_avoiding` either returns a
        /// route that crosses only live links and ends at the destination,
        /// or a well-formed Unreachable error — never a panic.
        #[test]
        fn avoiding_routes_are_valid_or_unreachable(
            seed in 0u64..10_000,
            kills in 0usize..40,
        ) {
            let dims = TorusDims::new(4, 4, 4);
            let n = dims.node_count() as u64;
            let mut mask = LinkMask::none(dims);
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for _ in 0..kills {
                let node = crate::coords::NodeId((next() % n) as u32).coord(dims);
                let link = LinkDir::from_index((next() % 6) as usize);
                mask.kill_cable(node, link);
            }
            let a = crate::coords::NodeId((next() % n) as u32).coord(dims);
            let b = crate::coords::NodeId((next() % n) as u32).coord(dims);
            match Route::compute_avoiding(a, b, dims, &mask) {
                Ok(r) => {
                    prop_assert_eq!(r.src(), a);
                    prop_assert_eq!(r.dst(), b);
                    let mut cur = a;
                    for &s in r.steps() {
                        prop_assert!(!mask.is_dead(cur, s));
                        cur = cur.step(s, dims);
                    }
                    prop_assert_eq!(cur, b);
                }
                Err(RouteError::Unreachable { src, dst }) => {
                    prop_assert_eq!(src, a);
                    prop_assert_eq!(dst, b);
                    prop_assert!(mask.any_dead(), "fault-free fabric is connected");
                }
            }
        }
    }
}
