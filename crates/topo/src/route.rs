//! Dimension-ordered shortest-path routing.
//!
//! Packets on Anton route along X, then Y, then Z, taking the shorter way
//! around each ring (Figure 5 caption: "shortest-path routing is used along
//! each torus dimension"). Dimension-ordered routing on a torus with two
//! virtual channels is deadlock-free; we model the route itself here and
//! let `anton-net` handle channel occupancy.

use crate::coords::{hop_count, wrap_step, Coord, Dim, LinkDir, TorusDims};

/// A fully materialized route: the sequence of link directions taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    src: Coord,
    dst: Coord,
    steps: Vec<LinkDir>,
}

impl Route {
    /// Compute the dimension-ordered shortest route from `src` to `dst`.
    pub fn compute(src: Coord, dst: Coord, dims: TorusDims) -> Route {
        let mut steps = Vec::new();
        for &dim in &Dim::ALL {
            let (n, dir) = wrap_step(src.get(dim), dst.get(dim), dims.len(dim));
            for _ in 0..n {
                steps.push(LinkDir { dim, dir });
            }
        }
        Route { src, dst, steps }
    }

    /// Source coordinate.
    pub fn src(&self) -> Coord {
        self.src
    }

    /// Destination coordinate.
    pub fn dst(&self) -> Coord {
        self.dst
    }

    /// The link directions in order.
    pub fn steps(&self) -> &[LinkDir] {
        &self.steps
    }

    /// Number of inter-node hops.
    pub fn hops(&self) -> u32 {
        self.steps.len() as u32
    }

    /// The sequence of nodes visited, starting with `src` and ending with
    /// `dst` (length `hops() + 1`).
    pub fn path(&self, dims: TorusDims) -> Vec<Coord> {
        let mut nodes = Vec::with_capacity(self.steps.len() + 1);
        let mut cur = self.src;
        nodes.push(cur);
        for &s in &self.steps {
            cur = cur.step(s, dims);
            nodes.push(cur);
        }
        nodes
    }

    /// Given the current node, the next link to take, if any. Used by the
    /// per-hop network model: routing is recomputed locally at every node
    /// exactly as torus hardware does (the header carries only `dst`).
    pub fn next_link_from(cur: Coord, dst: Coord, dims: TorusDims) -> Option<LinkDir> {
        for &dim in &Dim::ALL {
            let (n, dir) = wrap_step(cur.get(dim), dst.get(dim), dims.len(dim));
            if n > 0 {
                return Some(LinkDir { dim, dir });
            }
        }
        None
    }
}

/// Convenience: hop count via route computation must equal the closed-form
/// count (checked in tests; exposed for callers who want both).
pub fn route_hops(src: Coord, dst: Coord, dims: TorusDims) -> u32 {
    hop_count(src, dst, dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn route_to_self_is_empty() {
        let dims = TorusDims::new(8, 8, 8);
        let c = Coord::new(3, 4, 5);
        let r = Route::compute(c, c, dims);
        assert_eq!(r.hops(), 0);
        assert_eq!(r.path(dims), vec![c]);
        assert_eq!(Route::next_link_from(c, c, dims), None);
    }

    #[test]
    fn route_is_dimension_ordered() {
        let dims = TorusDims::new(8, 8, 8);
        let r = Route::compute(Coord::new(0, 0, 0), Coord::new(2, 3, 1), dims);
        let dims_seq: Vec<usize> = r.steps().iter().map(|s| s.dim.index()).collect();
        let mut sorted = dims_seq.clone();
        sorted.sort_unstable();
        assert_eq!(dims_seq, sorted, "dims must be non-decreasing");
        assert_eq!(r.hops(), 6);
    }

    #[test]
    fn route_takes_the_short_way_around() {
        let dims = TorusDims::new(8, 8, 8);
        let r = Route::compute(Coord::new(7, 0, 0), Coord::new(1, 0, 0), dims);
        assert_eq!(r.hops(), 2); // 7 → 0 → 1 wrapping forward
        let path = r.path(dims);
        assert_eq!(path[1], Coord::new(0, 0, 0));
    }

    proptest! {
        /// Route length equals closed-form hop count; the path ends at dst;
        /// per-hop local recomputation reproduces the same route.
        #[test]
        fn route_properties(
            nx in 1u32..9, ny in 1u32..9, nz in 1u32..9,
            seed in 0u64..10_000,
        ) {
            let dims = TorusDims::new(nx, ny, nz);
            let n = dims.node_count() as u64;
            let a = crate::coords::NodeId((seed % n) as u32).coord(dims);
            let b = crate::coords::NodeId(((seed / n) % n) as u32).coord(dims);
            let r = Route::compute(a, b, dims);
            prop_assert_eq!(r.hops(), hop_count(a, b, dims));
            let path = r.path(dims);
            prop_assert_eq!(*path.first().unwrap(), a);
            prop_assert_eq!(*path.last().unwrap(), b);
            // Per-hop recomputation agrees with the precomputed route.
            let mut cur = a;
            for &step in r.steps() {
                let next = Route::next_link_from(cur, b, dims).unwrap();
                prop_assert_eq!(next, step);
                cur = cur.step(next, dims);
            }
            prop_assert_eq!(cur, b);
        }

        /// Hop count never exceeds the machine's diameter.
        #[test]
        fn hops_bounded_by_diameter(
            nx in 1u32..9, ny in 1u32..9, nz in 1u32..9,
            seed in 0u64..10_000,
        ) {
            let dims = TorusDims::new(nx, ny, nz);
            let n = dims.node_count() as u64;
            let a = crate::coords::NodeId((seed % n) as u32).coord(dims);
            let b = crate::coords::NodeId(((seed * 31) % n) as u32).coord(dims);
            prop_assert!(hop_count(a, b, dims) <= dims.max_hops());
        }
    }
}
