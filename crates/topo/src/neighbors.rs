//! Neighbor enumeration.
//!
//! MD on Anton exchanges data with spatial neighbors: the six face
//! neighbors (direct torus links) and, for migration and staged exchange
//! comparisons, all 26 surrounding boxes (§IV.B.5: "multicasting a counted
//! remote write to all 26 nearest neighbors").

use crate::coords::{Coord, LinkDir, TorusDims};

/// The six face neighbors (one per torus link), with the link that reaches
/// each. On tori with an axis of length 1 or 2 some neighbors coincide;
/// the list is deduplicated by coordinate, keeping the first link.
pub fn face_neighbors(c: Coord, dims: TorusDims) -> Vec<(LinkDir, Coord)> {
    let mut out: Vec<(LinkDir, Coord)> = Vec::with_capacity(6);
    for &l in &LinkDir::ALL {
        let n = c.step(l, dims);
        if n != c && !out.iter().any(|&(_, existing)| existing == n) {
            out.push((l, n));
        }
    }
    out
}

/// All distinct boxes in the 3×3×3 neighborhood of `c`, excluding `c`
/// itself — up to 26 on a large torus, fewer when axes are short enough
/// for wraparound to alias offsets.
pub fn moore_neighbors(c: Coord, dims: TorusDims) -> Vec<Coord> {
    let mut out = Vec::with_capacity(26);
    for dz in [-1i64, 0, 1] {
        for dy in [-1i64, 0, 1] {
            for dx in [-1i64, 0, 1] {
                if dx == 0 && dy == 0 && dz == 0 {
                    continue;
                }
                let n = offset(c, [dx, dy, dz], dims);
                if n != c && !out.contains(&n) {
                    out.push(n);
                }
            }
        }
    }
    out
}

/// Apply a (dx, dy, dz) offset with wraparound.
pub fn offset(c: Coord, d: [i64; 3], dims: TorusDims) -> Coord {
    let wrap = |v: u32, dv: i64, n: u32| -> u32 { ((v as i64 + dv).rem_euclid(n as i64)) as u32 };
    Coord {
        x: wrap(c.x, d[0], dims.nx),
        y: wrap(c.y, d[1], dims.ny),
        z: wrap(c.z, d[2], dims.nz),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn large_torus_has_26_moore_neighbors() {
        let dims = TorusDims::new(8, 8, 8);
        let n = moore_neighbors(Coord::new(3, 3, 3), dims);
        assert_eq!(n.len(), 26);
        // Wraparound case at the corner:
        let n = moore_neighbors(Coord::new(0, 0, 0), dims);
        assert_eq!(n.len(), 26);
        assert!(n.contains(&Coord::new(7, 7, 7)));
    }

    #[test]
    fn face_neighbors_on_full_torus() {
        let dims = TorusDims::new(8, 8, 8);
        let n = face_neighbors(Coord::new(0, 0, 0), dims);
        assert_eq!(n.len(), 6);
        assert!(n.iter().any(|&(_, c)| c == Coord::new(7, 0, 0)));
        assert!(n.iter().any(|&(_, c)| c == Coord::new(1, 0, 0)));
    }

    #[test]
    fn short_axes_deduplicate() {
        // A 2-long axis: X+ and X− reach the same node.
        let dims = TorusDims::new(2, 8, 8);
        let n = face_neighbors(Coord::new(0, 0, 0), dims);
        assert_eq!(n.len(), 5);
        // A 1-long axis: no X neighbor at all.
        let dims = TorusDims::new(1, 8, 8);
        let n = face_neighbors(Coord::new(0, 0, 0), dims);
        assert_eq!(n.len(), 4);
    }

    #[test]
    fn offset_wraps() {
        let dims = TorusDims::new(8, 8, 8);
        assert_eq!(
            offset(Coord::new(0, 0, 0), [-1, -1, -1], dims),
            Coord::new(7, 7, 7)
        );
        assert_eq!(
            offset(Coord::new(7, 7, 7), [1, 1, 1], dims),
            Coord::new(0, 0, 0)
        );
    }

    proptest! {
        /// Moore neighborhoods are symmetric: if b is a neighbor of a,
        /// then a is a neighbor of b.
        #[test]
        fn moore_symmetry(
            nx in 1u32..9, ny in 1u32..9, nz in 1u32..9,
            seed in 0u64..100_000,
        ) {
            let dims = TorusDims::new(nx, ny, nz);
            let n = dims.node_count() as u64;
            let a = crate::coords::NodeId((seed % n) as u32).coord(dims);
            for b in moore_neighbors(a, dims) {
                prop_assert!(moore_neighbors(b, dims).contains(&a));
            }
        }

        /// Every Moore neighbor is within 1 wrap-step per dimension.
        #[test]
        fn moore_within_one_step(
            nx in 1u32..9, ny in 1u32..9, nz in 1u32..9,
            seed in 0u64..100_000,
        ) {
            let dims = TorusDims::new(nx, ny, nz);
            let n = dims.node_count() as u64;
            let a = crate::coords::NodeId((seed % n) as u32).coord(dims);
            for b in moore_neighbors(a, dims) {
                let h = crate::coords::hops_by_dim(a, b, dims);
                prop_assert!(h.iter().all(|&d| d <= 1), "hops {h:?}");
            }
        }
    }
}
