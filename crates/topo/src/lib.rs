//! # anton-topo — 3D torus topology
//!
//! Coordinates, node ids, dimension-ordered shortest-path routing,
//! neighbor enumeration, and multicast-tree construction for Anton's
//! inter-node torus network (paper §III.A).
//!
//! Everything in this crate is pure combinatorics — no simulated time —
//! and heavily property-tested, because routing and multicast correctness
//! underpin every experiment in the reproduction.

#![warn(missing_docs)]

pub mod coords;
pub mod multicast;
pub mod neighbors;
pub mod route;

pub use coords::{hop_count, hops_by_dim, wrap_step, Coord, Dim, Dir, LinkDir, NodeId, TorusDims};
pub use multicast::{MulticastPattern, PatternEntry, MAX_PATTERNS_PER_NODE};
pub use neighbors::{face_neighbors, moore_neighbors, offset};
pub use route::{LinkMask, Route, RouteError};
