//! Torus coordinates, node identifiers, and wrap-around distance math.
//!
//! Anton's inter-node network is a 3D torus (paper §III.A): nodes are
//! identified by Cartesian coordinates, and shortest-path routing is used
//! independently along each dimension (Figure 5 caption).

use std::fmt;

/// One of the three torus dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dim {
    /// The torus X axis (first in routing order).
    X,
    /// The torus Y axis.
    Y,
    /// The torus Z axis.
    Z,
}

impl Dim {
    /// All dimensions in routing order (dimension-ordered routing goes
    /// X, then Y, then Z — §IV.B.3 uses the same order for the FFT).
    pub const ALL: [Dim; 3] = [Dim::X, Dim::Y, Dim::Z];

    /// Index 0/1/2 for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Dim::X => 0,
            Dim::Y => 1,
            Dim::Z => 2,
        }
    }
}

/// Direction along a dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dir {
    /// Toward increasing coordinates (wrapping).
    Plus,
    /// Toward decreasing coordinates (wrapping).
    Minus,
}

impl Dir {
    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> Dir {
        match self {
            Dir::Plus => Dir::Minus,
            Dir::Minus => Dir::Plus,
        }
    }
}

/// One of the six torus link directions leaving a node (X+, X−, …, Z−).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkDir {
    /// Axis of the link.
    pub dim: Dim,
    /// Direction along that axis.
    pub dir: Dir,
}

impl LinkDir {
    /// All six link directions, in a fixed display order.
    pub const ALL: [LinkDir; 6] = [
        LinkDir {
            dim: Dim::X,
            dir: Dir::Plus,
        },
        LinkDir {
            dim: Dim::X,
            dir: Dir::Minus,
        },
        LinkDir {
            dim: Dim::Y,
            dir: Dir::Plus,
        },
        LinkDir {
            dim: Dim::Y,
            dir: Dir::Minus,
        },
        LinkDir {
            dim: Dim::Z,
            dir: Dir::Plus,
        },
        LinkDir {
            dim: Dim::Z,
            dir: Dir::Minus,
        },
    ];

    /// Dense index 0..6 for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.dim.index() * 2 + matches!(self.dir, Dir::Minus) as usize
    }

    /// Inverse of [`LinkDir::index`].
    #[inline]
    pub fn from_index(i: usize) -> LinkDir {
        LinkDir::ALL[match i {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 3,
            4 => 4,
            5 => 5,
            _ => panic!("link index out of range: {i}"),
        }]
    }

    /// The link direction as seen from the receiving node.
    #[inline]
    pub fn reverse(self) -> LinkDir {
        LinkDir {
            dim: self.dim,
            dir: self.dir.opposite(),
        }
    }
}

impl fmt::Display for LinkDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = match self.dim {
            Dim::X => 'X',
            Dim::Y => 'Y',
            Dim::Z => 'Z',
        };
        let s = match self.dir {
            Dir::Plus => '+',
            Dir::Minus => '-',
        };
        write!(f, "{d}{s}")
    }
}

/// Torus dimensions (number of nodes along each axis). Each axis must have
/// at least one node; typical Anton configurations are 4×4×4 through
/// 8×8×16 (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusDims {
    /// Nodes along X.
    pub nx: u32,
    /// Nodes along Y.
    pub ny: u32,
    /// Nodes along Z.
    pub nz: u32,
}

impl TorusDims {
    /// Construct, validating that every axis is nonzero.
    pub fn new(nx: u32, ny: u32, nz: u32) -> TorusDims {
        assert!(nx > 0 && ny > 0 && nz > 0, "torus axes must be nonzero");
        TorusDims { nx, ny, nz }
    }

    /// The 512-node 8×8×8 machine used for most of the paper's results.
    pub fn anton_512() -> TorusDims {
        TorusDims::new(8, 8, 8)
    }

    /// Total node count.
    #[inline]
    pub fn node_count(self) -> u32 {
        self.nx * self.ny * self.nz
    }

    /// Axis length along `dim`.
    #[inline]
    pub fn len(self, dim: Dim) -> u32 {
        match dim {
            Dim::X => self.nx,
            Dim::Y => self.ny,
            Dim::Z => self.nz,
        }
    }

    /// Maximum shortest-path hop count between any two nodes
    /// (`floor(nx/2) + floor(ny/2) + floor(nz/2)`; 12 for 8×8×8, matching
    /// Figure 5's caption).
    pub fn max_hops(self) -> u32 {
        self.nx / 2 + self.ny / 2 + self.nz / 2
    }

    /// Iterate over all coordinates in node-id order.
    pub fn iter_coords(self) -> impl Iterator<Item = Coord> {
        let TorusDims { nx, ny, nz } = self;
        (0..nz)
            .flat_map(move |z| (0..ny).flat_map(move |y| (0..nx).map(move |x| Coord { x, y, z })))
    }
}

/// Node coordinates within the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coord {
    /// X coordinate, `0..nx`.
    pub x: u32,
    /// Y coordinate, `0..ny`.
    pub y: u32,
    /// Z coordinate, `0..nz`.
    pub z: u32,
}

impl Coord {
    /// Construct (validation happens against dims at use sites).
    pub fn new(x: u32, y: u32, z: u32) -> Coord {
        Coord { x, y, z }
    }

    /// Component along `dim`.
    #[inline]
    pub fn get(self, dim: Dim) -> u32 {
        match dim {
            Dim::X => self.x,
            Dim::Y => self.y,
            Dim::Z => self.z,
        }
    }

    /// Replace the component along `dim`.
    #[inline]
    pub fn with(self, dim: Dim, v: u32) -> Coord {
        let mut c = self;
        match dim {
            Dim::X => c.x = v,
            Dim::Y => c.y = v,
            Dim::Z => c.z = v,
        }
        c
    }

    /// Dense node id: `x + nx*(y + ny*z)`.
    #[inline]
    pub fn node_id(self, dims: TorusDims) -> NodeId {
        debug_assert!(self.x < dims.nx && self.y < dims.ny && self.z < dims.nz);
        NodeId(self.x + dims.nx * (self.y + dims.ny * self.z))
    }

    /// The neighbor one hop along `link`, with wraparound.
    pub fn step(self, link: LinkDir, dims: TorusDims) -> Coord {
        let n = dims.len(link.dim);
        let v = self.get(link.dim);
        let v2 = match link.dir {
            Dir::Plus => (v + 1) % n,
            Dir::Minus => (v + n - 1) % n,
        };
        self.with(link.dim, v2)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

/// Dense node identifier (see [`Coord::node_id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Inverse of [`Coord::node_id`].
    pub fn coord(self, dims: TorusDims) -> Coord {
        let id = self.0;
        debug_assert!(id < dims.node_count());
        Coord {
            x: id % dims.nx,
            y: (id / dims.nx) % dims.ny,
            z: id / (dims.nx * dims.ny),
        }
    }

    /// Dense index as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Minimal wrap distance and preferred direction from coordinate `a` to
/// `b` along an axis of length `n`. Ties (exactly half way around an even
/// ring) resolve to `Plus`, a fixed deterministic choice.
pub fn wrap_step(a: u32, b: u32, n: u32) -> (u32, Dir) {
    debug_assert!(a < n && b < n);
    let fwd = (b + n - a) % n;
    let bwd = n - fwd;
    if fwd == 0 {
        (0, Dir::Plus)
    } else if fwd <= bwd {
        (fwd, Dir::Plus)
    } else {
        (bwd, Dir::Minus)
    }
}

/// Shortest-path hop count between two coordinates.
pub fn hop_count(a: Coord, b: Coord, dims: TorusDims) -> u32 {
    Dim::ALL
        .iter()
        .map(|&d| wrap_step(a.get(d), b.get(d), dims.len(d)).0)
        .sum()
}

/// Per-dimension hop counts between two coordinates `(x, y, z)`.
pub fn hops_by_dim(a: Coord, b: Coord, dims: TorusDims) -> [u32; 3] {
    let mut out = [0; 3];
    for &d in &Dim::ALL {
        out[d.index()] = wrap_step(a.get(d), b.get(d), dims.len(d)).0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips() {
        let dims = TorusDims::new(8, 8, 8);
        for c in dims.iter_coords() {
            assert_eq!(c.node_id(dims).coord(dims), c);
        }
        assert_eq!(dims.iter_coords().count(), 512);
    }

    #[test]
    fn wrap_step_basics() {
        assert_eq!(wrap_step(0, 3, 8), (3, Dir::Plus));
        assert_eq!(wrap_step(0, 5, 8), (3, Dir::Minus));
        assert_eq!(wrap_step(0, 4, 8), (4, Dir::Plus)); // tie → Plus
        assert_eq!(wrap_step(7, 0, 8), (1, Dir::Plus)); // wraps forward
        assert_eq!(wrap_step(2, 2, 8), (0, Dir::Plus));
    }

    #[test]
    fn max_hops_matches_paper() {
        assert_eq!(TorusDims::anton_512().max_hops(), 12);
        assert_eq!(TorusDims::new(8, 8, 16).max_hops(), 16);
        assert_eq!(TorusDims::new(4, 4, 4).max_hops(), 6);
    }

    #[test]
    fn step_wraps_both_directions() {
        let dims = TorusDims::new(8, 8, 8);
        let c = Coord::new(7, 0, 3);
        assert_eq!(
            c.step(
                LinkDir {
                    dim: Dim::X,
                    dir: Dir::Plus
                },
                dims
            ),
            Coord::new(0, 0, 3)
        );
        assert_eq!(
            c.step(
                LinkDir {
                    dim: Dim::Y,
                    dir: Dir::Minus
                },
                dims
            ),
            Coord::new(7, 7, 3)
        );
    }

    #[test]
    fn hop_count_symmetric_examples() {
        let dims = TorusDims::new(8, 8, 8);
        let a = Coord::new(0, 0, 0);
        let b = Coord::new(4, 4, 4); // all-corner farthest point
        assert_eq!(hop_count(a, b, dims), 12);
        assert_eq!(hop_count(b, a, dims), 12);
        assert_eq!(hops_by_dim(a, b, dims), [4, 4, 4]);
    }

    #[test]
    fn link_dir_index_round_trips() {
        for (i, &l) in LinkDir::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
            assert_eq!(LinkDir::from_index(i), l);
            assert_eq!(l.reverse().reverse(), l);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            format!(
                "{}",
                LinkDir {
                    dim: Dim::Z,
                    dir: Dir::Minus
                }
            ),
            "Z-"
        );
        assert_eq!(format!("{}", Coord::new(1, 2, 3)), "(1,2,3)");
    }
}
