//! # anton-fft — from-scratch FFT and the distributed dimension-ordered
//! 3D FFT
//!
//! Implements the transform machinery behind Anton's long-range
//! electrostatics (paper §II, §IV.B.3): a radix-2 complex FFT, a serial
//! 3D reference, and the distributed pencil decomposition whose fixed
//! communication pattern Anton executes with fine-grained (one grid point
//! per packet) counted remote writes.

#![warn(missing_docs)]

pub mod complex;
pub mod dist;
pub mod fft1d;

pub use complex::Complex;
pub use dist::{
    distributed_fft3d, forward_stages, inverse_stages, point_owner, transfer_counts, transverse,
    GridMap, Layout,
};
pub use fft1d::{dft_naive, fft3d, Direction, Fft1d};
