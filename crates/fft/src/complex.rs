//! A minimal complex number type (the workspace avoids external math
//! crates; the FFT needs only +, −, ×, and conjugation).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Complex number, f64 components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0i.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Construct from parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A real number.
    #[inline]
    pub fn real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Complex {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3−i) = 3 − i + 6i − 2i² = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn cis_and_norms() {
        let u = Complex::cis(std::f64::consts::FRAC_PI_2);
        assert!(u.re.abs() < 1e-15 && (u.im - 1.0).abs() < 1e-15);
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-15);
        assert_eq!(Complex::new(3.0, 4.0).norm_sq(), 25.0);
        assert_eq!(Complex::real(2.0).scale(3.0), Complex::new(6.0, 0.0));
    }
}
