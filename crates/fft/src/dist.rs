//! The distributed, dimension-ordered 3D FFT (paper §IV.B.3 and \[47\]).
//!
//! The charge grid starts **brick-distributed**: each node owns the block
//! of grid points inside its home box. A dimension-ordered FFT then runs
//! 1D transforms along x, then y, then z (inverse in reverse order), with
//! a data repartition before each pass so every 1D line is wholly owned
//! by one node. "The FFT communication patterns are inherently fixed, so
//! they can also be implemented using fine-grained (one grid point per
//! packet) counted remote writes."
//!
//! This module provides (a) the line-ownership function, (b) per-pass
//! transfer lists — the fixed communication pattern the Anton machine
//! model turns into counted remote writes — and (c) a functional
//! executor that performs the distributed transform and must match the
//! serial [`crate::fft1d::fft3d`] bit-for-bit in structure (same floating
//! point operations per line).

use crate::complex::Complex;
#[cfg(test)]
use crate::fft1d::fft3d;
use crate::fft1d::{Direction, Fft1d};
use anton_topo::{Coord, Dim, NodeId, TorusDims};
use std::collections::BTreeMap;

/// Grid geometry and its mapping onto the machine.
#[derive(Debug, Clone, Copy)]
pub struct GridMap {
    /// Grid points per axis (must be powers of two, divisible by the
    /// machine dims).
    pub grid: [usize; 3],
    /// The machine the grid is distributed over.
    pub dims: TorusDims,
}

impl GridMap {
    /// Validate and build. The paper's flagship case is a 32³ grid on an
    /// 8×8×8 machine (4×4×4 brick per node).
    pub fn new(grid: [usize; 3], dims: TorusDims) -> GridMap {
        let machine = [dims.nx as usize, dims.ny as usize, dims.nz as usize];
        for a in 0..3 {
            assert!(grid[a].is_power_of_two(), "grid axes must be powers of two");
            assert!(
                grid[a].is_multiple_of(machine[a]),
                "grid axis {a} ({}) not divisible by machine axis ({})",
                grid[a],
                machine[a]
            );
        }
        GridMap { grid, dims }
    }

    /// Brick extent per node along each axis.
    pub fn brick(&self) -> [usize; 3] {
        [
            self.grid[0] / self.dims.nx as usize,
            self.grid[1] / self.dims.ny as usize,
            self.grid[2] / self.dims.nz as usize,
        ]
    }

    /// The node whose home box contains grid point `(gx, gy, gz)`.
    pub fn brick_owner(&self, g: [usize; 3]) -> NodeId {
        let b = self.brick();
        Coord::new(
            (g[0] / b[0]) as u32,
            (g[1] / b[1]) as u32,
            (g[2] / b[2]) as u32,
        )
        .node_id(self.dims)
    }

    /// Owner of the 1D line along `dim` passing through transverse grid
    /// coordinates `t = (u, v)` (the two other axes in ascending order).
    ///
    /// The line's transverse coordinates pin the node in the two
    /// transverse machine axes (locality: the line's data starts in that
    /// row of bricks). The machine axis along `dim` is chosen by
    /// round-robin over the lines within the brick cross-section, spreading
    /// the per-row lines evenly over the row's nodes — the load-balanced,
    /// hop-minimizing assignment of \[47\].
    pub fn line_owner(&self, dim: Dim, u: usize, v: usize) -> NodeId {
        let (du, dv) = transverse(dim);
        let b = self.brick();
        let m = [
            self.dims.nx as usize,
            self.dims.ny as usize,
            self.dims.nz as usize,
        ];
        // Node coordinates in the transverse axes.
        let cu = u / b[du.index()];
        let cv = v / b[dv.index()];
        // Line index within the brick cross-section → round-robin along dim.
        let lu = u % b[du.index()];
        let lv = v % b[dv.index()];
        let li = lu + b[du.index()] * lv;
        let cd = li % m[dim.index()];
        let mut c = Coord::new(0, 0, 0);
        c = c.with(dim, cd as u32);
        c = c.with(du, cu as u32);
        c = c.with(dv, cv as u32);
        c.node_id(self.dims)
    }

    /// All lines along `dim` owned by `node`, as (u, v) transverse pairs.
    pub fn lines_owned(&self, dim: Dim, node: NodeId) -> Vec<(usize, usize)> {
        let (du, dv) = transverse(dim);
        let mut out = Vec::new();
        for v in 0..self.grid[dv.index()] {
            for u in 0..self.grid[du.index()] {
                if self.line_owner(dim, u, v) == node {
                    out.push((u, v));
                }
            }
        }
        out
    }
}

/// The two transverse dimensions of `dim`, in ascending axis order.
pub fn transverse(dim: Dim) -> (Dim, Dim) {
    match dim {
        Dim::X => (Dim::Y, Dim::Z),
        Dim::Y => (Dim::X, Dim::Z),
        Dim::Z => (Dim::X, Dim::Y),
    }
}

/// Data layout stages of the dimension-ordered FFT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Brick-distributed (home-box blocks).
    Brick,
    /// Full lines along `dim` gathered on their owner nodes.
    Pencil(Dim),
}

/// Where one grid point lives under a layout.
pub fn point_owner(map: &GridMap, layout: Layout, g: [usize; 3]) -> NodeId {
    match layout {
        Layout::Brick => map.brick_owner(g),
        Layout::Pencil(dim) => {
            let (du, dv) = transverse(dim);
            map.line_owner(dim, g[du.index()], g[dv.index()])
        }
    }
}

/// One repartition step: for each (src, dst) node pair, the number of
/// grid points that move. Points already on the right node don't move.
pub fn transfer_counts(map: &GridMap, from: Layout, to: Layout) -> BTreeMap<(NodeId, NodeId), u32> {
    let mut counts = BTreeMap::new();
    for gz in 0..map.grid[2] {
        for gy in 0..map.grid[1] {
            for gx in 0..map.grid[0] {
                let g = [gx, gy, gz];
                let a = point_owner(map, from, g);
                let b = point_owner(map, to, g);
                if a != b {
                    *counts.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
    }
    counts
}

/// The forward pass sequence: Brick → X pencils → Y pencils → Z pencils.
pub fn forward_stages() -> [(Layout, Layout); 3] {
    [
        (Layout::Brick, Layout::Pencil(Dim::X)),
        (Layout::Pencil(Dim::X), Layout::Pencil(Dim::Y)),
        (Layout::Pencil(Dim::Y), Layout::Pencil(Dim::Z)),
    ]
}

/// The inverse pass sequence back to bricks.
pub fn inverse_stages() -> [(Layout, Layout); 3] {
    [
        (Layout::Pencil(Dim::Z), Layout::Pencil(Dim::Y)),
        (Layout::Pencil(Dim::Y), Layout::Pencil(Dim::X)),
        (Layout::Pencil(Dim::X), Layout::Brick),
    ]
}

/// Functional distributed 3D FFT: starts from a dense global grid
/// (conceptually brick-distributed), performs per-node 1D transforms in
/// the dimension order, and returns the transformed grid. The data
/// movement is implied by the ownership functions — this executor
/// verifies that the line decomposition covers every line exactly once
/// and produces the same result as the serial reference.
#[allow(clippy::needless_range_loop)] // parallel-array indexing reads clearer
pub fn distributed_fft3d(map: &GridMap, data: &mut [Complex], dir: Direction) {
    let [nx, ny, nz] = map.grid;
    assert_eq!(data.len(), nx * ny * nz);
    let idx = |x: usize, y: usize, z: usize| x + nx * (y + ny * z);
    let order: Vec<Dim> = match dir {
        Direction::Forward => vec![Dim::X, Dim::Y, Dim::Z],
        Direction::Inverse => vec![Dim::Z, Dim::Y, Dim::X],
    };
    for dim in order {
        let n = map.grid[dim.index()];
        let plan = Fft1d::new(n);
        let (du, dv) = transverse(dim);
        let mut line = vec![Complex::ZERO; n];
        let mut seen = vec![false; map.grid[du.index()] * map.grid[dv.index()]];
        // Iterate nodes in id order, each transforming its owned lines —
        // the same arithmetic the per-node programs perform on Anton.
        for node in 0..map.dims.node_count() {
            for (u, v) in map.lines_owned(dim, NodeId(node)) {
                let s = u + map.grid[du.index()] * v;
                assert!(!seen[s], "line ({u},{v}) along {dim:?} owned twice");
                seen[s] = true;
                for w in 0..n {
                    let mut g = [0usize; 3];
                    g[dim.index()] = w;
                    g[du.index()] = u;
                    g[dv.index()] = v;
                    line[w] = data[idx(g[0], g[1], g[2])];
                }
                plan.transform(&mut line, dir);
                for w in 0..n {
                    let mut g = [0usize; 3];
                    g[dim.index()] = w;
                    g[du.index()] = u;
                    g[dv.index()] = v;
                    data[idx(g[0], g[1], g[2])] = line[w];
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "some lines along {dim:?} unowned");
    }
}

/// Verify the distributed transform against the serial reference.
#[cfg(test)]
fn serial_reference(map: &GridMap, data: &[Complex], dir: Direction) -> Vec<Complex> {
    let mut out = data.to_vec();
    fft3d(&mut out, map.grid[0], map.grid[1], map.grid[2], dir);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn test_map() -> GridMap {
        GridMap::new([32, 32, 32], TorusDims::anton_512())
    }

    #[test]
    fn brick_is_4x4x4_on_the_512_node_machine() {
        assert_eq!(test_map().brick(), [4, 4, 4]);
    }

    #[test]
    fn every_line_has_exactly_one_owner_and_balance_is_exact() {
        let map = test_map();
        for dim in [Dim::X, Dim::Y, Dim::Z] {
            let mut per_node = vec![0u32; 512];
            let (du, dv) = transverse(dim);
            for v in 0..map.grid[dv.index()] {
                for u in 0..map.grid[du.index()] {
                    per_node[map.line_owner(dim, u, v).index()] += 1;
                }
            }
            // 32×32 = 1024 lines over 512 nodes = exactly 2 each.
            assert!(
                per_node.iter().all(|&c| c == 2),
                "dim {dim:?}: {per_node:?}"
            );
        }
    }

    #[test]
    fn line_owner_is_in_the_local_brick_row() {
        // Locality: the owner's transverse coordinates match the brick
        // containing the line, so gather traffic stays within one machine
        // row (minimum hop count, §IV.A "minimize the number of network
        // hops").
        let map = test_map();
        for (u, v) in [(0, 0), (5, 9), (31, 31), (16, 3)] {
            let owner = map.line_owner(Dim::X, u, v).coord(map.dims);
            assert_eq!(owner.y, (u / 4) as u32);
            assert_eq!(owner.z, (v / 4) as u32);
        }
    }

    #[test]
    fn transfer_counts_conserve_points() {
        let map = GridMap::new([16, 16, 16], TorusDims::new(4, 4, 4));
        let total_points = 16 * 16 * 16;
        for (from, to) in forward_stages() {
            let counts = transfer_counts(&map, from, to);
            let moved: u32 = counts.values().sum();
            assert!(moved > 0, "stage moves nothing?");
            assert!(
                (moved as usize) <= total_points,
                "moved {moved} of {total_points}"
            );
            // No self-transfers recorded.
            assert!(counts.keys().all(|&(a, b)| a != b));
        }
    }

    #[test]
    fn distributed_matches_serial_forward_and_inverse() {
        let map = GridMap::new([8, 8, 8], TorusDims::new(2, 2, 2));
        let n = 8 * 8 * 8;
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.17).sin(), (i as f64 * 0.61).cos()))
            .collect();
        for dir in [Direction::Forward, Direction::Inverse] {
            let want = serial_reference(&map, &data, dir);
            let mut got = data.clone();
            distributed_fft3d(&map, &mut got, dir);
            for (g, w) in got.iter().zip(&want) {
                assert!((*g - *w).abs() < 1e-9, "{g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn paper_configuration_round_trips() {
        // 32³ grid on 8×8×8 — the configuration of reference [47].
        let map = test_map();
        let n = 32 * 32 * 32;
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new(((i * 7919) % 97) as f64 / 97.0, 0.0))
            .collect();
        let mut work = data.clone();
        distributed_fft3d(&map, &mut work, Direction::Forward);
        distributed_fft3d(&map, &mut work, Direction::Inverse);
        for (w, d) in work.iter().zip(&data) {
            assert!((*w - *d).abs() < 1e-9);
        }
    }

    proptest! {
        /// Ownership functions agree between `point_owner` and the
        /// per-node inverse `lines_owned`.
        #[test]
        fn ownership_consistency(seed in 0u64..5_000) {
            let map = GridMap::new([16, 16, 16], TorusDims::new(4, 2, 4));
            let g = [
                (seed % 16) as usize,
                ((seed / 16) % 16) as usize,
                ((seed / 256) % 16) as usize,
            ];
            for dim in [Dim::X, Dim::Y, Dim::Z] {
                let owner = point_owner(&map, Layout::Pencil(dim), g);
                let (du, dv) = transverse(dim);
                let lines = map.lines_owned(dim, owner);
                prop_assert!(lines.contains(&(g[du.index()], g[dv.index()])));
            }
            // Brick owner contains the point.
            let owner = map.brick_owner(g).coord(map.dims);
            let b = map.brick();
            prop_assert_eq!(owner.x as usize, g[0] / b[0]);
            prop_assert_eq!(owner.y as usize, g[1] / b[1]);
            prop_assert_eq!(owner.z as usize, g[2] / b[2]);
        }
    }
}
