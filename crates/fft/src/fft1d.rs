//! In-place iterative radix-2 FFT, plus a naive DFT used as the test
//! oracle.
//!
//! Anton's long-range electrostatics pipeline runs small power-of-two
//! FFTs (32³ and 64³ grids); a plain radix-2 Cooley–Tukey with
//! precomputed twiddles is exactly the right tool.

use crate::complex::Complex;

/// Direction of the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward transform (no normalization).
    Forward,
    /// Inverse transform (includes the 1/n normalization).
    Inverse,
}

/// A reusable 1D FFT plan for length `n` (power of two): precomputed
/// twiddle factors and bit-reversal table.
#[derive(Debug, Clone)]
pub struct Fft1d {
    n: usize,
    /// Forward twiddles `e^{-2πik/n}` for k in 0..n/2.
    twiddles: Vec<Complex>,
    bitrev: Vec<u32>,
}

impl Fft1d {
    /// Build a plan. Panics unless `n` is a power of two ≥ 1.
    pub fn new(n: usize) -> Fft1d {
        assert!(n.is_power_of_two(), "FFT length must be a power of two");
        let twiddles = (0..n / 2)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .map(|i| if n == 1 { 0 } else { i })
            .collect();
        Fft1d {
            n,
            twiddles,
            bitrev,
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate length-1 plan.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place transform. The inverse includes the 1/n normalization, so
    /// `inverse(forward(x)) == x`.
    pub fn transform(&self, data: &mut [Complex], dir: Direction) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        let n = self.n;
        if n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let tw = self.twiddles[k * step];
                    let tw = match dir {
                        Direction::Forward => tw,
                        Direction::Inverse => tw.conj(),
                    };
                    let a = data[start + k];
                    let b = data[start + k + half] * tw;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
        if dir == Direction::Inverse {
            let s = 1.0 / n as f64;
            for v in data.iter_mut() {
                *v = v.scale(s);
            }
        }
    }
}

/// Naive O(n²) DFT (forward, no normalization) — the oracle for tests.
pub fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in data.iter().enumerate() {
                acc += x * Complex::cis(-2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

/// 3D in-place FFT over a dense row-major `[nz][ny][nx]` grid. Serial
/// reference implementation; the distributed plan must match it exactly.
pub fn fft3d(data: &mut [Complex], nx: usize, ny: usize, nz: usize, dir: Direction) {
    assert_eq!(data.len(), nx * ny * nz);
    let px = Fft1d::new(nx);
    let py = Fft1d::new(ny);
    let pz = Fft1d::new(nz);
    let idx = |x: usize, y: usize, z: usize| x + nx * (y + ny * z);

    // X lines are contiguous.
    let mut buf = vec![Complex::ZERO; nx.max(ny).max(nz)];
    for z in 0..nz {
        for y in 0..ny {
            let s = idx(0, y, z);
            px.transform(&mut data[s..s + nx], dir);
        }
    }
    // Y lines.
    for z in 0..nz {
        for x in 0..nx {
            for y in 0..ny {
                buf[y] = data[idx(x, y, z)];
            }
            py.transform(&mut buf[..ny], dir);
            for y in 0..ny {
                data[idx(x, y, z)] = buf[y];
            }
        }
    }
    // Z lines.
    for y in 0..ny {
        for x in 0..nx {
            for z in 0..nz {
                buf[z] = data[idx(x, y, z)];
            }
            pz.transform(&mut buf[..nz], dir);
            for z in 0..nz {
                data[idx(x, y, z)] = buf[z];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 32, 64] {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
                .collect();
            let oracle = dft_naive(&data);
            let plan = Fft1d::new(n);
            let mut got = data.clone();
            plan.transform(&mut got, Direction::Forward);
            for (g, o) in got.iter().zip(&oracle) {
                assert!(close(*g, *o, 1e-9 * n as f64), "n={n}: {g:?} vs {o:?}");
            }
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let n = 32;
        let mut data = vec![Complex::ZERO; n];
        data[0] = Complex::ONE;
        Fft1d::new(n).transform(&mut data, Direction::Forward);
        for v in &data {
            assert!(close(*v, Complex::ONE, 1e-12));
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 64;
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.31).cos()))
            .collect();
        let time_energy: f64 = data.iter().map(|c| c.norm_sq()).sum();
        let mut freq = data.clone();
        Fft1d::new(n).transform(&mut freq, Direction::Forward);
        let freq_energy: f64 = freq.iter().map(|c| c.norm_sq()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    proptest! {
        /// Round trip: inverse(forward(x)) == x.
        #[test]
        fn round_trip(log_n in 0usize..8, seed in 0u64..1000) {
            let n = 1usize << log_n;
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut rnd = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            };
            let data: Vec<Complex> = (0..n).map(|_| Complex::new(rnd(), rnd())).collect();
            let plan = Fft1d::new(n);
            let mut work = data.clone();
            plan.transform(&mut work, Direction::Forward);
            plan.transform(&mut work, Direction::Inverse);
            for (w, d) in work.iter().zip(&data) {
                prop_assert!(close(*w, *d, 1e-10 * (n as f64)));
            }
        }

        /// Linearity: F(ax + by) == aF(x) + bF(y).
        #[test]
        fn linearity(seed in 0u64..1000) {
            let n = 32;
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
            let mut rnd = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            };
            let x: Vec<Complex> = (0..n).map(|_| Complex::new(rnd(), rnd())).collect();
            let y: Vec<Complex> = (0..n).map(|_| Complex::new(rnd(), rnd())).collect();
            let (a, b) = (rnd(), rnd());
            let plan = Fft1d::new(n);
            let mut combo: Vec<Complex> = x.iter().zip(&y)
                .map(|(&xi, &yi)| xi.scale(a) + yi.scale(b)).collect();
            plan.transform(&mut combo, Direction::Forward);
            let mut fx = x.clone();
            plan.transform(&mut fx, Direction::Forward);
            let mut fy = y.clone();
            plan.transform(&mut fy, Direction::Forward);
            for i in 0..n {
                let want = fx[i].scale(a) + fy[i].scale(b);
                prop_assert!(close(combo[i], want, 1e-9));
            }
        }
    }

    #[test]
    fn fft3d_round_trip_and_impulse() {
        let (nx, ny, nz) = (8, 4, 2);
        let mut data = vec![Complex::ZERO; nx * ny * nz];
        data[0] = Complex::ONE;
        let orig = data.clone();
        fft3d(&mut data, nx, ny, nz, Direction::Forward);
        for v in &data {
            assert!(close(*v, Complex::ONE, 1e-12));
        }
        fft3d(&mut data, nx, ny, nz, Direction::Inverse);
        for (a, b) in data.iter().zip(&orig) {
            assert!(close(*a, *b, 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Fft1d::new(12);
    }
}
