//! Run fingerprinting: a tiny, dependency-free content hash used to
//! assert that two runs produced *bit-identical* observable output.
//!
//! The parallel DES engine promises that an N-thread run matches the
//! sequential run exactly — same `NetStats`, same flight-recorder
//! lifecycles, same causal DAG. The CI cross-check enforces that promise
//! by hashing each run's exported state with [`Fingerprint`] and
//! comparing the hex digests; tests do the same in-process.
//!
//! FNV-1a (64-bit) is used deliberately: it is not cryptographic, but it
//! is stable across platforms and Rust versions, trivially auditable,
//! and any single-bit difference in the input changes the digest —
//! exactly what an equality check needs.

use std::fmt::{Debug, Write as _};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// An incremental FNV-1a hasher over anything `Debug`-formattable.
///
/// Hashing the `Debug` rendering (rather than raw memory) makes the
/// digest independent of padding and layout while still covering every
/// field of the structures the workspace derives `Debug` for.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    h: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl Fingerprint {
    /// A fresh hasher.
    pub fn new() -> Fingerprint {
        Fingerprint { h: FNV_OFFSET }
    }

    /// Fold raw bytes into the digest.
    pub fn update_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Fold a value's `Debug` rendering into the digest.
    pub fn update<T: Debug + ?Sized>(&mut self, value: &T) -> &mut Self {
        let mut s = String::new();
        write!(s, "{value:?}").expect("Debug formatting failed");
        self.update_bytes(s.as_bytes())
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.h
    }

    /// The current digest as a fixed-width hex string (what the CI
    /// cross-check writes to disk and diffs).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut f = Fingerprint::new();
        f.update_bytes(b"foo").update_bytes(b"bar");
        assert_eq!(f.finish(), fnv1a64(b"foobar"));
        assert_eq!(f.hex(), format!("{:016x}", fnv1a64(b"foobar")));
    }

    #[test]
    fn debug_values_hash_stably() {
        let mut a = Fingerprint::new();
        a.update(&(1u32, "x", [3u8, 4]));
        let mut b = Fingerprint::new();
        b.update(&(1u32, "x", [3u8, 4]));
        assert_eq!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.update(&(1u32, "x", [3u8, 5]));
        assert_ne!(a.finish(), c.finish());
    }
}
