//! What-if re-timing: replay a [`CausalGraph`] with perturbed edge
//! lags to predict end-to-end impact without re-running the simulation.
//!
//! The replay is a single forward pass in topological (= stream) order:
//! source nodes keep their recorded times, every other node becomes
//! `max(pred_new + scaled_lag)` over its in-edges. Because the graph
//! satisfies the exactness invariant (`max(pred + lag) == time`), the
//! identity perturbation reproduces every recorded time *bit-for-bit*
//! — the property tests pin this.
//!
//! # Caveats
//!
//! The re-timer predicts how the recorded dependency structure
//! stretches; it does not re-run arbitration. A perturbation big
//! enough to change *decisions* (packet A now beats packet B to a
//! port, a program sends in a different order) changes the graph
//! itself, and the prediction degrades gracefully rather than
//! tracking it. For the uniform latency scalings it is meant for
//! (hop latency ±10%, one slow link) the acceptance tests cross-check
//! predictions against actual perturbed re-runs to within 1%.

use crate::causal::{Blame, CausalGraph, EdgeKind, NodeKind};
use anton_des::{SimDuration, SimTime};
use anton_topo::{LinkDir, NodeId};

/// A what-if scenario: per-[`EdgeKind`] lag scale factors plus
/// per-link slowdowns applied to that link's [`EdgeKind::Wire`] edges.
/// The default is the identity (every factor 1.0).
#[derive(Debug, Clone)]
pub struct Perturbation {
    kind_scale: [f64; EdgeKind::COUNT],
    link_scale: Vec<(u32, u8, f64)>,
}

impl Default for Perturbation {
    fn default() -> Self {
        Perturbation {
            kind_scale: [1.0; EdgeKind::COUNT],
            link_scale: Vec::new(),
        }
    }
}

impl Perturbation {
    /// The identity perturbation.
    pub fn none() -> Perturbation {
        Perturbation::default()
    }

    /// Scale every lag of one [`EdgeKind`] by `factor`. Scaling
    /// [`EdgeKind::Wire`] by 1.1 models "every hop 10% slower";
    /// scaling [`EdgeKind::LinkWait`] models a bandwidth change.
    pub fn scale(mut self, kind: EdgeKind, factor: f64) -> Perturbation {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and >= 0"
        );
        self.kind_scale[kind.index()] *= factor;
        self
    }

    /// Slow down (or speed up) one physical link direction: scales the
    /// [`EdgeKind::Wire`] lag of traversals leaving `node` on `link`.
    pub fn slow_link(mut self, node: NodeId, link: LinkDir, factor: f64) -> Perturbation {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and >= 0"
        );
        self.link_scale.push((node.0, link.index() as u8, factor));
        self
    }

    /// The combined factor for one edge of the graph.
    fn factor(&self, g: &CausalGraph, edge_idx: u32) -> f64 {
        let edge = &g.edges()[edge_idx as usize];
        let mut f = self.kind_scale[edge.kind.index()];
        if edge.kind == EdgeKind::Wire {
            let src = &g.nodes()[edge.src as usize];
            if src.kind == NodeKind::LinkStart {
                for &(node, link, lf) in &self.link_scale {
                    if node == src.node.0 && link == src.aux {
                        f *= lf;
                    }
                }
            }
        }
        f
    }
}

/// The result of replaying a graph under a [`Perturbation`].
#[derive(Debug, Clone)]
pub struct Retimed {
    /// Predicted time per node (parallel to `CausalGraph::nodes`).
    pub times: Vec<SimTime>,
    /// The node predicted to finish last (`None` on an empty graph).
    pub terminal: Option<u32>,
    /// The predicted makespan end (time of `terminal`).
    pub end: SimTime,
}

impl Retimed {
    /// Predicted change of the makespan end versus the recorded one,
    /// in picoseconds (negative = faster).
    pub fn delta_ps(&self, g: &CausalGraph) -> i64 {
        let recorded = g
            .terminal()
            .map(|t| g.nodes()[t as usize].time.as_ps())
            .unwrap_or(0);
        self.end.as_ps() as i64 - recorded as i64
    }
}

/// Replay `g` with `p`'s lag scalings. Identity factors take an exact
/// integer path (no float round-trip), so a zero perturbation
/// reproduces the recorded times bit-for-bit.
pub fn retime(g: &CausalGraph, p: &Perturbation) -> Retimed {
    let n = g.len();
    let mut times: Vec<SimTime> = Vec::with_capacity(n);
    for i in 0..n as u32 {
        let mut t = if g.is_source(i) {
            g.nodes()[i as usize].time
        } else {
            SimTime::ZERO
        };
        for (ei, e) in g.preds(i) {
            let f = p.factor(g, ei);
            let lag = if f == 1.0 {
                e.lag
            } else {
                SimDuration::from_ps((e.lag.as_ps() as f64 * f).round() as u64)
            };
            t = t.max(times[e.src as usize] + lag);
        }
        times.push(t);
    }
    let mut terminal: Option<u32> = None;
    for (i, &t) in times.iter().enumerate() {
        match terminal {
            Some(b) if times[b as usize] >= t => {}
            _ => terminal = Some(i as u32),
        }
    }
    let end = terminal.map(|t| times[t as usize]).unwrap_or(SimTime::ZERO);
    Retimed {
        times,
        terminal,
        end,
    }
}

/// [`retime`] plus the perturbed critical-path blame: after the
/// forward pass, walk the binding-edge chain back from the predicted
/// terminal (highest perturbed reach, ties toward the earliest
/// inserted edge — the same tie-break as
/// [`CausalGraph::critical_path`]) and sum the *scaled* lags into
/// per-[`EdgeKind`] buckets. The returned blame totals the predicted
/// critical span, so diffing it against the unperturbed
/// [`Blame`] shows where the critical path
/// *moved* — not just how much the makespan stretched. With the
/// identity perturbation the blame equals
/// `Blame::from_path(g, &g.critical_path())` exactly.
pub fn retime_blamed(g: &CausalGraph, p: &Perturbation) -> (Retimed, Blame) {
    let rt = retime(g, p);
    let mut blame = Blame::default();
    if let Some(terminal) = rt.terminal {
        let scaled = |ei: u32, e: &crate::causal::CEdge| {
            let f = p.factor(g, ei);
            if f == 1.0 {
                e.lag
            } else {
                SimDuration::from_ps((e.lag.as_ps() as f64 * f).round() as u64)
            }
        };
        let mut cur = terminal;
        loop {
            let mut best: Option<(u32, u32, SimTime, SimDuration)> = None;
            for (ei, e) in g.preds(cur) {
                let lag = scaled(ei, e);
                let reach = rt.times[e.src as usize] + lag;
                let better = match best {
                    None => true,
                    Some((bei, _, bt, _)) => reach > bt || (reach == bt && ei < bei),
                };
                if better {
                    best = Some((ei, e.src, reach, lag));
                }
            }
            match best {
                None => break,
                Some((ei, src, _, lag)) => {
                    blame.add(g.edges()[ei as usize].kind, lag);
                    cur = src;
                }
            }
        }
    }
    (rt, blame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, PacketId, Recorder};
    use anton_topo::TorusDims;

    fn ns(v: u64) -> SimTime {
        SimTime::from_ns(v)
    }

    fn one_hop_graph() -> CausalGraph {
        let mut r = FlightRecorder::new();
        let pkt = PacketId(0);
        r.on_inject(
            pkt,
            NodeId(0),
            0,
            Some(NodeId(1)),
            ns(0),
            ns(36),
            ns(36),
            ns(55),
            0,
        );
        r.on_link_reserve(
            pkt,
            NodeId(0),
            LinkDir::from_index(0),
            ns(55),
            ns(55),
            ns(57),
        );
        r.on_hop_enter(pkt, NodeId(1), ns(95));
        r.on_deliver(pkt, NodeId(1), 0, ns(162));
        r.on_counter_update(pkt, NodeId(1), 0, 7, ns(162), Some(ns(162)));
        let events = r.take_events();
        CausalGraph::build(TorusDims::new(4, 4, 4), &events, |_| {
            SimDuration::from_ns(2)
        })
    }

    #[test]
    fn identity_reproduces_recorded_times_bit_for_bit() {
        let g = one_hop_graph();
        let rt = retime(&g, &Perturbation::none());
        for (i, n) in g.nodes().iter().enumerate() {
            assert_eq!(rt.times[i], n.time);
        }
        assert_eq!(rt.delta_ps(&g), 0);
    }

    #[test]
    fn identity_blame_matches_the_recorded_critical_path() {
        let g = one_hop_graph();
        let path = g.critical_path().expect("has a path");
        let recorded = Blame::from_path(&g, &path);
        let (rt, blamed) = retime_blamed(&g, &Perturbation::none());
        assert_eq!(rt.end, path.end);
        for kind in EdgeKind::ALL {
            assert_eq!(blamed.get(kind), recorded.get(kind), "{kind:?}");
        }
    }

    #[test]
    fn slow_link_blame_shifts_toward_wire() {
        let g = one_hop_graph();
        let (_, base) = retime_blamed(&g, &Perturbation::none());
        let (rt, slow) = retime_blamed(
            &g,
            &Perturbation::none().slow_link(NodeId(0), LinkDir::from_index(0), 3.0),
        );
        // The 40 ns wire lag tripled: +80 ns end to end, all of it wire.
        assert_eq!(rt.end, ns(242));
        assert_eq!(
            slow.get(EdgeKind::Wire),
            base.get(EdgeKind::Wire) + SimDuration::from_ns(80)
        );
        let base_shares = base.shares_pct();
        let slow_shares = slow.shares_pct();
        assert!(slow_shares["wire"] > base_shares["wire"]);
        // Shares still sum to ~100.
        let sum: f64 = slow_shares.values().sum();
        assert!((sum - 100.0).abs() < 1e-9, "{sum}");
    }

    #[test]
    fn wire_scaling_shifts_only_the_hop() {
        let g = one_hop_graph();
        // The single 40 ns wire lag grows 10% -> the end moves +4 ns.
        let rt = retime(&g, &Perturbation::none().scale(EdgeKind::Wire, 1.1));
        assert_eq!(rt.end, SimTime::from_ps(ns(166).as_ps()));
        // Slowing an unrelated link changes nothing.
        let rt = retime(
            &g,
            &Perturbation::none().slow_link(NodeId(9), LinkDir::from_index(2), 4.0),
        );
        assert_eq!(rt.end, ns(162));
        // Slowing the traversed link doubles its 40 ns wire lag.
        let rt = retime(
            &g,
            &Perturbation::none().slow_link(NodeId(0), LinkDir::from_index(0), 2.0),
        );
        assert_eq!(rt.end, ns(202));
    }
}
