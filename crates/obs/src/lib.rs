//! # anton-obs — unified instrumentation for the simulated machine
//!
//! The paper's headline number is a *decomposed* one: Figure 6 splits the
//! 162 ns end-to-end latency into sender overhead, injection, per-hop
//! router/wire time, delivery, and synchronization, and §IV.C's on-chip
//! logic analyzer (Figure 13) is how the authors saw where time went.
//! This crate is the software analogue of that measurement
//! infrastructure, layered *under* the network model so every nanosecond
//! of a simulation is attributable and exportable:
//!
//! - [`Recorder`] — the hook trait the fabric calls on every packet
//!   lifecycle event (inject, link reserve, retransmit, hop enter/exit,
//!   deliver, counter update). Every method has a no-op default body, so
//!   the disabled path costs one branch and implementors override only
//!   what they need.
//! - [`FlightRecorder`] — a [`Recorder`] that keeps the full event
//!   stream (optionally ring-buffered and/or sampled) for offline
//!   analysis.
//! - [`breakdown`] — folds recorded lifecycles into the paper's Figure 6
//!   stages; stage durations telescope, so they sum *exactly* to the
//!   measured end-to-end latency.
//! - [`MetricsRegistry`] — named counters, gauges, and log-bucketed
//!   latency histograms (p50/p99/max), snapshottable and diffable per MD
//!   phase.
//! - [`chrome_trace`] — Chrome `trace_event` JSON export, loadable in
//!   Perfetto or `about:tracing`, plus CSV/JSON summaries and a
//!   dependency-free JSON validator for CI smoke tests.
//! - [`causal`] — reconstructs the causal event DAG from a recorded
//!   stream and extracts the *measured* critical path, per-node slack,
//!   and per-stage blame that telescopes exactly to the makespan.
//! - [`mod@retime`] — what-if replay of the causal DAG under perturbed lags
//!   (hop latency ±10%, one slow link) without re-running the
//!   simulation.
//! - [`congestion`] — time-binned per-link/per-router utilization and
//!   queue telemetry, exportable as CSV, Chrome counter tracks, and an
//!   ASCII heatmap.
//! - [`runtime`] — the same exact-accounting discipline pointed at the
//!   *parallel runtime itself*: speedup attribution whose components
//!   telescope to the measured gap, deterministic lookahead/imbalance
//!   summaries, and Chrome-trace worker lanes for `des::par` profiles.
//! - [`regress`] — schema-versioned benchmark reports with per-metric
//!   direction metadata and threshold-based regression diffing for
//!   `scripts/bench_regress.sh`.
//! - [`observatory`] — the continuous-benchmarking report model:
//!   metrics *plus* attribution sections (critical-path blame shares,
//!   congestion top-K, recovery stats), component-level diffing with a
//!   human-readable triage, and the named-baseline trajectory index.
//! - [`dashboard`] — a dependency-free, byte-deterministic HTML
//!   rendering of the benchmark trajectory (inline SVG sparklines,
//!   blame stacked bars, triage tables), published as a CI artifact.
//! - [`stream`] — bounded-memory observability for 100×-scale machines:
//!   mergeable quantile sketches, exact streaming moments, space-saving
//!   per-link heavy hitters, a seeded lifecycle reservoir, and the
//!   [`StreamObserver`] recorder that folds packets into the Figure 6
//!   attribution at delivery and drops the events — O(nodes + links)
//!   state instead of O(events), bit-identical under shard merges.
//! - [`memory`] — the memory observatory: a feature-gated (`obs-alloc`)
//!   instrumented global allocator with scoped subsystem tags reporting
//!   live/peak bytes per subsystem, per node, and per event.
//! - [`fingerprint`] — stable FNV-1a digests of exported run state,
//!   backing the sequential-vs-parallel bit-identity cross-checks.

#![warn(missing_docs)]

pub mod breakdown;
pub mod causal;
pub mod chrome_trace;
pub mod congestion;
pub mod dashboard;
pub mod fingerprint;
pub mod json;
pub mod memory;
pub mod metrics;
pub mod observatory;
pub mod recorder;
pub mod regress;
pub mod retime;
pub mod runtime;
pub mod stream;

pub use breakdown::{fold_lifecycles, BreakdownSummary, FoldStats, PacketLifecycle, Stage};
pub use causal::{Blame, CEdge, CNode, CausalGraph, CriticalPath, EdgeKind, NodeKind};
pub use chrome_trace::{lifecycles_csv, ChromeTraceBuilder, ChromeTraceWriter, LifecycleCsvWriter};
pub use congestion::{CongestionMap, LinkLoad, RouterLoad};
pub use dashboard::{render_dashboard, validate_html, DashboardInput};
pub use fingerprint::{fnv1a64, Fingerprint};
pub use json::{validate_json, Lex};
pub use memory::{MemReport, MemScope, MemTag};
pub use metrics::{LogHistogram, MetricsRegistry, MetricsSnapshot};
pub use observatory::{
    DiffConfig, ObservatoryDiff, ObservatoryReport, Section, SectionDiff, SectionKind,
    TrajectoryIndex, OBSERVATORY_SCHEMA_VERSION, SEC_ATTRIBUTION, SEC_BLAME, SEC_CONGESTION,
    SEC_RECOVERY,
};
pub use recorder::{
    FlightEvent, FlightRecorder, NopRecorder, PacketId, Recorder, SharedFlightRecorder,
    VerdictCause,
};
pub use regress::{BenchReport, Direction, RegressFinding, RegressReport, BENCH_SCHEMA_VERSION};
pub use retime::{retime, retime_blamed, Perturbation, Retimed};
pub use runtime::{profile_chrome_trace, RuntimeSummary, SpeedupAttribution};
pub use stream::{
    QuantileSketch, Reservoir, SpaceSavingTopK, StreamConfig, StreamFootprint, StreamObserver,
    StreamSummary, StreamingMoments, TopKEntry,
};
