//! The packet flight recorder: lifecycle hooks and their event log.
//!
//! The fabric calls a [`Recorder`] at every step of a packet's life. The
//! trait's methods all have no-op default bodies, so a recorder
//! implements only the events it cares about and the *disabled* path
//! (no recorder installed) costs the caller a single branch — the hook
//! discipline the tentpole bench guard checks.
//!
//! Clients are identified by their dense per-node index (0–3 the
//! processing slices, 4 the HTIS, 5–6 the accumulation memories) and
//! counters by their raw id, so this crate stays below the network model
//! in the dependency order.

use anton_des::SimTime;
use anton_topo::{LinkDir, NodeId};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// Identifies one injected packet. Assigned densely by the fabric at
/// injection, in deterministic injection order; multicast copies share
/// their original's id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(pub u64);

/// Why a failure detector promoted transient loss to a permanent-failure
/// verdict (runtime fault recovery, DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerdictCause {
    /// The link-layer retransmit budget exhausted: the ack/retransmit
    /// protocol gave up, which is itself the detection signal.
    RetryBudget,
    /// No acknowledgement within the heartbeat/idle deadline: the link
    /// went silently dead and the sender's idle timer expired.
    Heartbeat,
}

/// One recorded packet-lifecycle event. Field names follow the model's
/// timeline: a send issues at `at`, finishes packet assembly at
/// `inj_ready`, wins the injection port at `inj_start`, and is ready for
/// its first torus link at `wire_ready`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightEvent {
    /// A client injected a packet (`Fabric::send`).
    Inject {
        /// The packet.
        pkt: PacketId,
        /// Sending node.
        node: NodeId,
        /// Sending client (dense index).
        client: u8,
        /// Destination node for unicast; `None` for multicast.
        dst: Option<NodeId>,
        /// Time software issued the send.
        at: SimTime,
        /// Packet assembly done (send setup elapsed).
        inj_ready: SimTime,
        /// Injection port won (≥ `inj_ready` under port contention).
        inj_start: SimTime,
        /// Ready for the first torus link (send-side ring crossed). For
        /// same-node writes this equals `at`: the whole local trip is
        /// attributed to delivery.
        wire_ready: SimTime,
        /// Modeled wire payload size.
        payload_bytes: u32,
    },
    /// A torus link direction was reserved for one traversal.
    LinkReserve {
        /// The packet.
        pkt: PacketId,
        /// Node whose outgoing link was reserved.
        node: NodeId,
        /// The link direction.
        link: LinkDir,
        /// When the packet was ready for the link.
        ready: SimTime,
        /// When the successful traversal started (≥ `ready` under
        /// contention or after retransmissions).
        start: SimTime,
        /// When the link frees (start + occupancy).
        end: SimTime,
    },
    /// A link-layer retransmission (fault-injection runs only).
    Retransmit {
        /// The packet.
        pkt: PacketId,
        /// Node whose link retransmitted.
        node: NodeId,
        /// The link direction.
        link: LinkDir,
        /// 1-based attempt number that failed.
        attempt: u32,
        /// When the failed attempt started.
        at: SimTime,
    },
    /// A packet head reached a node's receive adapter.
    HopEnter {
        /// The packet.
        pkt: PacketId,
        /// The node entered.
        node: NodeId,
        /// Head arrival time.
        at: SimTime,
    },
    /// A packet head left a node onto its next link.
    HopExit {
        /// The packet.
        pkt: PacketId,
        /// The node exited.
        node: NodeId,
        /// Start time of the next link traversal.
        at: SimTime,
    },
    /// A packet's tail was applied to its target client.
    Deliver {
        /// The packet.
        pkt: PacketId,
        /// Delivery node.
        node: NodeId,
        /// Target client (dense index).
        client: u8,
        /// Delivery time.
        at: SimTime,
    },
    /// A synchronization counter was incremented by a delivery.
    CounterUpdate {
        /// The packet that bumped the counter.
        pkt: PacketId,
        /// Node owning the counter.
        node: NodeId,
        /// Client owning the counter (dense index).
        client: u8,
        /// Raw counter id.
        counter: u16,
        /// Increment time (the delivery time).
        at: SimTime,
        /// When the armed watch becomes visible to software, if this
        /// increment fired one (includes core-busy and accumulation-poll
        /// delays — the paper's "synchronization" stage).
        fire_at: Option<SimTime>,
    },
    /// A phase label change (`Ctx::set_phase`); marks MD sub-phases in
    /// exported traces.
    Phase {
        /// The new phase label.
        label: String,
        /// When it took effect.
        at: SimTime,
    },
    /// A failure detector promoted transient loss on one outgoing link
    /// to a permanent `LinkDown` verdict (recovery runs only).
    LinkDown {
        /// Node owning the outgoing link.
        node: NodeId,
        /// The condemned link direction.
        link: LinkDir,
        /// Which detector fired.
        cause: VerdictCause,
        /// Simulated detection time.
        at: SimTime,
    },
    /// All six outgoing links of a node were condemned: the node itself
    /// is declared dead (recovery runs only).
    NodeDown {
        /// The condemned node.
        node: NodeId,
        /// When the last of its links was condemned.
        at: SimTime,
    },
    /// A stranded packet re-entered the network after a recovery
    /// backoff, with its route recomputed around detected failures.
    Reinject {
        /// The packet.
        pkt: PacketId,
        /// Node the packet was stranded at (the re-injection point).
        node: NodeId,
        /// 1-based recovery attempt number.
        attempt: u32,
        /// Re-injection time (detection time + seeded backoff).
        at: SimTime,
    },
    /// A delivery was suppressed because the counted remote write had
    /// already been applied (at-least-once transport, exactly-once
    /// effect).
    DuplicateSuppressed {
        /// The packet (same id as the applied copy).
        pkt: PacketId,
        /// Delivery node.
        node: NodeId,
        /// When the duplicate arrived.
        at: SimTime,
    },
}

impl FlightEvent {
    /// The packet this event belongs to (`None` for phase marks and
    /// failure verdicts, which concern a link or node, not one packet).
    pub fn packet(&self) -> Option<PacketId> {
        match self {
            FlightEvent::Inject { pkt, .. }
            | FlightEvent::LinkReserve { pkt, .. }
            | FlightEvent::Retransmit { pkt, .. }
            | FlightEvent::HopEnter { pkt, .. }
            | FlightEvent::HopExit { pkt, .. }
            | FlightEvent::Deliver { pkt, .. }
            | FlightEvent::CounterUpdate { pkt, .. }
            | FlightEvent::Reinject { pkt, .. }
            | FlightEvent::DuplicateSuppressed { pkt, .. } => Some(*pkt),
            FlightEvent::Phase { .. }
            | FlightEvent::LinkDown { .. }
            | FlightEvent::NodeDown { .. } => None,
        }
    }

    /// The event's timestamp (injection events report the issue time).
    pub fn at(&self) -> SimTime {
        match self {
            FlightEvent::Inject { at, .. }
            | FlightEvent::Retransmit { at, .. }
            | FlightEvent::HopEnter { at, .. }
            | FlightEvent::HopExit { at, .. }
            | FlightEvent::Deliver { at, .. }
            | FlightEvent::CounterUpdate { at, .. }
            | FlightEvent::Phase { at, .. }
            | FlightEvent::LinkDown { at, .. }
            | FlightEvent::NodeDown { at, .. }
            | FlightEvent::Reinject { at, .. }
            | FlightEvent::DuplicateSuppressed { at, .. } => *at,
            FlightEvent::LinkReserve { start, .. } => *start,
        }
    }
}

/// Packet-lifecycle hooks. Every method has a no-op default body; a
/// fabric with no recorder installed skips the calls entirely, so
/// instrumentation is zero-cost when disabled.
#[allow(unused_variables)]
pub trait Recorder {
    /// A packet was injected. See [`FlightEvent::Inject`] for the
    /// timestamp semantics.
    #[allow(clippy::too_many_arguments)]
    fn on_inject(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        client: u8,
        dst: Option<NodeId>,
        at: SimTime,
        inj_ready: SimTime,
        inj_start: SimTime,
        wire_ready: SimTime,
        payload_bytes: u32,
    ) {
    }

    /// A link was reserved for one successful traversal.
    fn on_link_reserve(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        link: LinkDir,
        ready: SimTime,
        start: SimTime,
        end: SimTime,
    ) {
    }

    /// A link-layer retransmission happened.
    fn on_retransmit(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        link: LinkDir,
        attempt: u32,
        at: SimTime,
    ) {
    }

    /// A packet head arrived at a node.
    fn on_hop_enter(&mut self, pkt: PacketId, node: NodeId, at: SimTime) {}

    /// A packet head left a node onto its next link.
    fn on_hop_exit(&mut self, pkt: PacketId, node: NodeId, at: SimTime) {}

    /// A packet was delivered to its target client.
    fn on_deliver(&mut self, pkt: PacketId, node: NodeId, client: u8, at: SimTime) {}

    /// A delivery incremented a synchronization counter.
    #[allow(clippy::too_many_arguments)]
    fn on_counter_update(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        client: u8,
        counter: u16,
        at: SimTime,
        fire_at: Option<SimTime>,
    ) {
    }

    /// The traffic phase label changed.
    fn on_phase(&mut self, label: &str, at: SimTime) {}

    /// A failure detector condemned one outgoing link.
    fn on_link_down(&mut self, node: NodeId, link: LinkDir, cause: VerdictCause, at: SimTime) {}

    /// All outgoing links of a node were condemned.
    fn on_node_down(&mut self, node: NodeId, at: SimTime) {}

    /// A stranded packet re-entered the network after a recovery
    /// backoff.
    fn on_reinject(&mut self, pkt: PacketId, node: NodeId, attempt: u32, at: SimTime) {}

    /// A duplicate delivery was suppressed by the counted-write check.
    fn on_duplicate_suppressed(&mut self, pkt: PacketId, node: NodeId, at: SimTime) {}

    /// Read access to the underlying [`FlightRecorder`], when this
    /// recorder directly owns one. Lets a host that installed an owned
    /// recorder behind a `Box<dyn Recorder>` read the captured events
    /// back without dynamic downcasting — the lock-free alternative to
    /// routing every hook through a [`SharedFlightRecorder`] mutex.
    /// Wrappers that cannot hand out a plain reference (e.g. the shared
    /// mutex handle) keep the default `None`.
    fn as_flight(&self) -> Option<&FlightRecorder> {
        None
    }

    /// Read access to the underlying [`crate::stream::StreamObserver`],
    /// when this recorder is one — the bounded-memory sibling of
    /// [`Recorder::as_flight`], used by hosts to pull the streamed
    /// summary back out of a `Box<dyn Recorder>`.
    fn as_stream(&self) -> Option<&crate::stream::StreamObserver> {
        None
    }

    /// Mutable access to the underlying
    /// [`crate::stream::StreamObserver`], when this recorder is one.
    fn as_stream_mut(&mut self) -> Option<&mut crate::stream::StreamObserver> {
        None
    }
}

/// A recorder that drops everything (the explicit spelling of the
/// disabled path; a fabric with no recorder installed never even calls
/// it).
#[derive(Debug, Clone, Copy, Default)]
pub struct NopRecorder;

impl Recorder for NopRecorder {}

/// How the flight recorder stores events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Storage {
    /// Keep every event (memory grows with traffic).
    Unbounded,
    /// Keep only the most recent `cap` events (the on-chip logic
    /// analyzer's bounded capture buffer).
    Ring(usize),
}

/// A [`Recorder`] that keeps the event stream for offline analysis:
/// latency attribution ([`crate::breakdown`]), Chrome-trace export
/// ([`crate::chrome_trace`]), and the tests' lifecycle invariants.
///
/// Memory is bounded two ways: [`FlightRecorder::with_ring`] keeps only
/// the newest events, and [`FlightRecorder::with_sampling`] records only
/// every k-th packet's lifecycle (phase marks are always kept).
#[derive(Debug)]
pub struct FlightRecorder {
    events: VecDeque<FlightEvent>,
    storage: Storage,
    /// Record packets whose id satisfies `id % sample_every == 0`.
    sample_every: u64,
    /// Events dropped by the ring buffer (not by sampling).
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// An unbounded recorder capturing every packet.
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            events: VecDeque::new(),
            storage: Storage::Unbounded,
            sample_every: 1,
            dropped: 0,
        }
    }

    /// Ring-buffer mode: keep only the newest `cap` events.
    pub fn with_ring(mut self, cap: usize) -> FlightRecorder {
        assert!(cap > 0, "ring capacity must be positive");
        self.storage = Storage::Ring(cap);
        self
    }

    /// Sampling mode: record only packets whose id is a multiple of
    /// `every` (1 = record everything).
    pub fn with_sampling(mut self, every: u64) -> FlightRecorder {
        assert!(every > 0, "sampling period must be positive");
        self.sample_every = every;
        self
    }

    /// Wrap in the shared handle the fabric's `Box<dyn Recorder>` slot
    /// accepts while the caller keeps access for analysis after the run.
    pub fn into_shared(self) -> SharedFlightRecorder {
        SharedFlightRecorder(Arc::new(Mutex::new(self)))
    }

    #[inline]
    fn keeps(&self, pkt: PacketId) -> bool {
        self.sample_every == 1 || pkt.0.is_multiple_of(self.sample_every)
    }

    fn push(&mut self, ev: FlightEvent) {
        if let Storage::Ring(cap) = self.storage {
            if self.events.len() >= cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(ev);
    }

    /// All kept events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Number of kept events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was kept.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain the kept events, oldest first.
    pub fn take_events(&mut self) -> Vec<FlightEvent> {
        self.events.drain(..).collect()
    }
}

impl Recorder for FlightRecorder {
    fn on_inject(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        client: u8,
        dst: Option<NodeId>,
        at: SimTime,
        inj_ready: SimTime,
        inj_start: SimTime,
        wire_ready: SimTime,
        payload_bytes: u32,
    ) {
        if self.keeps(pkt) {
            self.push(FlightEvent::Inject {
                pkt,
                node,
                client,
                dst,
                at,
                inj_ready,
                inj_start,
                wire_ready,
                payload_bytes,
            });
        }
    }

    fn on_link_reserve(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        link: LinkDir,
        ready: SimTime,
        start: SimTime,
        end: SimTime,
    ) {
        if self.keeps(pkt) {
            self.push(FlightEvent::LinkReserve {
                pkt,
                node,
                link,
                ready,
                start,
                end,
            });
        }
    }

    fn on_retransmit(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        link: LinkDir,
        attempt: u32,
        at: SimTime,
    ) {
        if self.keeps(pkt) {
            self.push(FlightEvent::Retransmit {
                pkt,
                node,
                link,
                attempt,
                at,
            });
        }
    }

    fn on_hop_enter(&mut self, pkt: PacketId, node: NodeId, at: SimTime) {
        if self.keeps(pkt) {
            self.push(FlightEvent::HopEnter { pkt, node, at });
        }
    }

    fn on_hop_exit(&mut self, pkt: PacketId, node: NodeId, at: SimTime) {
        if self.keeps(pkt) {
            self.push(FlightEvent::HopExit { pkt, node, at });
        }
    }

    fn on_deliver(&mut self, pkt: PacketId, node: NodeId, client: u8, at: SimTime) {
        if self.keeps(pkt) {
            self.push(FlightEvent::Deliver {
                pkt,
                node,
                client,
                at,
            });
        }
    }

    fn on_counter_update(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        client: u8,
        counter: u16,
        at: SimTime,
        fire_at: Option<SimTime>,
    ) {
        if self.keeps(pkt) {
            self.push(FlightEvent::CounterUpdate {
                pkt,
                node,
                client,
                counter,
                at,
                fire_at,
            });
        }
    }

    fn on_phase(&mut self, label: &str, at: SimTime) {
        self.push(FlightEvent::Phase {
            label: label.to_owned(),
            at,
        });
    }

    // Failure verdicts are rare and diagnostic gold: like phase marks
    // they bypass packet sampling.
    fn on_link_down(&mut self, node: NodeId, link: LinkDir, cause: VerdictCause, at: SimTime) {
        self.push(FlightEvent::LinkDown {
            node,
            link,
            cause,
            at,
        });
    }

    fn on_node_down(&mut self, node: NodeId, at: SimTime) {
        self.push(FlightEvent::NodeDown { node, at });
    }

    fn on_reinject(&mut self, pkt: PacketId, node: NodeId, attempt: u32, at: SimTime) {
        if self.keeps(pkt) {
            self.push(FlightEvent::Reinject {
                pkt,
                node,
                attempt,
                at,
            });
        }
    }

    fn on_duplicate_suppressed(&mut self, pkt: PacketId, node: NodeId, at: SimTime) {
        if self.keeps(pkt) {
            self.push(FlightEvent::DuplicateSuppressed { pkt, node, at });
        }
    }

    fn as_flight(&self) -> Option<&FlightRecorder> {
        Some(self)
    }
}

/// The shape the fabric's recorder slot usually holds: the fabric owns a
/// `Box<dyn Recorder>` wrapping this handle while the test or tool keeps
/// a clone to inspect after the run. Backed by `Arc<Mutex<…>>` so a
/// recorder-carrying fabric is `Send` and can live inside a parallel-DES
/// shard; in the common single-threaded case the mutex is uncontended
/// (each shard's fabric has its own recorder — merged deterministically
/// afterwards — so there is no cross-thread locking during a run either).
#[derive(Clone)]
pub struct SharedFlightRecorder(Arc<Mutex<FlightRecorder>>);

impl SharedFlightRecorder {
    /// Lock and read the recorder (panics if a writer panicked mid-push).
    ///
    /// Named for source compatibility with the `Rc<RefCell<…>>` shape
    /// this type previously aliased.
    #[allow(clippy::should_implement_trait)]
    pub fn borrow(&self) -> MutexGuard<'_, FlightRecorder> {
        self.0.lock().expect("flight recorder poisoned")
    }

    /// Lock the recorder for mutation (draining events, clearing).
    pub fn borrow_mut(&self) -> MutexGuard<'_, FlightRecorder> {
        self.0.lock().expect("flight recorder poisoned")
    }
}

impl Recorder for SharedFlightRecorder {
    fn on_inject(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        client: u8,
        dst: Option<NodeId>,
        at: SimTime,
        inj_ready: SimTime,
        inj_start: SimTime,
        wire_ready: SimTime,
        payload_bytes: u32,
    ) {
        self.borrow_mut().on_inject(
            pkt,
            node,
            client,
            dst,
            at,
            inj_ready,
            inj_start,
            wire_ready,
            payload_bytes,
        );
    }

    fn on_link_reserve(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        link: LinkDir,
        ready: SimTime,
        start: SimTime,
        end: SimTime,
    ) {
        self.borrow_mut()
            .on_link_reserve(pkt, node, link, ready, start, end);
    }

    fn on_retransmit(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        link: LinkDir,
        attempt: u32,
        at: SimTime,
    ) {
        self.borrow_mut()
            .on_retransmit(pkt, node, link, attempt, at);
    }

    fn on_hop_enter(&mut self, pkt: PacketId, node: NodeId, at: SimTime) {
        self.borrow_mut().on_hop_enter(pkt, node, at);
    }

    fn on_hop_exit(&mut self, pkt: PacketId, node: NodeId, at: SimTime) {
        self.borrow_mut().on_hop_exit(pkt, node, at);
    }

    fn on_deliver(&mut self, pkt: PacketId, node: NodeId, client: u8, at: SimTime) {
        self.borrow_mut().on_deliver(pkt, node, client, at);
    }

    fn on_counter_update(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        client: u8,
        counter: u16,
        at: SimTime,
        fire_at: Option<SimTime>,
    ) {
        self.borrow_mut()
            .on_counter_update(pkt, node, client, counter, at, fire_at);
    }

    fn on_phase(&mut self, label: &str, at: SimTime) {
        self.borrow_mut().on_phase(label, at);
    }

    fn on_link_down(&mut self, node: NodeId, link: LinkDir, cause: VerdictCause, at: SimTime) {
        self.borrow_mut().on_link_down(node, link, cause, at);
    }

    fn on_node_down(&mut self, node: NodeId, at: SimTime) {
        self.borrow_mut().on_node_down(node, at);
    }

    fn on_reinject(&mut self, pkt: PacketId, node: NodeId, attempt: u32, at: SimTime) {
        self.borrow_mut().on_reinject(pkt, node, attempt, at);
    }

    fn on_duplicate_suppressed(&mut self, pkt: PacketId, node: NodeId, at: SimTime) {
        self.borrow_mut().on_duplicate_suppressed(pkt, node, at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn nop_recorder_compiles_all_defaults() {
        let mut r = NopRecorder;
        r.on_hop_enter(PacketId(1), NodeId(0), t(5));
        r.on_phase("x", t(0));
    }

    #[test]
    fn ring_buffer_bounds_memory() {
        let mut r = FlightRecorder::new().with_ring(3);
        for i in 0..10 {
            r.on_hop_enter(PacketId(i), NodeId(0), t(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let first = r.events().next().unwrap();
        assert_eq!(first.packet(), Some(PacketId(7)));
    }

    #[test]
    fn sampling_keeps_every_kth_packet() {
        let mut r = FlightRecorder::new().with_sampling(4);
        for i in 0..16 {
            r.on_deliver(PacketId(i), NodeId(0), 0, t(i));
        }
        assert_eq!(r.len(), 4); // ids 0, 4, 8, 12
        assert!(r.events().all(|e| e.packet().unwrap().0 % 4 == 0));
        // Phase marks bypass sampling.
        r.on_phase("forces", t(99));
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn shared_handle_observes_pushes() {
        let shared = FlightRecorder::new().into_shared();
        let mut hook: Box<dyn Recorder> = Box::new(shared.clone());
        hook.on_deliver(PacketId(3), NodeId(1), 2, t(7));
        assert_eq!(shared.borrow().len(), 1);
    }
}
