//! Named counters, gauges, and log-bucketed latency histograms.
//!
//! The registry subsumes the ad-hoc aggregation previously scattered
//! across `NetStats`-style structs: producers register monotonically
//! increasing **counters** (packets sent, retransmits), point-in-time
//! **gauges** (FIFO high watermark, energy), and **histograms** of
//! simulated durations (end-to-end latency with p50/p99/max). A
//! [`MetricsSnapshot`] flattens everything to a sorted name → value map,
//! and two snapshots diff, which is how per-MD-phase deltas are reported
//! without resetting the live registry.
//!
//! Everything iterates in `BTreeMap` order, so exports are byte-stable
//! for a given simulation — the determinism tests rely on it.

use anton_des::SimDuration;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log2 buckets: durations are bucketed by the bit-length of
/// their picosecond count, so bucket `i` holds values in
/// `[2^(i-1), 2^i)` ps (bucket 0 holds exactly 0).
const BUCKETS: usize = 65;

/// A histogram of simulated durations with logarithmic (power-of-two)
/// buckets. Quantiles are approximate — resolved to the bucket, then
/// interpolated linearly inside it — but min, max, count, and sum are
/// exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ps: u128,
    min_ps: u64,
    max_ps: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ps: 0,
            min_ps: u64::MAX,
            max_ps: 0,
        }
    }

    #[inline]
    fn bucket_of(ps: u64) -> usize {
        (64 - ps.leading_zeros()) as usize
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ps = d.as_ps();
        self.buckets[Self::bucket_of(ps)] += 1;
        self.count += 1;
        self.sum_ps += ps as u128;
        self.min_ps = self.min_ps.min(ps);
        self.max_ps = self.max_ps.max(ps);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean in nanoseconds (`None` when empty).
    pub fn mean_ns(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(self.sum_ps as f64 / self.count as f64 / 1e3)
    }

    /// Exact minimum (`None` when empty).
    pub fn min(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_ps(self.min_ps))
    }

    /// Exact maximum (`None` when empty).
    pub fn max(&self) -> Option<SimDuration> {
        (self.count > 0).then(|| SimDuration::from_ps(self.max_ps))
    }

    /// Approximate quantile `q` in `[0, 1]`: the containing bucket is
    /// exact, the position inside it estimated by the midpoint rule
    /// (the j-th of n samples in a bucket sits at fraction
    /// `(j - 0.5) / n` of the bucket span, so a single-sample or
    /// single-bucket histogram reports the bucket midpoint rather than
    /// its top edge). The estimate is clamped to the exact recorded
    /// min/max, so `quantile(0)`/`quantile(1)` are exact and a
    /// one-sample histogram returns the sample itself.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are tracked exactly — no interpolation.
        if q == 0.0 {
            return Some(SimDuration::from_ps(self.min_ps));
        }
        if q == 1.0 {
            return Some(SimDuration::from_ps(self.max_ps));
        }
        // Rank of the q-th sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                // Bucket i covers [2^(i-1), 2^i - 1]; the top bucket
                // (i = 64) saturates at u64::MAX instead of shifting
                // out of range.
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                let frac = ((rank - seen) as f64 - 0.5) / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                let est = est.clamp(self.min_ps as f64, self.max_ps as f64);
                return Some(SimDuration::from_ps(est.round() as u64));
            }
            seen += n;
        }
        Some(SimDuration::from_ps(self.max_ps))
    }

    /// Median (approximate; see [`LogHistogram::quantile`]).
    pub fn p50(&self) -> Option<SimDuration> {
        self.quantile(0.50)
    }

    /// 99th percentile (approximate; see [`LogHistogram::quantile`]).
    pub fn p99(&self) -> Option<SimDuration> {
        self.quantile(0.99)
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        if other.count > 0 {
            self.min_ps = self.min_ps.min(other.min_ps);
            self.max_ps = self.max_ps.max(other.max_ps);
        }
    }
}

/// A registry of named metrics. Names are free-form dotted paths
/// (`"net.packets_sent"`, `"lat.ping_pong"`); iteration and export are
/// in sorted name order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter, creating it at zero first.
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Overwrite a counter with an externally tracked total.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Set a gauge to a point-in-time value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Record a duration sample into a histogram, creating it if needed.
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(d);
    }

    /// A counter's current value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's current value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram, if any sample was recorded under this name.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// Merge another registry into this one, the per-shard reduction
    /// used when parallel workers each keep a private registry: counters
    /// add, gauges keep the maximum (they are high-watermark style), and
    /// histograms pool their samples. The result is independent of merge
    /// order and grouping — commutative and associative — which the
    /// shard-permutation property tests assert, so any deterministic
    /// shard order yields the same merged snapshot.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges
                .entry(k.clone())
                .and_modify(|g| *g = g.max(*v))
                .or_insert(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Flatten the registry into a snapshot. Histograms expand to
    /// `name.count`, `name.mean_ns`, `name.p50_ns`, `name.p99_ns`,
    /// `name.max_ns`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut values = BTreeMap::new();
        for (k, v) in &self.counters {
            values.insert(k.clone(), *v as f64);
        }
        for (k, v) in &self.gauges {
            values.insert(k.clone(), *v);
        }
        for (k, h) in &self.histograms {
            values.insert(format!("{k}.count"), h.count() as f64);
            if let Some(m) = h.mean_ns() {
                values.insert(format!("{k}.mean_ns"), m);
            }
            if let Some(p) = h.p50() {
                values.insert(format!("{k}.p50_ns"), p.as_ns_f64());
            }
            if let Some(p) = h.p99() {
                values.insert(format!("{k}.p99_ns"), p.as_ns_f64());
            }
            if let Some(p) = h.max() {
                values.insert(format!("{k}.max_ns"), p.as_ns_f64());
            }
        }
        MetricsSnapshot { values }
    }
}

/// A flattened, immutable view of a [`MetricsRegistry`] at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, f64>,
}

impl MetricsSnapshot {
    /// The flattened name → value map, in sorted name order.
    pub fn values(&self) -> &BTreeMap<String, f64> {
        &self.values
    }

    /// One value by flattened name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Per-key delta `self − baseline`. Keys only in `self` keep their
    /// value; keys only in `baseline` appear negated, so the diff always
    /// answers "what did this phase add".
    pub fn diff(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut values = BTreeMap::new();
        for (k, v) in &self.values {
            values.insert(
                k.clone(),
                v - baseline.values.get(k).copied().unwrap_or(0.0),
            );
        }
        for (k, v) in &baseline.values {
            values.entry(k.clone()).or_insert(-v);
        }
        MetricsSnapshot { values }
    }

    /// Render as a JSON object, keys sorted, values in `{:?}` float form
    /// (shortest round-trip representation — byte-stable per input).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  {}: {}", crate::json::escape(k), fmt_f64(*v));
        }
        out.push_str("\n}\n");
        out
    }

    /// Render as two-column CSV (`metric,value`), keys sorted.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (k, v) in &self.values {
            let _ = writeln!(out, "{k},{}", fmt_f64(*v));
        }
        out
    }
}

/// Format a float so it is valid JSON (no NaN/inf; integral values get a
/// trailing `.0`-free integer form).
pub(crate) fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_owned();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_exact_aggregates() {
        let mut h = LogHistogram::new();
        for ns in [100u64, 200, 300] {
            h.record(SimDuration::from_ns(ns));
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean_ns(), Some(200.0));
        assert_eq!(h.min(), Some(SimDuration::from_ns(100)));
        assert_eq!(h.max(), Some(SimDuration::from_ns(300)));
    }

    #[test]
    fn histogram_quantiles_bracketed() {
        let mut h = LogHistogram::new();
        for ns in 1..=1000u64 {
            h.record(SimDuration::from_ns(ns));
        }
        let p50 = h.p50().unwrap().as_ns_f64();
        // Log buckets: p50 must land in the same power-of-two band as 500.
        assert!((256.0..1000.0).contains(&p50), "p50 = {p50}");
        let p99 = h.p99().unwrap().as_ns_f64();
        assert!((512.0..=1000.0).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), Some(SimDuration::from_ns(1000)));
    }

    #[test]
    fn histogram_single_sample_quantiles_are_the_sample() {
        // Regression: at bucket boundaries the interpolation used to
        // return the bucket's top edge (or overflow on the top
        // bucket); a one-sample histogram must report a sane in-bucket
        // value for every quantile — with exact min/max clamping, the
        // sample itself.
        let mut h = LogHistogram::new();
        h.record(SimDuration::from_ns(600));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert_eq!(v, SimDuration::from_ns(600), "q={q} must be the sample");
        }
    }

    #[test]
    fn histogram_single_bucket_quantiles_stay_in_bucket() {
        // Three samples in one power-of-two bucket [512, 1023] ns:
        // every quantile must land inside the bucket, between the
        // recorded min and max, and be monotone in q.
        let mut h = LogHistogram::new();
        for ns in [600u64, 700, 800] {
            h.record(SimDuration::from_ns(ns));
        }
        let p50 = h.p50().unwrap();
        let p99 = h.p99().unwrap();
        assert!(p50 >= SimDuration::from_ns(600) && p50 <= SimDuration::from_ns(800));
        assert!(p99 >= p50 && p99 <= SimDuration::from_ns(800));
        assert_eq!(h.quantile(0.0), Some(SimDuration::from_ns(600)));
        assert_eq!(h.quantile(1.0), Some(SimDuration::from_ns(800)));
    }

    #[test]
    fn histogram_top_bucket_does_not_overflow() {
        // Durations with the top bit set land in bucket 64, whose
        // upper edge used to be computed as `1 << 64` — an overflow.
        let mut h = LogHistogram::new();
        h.record(SimDuration::from_ps(u64::MAX));
        h.record(SimDuration::from_ps(1 << 63));
        for q in [0.5, 0.99] {
            let v = h.quantile(q).unwrap().as_ps();
            assert!(v >= 1 << 63, "q={q} stays in the top bucket");
        }
        assert_eq!(h.quantile(1.0), Some(SimDuration::from_ps(u64::MAX)));
    }

    #[test]
    fn histogram_zero_sample_bucket_zero() {
        // Bucket 0 holds only the zero duration; its lo == hi == 0 and
        // quantiles must not produce NaN.
        let mut h = LogHistogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.p50(), Some(SimDuration::ZERO));
        assert_eq!(h.p99(), Some(SimDuration::ZERO));
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for ns in [5u64, 10, 80] {
            a.record(SimDuration::from_ns(ns));
            c.record(SimDuration::from_ns(ns));
        }
        for ns in [3u64, 700] {
            b.record(SimDuration::from_ns(ns));
            c.record(SimDuration::from_ns(ns));
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn registry_merge_adds_counters_maxes_gauges_pools_histograms() {
        let mut a = MetricsRegistry::new();
        a.inc("net.sent", 10);
        a.set_gauge("fifo.hwm", 3.0);
        a.observe("lat", SimDuration::from_ns(100));
        let mut b = MetricsRegistry::new();
        b.inc("net.sent", 5);
        b.inc("net.retransmits", 1);
        b.set_gauge("fifo.hwm", 7.0);
        b.observe("lat", SimDuration::from_ns(300));
        a.merge(&b);
        assert_eq!(a.counter("net.sent"), 15);
        assert_eq!(a.counter("net.retransmits"), 1);
        assert_eq!(a.gauge("fifo.hwm"), Some(7.0));
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(SimDuration::from_ns(300)));
    }

    #[test]
    fn snapshot_diff_is_per_phase_delta() {
        let mut m = MetricsRegistry::new();
        m.inc("net.sent", 10);
        let before = m.snapshot();
        m.inc("net.sent", 7);
        m.inc("net.retransmits", 2);
        let after = m.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.get("net.sent"), Some(7.0));
        assert_eq!(d.get("net.retransmits"), Some(2.0));
    }

    #[test]
    fn snapshot_json_is_valid_and_stable() {
        let mut m = MetricsRegistry::new();
        m.inc("a.count", 3);
        m.set_gauge("b.watermark", 7.5);
        m.observe("lat", SimDuration::from_ns(162));
        let s1 = m.snapshot().to_json();
        let s2 = m.snapshot().to_json();
        assert_eq!(s1, s2);
        crate::json::validate_json(&s1).expect("snapshot JSON must parse");
        assert!(s1.contains("\"lat.p99_ns\""));
    }
}
