//! Streaming bounded-memory observability: mergeable sketches plus a
//! [`Recorder`] that folds lifecycles at delivery instead of keeping the
//! event stream.
//!
//! Every earlier observability layer (flight recording, causal graphs,
//! congestion maps) is O(events): fine on the paper's 512-node Anton 1
//! torus, fatal at the 10⁴-node scales the ROADMAP targets. This module
//! keeps the *same* Figure 6 attribution with O(nodes + links) state:
//!
//! - [`QuantileSketch`] — a DDSketch-style log-bucket histogram with
//!   **fixed** bucket boundaries (8 sub-buckets per power of two), so
//!   merging is an element-wise integer add: bit-deterministic,
//!   commutative, associative. Relative quantile error ≤ 1/8, well
//!   inside one [`crate::LogHistogram`] power-of-two bucket.
//! - [`StreamingMoments`] — count/sum/sum-of-squares kept as exact
//!   integers (no float accumulation), so merges are associative to the
//!   bit and the mean telescopes exactly against the offline
//!   [`crate::BreakdownSummary`].
//! - [`SpaceSavingTopK`] — bounded heavy-hitter table for per-link busy
//!   time. Per-shard streams evict (space-saving); merging is an exact
//!   union-sum, which stays bounded in sharded use because torus shards
//!   own disjoint links.
//! - [`Reservoir`] — seeded bottom-k priority sample of full
//!   [`PacketLifecycle`]s for causal/blame spot checks. The kept set
//!   depends only on (seed, packet id), never on arrival order, so
//!   shard merges reproduce the sequential sample bit-exactly.
//! - [`StreamObserver`] — the [`Recorder`] gluing it together: it keeps
//!   only in-flight partial lifecycles, folds each packet into the
//!   5-stage attribution at delivery (watermark-lazily, because the
//!   counter-visibility event lands at the same instant as delivery),
//!   and drops the events.
//!
//! Sharded runs attach one observer per shard; a packet that crosses
//! shards is seen only partially by each (inject on the source shard,
//! delivery on the destination shard), so [`StreamSummary`] carries its
//! still-open partials and [`StreamSummary::merge`] *joins* them
//! field-wise before [`StreamSummary::finalize`] classifies what
//! remains. All aggregate state is order-independent, so the merged
//! summary equals the sequential one bit-for-bit — the cross-check
//! `scale_probe` asserts.

use crate::breakdown::{BreakdownSummary, FoldStats, PacketLifecycle, Stage};
use crate::metrics::MetricsRegistry;
use crate::recorder::{PacketId, Recorder};
use anton_des::{SimDuration, SimTime};
use anton_topo::{LinkDir, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per power of two, i.e. a
/// worst-case relative bucket width of 1/8.
pub const SKETCH_SUB_BITS: u32 = 3;
const SUB: usize = 1 << SKETCH_SUB_BITS;
/// Total fixed bucket count of [`QuantileSketch`] (values 0..8 exactly,
/// then 8 sub-buckets for each of the 61 remaining u64 octaves).
pub const SKETCH_BUCKETS: usize = 8 + 61 * SUB;

/// Power-of-two bucket index of a picosecond value, matching the
/// [`crate::LogHistogram`] bucketing (`0 → 0`, else `64 - leading_zeros`).
/// Exposed so callers can assert "within one log-bucket" error bounds.
#[inline]
pub fn log2_bucket(ps: u64) -> u32 {
    64 - ps.leading_zeros()
}

/// A mergeable quantile sketch over picosecond durations with fixed
/// log-spaced bucket boundaries.
///
/// Because the boundaries are fixed (not data-dependent like a q-digest
/// collapse), two sketches merge by adding bucket counts element-wise:
/// the merge is bit-deterministic, commutative, and associative, and a
/// sharded run's merged sketch equals the sequential run's sketch
/// exactly. Count, sum, min, and max are exact; quantiles use the same
/// rank + midpoint rule as [`crate::LogHistogram`] but on buckets 8×
/// narrower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    buckets: Vec<u64>,
    count: u64,
    sum_ps: u128,
    min_ps: u64,
    max_ps: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// New empty sketch. Allocates the full fixed bucket array
    /// (`SKETCH_BUCKETS` u64s ≈ 4 KiB) up front: footprint is constant,
    /// never data-dependent.
    pub fn new() -> QuantileSketch {
        QuantileSketch {
            buckets: vec![0; SKETCH_BUCKETS],
            count: 0,
            sum_ps: 0,
            min_ps: u64::MAX,
            max_ps: 0,
        }
    }

    /// Fixed bucket index of a picosecond value.
    #[inline]
    fn bucket_of(ps: u64) -> usize {
        if ps < 8 {
            return ps as usize;
        }
        let b = (64 - ps.leading_zeros()) as usize; // bit length, 4..=64
        let sub = ((ps >> (b - 4)) & 7) as usize; // low 3 of the top 4 bits
        (b - 3) * SUB + sub
    }

    /// Inclusive value range `[lo, hi]` covered by bucket `idx`.
    fn bucket_bounds(idx: usize) -> (u64, u64) {
        if idx < 8 {
            return (idx as u64, idx as u64);
        }
        let b = idx / SUB + 3; // bit length
        let sub = (idx % SUB) as u64;
        let scale = 1u64 << (b - 4);
        let lo = (8 + sub) * scale;
        (lo, lo + (scale - 1))
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.record_ps(d.as_ps());
    }

    /// Record one raw picosecond value.
    pub fn record_ps(&mut self, ps: u64) {
        self.buckets[Self::bucket_of(ps)] += 1;
        self.count += 1;
        self.sum_ps += ps as u128;
        self.min_ps = self.min_ps.min(ps);
        self.max_ps = self.max_ps.max(ps);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values, in picoseconds.
    pub fn sum_ps(&self) -> u128 {
        self.sum_ps
    }

    /// Exact mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_ps as f64 / self.count as f64 / 1e3
    }

    /// Smallest recorded value in picoseconds (`None` when empty).
    pub fn min_ps(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ps)
    }

    /// Largest recorded value in picoseconds (`None` when empty).
    pub fn max_ps(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_ps)
    }

    /// Estimated quantile in picoseconds (`None` when empty). Exact at
    /// `q <= 0` (min) and `q >= 1` (max); otherwise within the one
    /// sub-bucket (≤ 1/8 relative width) that contains the rank sample.
    pub fn quantile_ps(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min_ps);
        }
        if q >= 1.0 {
            return Some(self.max_ps);
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let frac = ((rank - seen) as f64 - 0.5) / n as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                let est = est.round() as u64;
                return Some(est.clamp(self.min_ps, self.max_ps));
            }
            seen += n;
        }
        Some(self.max_ps)
    }

    /// Estimated quantile in nanoseconds (0 when empty).
    pub fn quantile_ns(&self, q: f64) -> f64 {
        self.quantile_ps(q).unwrap_or(0) as f64 / 1e3
    }

    /// Merge another sketch in: element-wise bucket add plus exact
    /// count/sum/min/max combination. Bit-deterministic in any order.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        self.min_ps = self.min_ps.min(other.min_ps);
        self.max_ps = self.max_ps.max(other.max_ps);
    }
}

/// Streaming count/mean/M2 moments kept as **exact integers** (count,
/// Σx, Σx² in picoseconds), so merging is a plain add: associative and
/// commutative to the bit, unlike Welford/Chan float updates. The mean
/// and variance are derived on read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamingMoments {
    count: u64,
    sum_ps: u128,
    /// Σx² saturates instead of wrapping: at u128 this needs ~10¹⁹
    /// samples of 200-day durations, but saturation keeps the merge
    /// law total anyway.
    sumsq_ps2: u128,
}

impl StreamingMoments {
    /// New empty accumulator.
    pub fn new() -> StreamingMoments {
        StreamingMoments::default()
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ps = d.as_ps();
        self.count += 1;
        self.sum_ps += ps as u128;
        self.sumsq_ps2 = self.sumsq_ps2.saturating_add((ps as u128) * (ps as u128));
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum in picoseconds.
    pub fn sum_ps(&self) -> u128 {
        self.sum_ps
    }

    /// Exact total as a [`SimDuration`]. Panics if the sum overflows
    /// u64 picoseconds (≫ 200 days of simulated latency).
    pub fn total(&self) -> SimDuration {
        SimDuration::from_ps(u64::try_from(self.sum_ps).expect("stage total overflows u64 ps"))
    }

    /// Mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_ps as f64 / self.count as f64 / 1e3
    }

    /// Population variance in ns² (0 when empty).
    pub fn variance_ns2(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean_ps = self.sum_ps as f64 / n;
        let var_ps2 = (self.sumsq_ps2 as f64 / n - mean_ps * mean_ps).max(0.0);
        var_ps2 / 1e6
    }

    /// Population standard deviation in nanoseconds.
    pub fn std_ns(&self) -> f64 {
        self.variance_ns2().sqrt()
    }

    /// Merge another accumulator in (exact integer adds).
    pub fn merge(&mut self, other: &StreamingMoments) {
        self.count += other.count;
        self.sum_ps += other.sum_ps;
        self.sumsq_ps2 = self.sumsq_ps2.saturating_add(other.sumsq_ps2);
    }
}

/// One heavy-hitter table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TopKEntry {
    /// Estimated total weight (exact while the key never got evicted).
    pub count: u64,
    /// Maximum overestimation error inherited from evictions (0 means
    /// the count is exact).
    pub err: u64,
}

/// Space-saving heavy-hitter table with deterministic eviction and an
/// exact union-sum merge.
///
/// Streaming offers evict the smallest `(count, key)` entry when the
/// table is full (the classic space-saving bound: a kept count
/// overestimates by at most its `err`). Merging deliberately does *not*
/// evict — it is an exact union-sum, hence commutative and associative —
/// so a merged table can exceed `capacity`. In sharded torus use the
/// key sets are disjoint (each shard owns its links), so the union stays
/// O(links) and, when `capacity` ≥ distinct keys, every count is exact
/// and equals the offline [`crate::CongestionMap`] busy total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSavingTopK<K: Ord + Clone> {
    capacity: usize,
    entries: BTreeMap<K, TopKEntry>,
    /// Secondary index for O(log n) min-eviction: ordered by (count, key).
    order: BTreeSet<(u64, K)>,
}

impl<K: Ord + Clone> SpaceSavingTopK<K> {
    /// New table holding at most `capacity` streamed keys (capacity 0
    /// disables recording).
    pub fn new(capacity: usize) -> SpaceSavingTopK<K> {
        SpaceSavingTopK {
            capacity,
            entries: BTreeMap::new(),
            order: BTreeSet::new(),
        }
    }

    /// Configured streaming capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Distinct keys currently held (may exceed capacity after merges).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Estimated (count, max error) for a key.
    pub fn get(&self, key: &K) -> Option<TopKEntry> {
        self.entries.get(key).copied()
    }

    /// Add `weight` to `key`, evicting the smallest entry if the table
    /// is full and the key is new.
    pub fn offer(&mut self, key: K, weight: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(e) = self.entries.get_mut(&key) {
            self.order.remove(&(e.count, key.clone()));
            e.count += weight;
            self.order.insert((e.count, key));
            return;
        }
        let mut entry = TopKEntry {
            count: weight,
            err: 0,
        };
        if self.entries.len() >= self.capacity {
            // Deterministic space-saving eviction: smallest (count, key).
            let (min_count, min_key) = self
                .order
                .iter()
                .next()
                .cloned()
                .expect("non-empty table at capacity");
            self.order.remove(&(min_count, min_key.clone()));
            self.entries.remove(&min_key);
            entry.count += min_count;
            entry.err = min_count;
        }
        self.order.insert((entry.count, key.clone()));
        self.entries.insert(key, entry);
    }

    /// Merge another table in by exact union-sum (errors add; no
    /// eviction, so this is associative and commutative).
    pub fn merge(&mut self, other: &SpaceSavingTopK<K>) {
        for (k, e) in &other.entries {
            match self.entries.get_mut(k) {
                Some(mine) => {
                    self.order.remove(&(mine.count, k.clone()));
                    mine.count += e.count;
                    mine.err += e.err;
                    self.order.insert((mine.count, k.clone()));
                }
                None => {
                    self.entries.insert(k.clone(), *e);
                    self.order.insert((e.count, k.clone()));
                }
            }
        }
    }

    /// The `k` heaviest keys, sorted by count descending then key
    /// ascending (fully deterministic).
    pub fn top(&self, k: usize) -> Vec<(K, TopKEntry)> {
        let mut all: Vec<(K, TopKEntry)> =
            self.entries.iter().map(|(k, e)| (k.clone(), *e)).collect();
        all.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

/// SplitMix64 — the stateless mixer used to derive reservoir priorities
/// from packet ids. Public so tests can reproduce priorities.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded bottom-k priority-sampling reservoir.
///
/// Each id gets a fixed pseudo-random priority `splitmix64(seed ^ id)`;
/// the reservoir keeps the `cap` items with the smallest priorities.
/// Unlike Vitter's algorithm R, the kept set is a pure function of the
/// offered id set — independent of arrival order — so shard merges
/// (union then re-trim) are commutative, associative, and reproduce the
/// sequential sample bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservoir<T> {
    cap: usize,
    seed: u64,
    /// Keyed by (priority, id): unique per id, totally ordered.
    entries: BTreeMap<(u64, u64), T>,
}

impl<T> Reservoir<T> {
    /// New reservoir keeping at most `cap` items under `seed`.
    pub fn new(cap: usize, seed: u64) -> Reservoir<T> {
        Reservoir {
            cap,
            seed,
            entries: BTreeMap::new(),
        }
    }

    /// Maximum number of items kept.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Sampling seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Items currently kept.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is kept.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offer one item; it is kept iff its priority is among the `cap`
    /// smallest seen so far.
    pub fn offer(&mut self, id: u64, value: T) {
        if self.cap == 0 {
            return;
        }
        let pri = splitmix64(self.seed ^ id);
        if self.entries.len() >= self.cap {
            let &(worst, _) = self.entries.keys().next_back().expect("non-empty");
            if pri >= worst {
                return;
            }
        }
        self.entries.insert((pri, id), value);
        while self.entries.len() > self.cap {
            self.entries.pop_last();
        }
    }

    /// Kept items in (priority, id) order.
    pub fn items(&self) -> impl Iterator<Item = &T> {
        self.entries.values()
    }

    /// Kept (id, item) pairs in (priority, id) order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, &T)> {
        self.entries.iter().map(|(&(_, id), v)| (id, v))
    }
}

impl<T: Clone> Reservoir<T> {
    /// Merge another reservoir in: union of kept sets, re-trimmed to the
    /// bottom `cap` priorities. Requires matching seed and cap (asserted)
    /// so the priority spaces agree.
    pub fn merge(&mut self, other: &Reservoir<T>) {
        assert_eq!(self.seed, other.seed, "reservoir seeds differ");
        assert_eq!(self.cap, other.cap, "reservoir caps differ");
        for (k, v) in &other.entries {
            self.entries.insert(*k, v.clone());
        }
        while self.entries.len() > self.cap {
            self.entries.pop_last();
        }
    }
}

/// Configuration for [`StreamObserver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Full lifecycles kept for spot checks (bottom-k sample).
    pub reservoir: usize,
    /// Reservoir sampling seed.
    pub seed: u64,
    /// Streaming capacity of the per-link heavy-hitter table.
    pub topk: usize,
}

/// Default reservoir sample size.
pub const DEFAULT_RESERVOIR: usize = 64;
/// Default reservoir seed (fixed so runs are reproducible by default).
pub const DEFAULT_SEED: u64 = 0x0162_0162_0162_0162;
/// Default heavy-hitter streaming capacity (covers every link of tori
/// up to ~680 nodes exactly; beyond that the table approximates).
pub const DEFAULT_TOPK: usize = 4096;

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            reservoir: DEFAULT_RESERVOIR,
            seed: DEFAULT_SEED,
            topk: DEFAULT_TOPK,
        }
    }
}

/// An in-flight partial lifecycle (also carried inside summaries for
/// packets that crossed shard boundaries).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct StreamPartial {
    /// (src, dst, issued, inj_ready, wire_ready, payload_bytes), same
    /// tuple the offline fold keeps.
    inject: Option<(NodeId, Option<NodeId>, SimTime, SimTime, SimTime, u32)>,
    hop_enters: Vec<SimTime>,
    delivers: Vec<(NodeId, SimTime)>,
    fired: Option<SimTime>,
    retransmits: u32,
}

impl StreamPartial {
    /// Join another shard's view of the same packet. Every field is
    /// combined order-independently (sorted merges / min / add), so
    /// joining in any shard order yields the same partial.
    fn join(&mut self, other: &StreamPartial) {
        if self.inject.is_none() {
            self.inject = other.inject;
        }
        if !other.hop_enters.is_empty() {
            self.hop_enters.extend_from_slice(&other.hop_enters);
            self.hop_enters.sort_unstable();
        }
        if !other.delivers.is_empty() {
            self.delivers.extend_from_slice(&other.delivers);
            self.delivers.sort_unstable_by_key(|&(node, at)| (at, node));
        }
        self.fired = match (self.fired, other.fired) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.retransmits += other.retransmits;
    }

    fn heap_bytes(&self) -> u64 {
        (self.hop_enters.len() * std::mem::size_of::<SimTime>()
            + self.delivers.len() * std::mem::size_of::<(NodeId, SimTime)>()) as u64
    }
}

/// Nominal per-entry map overhead used by the deterministic footprint
/// model (B-tree node amortization; intentionally round, not exact).
const MAP_OVERHEAD: u64 = 32;

/// The bounded-memory aggregate of one run (or one shard of one run).
///
/// Everything in here is mergeable: sketches and moments add, the
/// heavy-hitter table union-sums, the reservoir re-trims, fold stats
/// add, and still-open cross-shard partials join field-wise. After
/// merging all shards call [`StreamSummary::finalize`] to classify the
/// remaining partials; a finalized merged summary is bit-identical to
/// the finalized sequential summary of the same run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// Per-stage moments, pipeline order ([`Stage::ALL`]).
    pub stage_moments: [StreamingMoments; 5],
    /// Per-stage quantile sketches, pipeline order.
    pub stage_sketches: [QuantileSketch; 5],
    /// End-to-end latency moments.
    pub e2e_moments: StreamingMoments,
    /// End-to-end latency sketch.
    pub e2e_sketch: QuantileSketch,
    /// Per-link busy picoseconds, keyed `(node index, link index)`.
    pub link_busy: SpaceSavingTopK<(u32, u8)>,
    /// Seeded sample of full lifecycles.
    pub reservoir: Reservoir<PacketLifecycle>,
    /// What was folded (complete) and what was skipped, matching the
    /// offline [`crate::fold_lifecycles`] classification.
    pub fold: FoldStats,
    /// Total link-layer retransmissions over folded packets.
    pub retransmits: u64,
    /// Lifecycles not yet classifiable (cross-shard or in flight),
    /// keyed by packet id. Emptied by [`StreamSummary::finalize`].
    open: BTreeMap<u64, StreamPartial>,
}

impl StreamSummary {
    /// New empty summary under `cfg`.
    pub fn new(cfg: StreamConfig) -> StreamSummary {
        StreamSummary {
            stage_moments: [StreamingMoments::new(); 5],
            stage_sketches: std::array::from_fn(|_| QuantileSketch::new()),
            e2e_moments: StreamingMoments::new(),
            e2e_sketch: QuantileSketch::new(),
            link_busy: SpaceSavingTopK::new(cfg.topk),
            reservoir: Reservoir::new(cfg.reservoir, cfg.seed),
            fold: FoldStats::default(),
            retransmits: 0,
            open: BTreeMap::new(),
        }
    }

    /// Fold one complete unicast lifecycle into every aggregate.
    pub fn fold_lifecycle(&mut self, lc: &PacketLifecycle) {
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            let d = lc.stage(stage);
            self.stage_moments[i].record(d);
            self.stage_sketches[i].record(d);
        }
        let e2e = lc.end_to_end();
        self.e2e_moments.record(e2e);
        self.e2e_sketch.record(e2e);
        self.fold.complete += 1;
        self.retransmits += lc.retransmits as u64;
        self.reservoir.offer(lc.pkt.0, lc.clone());
    }

    /// Open (unclassified) partial lifecycles currently carried.
    pub fn open_len(&self) -> usize {
        self.open.len()
    }

    /// Merge another shard's summary in. Order-independent; call
    /// [`StreamSummary::finalize`] once after the last merge.
    pub fn merge(&mut self, other: &StreamSummary) {
        for (a, b) in self.stage_moments.iter_mut().zip(&other.stage_moments) {
            a.merge(b);
        }
        for (a, b) in self.stage_sketches.iter_mut().zip(&other.stage_sketches) {
            a.merge(b);
        }
        self.e2e_moments.merge(&other.e2e_moments);
        self.e2e_sketch.merge(&other.e2e_sketch);
        self.link_busy.merge(&other.link_busy);
        self.reservoir.merge(&other.reservoir);
        self.fold.complete += other.fold.complete;
        self.fold.incomplete += other.fold.incomplete;
        self.fold.multicast += other.fold.multicast;
        self.retransmits += other.retransmits;
        for (pkt, p) in &other.open {
            match self.open.get_mut(pkt) {
                Some(mine) => mine.join(p),
                None => {
                    self.open.insert(*pkt, p.clone());
                }
            }
        }
    }

    /// Classify and drain the remaining open partials: joined complete
    /// unicast lifecycles fold in; the rest count as incomplete or
    /// multicast exactly like the offline [`crate::fold_lifecycles`].
    pub fn finalize(&mut self) {
        let open = std::mem::take(&mut self.open);
        for (pkt, p) in open {
            self.classify(pkt, &p);
        }
    }

    fn classify(&mut self, pkt: u64, p: &StreamPartial) {
        let Some((src, dst, issued, inj_ready, wire_ready, payload_bytes)) = p.inject else {
            self.fold.incomplete += 1;
            return;
        };
        if dst.is_none() || p.delivers.len() > 1 {
            self.fold.multicast += 1;
            return;
        }
        let Some(&(dst_node, delivered)) = p.delivers.first() else {
            self.fold.incomplete += 1;
            return;
        };
        let lc = PacketLifecycle {
            pkt: PacketId(pkt),
            src,
            dst: dst_node,
            issued,
            inj_ready,
            wire_ready,
            hop_enters: p.hop_enters.clone(),
            delivered,
            fired: p.fired,
            retransmits: p.retransmits,
            payload_bytes,
        };
        self.fold_lifecycle(&lc);
    }

    /// Exact total duration of one stage over all folded packets.
    pub fn stage_total(&self, stage: Stage) -> SimDuration {
        let idx = Stage::ALL.iter().position(|s| *s == stage).unwrap();
        self.stage_moments[idx].total()
    }

    /// Mean duration of one stage in nanoseconds.
    pub fn mean_ns(&self, stage: Stage) -> f64 {
        let idx = Stage::ALL.iter().position(|s| *s == stage).unwrap();
        self.stage_moments[idx].mean_ns()
    }

    /// The equivalent offline [`BreakdownSummary`]: because moment sums
    /// are exact integers, this equals
    /// [`BreakdownSummary::from_lifecycles`] over the same complete
    /// lifecycles bit-for-bit.
    pub fn breakdown(&self) -> BreakdownSummary {
        BreakdownSummary {
            packets: self.fold.complete,
            totals: std::array::from_fn(|i| self.stage_moments[i].total()),
            end_to_end: self.e2e_moments.total(),
        }
    }

    /// The `k` busiest links as `((node, link), entry)`, count order.
    pub fn hottest_links(&self, k: usize) -> Vec<((NodeId, LinkDir), TopKEntry)> {
        self.link_busy
            .top(k)
            .into_iter()
            .map(|((node, link), e)| ((NodeId(node), LinkDir::from_index(link as usize)), e))
            .collect()
    }

    /// Record the headline aggregates as metrics: fold counters,
    /// retransmits, and per-stage / end-to-end p50/p99 gauges (ns).
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        reg.set_counter("obs.stream.complete", self.fold.complete);
        reg.set_counter("obs.stream.incomplete", self.fold.incomplete);
        reg.set_counter("obs.stream.multicast", self.fold.multicast);
        reg.set_counter("obs.stream.retransmits", self.retransmits);
        reg.set_gauge("obs.stream.e2e_p50_ns", self.e2e_sketch.quantile_ns(0.5));
        reg.set_gauge("obs.stream.e2e_p99_ns", self.e2e_sketch.quantile_ns(0.99));
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            let name = match stage {
                Stage::SenderOverhead => "sender",
                Stage::Injection => "injection",
                Stage::RouterWire => "router_wire",
                Stage::Delivery => "delivery",
                Stage::Sync => "sync",
            };
            reg.set_gauge(
                &format!("obs.stream.{name}_p50_ns"),
                self.stage_sketches[i].quantile_ns(0.5),
            );
        }
    }

    /// Deterministic model of this summary's heap footprint in bytes.
    /// A size *model* (element counts × nominal entry sizes), not an
    /// allocator measurement — pair with [`crate::memory`] for the real
    /// numbers. Deterministic across runs and shard merges of the same
    /// workload, so budgets on it are CI-gateable.
    pub fn approx_bytes(&self) -> u64 {
        let sketches = (self.stage_sketches.len() + 1) as u64
            * (SKETCH_BUCKETS * std::mem::size_of::<u64>()) as u64;
        let topk = self.link_busy.len() as u64
            * (std::mem::size_of::<((u32, u8), TopKEntry)>() as u64 + 2 * MAP_OVERHEAD);
        let reservoir: u64 = self
            .reservoir
            .items()
            .map(|lc| {
                std::mem::size_of::<PacketLifecycle>() as u64
                    + (lc.hop_enters.len() * std::mem::size_of::<SimTime>()) as u64
                    + MAP_OVERHEAD
            })
            .sum();
        let open: u64 = self
            .open
            .values()
            .map(|p| std::mem::size_of::<StreamPartial>() as u64 + p.heap_bytes() + MAP_OVERHEAD)
            .sum();
        sketches + topk + reservoir + open
    }
}

/// Deterministic footprint report of a [`StreamObserver`] after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamFootprint {
    /// Peak simultaneous in-flight partial lifecycles.
    pub peak_partials: u64,
    /// Peak of the observer's modeled heap footprint
    /// ([`StreamSummary::approx_bytes`] + live partials), in bytes.
    pub peak_bytes: u64,
    /// Modeled footprint at the end of the run.
    pub final_bytes: u64,
}

impl StreamFootprint {
    /// Combine per-shard footprints (peaks max, finals add).
    pub fn combine(&mut self, other: &StreamFootprint) {
        self.peak_partials = self.peak_partials.max(other.peak_partials);
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        self.final_bytes += other.final_bytes;
    }

    /// Record the footprint as gauges, normalized per node.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, nodes: u64) {
        reg.set_gauge("obs.stream.peak_partials", self.peak_partials as f64);
        reg.set_gauge("obs.stream.peak_bytes", self.peak_bytes as f64);
        if nodes > 0 {
            reg.set_gauge(
                "obs.stream.peak_bytes_per_node",
                self.peak_bytes as f64 / nodes as f64,
            );
        }
    }
}

/// The bounded-memory [`Recorder`]: folds each packet into the 5-stage
/// attribution at delivery and drops the events.
///
/// Lifecycles are folded **lazily behind a watermark**: the fabric
/// reports the synchronization-counter update at the *same instant* as
/// the delivery it belongs to, so a delivered packet stays pending until
/// simulated time strictly passes its delivery instant, then folds and
/// frees. Multicast candidates (`dst = None`) are held until
/// [`StreamObserver::summary`] because any number of copies may still
/// deliver. Live state is therefore O(in-flight packets + links), not
/// O(events).
#[derive(Debug)]
pub struct StreamObserver {
    cfg: StreamConfig,
    agg: StreamSummary,
    partials: BTreeMap<u64, StreamPartial>,
    /// Delivered-but-not-yet-folded packets, keyed (delivery ps, pkt).
    pending: BTreeSet<(u64, u64)>,
    watermark_ps: u64,
    partial_heap_bytes: u64,
    peak_partials: u64,
    peak_bytes: u64,
}

impl StreamObserver {
    /// New observer under `cfg`.
    pub fn new(cfg: StreamConfig) -> StreamObserver {
        StreamObserver {
            cfg,
            agg: StreamSummary::new(cfg),
            partials: BTreeMap::new(),
            pending: BTreeSet::new(),
            watermark_ps: 0,
            partial_heap_bytes: 0,
            peak_partials: 0,
            peak_bytes: 0,
        }
    }

    /// The configuration this observer was built with.
    pub fn config(&self) -> StreamConfig {
        self.cfg
    }

    /// Current modeled heap footprint in bytes (aggregates + live
    /// partials). O(reservoir) — cheap, but not free; peaks are tracked
    /// incrementally on every hook.
    pub fn approx_bytes(&self) -> u64 {
        self.agg.approx_bytes()
            + self.partials.len() as u64
                * (std::mem::size_of::<StreamPartial>() as u64 + MAP_OVERHEAD)
            + self.partial_heap_bytes
            + self.pending.len() as u64 * (std::mem::size_of::<(u64, u64)>() as u64 + MAP_OVERHEAD)
    }

    /// Footprint report (peaks over the whole run).
    pub fn footprint(&self) -> StreamFootprint {
        StreamFootprint {
            peak_partials: self.peak_partials,
            peak_bytes: self.peak_bytes,
            final_bytes: self.approx_bytes(),
        }
    }

    /// Snapshot the aggregate state. Still-live partials are carried as
    /// open entries in the summary (not yet classified), so sharded
    /// summaries can be merged first; call [`StreamSummary::finalize`]
    /// after the last merge.
    pub fn summary(&self) -> StreamSummary {
        let mut s = self.agg.clone();
        for (pkt, p) in &self.partials {
            match s.open.get_mut(pkt) {
                Some(mine) => mine.join(p),
                None => {
                    s.open.insert(*pkt, p.clone());
                }
            }
        }
        s
    }

    #[inline]
    fn tick(&mut self, at: SimTime) {
        let t = at.as_ps();
        if t > self.watermark_ps {
            self.watermark_ps = t;
            self.flush_ready();
        }
        let bytes = self.approx_bytes();
        if bytes > self.peak_bytes {
            self.peak_bytes = bytes;
        }
    }

    /// Fold every pending packet whose delivery instant is strictly
    /// behind the watermark: all of its events (including the same-
    /// instant counter update) have been seen.
    fn flush_ready(&mut self) {
        while let Some(&(t, pkt)) = self.pending.iter().next() {
            if t >= self.watermark_ps {
                break;
            }
            self.pending.remove(&(t, pkt));
            if let Some(p) = self.partials.remove(&pkt) {
                self.partial_heap_bytes -= p.heap_bytes();
                self.agg.classify(pkt, &p);
            }
        }
    }

    #[inline]
    fn partial(&mut self, pkt: PacketId) -> &mut StreamPartial {
        self.partials.entry(pkt.0).or_default()
    }

    fn note_peak_partials(&mut self) {
        let n = self.partials.len() as u64;
        if n > self.peak_partials {
            self.peak_partials = n;
        }
    }
}

impl Recorder for StreamObserver {
    fn on_inject(
        &mut self,
        pkt: PacketId,
        node: NodeId,
        _client: u8,
        dst: Option<NodeId>,
        at: SimTime,
        inj_ready: SimTime,
        _inj_start: SimTime,
        wire_ready: SimTime,
        payload_bytes: u32,
    ) {
        let _scope = crate::memory::MemScope::new(crate::memory::MemTag::Obs);
        self.tick(at);
        let p = self.partial(pkt);
        p.inject = Some((node, dst, at, inj_ready, wire_ready, payload_bytes));
        self.note_peak_partials();
    }

    fn on_link_reserve(
        &mut self,
        _pkt: PacketId,
        node: NodeId,
        link: LinkDir,
        _ready: SimTime,
        start: SimTime,
        end: SimTime,
    ) {
        let _scope = crate::memory::MemScope::new(crate::memory::MemTag::Obs);
        self.tick(start);
        self.agg
            .link_busy
            .offer((node.0, link.index() as u8), end.since(start).as_ps());
    }

    fn on_retransmit(
        &mut self,
        pkt: PacketId,
        _node: NodeId,
        _link: LinkDir,
        _attempt: u32,
        at: SimTime,
    ) {
        let _scope = crate::memory::MemScope::new(crate::memory::MemTag::Obs);
        self.tick(at);
        self.partial(pkt).retransmits += 1;
        self.note_peak_partials();
    }

    fn on_hop_enter(&mut self, pkt: PacketId, _node: NodeId, at: SimTime) {
        let _scope = crate::memory::MemScope::new(crate::memory::MemTag::Obs);
        self.tick(at);
        self.partial(pkt).hop_enters.push(at);
        self.partial_heap_bytes += std::mem::size_of::<SimTime>() as u64;
        self.note_peak_partials();
    }

    fn on_deliver(&mut self, pkt: PacketId, node: NodeId, _client: u8, at: SimTime) {
        let _scope = crate::memory::MemScope::new(crate::memory::MemTag::Obs);
        self.tick(at);
        let p = self.partial(pkt);
        p.delivers.push((node, at));
        let fold_ready = p.inject.is_some_and(|(_, dst, ..)| dst.is_some());
        self.partial_heap_bytes += std::mem::size_of::<(NodeId, SimTime)>() as u64;
        if fold_ready {
            // Unicast with its inject seen locally: safe to fold once
            // time passes this instant. Multicast (dst = None) is held
            // for summary() because more copies may deliver; partials
            // whose inject lives on another shard stay open for the
            // cross-shard join.
            self.pending.insert((at.as_ps(), pkt.0));
        }
        self.note_peak_partials();
    }

    fn on_counter_update(
        &mut self,
        pkt: PacketId,
        _node: NodeId,
        _client: u8,
        _counter: u16,
        at: SimTime,
        fire_at: Option<SimTime>,
    ) {
        let _scope = crate::memory::MemScope::new(crate::memory::MemTag::Obs);
        self.tick(at);
        if let Some(f) = fire_at {
            let p = self.partial(pkt);
            p.fired = Some(p.fired.map_or(f, |old| old.min(f)));
            self.note_peak_partials();
        }
    }

    fn on_phase(&mut self, _label: &str, at: SimTime) {
        self.tick(at);
    }

    fn as_stream(&self) -> Option<&StreamObserver> {
        Some(self)
    }

    fn as_stream_mut(&mut self) -> Option<&mut StreamObserver> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakdown::fold_lifecycles;
    use crate::metrics::LogHistogram;
    use crate::recorder::{FlightRecorder, Recorder};

    #[test]
    fn sketch_buckets_partition_u64() {
        // Boundaries tile: every bucket's hi + 1 is the next bucket's lo.
        for idx in 0..SKETCH_BUCKETS - 1 {
            let (_, hi) = QuantileSketch::bucket_bounds(idx);
            let (next_lo, _) = QuantileSketch::bucket_bounds(idx + 1);
            assert_eq!(hi + 1, next_lo, "gap after bucket {idx}");
        }
        let (_, top) = QuantileSketch::bucket_bounds(SKETCH_BUCKETS - 1);
        assert_eq!(top, u64::MAX);
        // bucket_of lands inside its own bounds.
        for ps in [0, 1, 7, 8, 15, 16, 100, 1_000, u64::MAX / 3, u64::MAX] {
            let idx = QuantileSketch::bucket_of(ps);
            let (lo, hi) = QuantileSketch::bucket_bounds(idx);
            assert!(lo <= ps && ps <= hi, "ps {ps} outside bucket {idx}");
        }
    }

    #[test]
    fn sketch_relative_error_bounded() {
        let mut sk = QuantileSketch::new();
        let vals: Vec<u64> = (0..10_000u64).map(|i| 500 + i * 37).collect();
        for &v in &vals {
            sk.record_ps(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1] as f64;
            let est = sk.quantile_ps(q).unwrap() as f64;
            assert!(
                (est - exact).abs() <= exact / 8.0 + 1.0,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(sk.quantile_ps(0.0), Some(*sorted.first().unwrap()));
        assert_eq!(sk.quantile_ps(1.0), Some(*sorted.last().unwrap()));
    }

    #[test]
    fn sketch_within_one_log_bucket_of_exact_histogram() {
        let mut sk = QuantileSketch::new();
        let mut hist = LogHistogram::new();
        for i in 0..5_000u64 {
            let v = 1 + (i * i) % 2_000_000;
            sk.record_ps(v);
            hist.record(SimDuration::from_ps(v));
        }
        for q in [0.5, 0.9, 0.99] {
            let a = log2_bucket(sk.quantile_ps(q).unwrap());
            let b = log2_bucket(hist.quantile(q).unwrap().as_ps());
            assert!(
                a.abs_diff(b) <= 1,
                "q={q}: sketch bucket {a} vs exact bucket {b}"
            );
        }
    }

    #[test]
    fn topk_exact_when_under_capacity() {
        let mut t = SpaceSavingTopK::new(8);
        t.offer("a", 5);
        t.offer("b", 3);
        t.offer("a", 2);
        let top = t.top(2);
        assert_eq!(top[0], ("a", TopKEntry { count: 7, err: 0 }));
        assert_eq!(top[1], ("b", TopKEntry { count: 3, err: 0 }));
    }

    #[test]
    fn topk_eviction_overestimates_boundedly() {
        let mut t = SpaceSavingTopK::new(2);
        t.offer(1u32, 10);
        t.offer(2, 1);
        t.offer(3, 5); // evicts key 2 (count 1): count 6, err 1
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&3), Some(TopKEntry { count: 6, err: 1 }));
        assert_eq!(t.get(&1), Some(TopKEntry { count: 10, err: 0 }));
    }

    #[test]
    fn reservoir_is_order_independent() {
        let mut fwd = Reservoir::new(4, 99);
        let mut rev = Reservoir::new(4, 99);
        for id in 0..100u64 {
            fwd.offer(id, id);
        }
        for id in (0..100u64).rev() {
            rev.offer(id, id);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.len(), 4);
    }

    /// Drive one packet through the observer exactly as the fabric
    /// would, and cross-check against the offline fold.
    #[test]
    fn observer_matches_offline_fold() {
        let t = SimTime::from_ns;
        let mut flight = FlightRecorder::new();
        let mut stream = StreamObserver::new(StreamConfig::default());
        for rec in [&mut flight as &mut dyn Recorder, &mut stream] {
            rec.on_inject(
                PacketId(7),
                NodeId(0),
                0,
                Some(NodeId(1)),
                t(0),
                t(36),
                t(36),
                t(55),
                32,
            );
            rec.on_hop_enter(PacketId(7), NodeId(1), t(95));
            rec.on_deliver(PacketId(7), NodeId(1), 0, t(120));
            rec.on_counter_update(PacketId(7), NodeId(1), 0, 3, t(120), Some(t(162)));
            // A later event moves the watermark past the delivery.
            rec.on_phase("next", t(200));
        }
        let (lifecycles, stats) = fold_lifecycles(flight.events());
        let exact = BreakdownSummary::from_lifecycles(&lifecycles);
        let mut summary = stream.summary();
        summary.finalize();
        assert_eq!(summary.fold, stats);
        assert_eq!(summary.breakdown(), exact);
        // The watermark flush already folded it: no open partials left.
        assert_eq!(stream.partials.len(), 0);
        assert_eq!(summary.open_len(), 0);
        let kept: Vec<_> = summary.reservoir.items().collect();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0], &lifecycles[0]);
    }

    /// Split the same packet across two observers (as a sharded run
    /// would); the merged + finalized summary must match a single
    /// observer that saw everything.
    #[test]
    fn cross_shard_join_matches_sequential() {
        let t = SimTime::from_ns;
        let mut seq = StreamObserver::new(StreamConfig::default());
        let mut src_shard = StreamObserver::new(StreamConfig::default());
        let mut dst_shard = StreamObserver::new(StreamConfig::default());
        for rec in [&mut seq, &mut src_shard] {
            rec.on_inject(
                PacketId(1),
                NodeId(0),
                0,
                Some(NodeId(9)),
                t(0),
                t(30),
                t(30),
                t(50),
                32,
            );
        }
        for rec in [&mut seq, &mut dst_shard] {
            rec.on_hop_enter(PacketId(1), NodeId(9), t(90));
            rec.on_deliver(PacketId(1), NodeId(9), 0, t(110));
            rec.on_phase("end", t(500));
        }
        let mut merged = src_shard.summary();
        merged.merge(&dst_shard.summary());
        merged.finalize();
        let mut sequential = seq.summary();
        sequential.finalize();
        assert_eq!(merged, sequential);
        assert_eq!(merged.fold.complete, 1);
    }

    #[test]
    fn multicast_and_incomplete_classified_like_offline_fold() {
        let t = SimTime::from_ns;
        let mut flight = FlightRecorder::new();
        let mut stream = StreamObserver::new(StreamConfig::default());
        for rec in [&mut flight as &mut dyn Recorder, &mut stream] {
            // Multicast: dst None, two deliveries.
            rec.on_inject(
                PacketId(1),
                NodeId(0),
                0,
                None,
                t(0),
                t(10),
                t(10),
                t(20),
                16,
            );
            rec.on_deliver(PacketId(1), NodeId(2), 0, t(50));
            rec.on_deliver(PacketId(1), NodeId(3), 0, t(60));
            // Incomplete: injected, never delivered.
            rec.on_inject(
                PacketId(2),
                NodeId(4),
                0,
                Some(NodeId(5)),
                t(0),
                t(10),
                t(10),
                t(20),
                16,
            );
            rec.on_phase("end", t(1_000));
        }
        let (_, stats) = fold_lifecycles(flight.events());
        let mut summary = stream.summary();
        summary.finalize();
        assert_eq!(summary.fold, stats);
        assert_eq!(summary.fold.multicast, 1);
        assert_eq!(summary.fold.incomplete, 1);
    }

    #[test]
    fn footprint_is_bounded_and_tracked() {
        let t = SimTime::from_ns;
        let mut obs = StreamObserver::new(StreamConfig {
            reservoir: 2,
            seed: 1,
            topk: 8,
        });
        for i in 0..1_000u64 {
            let at = t(10 * i);
            obs.on_inject(
                PacketId(i),
                NodeId(0),
                0,
                Some(NodeId(1)),
                at,
                at,
                at,
                at,
                16,
            );
            obs.on_deliver(PacketId(i), NodeId(1), 0, t(10 * i + 5));
        }
        obs.on_phase("end", t(1_000_000));
        let fp = obs.footprint();
        // Watermark folding keeps live partials to the in-flight few,
        // not the thousand folded packets.
        assert!(fp.peak_partials <= 4, "peak partials {}", fp.peak_partials);
        let mut s = obs.summary();
        s.finalize();
        assert_eq!(s.fold.complete, 1_000);
        assert_eq!(s.reservoir.len(), 2);
        assert!(fp.peak_bytes < 128 * 1024, "peak bytes {}", fp.peak_bytes);
    }
}
