//! The continuous-benchmarking observatory data model: a
//! schema-versioned report that carries the canonical
//! [`BenchReport`] metrics *plus* the attribution components the
//! regression pipeline needs to explain a breach — critical-path blame
//! shares, speedup-attribution shares, per-link congestion top-K, and
//! recovery stats — together with component-level diffing and a
//! named-baseline trajectory index.
//!
//! The `BENCH_pr*.json` drift gates say *that* a metric moved; the
//! structures here say *why*. [`ObservatoryReport::diff`] compares a
//! candidate against a baseline and renders a
//! [triage](ObservatoryDiff::triage) that reads "wire share rose
//! 3.2 pt; critical path moved from delivery to wire; hot link busy
//! +7%" instead of a bare threshold breach. Every gated value is an
//! event-level (bit-deterministic) measurement, so a finding is always
//! a model change, never host noise; wall-clock-derived sections (the
//! parallel speedup attribution) are carried for context but never
//! gate.
//!
//! [`TrajectoryIndex`] is the committed `BENCH_trajectory.json`: an
//! ordered list of named baselines (`pr3`, `pr4`, …) that CI and the
//! dashboard renderer resolve instead of hard-coding report paths.

use crate::json::{escape, validate_json, Lex};
use crate::metrics::fmt_f64;
use crate::regress::{BenchReport, RegressReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version of the observatory-report JSON schema.
pub const OBSERVATORY_SCHEMA_VERSION: u32 = 1;

/// Version of the `BENCH_trajectory.json` index schema.
pub const TRAJECTORY_SCHEMA_VERSION: u32 = 1;

/// Critical-path blame shares per [`EdgeKind`](crate::EdgeKind) label,
/// in percent — gated, deterministic.
pub const SEC_BLAME: &str = "blame_pct";
/// Parallel speedup-attribution shares in percent of the gap —
/// wall-clock-derived, informational only (never gated).
pub const SEC_ATTRIBUTION: &str = "attribution_pct";
/// Per-link congestion top-K (busy ns per hot link, queue totals) —
/// gated, deterministic.
pub const SEC_CONGESTION: &str = "congestion";
/// Fault-recovery stats from the chaos smoke — gated, deterministic.
pub const SEC_RECOVERY: &str = "recovery";

/// How a section's component values diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionKind {
    /// Values are percentages of a whole (they sum to ~100); diffs are
    /// reported in *points* and only rises regress — a cost share
    /// growing means that component got relatively more expensive.
    Shares,
    /// Values are plain lower-is-better magnitudes (busy ns, losses);
    /// diffs are in percent like metric diffs.
    Values,
}

impl SectionKind {
    /// Stable serialization tag.
    pub fn as_str(self) -> &'static str {
        match self {
            SectionKind::Shares => "shares",
            SectionKind::Values => "values",
        }
    }

    /// Inverse of [`SectionKind::as_str`].
    pub fn parse_str(s: &str) -> Result<SectionKind, String> {
        match s {
            "shares" => Ok(SectionKind::Shares),
            "values" => Ok(SectionKind::Values),
            other => Err(format!("unknown section kind {other:?}")),
        }
    }
}

/// One attribution section of an [`ObservatoryReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct Section {
    /// Whether component regressions in this section fail a check.
    /// Only deterministic (event-level) sections should gate.
    pub gated: bool,
    /// How the component values diff.
    pub kind: SectionKind,
    /// Component name → value, sorted by name.
    pub values: BTreeMap<String, f64>,
}

impl Section {
    /// A gated [`SectionKind::Shares`] section from a share map.
    pub fn shares(values: BTreeMap<String, f64>) -> Section {
        Section {
            gated: true,
            kind: SectionKind::Shares,
            values,
        }
    }

    /// A gated [`SectionKind::Values`] section from a value map.
    pub fn values(values: BTreeMap<String, f64>) -> Section {
        Section {
            gated: true,
            kind: SectionKind::Values,
            values,
        }
    }

    /// Mark the section informational (diffed and rendered, never
    /// failing a check) — for wall-clock-derived components.
    pub fn informational(mut self) -> Section {
        self.gated = false;
        self
    }

    /// The component holding the largest value (the critical-path
    /// leader for a blame section). Ties resolve to the
    /// lexicographically first name.
    pub fn leader(&self) -> Option<&str> {
        let mut best: Option<(&str, f64)> = None;
        for (name, &v) in &self.values {
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((name, v)),
            }
        }
        best.map(|(n, _)| n)
    }
}

/// One observatory run: the canonical metrics plus the attribution
/// sections the triage pipeline diffs component by component.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservatoryReport {
    /// Schema version ([`OBSERVATORY_SCHEMA_VERSION`] when written by
    /// this crate).
    pub schema: u32,
    /// Free-form label of the run.
    pub label: String,
    /// The flat metric report (itself schema-versioned and
    /// direction-aware).
    pub metrics: BenchReport,
    /// Attribution sections by name ([`SEC_BLAME`] etc.), sorted.
    pub sections: BTreeMap<String, Section>,
}

impl ObservatoryReport {
    /// An empty report with the current schema version.
    pub fn new(label: &str) -> ObservatoryReport {
        ObservatoryReport {
            schema: OBSERVATORY_SCHEMA_VERSION,
            label: label.to_owned(),
            metrics: BenchReport::new(label),
            sections: BTreeMap::new(),
        }
    }

    /// Wrap a bare metric report (a committed `BENCH_pr*.json`
    /// baseline) as an observatory report with no sections, so it can
    /// serve as the baseline side of a [diff](ObservatoryReport::diff).
    pub fn from_metrics(metrics: BenchReport) -> ObservatoryReport {
        ObservatoryReport {
            schema: OBSERVATORY_SCHEMA_VERSION,
            label: metrics.label.clone(),
            metrics,
            sections: BTreeMap::new(),
        }
    }

    /// Insert or replace one section.
    pub fn set_section(&mut self, name: &str, section: Section) {
        self.sections.insert(name.to_owned(), section);
    }

    /// Look up one section.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.get(name)
    }

    /// Serialize to the stable JSON document (validated before being
    /// returned).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"label\": {},", escape(&self.label));
        out.push_str("  \"metrics\": ");
        self.metrics.write_json_into(&mut out, 2);
        out.push_str(",\n  \"sections\": {");
        let mut first = true;
        for (name, sec) in &self.sections {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {}: {{\n", escape(name));
            let _ = writeln!(out, "      \"gated\": {},", sec.gated);
            let _ = writeln!(out, "      \"kind\": {},", escape(sec.kind.as_str()));
            out.push_str("      \"values\": {");
            let mut vfirst = true;
            for (k, v) in &sec.values {
                if !vfirst {
                    out.push(',');
                }
                vfirst = false;
                let _ = write!(out, "\n        {}: {}", escape(k), fmt_f64(*v));
            }
            out.push_str("\n      }\n    }");
        }
        out.push_str("\n  }\n}\n");
        validate_json(&out).expect("observatory JSON is well-formed by construction");
        out
    }

    /// Parse a report written by [`ObservatoryReport::to_json`].
    pub fn parse(s: &str) -> Result<ObservatoryReport, String> {
        validate_json(s).map_err(|e| format!("not valid JSON: {e:?}"))?;
        let mut p = Lex::new(s);
        ObservatoryReport::parse_object(&mut p)
    }

    /// Parse the report object at the cursor — the embeddable form the
    /// scenario run ledger uses to nest a full observatory report
    /// inside its own document. The caller validates the enclosing
    /// JSON first.
    pub fn parse_object(p: &mut Lex<'_>) -> Result<ObservatoryReport, String> {
        let mut report = ObservatoryReport::new("");
        let mut saw_schema = false;
        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "schema" => {
                    report.schema = p.number()? as u32;
                    saw_schema = true;
                }
                "label" => report.label = p.string()?,
                "metrics" => report.metrics = BenchReport::parse_object(p)?,
                "sections" => {
                    p.expect(b'{')?;
                    if p.peek() == Some(b'}') {
                        p.expect(b'}')?;
                    } else {
                        loop {
                            let name = p.string()?;
                            p.expect(b':')?;
                            report.sections.insert(name, parse_section(p)?);
                            if !p.comma_or(b'}')? {
                                break;
                            }
                        }
                    }
                }
                other => return Err(format!("unexpected key {other:?}")),
            }
            if !p.comma_or(b'}')? {
                break;
            }
        }
        if !saw_schema {
            return Err("missing \"schema\"".to_owned());
        }
        if report.schema != OBSERVATORY_SCHEMA_VERSION {
            return Err(format!(
                "observatory schema version {} unsupported (this build reads {})",
                report.schema, OBSERVATORY_SCHEMA_VERSION
            ));
        }
        Ok(report)
    }

    /// Component-level diff of this (candidate) run against a
    /// `baseline`. Metric comparison is direction-aware; each section
    /// present in both reports is diffed per component; sections on
    /// one side only are carried as informational lists.
    pub fn diff(
        &self,
        baseline: &ObservatoryReport,
        config: DiffConfig,
    ) -> Result<ObservatoryDiff, String> {
        let metrics = self
            .metrics
            .diff(&baseline.metrics, config.metric_threshold_pct)?;
        let mut sections = Vec::new();
        let mut missing_sections = Vec::new();
        for (name, base) in &baseline.sections {
            match self.sections.get(name) {
                None => missing_sections.push(name.clone()),
                Some(cur) => sections.push(diff_section(name, base, cur, &config)),
            }
        }
        let new_sections = self
            .sections
            .keys()
            .filter(|k| !baseline.sections.contains_key(*k))
            .cloned()
            .collect();
        Ok(ObservatoryDiff {
            baseline_label: baseline.label.clone(),
            metrics,
            sections,
            missing_sections,
            new_sections,
            config,
        })
    }
}

fn parse_section(p: &mut Lex<'_>) -> Result<Section, String> {
    let mut gated = true;
    let mut kind = SectionKind::Values;
    let mut values = BTreeMap::new();
    p.expect(b'{')?;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "gated" => gated = p.boolean()?,
            "kind" => kind = SectionKind::parse_str(&p.string()?)?,
            "values" => {
                p.expect(b'{')?;
                if p.peek() == Some(b'}') {
                    p.expect(b'}')?;
                } else {
                    loop {
                        let name = p.string()?;
                        p.expect(b':')?;
                        let v = p.number()?;
                        if !v.is_finite() {
                            return Err(format!("component {name:?} is not finite"));
                        }
                        values.insert(name, v);
                        if !p.comma_or(b'}')? {
                            break;
                        }
                    }
                }
            }
            other => return Err(format!("unexpected section key {other:?}")),
        }
        if !p.comma_or(b'}')? {
            break;
        }
    }
    Ok(Section {
        gated,
        kind,
        values,
    })
}

/// Thresholds for [`ObservatoryReport::diff`].
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Metric regression threshold, percent (the classic gate).
    pub metric_threshold_pct: f64,
    /// Share-section component threshold, in share *points*.
    pub share_threshold_pt: f64,
    /// Value-section component threshold, percent.
    pub value_threshold_pct: f64,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            metric_threshold_pct: 10.0,
            share_threshold_pt: 2.0,
            value_threshold_pct: 10.0,
        }
    }
}

/// One diffed component of a [`SectionDiff`].
#[derive(Debug, Clone)]
pub struct ComponentDelta {
    /// Component name.
    pub name: String,
    /// Baseline value (0 for a share absent from the baseline).
    pub baseline: f64,
    /// Current value (0 for a share absent from the candidate).
    pub current: f64,
    /// Share sections: `current − baseline` in points. Value
    /// sections: percent change versus the baseline.
    pub delta: f64,
    /// Whether the delta crosses the section threshold in the bad
    /// direction.
    pub regressed: bool,
}

/// The per-component diff of one section.
#[derive(Debug, Clone)]
pub struct SectionDiff {
    /// Section name.
    pub name: String,
    /// Whether regressions here fail the check.
    pub gated: bool,
    /// How deltas were computed.
    pub kind: SectionKind,
    /// Component deltas, sorted by component name.
    pub components: Vec<ComponentDelta>,
    /// `(baseline_leader, current_leader)` when the largest component
    /// changed — for a blame section, the critical path moved.
    pub leader_shift: Option<(String, String)>,
    /// Value-section components with no candidate measurement.
    pub only_in_baseline: Vec<String>,
    /// Value-section components with no baseline yet.
    pub only_in_current: Vec<String>,
}

impl SectionDiff {
    /// Components that crossed the threshold, worst first.
    pub fn regressions(&self) -> Vec<&ComponentDelta> {
        let mut out: Vec<&ComponentDelta> =
            self.components.iter().filter(|c| c.regressed).collect();
        out.sort_by(|a, b| {
            b.delta
                .partial_cmp(&a.delta)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }
}

fn diff_section(name: &str, base: &Section, cur: &Section, config: &DiffConfig) -> SectionDiff {
    let mut components = Vec::new();
    let mut only_in_baseline = Vec::new();
    let mut only_in_current = Vec::new();
    match cur.kind {
        SectionKind::Shares => {
            // Shares fold missing components as 0 so a vanished or
            // newborn share still shows as a full-size point delta.
            let mut names: Vec<&String> = base.values.keys().chain(cur.values.keys()).collect();
            names.sort();
            names.dedup();
            for n in names {
                let b = base.values.get(n).copied().unwrap_or(0.0);
                let c = cur.values.get(n).copied().unwrap_or(0.0);
                let delta = c - b;
                components.push(ComponentDelta {
                    name: n.clone(),
                    baseline: b,
                    current: c,
                    delta,
                    regressed: delta > config.share_threshold_pt,
                });
            }
        }
        SectionKind::Values => {
            for (n, &b) in &base.values {
                match cur.values.get(n) {
                    None => only_in_baseline.push(n.clone()),
                    Some(&c) => {
                        let delta = if b == 0.0 {
                            if c == 0.0 {
                                0.0
                            } else {
                                f64::INFINITY
                            }
                        } else {
                            100.0 * (c - b) / b
                        };
                        components.push(ComponentDelta {
                            name: n.clone(),
                            baseline: b,
                            current: c,
                            delta,
                            regressed: delta > config.value_threshold_pct,
                        });
                    }
                }
            }
            only_in_current = cur
                .values
                .keys()
                .filter(|k| !base.values.contains_key(*k))
                .cloned()
                .collect();
        }
    }
    let leader_shift = match (base.leader(), cur.leader()) {
        (Some(b), Some(c)) if b != c => Some((b.to_owned(), c.to_owned())),
        _ => None,
    };
    SectionDiff {
        name: name.to_owned(),
        gated: cur.gated && base.gated,
        kind: cur.kind,
        components,
        leader_shift,
        only_in_baseline,
        only_in_current,
    }
}

/// The component-level comparison of two [`ObservatoryReport`]s.
#[derive(Debug, Clone)]
pub struct ObservatoryDiff {
    /// Label of the baseline report.
    pub baseline_label: String,
    /// The direction-aware metric comparison.
    pub metrics: RegressReport,
    /// Per-section component diffs (sections present in both reports).
    pub sections: Vec<SectionDiff>,
    /// Baseline sections the candidate did not produce.
    pub missing_sections: Vec<String>,
    /// Candidate sections with no baseline counterpart.
    pub new_sections: Vec<String>,
    /// The thresholds the diff was taken at.
    pub config: DiffConfig,
}

impl ObservatoryDiff {
    /// Whether any metric or any gated section component regressed.
    pub fn has_regressions(&self) -> bool {
        self.metrics.has_regressions()
            || self
                .sections
                .iter()
                .any(|s| s.gated && s.components.iter().any(|c| c.regressed))
    }

    /// Total number of regressed metrics plus regressed gated
    /// components.
    pub fn regression_count(&self) -> usize {
        self.metrics.regression_count()
            + self
                .sections
                .iter()
                .filter(|s| s.gated)
                .map(|s| s.components.iter().filter(|c| c.regressed).count())
                .sum::<usize>()
    }

    /// The attribution-aware triage narrative: every regressed metric
    /// with its direction-aware delta, every regressed component with
    /// its share/percent movement, and every critical-path leader
    /// shift — the "why", not just the "that".
    pub fn triage(&self) -> String {
        let mut out = format!(
            "observatory triage vs '{}' (metrics ±{:.1}%, shares ±{:.1} pt, components ±{:.1}%)\n",
            self.baseline_label,
            self.config.metric_threshold_pct,
            self.config.share_threshold_pt,
            self.config.value_threshold_pct,
        );
        for f in self.metrics.findings.iter().filter(|f| f.regressed) {
            let _ = writeln!(
                out,
                "  metric {} regressed {:+.2}% ({} -> {})",
                f.name,
                f.delta_pct,
                fmt_f64(f.baseline),
                fmt_f64(f.current),
            );
        }
        for sec in &self.sections {
            for c in sec.regressions() {
                match sec.kind {
                    SectionKind::Shares => {
                        let _ = writeln!(
                            out,
                            "  {} {}: {} share rose {:+.1} pt ({:.1}% -> {:.1}%)",
                            if sec.gated { "component" } else { "info" },
                            sec.name,
                            c.name,
                            c.delta,
                            c.baseline,
                            c.current,
                        );
                    }
                    SectionKind::Values => {
                        let _ = writeln!(
                            out,
                            "  {} {}: {} regressed {:+.2}% ({} -> {})",
                            if sec.gated { "component" } else { "info" },
                            sec.name,
                            c.name,
                            c.delta,
                            fmt_f64(c.baseline),
                            fmt_f64(c.current),
                        );
                    }
                }
            }
            if let Some((from, to)) = &sec.leader_shift {
                let what = if sec.name == SEC_BLAME {
                    "critical path moved".to_owned()
                } else {
                    format!("{} leader moved", sec.name)
                };
                let _ = writeln!(out, "  {}: {what} from {from} to {to}", sec.name);
            }
        }
        let gated = self.regression_count();
        if gated == 0 {
            out.push_str("  no regressions past thresholds\n");
        } else {
            let _ = writeln!(out, "  {gated} gated regression(s)");
        }
        out
    }

    /// The full fixed-width comparison: the metric table followed by a
    /// component table per section.
    pub fn table(&self) -> String {
        let mut out = self.metrics.table();
        for sec in &self.sections {
            let unit = match sec.kind {
                SectionKind::Shares => "pt",
                SectionKind::Values => "%",
            };
            let _ = writeln!(
                out,
                "\nsection {} ({}, {})",
                sec.name,
                sec.kind.as_str(),
                if sec.gated { "gated" } else { "informational" }
            );
            for c in &sec.components {
                let _ = writeln!(
                    out,
                    "{:<34} {:>12.3} {:>12.3} {:>+8.2}{unit}  {}",
                    c.name,
                    c.baseline,
                    c.current,
                    c.delta,
                    if c.regressed { "REGRESSED" } else { "ok" }
                );
            }
            for n in &sec.only_in_baseline {
                let _ = writeln!(out, "{n:<34} (baseline only — skipped)");
            }
            for n in &sec.only_in_current {
                let _ = writeln!(out, "{n:<34} (new — no baseline)");
            }
            if let Some((from, to)) = &sec.leader_shift {
                let _ = writeln!(out, "leader: {from} -> {to}");
            }
        }
        for n in &self.missing_sections {
            let _ = writeln!(out, "section {n} (baseline only — skipped)");
        }
        for n in &self.new_sections {
            let _ = writeln!(out, "section {n} (new — no baseline)");
        }
        out
    }
}

/// One named baseline of the trajectory index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryEntry {
    /// Short stable name (`pr3`, `pr4`, …) CI and humans refer to.
    pub name: String,
    /// Repo-relative path of the committed `BENCH_*.json` report.
    pub path: String,
    /// One-line description of what the baseline covers.
    pub note: String,
    /// Content hash of the `ScenarioSpec` this baseline's workload was
    /// built from, when the workload is spec-driven (16 hex chars).
    pub spec_hash: Option<String>,
    /// Engine fingerprint of the spec's deterministic replay (16 hex
    /// chars) — together with `spec_hash` the provenance the dashboard
    /// shows per trajectory column.
    pub fingerprint: Option<String>,
}

/// The committed `BENCH_trajectory.json`: the ordered list of named
/// baselines the regression gates and the dashboard renderer resolve.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrajectoryIndex {
    /// Entries in trajectory (chronological) order.
    pub entries: Vec<TrajectoryEntry>,
}

impl TrajectoryIndex {
    /// An empty index.
    pub fn new() -> TrajectoryIndex {
        TrajectoryIndex::default()
    }

    /// Append one named baseline.
    pub fn push(&mut self, name: &str, path: &str, note: &str) {
        self.entries.push(TrajectoryEntry {
            name: name.to_owned(),
            path: path.to_owned(),
            note: note.to_owned(),
            spec_hash: None,
            fingerprint: None,
        });
    }

    /// Append one named baseline carrying scenario provenance: the spec
    /// content hash and the deterministic engine fingerprint of the
    /// workload the baseline was generated from.
    pub fn push_with_provenance(
        &mut self,
        name: &str,
        path: &str,
        note: &str,
        spec_hash: &str,
        fingerprint: &str,
    ) {
        self.entries.push(TrajectoryEntry {
            name: name.to_owned(),
            path: path.to_owned(),
            note: note.to_owned(),
            spec_hash: Some(spec_hash.to_owned()),
            fingerprint: Some(fingerprint.to_owned()),
        });
    }

    /// Resolve a baseline by name.
    pub fn resolve(&self, name: &str) -> Option<&TrajectoryEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Every baseline name in index order — the "did you mean" list the
    /// CLIs print when a name or report path fails to resolve.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Serialize to the stable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {TRAJECTORY_SCHEMA_VERSION},");
        out.push_str("  \"entries\": [");
        let mut first = true;
        for e in &self.entries {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\n      \"name\": {},\n      \"path\": {},\n      \"note\": {}",
                escape(&e.name),
                escape(&e.path),
                escape(&e.note)
            );
            if let Some(h) = &e.spec_hash {
                let _ = write!(out, ",\n      \"spec\": {}", escape(h));
            }
            if let Some(fp) = &e.fingerprint {
                let _ = write!(out, ",\n      \"fingerprint\": {}", escape(fp));
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  ]\n}\n");
        validate_json(&out).expect("trajectory JSON is well-formed by construction");
        out
    }

    /// Parse an index written by [`TrajectoryIndex::to_json`].
    pub fn parse(s: &str) -> Result<TrajectoryIndex, String> {
        validate_json(s).map_err(|e| format!("not valid JSON: {e:?}"))?;
        let mut p = Lex::new(s);
        let mut index = TrajectoryIndex::new();
        let mut schema = 0u32;
        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "schema" => schema = p.number()? as u32,
                "entries" => {
                    p.expect(b'[')?;
                    if p.peek() == Some(b']') {
                        p.expect(b']')?;
                    } else {
                        loop {
                            let mut entry = TrajectoryEntry {
                                name: String::new(),
                                path: String::new(),
                                note: String::new(),
                                spec_hash: None,
                                fingerprint: None,
                            };
                            p.expect(b'{')?;
                            loop {
                                let k = p.string()?;
                                p.expect(b':')?;
                                match k.as_str() {
                                    "name" => entry.name = p.string()?,
                                    "path" => entry.path = p.string()?,
                                    "note" => entry.note = p.string()?,
                                    "spec" => entry.spec_hash = Some(p.string()?),
                                    "fingerprint" => entry.fingerprint = Some(p.string()?),
                                    other => return Err(format!("unexpected entry key {other:?}")),
                                }
                                if !p.comma_or(b'}')? {
                                    break;
                                }
                            }
                            if entry.name.is_empty() || entry.path.is_empty() {
                                return Err("entry needs a name and a path".to_owned());
                            }
                            index.entries.push(entry);
                            if !p.comma_or(b']')? {
                                break;
                            }
                        }
                    }
                }
                other => return Err(format!("unexpected key {other:?}")),
            }
            if !p.comma_or(b'}')? {
                break;
            }
        }
        if schema != TRAJECTORY_SCHEMA_VERSION {
            return Err(format!(
                "trajectory schema version {schema} unsupported (this build reads {TRAJECTORY_SCHEMA_VERSION})"
            ));
        }
        let mut names: Vec<&str> = index.entries.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != index.entries.len() {
            return Err("duplicate baseline names in trajectory index".to_owned());
        }
        Ok(index)
    }

    /// Read and parse the index at `path`.
    pub fn load(path: &std::path::Path) -> Result<TrajectoryIndex, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        TrajectoryIndex::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Load every entry's report, resolving relative paths against
    /// `base` (the repo root for the committed index). Returns
    /// `(name, report)` pairs in index order.
    pub fn load_reports(
        &self,
        base: &std::path::Path,
    ) -> Result<Vec<(String, BenchReport)>, String> {
        let mut out = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let path = base.join(&e.path);
            let text = std::fs::read_to_string(&path)
                .map_err(|err| format!("{}: {err}", path.display()))?;
            let report =
                BenchReport::parse(&text).map_err(|err| format!("{}: {err}", path.display()))?;
            out.push((e.name.clone(), report));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regress::Direction;

    fn shares(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn sample() -> ObservatoryReport {
        let mut r = ObservatoryReport::new("obs test");
        r.metrics.set("one_way_1hop_ns", 162.0);
        r.metrics
            .set_directed("lookahead_efficiency", 182.45, Direction::HigherIsBetter);
        r.set_section(
            SEC_BLAME,
            Section::shares(shares(&[
                ("wire", 48.0),
                ("delivery", 40.0),
                ("port-wait", 12.0),
            ])),
        );
        r.set_section(
            SEC_CONGESTION,
            Section::values(shares(&[
                ("hot0_busy_ns", 1000.0),
                ("total_queue_ns", 400.0),
            ])),
        );
        r.set_section(
            SEC_ATTRIBUTION,
            Section::shares(shares(&[("barrier", 60.0), ("merge", 40.0)])).informational(),
        );
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let json = r.to_json();
        validate_json(&json).expect("well-formed");
        let back = ObservatoryReport::parse(&json).expect("parses");
        assert_eq!(back, r);
        // The embedded metric report kept its direction metadata.
        assert_eq!(
            back.metrics.direction("lookahead_efficiency"),
            Direction::HigherIsBetter
        );
    }

    #[test]
    fn identical_reports_diff_clean() {
        let r = sample();
        let d = r.diff(&r, DiffConfig::default()).expect("comparable");
        assert!(!d.has_regressions(), "{}", d.table());
        assert!(d.triage().contains("no regressions"));
    }

    #[test]
    fn component_shift_names_the_component_and_the_leader_move() {
        let base = sample();
        let mut cur = sample();
        // The critical path moved: delivery share overtakes wire.
        cur.set_section(
            SEC_BLAME,
            Section::shares(shares(&[
                ("wire", 30.0),
                ("delivery", 58.0),
                ("port-wait", 12.0),
            ])),
        );
        let d = cur.diff(&base, DiffConfig::default()).expect("comparable");
        assert!(d.has_regressions());
        let triage = d.triage();
        assert!(triage.contains("delivery share rose +18.0 pt"), "{triage}");
        assert!(
            triage.contains("critical path moved from wire to delivery"),
            "{triage}"
        );
        // The falling wire share is not a regression.
        let blame = d.sections.iter().find(|s| s.name == SEC_BLAME).unwrap();
        let wire = blame.components.iter().find(|c| c.name == "wire").unwrap();
        assert!(!wire.regressed);
    }

    #[test]
    fn informational_sections_never_gate() {
        let base = sample();
        let mut cur = sample();
        cur.set_section(
            SEC_ATTRIBUTION,
            Section::shares(shares(&[("barrier", 95.0), ("merge", 5.0)])).informational(),
        );
        let d = cur.diff(&base, DiffConfig::default()).expect("comparable");
        assert!(!d.has_regressions(), "{}", d.table());
        // It still shows up in the triage as info.
        assert!(
            d.triage().contains("info attribution_pct"),
            "{}",
            d.triage()
        );
    }

    #[test]
    fn value_sections_diff_in_percent() {
        let base = sample();
        let mut cur = sample();
        cur.set_section(
            SEC_CONGESTION,
            Section::values(shares(&[
                ("hot0_busy_ns", 1200.0),
                ("total_queue_ns", 400.0),
            ])),
        );
        let d = cur.diff(&base, DiffConfig::default()).expect("comparable");
        assert!(d.has_regressions());
        assert!(
            d.triage().contains("hot0_busy_ns regressed +20.00%"),
            "{}",
            d.triage()
        );
    }

    #[test]
    fn bare_metric_baselines_diff_without_sections() {
        let mut metrics = BenchReport::new("pr3");
        metrics.set("one_way_1hop_ns", 162.0);
        let base = ObservatoryReport::from_metrics(metrics);
        let cur = sample();
        let d = cur.diff(&base, DiffConfig::default()).expect("comparable");
        assert!(!d.has_regressions());
        assert_eq!(d.new_sections.len(), 3);
    }

    #[test]
    fn trajectory_index_round_trips_and_resolves() {
        let mut idx = TrajectoryIndex::new();
        idx.push("pr3", "BENCH_pr3.json", "canonical suite");
        idx.push("pr4", "BENCH_pr4.json", "parallel engine");
        let json = idx.to_json();
        validate_json(&json).expect("well-formed");
        let back = TrajectoryIndex::parse(&json).expect("parses");
        assert_eq!(back, idx);
        assert_eq!(back.resolve("pr4").unwrap().path, "BENCH_pr4.json");
        assert!(back.resolve("pr9").is_none());
    }

    #[test]
    fn trajectory_index_rejects_duplicates_and_bad_schema() {
        let mut idx = TrajectoryIndex::new();
        idx.push("pr3", "a.json", "");
        idx.push("pr3", "b.json", "");
        assert!(TrajectoryIndex::parse(&idx.to_json()).is_err());
        let bad = TrajectoryIndex::new()
            .to_json()
            .replace("\"schema\": 1", "\"schema\": 9");
        assert!(TrajectoryIndex::parse(&bad).is_err());
    }
}
