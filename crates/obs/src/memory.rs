//! Memory observatory: an instrumented global allocator (feature
//! `obs-alloc`) with scoped subsystem tags.
//!
//! The streaming layer in [`crate::stream`] *models* its footprint
//! deterministically; this module *measures* it. Opting a binary in —
//!
//! ```ignore
//! #[cfg(feature = "obs-alloc")]
//! #[global_allocator]
//! static ALLOC: anton_obs::memory::ObsAlloc = anton_obs::memory::ObsAlloc;
//! ```
//!
//! — makes every allocation in the process update global and per-tag
//! live/peak byte counters. Code marks regions with a [`MemScope`]
//! guard; allocations (and frees) on that thread are attributed to the
//! scope's [`MemTag`] while the guard lives. The tag API is compiled
//! unconditionally and costs a thread-local `Cell` store, so library
//! code can scope freely whether or not the allocator is armed.
//!
//! Caveat worth stating: frees are attributed to the tag current *at
//! free time*, not at allocation time (per-pointer origin headers would
//! change allocation sizes and perturb what we're measuring). The
//! streaming observer allocates and frees inside its own scoped hooks,
//! so its tag balance is accurate; long-lived cross-tag handoffs would
//! smear. Global live/peak are exact regardless.

#[cfg(feature = "obs-alloc")]
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::metrics::MetricsRegistry;

/// Subsystem tags for scoped attribution. Index 0 (`Untagged`) is the
/// default outside any scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum MemTag {
    /// No scope active.
    Untagged = 0,
    /// Observability: recorders, sketches, summaries, exporters.
    Obs = 1,
    /// Simulation engine: event queues, scheduler state.
    Engine = 2,
    /// Network model: fabric, per-node router/link state.
    Fabric = 3,
    /// Workload programs and their buffers.
    Workload = 4,
}

impl MemTag {
    /// All tags, index order.
    pub const ALL: [MemTag; 5] = [
        MemTag::Untagged,
        MemTag::Obs,
        MemTag::Engine,
        MemTag::Fabric,
        MemTag::Workload,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            MemTag::Untagged => "untagged",
            MemTag::Obs => "obs",
            MemTag::Engine => "engine",
            MemTag::Fabric => "fabric",
            MemTag::Workload => "workload",
        }
    }
}

const NTAGS: usize = MemTag::ALL.len();

/// Live bytes per tag (signed: free-time attribution can transiently
/// push a tag negative; the global sum stays exact).
static TAG_LIVE: [AtomicI64; NTAGS] = [const { AtomicI64::new(0) }; NTAGS];
/// Peak live bytes per tag.
static TAG_PEAK: [AtomicI64; NTAGS] = [const { AtomicI64::new(0) }; NTAGS];
/// Exact global live bytes.
static GLOBAL_LIVE: AtomicI64 = AtomicI64::new(0);
/// Exact global peak live bytes.
static GLOBAL_PEAK: AtomicI64 = AtomicI64::new(0);
/// Total allocation calls observed (0 ⇔ allocator not armed).
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Total bytes ever allocated.
static TOTAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The active tag index on this thread. `const`-initialized so the
    /// first access inside the allocator never allocates.
    static CURRENT_TAG: Cell<usize> = const { Cell::new(0) };
}

/// RAII guard that attributes this thread's allocations to a
/// [`MemTag`] while alive. Nests: dropping restores the outer tag.
#[derive(Debug)]
pub struct MemScope {
    prev: usize,
}

impl MemScope {
    /// Enter `tag` on the current thread.
    pub fn new(tag: MemTag) -> MemScope {
        let prev = CURRENT_TAG
            .try_with(|c| c.replace(tag as usize))
            .unwrap_or(0);
        MemScope { prev }
    }
}

impl Drop for MemScope {
    fn drop(&mut self) {
        let _ = CURRENT_TAG.try_with(|c| c.set(self.prev));
    }
}

#[cfg_attr(not(any(test, feature = "obs-alloc")), allow(dead_code))]
#[inline]
fn current_tag() -> usize {
    CURRENT_TAG.try_with(|c| c.get()).unwrap_or(0)
}

#[cfg_attr(not(any(test, feature = "obs-alloc")), allow(dead_code))]
#[inline]
fn bump_peak(peak: &AtomicI64, live: i64) {
    let mut cur = peak.load(Ordering::Relaxed);
    while live > cur {
        match peak.compare_exchange_weak(cur, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
}

#[cfg_attr(not(any(test, feature = "obs-alloc")), allow(dead_code))]
#[inline]
fn account(delta: i64) {
    let tag = current_tag();
    let tl = TAG_LIVE[tag].fetch_add(delta, Ordering::Relaxed) + delta;
    bump_peak(&TAG_PEAK[tag], tl);
    let gl = GLOBAL_LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
    bump_peak(&GLOBAL_PEAK, gl);
    if delta > 0 {
        TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        TOTAL_ALLOC_BYTES.fetch_add(delta as u64, Ordering::Relaxed);
    }
}

/// True when the instrumented allocator is armed in this process (i.e.
/// a binary installed `ObsAlloc` as `#[global_allocator]` under the
/// `obs-alloc` feature and at least one allocation went through it).
pub fn instrumented() -> bool {
    TOTAL_ALLOCS.load(Ordering::Relaxed) > 0
}

/// Exact global live heap bytes (0 when not instrumented).
pub fn live_bytes() -> i64 {
    GLOBAL_LIVE.load(Ordering::Relaxed)
}

/// Exact global peak heap bytes (0 when not instrumented).
pub fn peak_bytes() -> i64 {
    GLOBAL_PEAK.load(Ordering::Relaxed)
}

/// Live bytes currently attributed to `tag`.
pub fn tag_live_bytes(tag: MemTag) -> i64 {
    TAG_LIVE[tag as usize].load(Ordering::Relaxed)
}

/// Peak bytes attributed to `tag`.
pub fn tag_peak_bytes(tag: MemTag) -> i64 {
    TAG_PEAK[tag as usize].load(Ordering::Relaxed)
}

/// Total allocation calls observed so far.
pub fn total_allocs() -> u64 {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// Total bytes ever allocated.
pub fn total_alloc_bytes() -> u64 {
    TOTAL_ALLOC_BYTES.load(Ordering::Relaxed)
}

/// Reset every peak to the current live value (global and per tag), so
/// a measurement window can be bracketed. Live counters are never
/// reset — they track real outstanding memory.
pub fn reset_peaks() {
    GLOBAL_PEAK.store(GLOBAL_LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    for i in 0..NTAGS {
        TAG_PEAK[i].store(TAG_LIVE[i].load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Point-in-time snapshot of the memory observatory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemReport {
    /// Whether the counters are backed by a real armed allocator.
    pub instrumented: bool,
    /// Global live bytes.
    pub live_bytes: i64,
    /// Global peak bytes.
    pub peak_bytes: i64,
    /// Allocation calls so far.
    pub total_allocs: u64,
    /// Bytes ever allocated.
    pub total_alloc_bytes: u64,
    /// (live, peak) per tag, [`MemTag::ALL`] order.
    pub tags: [(i64, i64); NTAGS],
}

impl MemReport {
    /// Capture the current counters.
    pub fn capture() -> MemReport {
        MemReport {
            instrumented: instrumented(),
            live_bytes: live_bytes(),
            peak_bytes: peak_bytes(),
            total_allocs: total_allocs(),
            total_alloc_bytes: total_alloc_bytes(),
            tags: std::array::from_fn(|i| {
                (
                    TAG_LIVE[i].load(Ordering::Relaxed),
                    TAG_PEAK[i].load(Ordering::Relaxed),
                )
            }),
        }
    }

    /// Peak bytes of one tag in this snapshot.
    pub fn tag_peak(&self, tag: MemTag) -> i64 {
        self.tags[tag as usize].1
    }

    /// Record the snapshot as gauges (`obs.mem.*`), normalizing by
    /// `nodes` and `events` when nonzero. No-op when not instrumented,
    /// so reports never carry fake zeros.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry, nodes: u64, events: u64) {
        if !self.instrumented {
            return;
        }
        reg.set_gauge("obs.mem.live_bytes", self.live_bytes as f64);
        reg.set_gauge("obs.mem.peak_bytes", self.peak_bytes as f64);
        reg.set_gauge("obs.mem.total_allocs", self.total_allocs as f64);
        for tag in MemTag::ALL {
            let (live, peak) = self.tags[tag as usize];
            reg.set_gauge(&format!("obs.mem.{}.live_bytes", tag.name()), live as f64);
            reg.set_gauge(&format!("obs.mem.{}.peak_bytes", tag.name()), peak as f64);
        }
        if nodes > 0 {
            reg.set_gauge(
                "obs.mem.peak_bytes_per_node",
                self.peak_bytes as f64 / nodes as f64,
            );
            reg.set_gauge(
                "obs.mem.obs_peak_bytes_per_node",
                self.tag_peak(MemTag::Obs) as f64 / nodes as f64,
            );
        }
        if events > 0 {
            reg.set_gauge(
                "obs.mem.alloc_bytes_per_event",
                self.total_alloc_bytes as f64 / events as f64,
            );
        }
    }

    /// Human-readable multi-line table.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.instrumented {
            out.push_str("  (allocator not instrumented: build with --features obs-alloc)\n");
            return out;
        }
        let _ = writeln!(
            out,
            "  {:<10} {:>14} {:>14}",
            "tag", "live bytes", "peak bytes"
        );
        for tag in MemTag::ALL {
            let (live, peak) = self.tags[tag as usize];
            let _ = writeln!(out, "  {:<10} {:>14} {:>14}", tag.name(), live, peak);
        }
        let _ = writeln!(
            out,
            "  {:<10} {:>14} {:>14}  ({} allocs, {} bytes total)",
            "global", self.live_bytes, self.peak_bytes, self.total_allocs, self.total_alloc_bytes
        );
        out
    }
}

/// The instrumented allocator. Install as `#[global_allocator]` in a
/// binary built with `--features obs-alloc`; forwards to [`System`]
/// and keeps the counters above. Zero-sized, const-constructible.
#[cfg(feature = "obs-alloc")]
pub struct ObsAlloc;

#[cfg(feature = "obs-alloc")]
// SAFETY: delegates every operation to `System` unchanged; the counter
// updates are lock-free atomics and the thread-local tag read never
// allocates (const-initialized Cell, `try_with`).
unsafe impl GlobalAlloc for ObsAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            account(layout.size() as i64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        account(-(layout.size() as i64));
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            account(layout.size() as i64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            account(new_size as i64 - layout.size() as i64);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current_tag(), MemTag::Untagged as usize);
        {
            let _a = MemScope::new(MemTag::Obs);
            assert_eq!(current_tag(), MemTag::Obs as usize);
            {
                let _b = MemScope::new(MemTag::Fabric);
                assert_eq!(current_tag(), MemTag::Fabric as usize);
            }
            assert_eq!(current_tag(), MemTag::Obs as usize);
        }
        assert_eq!(current_tag(), MemTag::Untagged as usize);
    }

    #[test]
    fn accounting_math_tracks_peaks() {
        // Drive the counters directly (works without the feature armed).
        let before = MemReport::capture();
        {
            let _s = MemScope::new(MemTag::Workload);
            account(1024);
            account(-1024);
        }
        let after = MemReport::capture();
        assert_eq!(after.live_bytes, before.live_bytes);
        assert!(after.tag_peak(MemTag::Workload) >= before.tag_peak(MemTag::Workload));
        assert!(after.tag_peak(MemTag::Workload) >= 1024);
        assert!(after.total_allocs > before.total_allocs);
        assert!(after.instrumented);
        let mut reg = MetricsRegistry::new();
        after.record_metrics(&mut reg, 512, 1_000);
        assert!(reg.gauge("obs.mem.peak_bytes").is_some());
        assert!(after.table().contains("workload"));
    }
}
