//! Observing the parallel runtime itself: speedup attribution, summary
//! metrics, and Chrome-trace export for [`ParProfile`]s.
//!
//! PR 3's causal observatory holds the *simulated machine* to an exact
//! accounting standard: every picosecond of the critical path is blamed
//! on a named stage and the blames telescope to the makespan. This
//! module applies the same standard to the *parallel runtime that runs
//! the simulation*. [`SpeedupAttribution`] decomposes the gap between an
//! N-thread wall-clock and the ideal `seq/N` into five named components
//! — outbox merge, barrier crossing, shard imbalance, windowing
//! overhead, and excess execution time — that sum to the gap *by
//! construction* (each component is a measured phase average or an exact
//! residual), so the telescoping check in the test suite only tolerates
//! float rounding.
//!
//! [`RuntimeSummary`] is the deterministic face of the same profile:
//! window counts, events/window, lookahead efficiency, shard imbalance,
//! and cross-shard traffic are pure functions of the workload and shard
//! plan — bit-identical at any thread count — and therefore safe to
//! commit to a [`BenchReport`] baseline and gate for drift in CI.
//!
//! [`profile_chrome_trace`] renders worker lanes (one slice per window
//! execute-phase sample, wall-clock µs) plus per-worker phase-total bars
//! and events/window counter tracks, loadable in Perfetto next to the
//! simulated-fabric trace.

use crate::chrome_trace::ChromeTraceBuilder;
use crate::regress::BenchReport;
use anton_des::{ParProfile, SimTime, WorkerProfile};
use std::fmt::Write as _;

/// Exact decomposition of the parallel-speedup gap.
///
/// With `N` workers, ideal wall-clock is `seq/N`. The measured gap
/// `par_wall − seq/N` telescopes into:
///
/// - **merge** — mean wall time draining cross-shard outboxes,
/// - **barrier** — mean wait at the publish barrier (crossing cost plus
///   skew from uneven import work),
/// - **imbalance** — mean wait at the post-execute barrier (a worker
///   finished its window slice while others were still executing: the
///   direct cost of shard load imbalance),
/// - **windowing** — per-worker loop residue (window-decision
///   computation, heartbeats, loop bookkeeping) plus the dispatch
///   residual outside the worker loops (thread spawn/join),
/// - **exec excess** — mean per-worker busy time minus `seq/N`; positive
///   when parallel execution does more or slower work than an N-way
///   split of the sequential run would (cache effects, queue overheads),
///   negative when it does less.
///
/// Because windowing and exec-excess are defined as residuals against
/// the same measured quantities, the five components sum to the gap
/// *exactly* (modulo float rounding) — asserted by
/// [`telescoping_error_ns`](SpeedupAttribution::telescoping_error_ns)
/// checks in the test suite, mirroring the Figure 6 stage-sum invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupAttribution {
    /// Workers in the parallel run.
    pub threads: usize,
    /// Sequential (1-thread) reference wall time, ns.
    pub seq_wall_ns: f64,
    /// Parallel wall time, ns.
    pub par_wall_ns: f64,
    /// Ideal wall time `seq/N`, ns.
    pub ideal_ns: f64,
    /// `par_wall − ideal`: the time to attribute, ns (can be negative
    /// when the parallel run beats the ideal, e.g. cache effects).
    pub gap_ns: f64,
    /// Mean outbox-merge time per worker, ns.
    pub merge_ns: f64,
    /// Mean publish-barrier wait per worker, ns.
    pub barrier_ns: f64,
    /// Mean post-execute barrier wait per worker, ns.
    pub imbalance_ns: f64,
    /// Windowing overhead: mean loop residue + spawn/join residual, ns.
    pub windowing_ns: f64,
    /// Mean busy time minus `seq/N`, ns.
    pub exec_excess_ns: f64,
}

impl SpeedupAttribution {
    /// Attribute `prof`'s wall clock against a sequential reference run
    /// of `seq_wall_ns` nanoseconds. `prof` must come from a profiled
    /// run (its `workers` must be non-empty).
    pub fn from_profile(seq_wall_ns: u64, prof: &ParProfile) -> SpeedupAttribution {
        assert!(
            !prof.workers.is_empty(),
            "speedup attribution requires a profiled run with worker accounting"
        );
        let n = prof.workers.len() as f64;
        let avg = |f: fn(&WorkerProfile) -> u64| -> f64 {
            prof.workers.iter().map(|w| f(w) as f64).sum::<f64>() / n
        };
        let seq = seq_wall_ns as f64;
        let par = prof.wall_ns as f64;
        let ideal = seq / n;
        let avg_loop = avg(|w| w.loop_ns);
        let avg_busy = avg(|w| w.busy_ns);
        SpeedupAttribution {
            threads: prof.workers.len(),
            seq_wall_ns: seq,
            par_wall_ns: par,
            ideal_ns: ideal,
            gap_ns: par - ideal,
            merge_ns: avg(|w| w.merge_ns),
            barrier_ns: avg(|w| w.barrier_publish_ns),
            imbalance_ns: avg(|w| w.barrier_window_ns),
            // Loop residue (decision compute, heartbeats, bookkeeping)
            // plus the dispatch residual outside the loops (spawn/join).
            windowing_ns: avg(|w| w.windowing_ns()) + (par - avg_loop),
            exec_excess_ns: avg_busy - ideal,
        }
    }

    /// Sum of the five attribution components. Equals
    /// [`gap_ns`](SpeedupAttribution::gap_ns) by construction.
    pub fn components_sum_ns(&self) -> f64 {
        self.merge_ns
            + self.barrier_ns
            + self.imbalance_ns
            + self.windowing_ns
            + self.exec_excess_ns
    }

    /// Absolute telescoping error `|components − gap|`, ns. Pure float
    /// rounding; the exactness invariant says this stays negligible
    /// against the measured wall clock.
    pub fn telescoping_error_ns(&self) -> f64 {
        (self.components_sum_ns() - self.gap_ns).abs()
    }

    /// Measured speedup `seq/par`.
    pub fn speedup(&self) -> f64 {
        self.seq_wall_ns / self.par_wall_ns.max(1.0)
    }

    /// Parallel efficiency `speedup/N` (1.0 = ideal).
    pub fn efficiency(&self) -> f64 {
        self.speedup() / self.threads as f64
    }

    /// Human-readable attribution table (ns and share of the gap).
    pub fn table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "speedup attribution: {} workers, seq {:.3} ms, par {:.3} ms \
             (speedup {:.2}x, efficiency {:.0}%)",
            self.threads,
            self.seq_wall_ns / 1e6,
            self.par_wall_ns / 1e6,
            self.speedup(),
            100.0 * self.efficiency(),
        );
        let _ = writeln!(
            s,
            "  ideal seq/N {:>12.0} ns   gap {:>12.0} ns",
            self.ideal_ns, self.gap_ns
        );
        let denom = if self.gap_ns.abs() > 1.0 {
            self.gap_ns
        } else {
            1.0
        };
        for (name, v) in [
            ("merge (outbox import)", self.merge_ns),
            ("barrier (publish)", self.barrier_ns),
            ("imbalance (post-exec wait)", self.imbalance_ns),
            ("windowing (decide+dispatch)", self.windowing_ns),
            ("exec excess (busy - seq/N)", self.exec_excess_ns),
        ] {
            let _ = writeln!(s, "  {name:<28} {v:>12.0} ns  {:>6.1}%", 100.0 * v / denom);
        }
        let _ = writeln!(
            s,
            "  {:<28} {:>12.0} ns  (error {:.1} ns)",
            "sum",
            self.components_sum_ns(),
            self.telescoping_error_ns(),
        );
        s
    }
}

/// The deterministic summary of a [`ParProfile`]: every field is a pure
/// function of the simulated workload and the shard plan (bit-identical
/// at any thread count), so the whole struct is safe to commit to a
/// [`BenchReport`] baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeSummary {
    /// Shards in the plan.
    pub shards: usize,
    /// Windows executed.
    pub windows: u64,
    /// Events executed.
    pub events: u64,
    /// Mean events per window.
    pub events_per_window: f64,
    /// Mean events per shard per window (lookahead efficiency).
    pub lookahead_efficiency: f64,
    /// Shard event-count imbalance, `100·(max/mean − 1)` percent.
    pub shard_imbalance_pct: f64,
    /// Events staged through cross-shard outboxes.
    pub cross_shard_events: u64,
    /// Fraction of events whose scheduling crossed a shard boundary.
    pub cross_shard_fraction: f64,
    /// Events executed past the uniform global window bound — work the
    /// adaptive per-pair lookahead recovered that global windows would
    /// have deferred to a later window. Deterministic (a pure function
    /// of the window partition); 0 under global-bound windows.
    pub recovered_events: u64,
    /// Shard-windows whose adaptive bound extended past the global
    /// bound *and* executed at least one event there.
    pub extended_shard_windows: u64,
    /// `recovered_events / events` — how much of the workload the
    /// adaptive windows pulled forward.
    pub recovered_fraction: f64,
}

impl RuntimeSummary {
    /// Summarize the deterministic half of `prof`.
    pub fn from_profile(prof: &ParProfile) -> RuntimeSummary {
        RuntimeSummary {
            shards: prof.shards,
            windows: prof.windows,
            events: prof.events,
            events_per_window: prof.events_per_window(),
            lookahead_efficiency: prof.lookahead_efficiency(),
            shard_imbalance_pct: prof.shard_imbalance_pct(),
            cross_shard_events: prof.cross_shard_events(),
            cross_shard_fraction: if prof.events == 0 {
                0.0
            } else {
                prof.cross_shard_events() as f64 / prof.events as f64
            },
            recovered_events: prof.recovered_events,
            extended_shard_windows: prof.extended_shard_windows,
            recovered_fraction: if prof.events == 0 {
                0.0
            } else {
                prof.recovered_events as f64 / prof.events as f64
            },
        }
    }

    /// Record every field as `{prefix}_{name}` metrics in `report`.
    pub fn record_into(&self, report: &mut BenchReport, prefix: &str) {
        report.set(&format!("{prefix}_shards"), self.shards as f64);
        report.set(&format!("{prefix}_windows"), self.windows as f64);
        report.set(&format!("{prefix}_events"), self.events as f64);
        report.set(
            &format!("{prefix}_events_per_window"),
            self.events_per_window,
        );
        report.set_directed(
            &format!("{prefix}_lookahead_efficiency"),
            self.lookahead_efficiency,
            crate::regress::Direction::HigherIsBetter,
        );
        report.set(
            &format!("{prefix}_shard_imbalance_pct"),
            self.shard_imbalance_pct,
        );
        report.set(
            &format!("{prefix}_cross_shard_events"),
            self.cross_shard_events as f64,
        );
        report.set(
            &format!("{prefix}_cross_shard_fraction"),
            self.cross_shard_fraction,
        );
        report.set_directed(
            &format!("{prefix}_recovered_events"),
            self.recovered_events as f64,
            crate::regress::Direction::HigherIsBetter,
        );
        report.set(
            &format!("{prefix}_extended_shard_windows"),
            self.extended_shard_windows as f64,
        );
        report.set(
            &format!("{prefix}_recovered_fraction"),
            self.recovered_fraction,
        );
    }

    /// Human-readable one-paragraph summary.
    pub fn table(&self) -> String {
        format!(
            "runtime summary: {} shards, {} windows, {} events \
             ({:.2} ev/window, lookahead efficiency {:.2} ev/shard/window)\n\
             shard imbalance {:.1}%  cross-shard {} events ({:.1}%)\n\
             windowing recovered {} events ({:.1}%) across {} extended \
             shard-windows\n",
            self.shards,
            self.windows,
            self.events,
            self.events_per_window,
            self.lookahead_efficiency,
            self.shard_imbalance_pct,
            self.cross_shard_events,
            100.0 * self.cross_shard_fraction,
            self.recovered_events,
            100.0 * self.recovered_fraction,
            self.extended_shard_windows,
        )
    }
}

/// Render a [`ParProfile`] as a Chrome trace: one lane per worker with a
/// slice per retained window sample (wall-clock µs since the run began),
/// a per-worker phase-totals bar (busy/merge/barriers/windowing laid
/// end-to-end), and per-worker events-per-window counter tracks. Open in
/// Perfetto (<https://ui.perfetto.dev>) next to the simulated-fabric
/// trace from `trace_export`.
pub fn profile_chrome_trace(prof: &ParProfile) -> String {
    let mut b = ChromeTraceBuilder::new();
    let wall_ns = |ns: u64| SimTime::from_ps(ns.saturating_mul(1000));
    b.name_process(
        0,
        &format!(
            "par runtime ({} workers x {} shards)",
            prof.threads, prof.shards
        ),
    );
    b.name_process(1, "par runtime phase totals");
    for w in &prof.workers {
        let tid = w.worker as u64 + 1;
        b.name_thread(
            0,
            tid,
            &format!(
                "worker {} [shards {}..{}]",
                w.worker,
                w.first_shard,
                w.first_shard + w.shards
            ),
        );
        for s in &w.samples {
            if s.events == 0 {
                continue;
            }
            b.add_slice(
                0,
                tid,
                "window",
                &format!("w{} ({} ev)", s.window, s.events),
                wall_ns(s.start_ns),
                wall_ns(s.start_ns + s.exec_ns.max(1)),
            );
            b.add_counter(
                0,
                &format!("worker {} events/window", w.worker),
                wall_ns(s.start_ns),
                s.events as f64,
            );
        }
        // Phase totals as one stacked bar per worker: where the loop
        // time went, end to end.
        b.name_thread(1, tid, &format!("worker {} totals", w.worker));
        let mut at = 0u64;
        for (name, ns) in [
            ("busy", w.busy_ns),
            ("merge", w.merge_ns),
            ("barrier (publish)", w.barrier_publish_ns),
            ("barrier (imbalance)", w.barrier_window_ns),
            ("windowing", w.windowing_ns()),
        ] {
            if ns > 0 {
                b.add_slice(1, tid, "phase", name, wall_ns(at), wall_ns(at + ns));
            }
            at += ns;
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use anton_des::WindowSample;

    /// A hand-built profile with known numbers: 2 workers, 2 shards.
    fn profile() -> ParProfile {
        let mut p = ParProfile {
            threads: 2,
            shards: 2,
            wall_ns: 1_000,
            windows: 4,
            events: 40,
            shard_events: vec![30, 10],
            shard_busy_ns: vec![600, 200],
            traffic: vec![0, 6, 2, 0],
            sample_cap: 8,
            recovered_events: 6,
            extended_shard_windows: 2,
            ..Default::default()
        };
        for (worker, busy) in [(0usize, 600u64), (1, 200)] {
            let mut w = WorkerProfile {
                worker,
                first_shard: worker,
                shards: 1,
                loop_ns: 900,
                busy_ns: busy,
                merge_ns: 50,
                barrier_publish_ns: 40,
                barrier_window_ns: 900 - busy - 50 - 40 - 60,
                windows: 4,
                active_windows: 3,
                events: if worker == 0 { 30 } else { 10 },
                ..Default::default()
            };
            w.samples.push(WindowSample {
                window: 0,
                start_ns: 10,
                exec_ns: 100,
                events: 5,
                sim_ps: 162_000,
            });
            p.workers.push(w);
        }
        p
    }

    #[test]
    fn attribution_telescopes_exactly() {
        let p = profile();
        let a = SpeedupAttribution::from_profile(1_600, &p);
        assert_eq!(a.threads, 2);
        assert_eq!(a.ideal_ns, 800.0);
        assert_eq!(a.gap_ns, 200.0);
        // Components must close the gap to float precision.
        assert!(
            a.telescoping_error_ns() < 1e-6,
            "error {} ns\n{}",
            a.telescoping_error_ns(),
            a.table()
        );
        // Spot values: avg merge 50, avg publish-barrier 40.
        assert_eq!(a.merge_ns, 50.0);
        assert_eq!(a.barrier_ns, 40.0);
        // Windowing = avg residue 60 + (wall 1000 − avg loop 900).
        assert_eq!(a.windowing_ns, 160.0);
        // Exec excess = avg busy 400 − ideal 800.
        assert_eq!(a.exec_excess_ns, -400.0);
        assert!((a.speedup() - 1.6).abs() < 1e-9);
        assert!(a.table().contains("sum"));
    }

    #[test]
    fn summary_is_deterministic_in_profile_fields() {
        let p = profile();
        let s = RuntimeSummary::from_profile(&p);
        assert_eq!(s.windows, 4);
        assert_eq!(s.events_per_window, 10.0);
        assert_eq!(s.lookahead_efficiency, 5.0);
        assert_eq!(s.cross_shard_events, 8);
        assert!((s.cross_shard_fraction - 0.2).abs() < 1e-12);
        assert!((s.shard_imbalance_pct - 50.0).abs() < 1e-9);
        assert_eq!(s.recovered_events, 6);
        assert_eq!(s.extended_shard_windows, 2);
        assert!((s.recovered_fraction - 0.15).abs() < 1e-12);
        let mut r = BenchReport::new("t");
        s.record_into(&mut r, "par4");
        assert_eq!(r.get("par4_windows"), Some(4.0));
        assert_eq!(r.get("par4_cross_shard_events"), Some(8.0));
        assert_eq!(r.get("par4_recovered_events"), Some(6.0));
        assert_eq!(r.get("par4_extended_shard_windows"), Some(2.0));
        assert!(s.table().contains("2 shards"));
        assert!(s.table().contains("windowing recovered 6 events"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_worker_lanes() {
        let json = profile_chrome_trace(&profile());
        validate_json(&json).unwrap();
        assert!(json.contains("worker 0 [shards 0..1]"), "{json}");
        assert!(json.contains("worker 1 totals"));
        assert!(json.contains("barrier (imbalance)"));
        assert!(json.contains("events/window"));
    }
}
