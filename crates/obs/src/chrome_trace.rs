//! Chrome `trace_event` JSON export.
//!
//! The output is the JSON-object form of the [trace event format]
//! (`{"traceEvents": [...]}`), loadable directly in Perfetto
//! (<https://ui.perfetto.dev>) or `about:tracing`. Simulated picosecond
//! timestamps map to the format's microsecond `ts` field as fractional
//! values, so a 162 ns flight shows up as a 0.162 µs slice.
//!
//! The builder is deliberately low-level — named slices, instants, and
//! counters on numbered process/thread rows — so both the packet flight
//! recorder (one row per packet, one slice per Figure 6 stage) and the
//! `des::trace` activity tracer (one row per hardware track, one slice
//! per busy/stall interval) export through the same path. Output is
//! byte-stable for a given simulation: rows emit in insertion order and
//! floats format deterministically, which the same-seed determinism test
//! locks in.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::breakdown::{PacketLifecycle, Stage};
use crate::json::escape;
use anton_des::SimTime;
use std::fmt::Write as _;
use std::io;

/// Builds a Chrome `trace_event` JSON document incrementally.
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
}

/// Format a picosecond timestamp as the trace format's microsecond `ts`.
fn ts_us(t: SimTime) -> String {
    // Emit as an exact decimal (ps = µs * 1e6), avoiding float noise.
    let us = t.as_ps() / 1_000_000;
    let frac = t.as_ps() % 1_000_000;
    if frac == 0 {
        format!("{us}")
    } else {
        format!("{us}.{frac:06}").trim_end_matches('0').to_owned()
    }
}

fn dur_us(from: SimTime, to: SimTime) -> String {
    ts_us(SimTime::from_ps(to.as_ps().saturating_sub(from.as_ps())))
}

// One formatting function per event kind, shared by the in-memory
// builder and the streaming writer so the two paths are byte-identical
// by construction (the streaming-equivalence test locks this in).

fn ev_process_name(pid: u64, name: &str) -> String {
    format!(
        r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":{}}}}}"#,
        escape(name)
    )
}

fn ev_thread_name(pid: u64, tid: u64, name: &str) -> String {
    format!(
        r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":{}}}}}"#,
        escape(name)
    )
}

fn ev_slice(pid: u64, tid: u64, cat: &str, name: &str, start: SimTime, end: SimTime) -> String {
    format!(
        r#"{{"name":{},"cat":{},"ph":"X","ts":{},"dur":{},"pid":{pid},"tid":{tid}}}"#,
        escape(name),
        escape(cat),
        ts_us(start),
        dur_us(start, end),
    )
}

fn ev_instant(pid: u64, tid: u64, cat: &str, name: &str, at: SimTime) -> String {
    format!(
        r#"{{"name":{},"cat":{},"ph":"i","s":"p","ts":{},"pid":{pid},"tid":{tid}}}"#,
        escape(name),
        escape(cat),
        ts_us(at),
    )
}

fn ev_counter(pid: u64, name: &str, at: SimTime, value: f64) -> String {
    let v = if value == value.trunc() {
        format!("{}", value as i64)
    } else {
        format!("{value:?}")
    };
    format!(
        r#"{{"name":{},"ph":"C","ts":{},"pid":{pid},"args":{{"value":{v}}}}}"#,
        escape(name),
        ts_us(at),
    )
}

/// The events of one packet-lifecycle row, in emission order. Bounded:
/// one metadata event, at most five stage slices, one instant per hop.
fn lifecycle_events(pid: u64, lc: &PacketLifecycle) -> Vec<String> {
    let tid = lc.pkt.0;
    let mut out = Vec::with_capacity(6 + lc.hop_enters.len());
    out.push(ev_thread_name(
        pid,
        tid,
        &format!("pkt {} {}->{}", lc.pkt.0, lc.src.0, lc.dst.0),
    ));
    let head_at_dst = lc.hop_enters.last().copied().unwrap_or(lc.wire_ready);
    let anchors = [
        (Stage::SenderOverhead, lc.issued, lc.inj_ready),
        (Stage::Injection, lc.inj_ready, lc.wire_ready),
        (Stage::RouterWire, lc.wire_ready, head_at_dst),
        (Stage::Delivery, head_at_dst, lc.delivered),
        (Stage::Sync, lc.delivered, lc.fired.unwrap_or(lc.delivered)),
    ];
    for (stage, start, end) in anchors {
        if end > start {
            out.push(ev_slice(pid, tid, "packet", stage.name(), start, end));
        }
    }
    for (i, hop) in lc.hop_enters.iter().enumerate() {
        out.push(ev_instant(
            pid,
            tid,
            "packet",
            &format!("hop {}", i + 1),
            *hop,
        ));
    }
    out
}

const TRACE_HEADER: &str = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";

impl ChromeTraceBuilder {
    /// An empty trace.
    pub fn new() -> ChromeTraceBuilder {
        ChromeTraceBuilder::default()
    }

    /// Name a process row (`"M"` metadata event).
    pub fn name_process(&mut self, pid: u64, name: &str) {
        self.events.push(ev_process_name(pid, name));
    }

    /// Name a thread row within a process (`"M"` metadata event).
    pub fn name_thread(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(ev_thread_name(pid, tid, name));
    }

    /// Add a complete slice (`"X"` event) spanning `[start, end]`.
    pub fn add_slice(
        &mut self,
        pid: u64,
        tid: u64,
        cat: &str,
        name: &str,
        start: SimTime,
        end: SimTime,
    ) {
        self.events.push(ev_slice(pid, tid, cat, name, start, end));
    }

    /// Add an instant marker (`"i"` event, process scope).
    pub fn add_instant(&mut self, pid: u64, tid: u64, cat: &str, name: &str, at: SimTime) {
        self.events.push(ev_instant(pid, tid, cat, name, at));
    }

    /// Add a counter sample (`"C"` event) — renders as a track graph.
    pub fn add_counter(&mut self, pid: u64, name: &str, at: SimTime, value: f64) {
        self.events.push(ev_counter(pid, name, at, value));
    }

    /// Add one packet lifecycle as a thread row: one slice per non-empty
    /// Figure 6 stage, plus instant markers for retransmits folded in by
    /// the caller if desired. `pid` groups packets (e.g. by source node).
    pub fn add_lifecycle(&mut self, pid: u64, lc: &PacketLifecycle) {
        self.events.extend(lifecycle_events(pid, lc));
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finish into the JSON document.
    pub fn finish(self) -> String {
        let mut out = String::from(TRACE_HEADER);
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(ev);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }
}

/// Streams a Chrome `trace_event` JSON document to any [`io::Write`]
/// sink, chunk by chunk, without accumulating events in memory — the
/// bounded-memory counterpart of [`ChromeTraceBuilder`] for 100×-scale
/// runs. Output is byte-identical to the builder's for the same call
/// sequence (both paths share the event formatters).
#[derive(Debug)]
pub struct ChromeTraceWriter<W: io::Write> {
    w: W,
    count: u64,
}

impl<W: io::Write> ChromeTraceWriter<W> {
    /// Start a document on `w` (writes the header immediately). Wrap
    /// files in a `BufWriter`; the writer emits one small chunk per
    /// event.
    pub fn new(mut w: W) -> io::Result<ChromeTraceWriter<W>> {
        w.write_all(TRACE_HEADER.as_bytes())?;
        Ok(ChromeTraceWriter { w, count: 0 })
    }

    fn event(&mut self, ev: &str) -> io::Result<()> {
        if self.count > 0 {
            self.w.write_all(b",\n")?;
        }
        self.w.write_all(ev.as_bytes())?;
        self.count += 1;
        Ok(())
    }

    /// Name a process row (`"M"` metadata event).
    pub fn name_process(&mut self, pid: u64, name: &str) -> io::Result<()> {
        self.event(&ev_process_name(pid, name))
    }

    /// Name a thread row within a process (`"M"` metadata event).
    pub fn name_thread(&mut self, pid: u64, tid: u64, name: &str) -> io::Result<()> {
        self.event(&ev_thread_name(pid, tid, name))
    }

    /// Add a complete slice (`"X"` event) spanning `[start, end]`.
    pub fn add_slice(
        &mut self,
        pid: u64,
        tid: u64,
        cat: &str,
        name: &str,
        start: SimTime,
        end: SimTime,
    ) -> io::Result<()> {
        self.event(&ev_slice(pid, tid, cat, name, start, end))
    }

    /// Add an instant marker (`"i"` event, process scope).
    pub fn add_instant(
        &mut self,
        pid: u64,
        tid: u64,
        cat: &str,
        name: &str,
        at: SimTime,
    ) -> io::Result<()> {
        self.event(&ev_instant(pid, tid, cat, name, at))
    }

    /// Add a counter sample (`"C"` event).
    pub fn add_counter(&mut self, pid: u64, name: &str, at: SimTime, value: f64) -> io::Result<()> {
        self.event(&ev_counter(pid, name, at, value))
    }

    /// Stream one packet lifecycle row (bounded transient memory: the
    /// handful of event strings for this packet, then gone).
    pub fn add_lifecycle(&mut self, pid: u64, lc: &PacketLifecycle) -> io::Result<()> {
        for ev in lifecycle_events(pid, lc) {
            self.event(&ev)?;
        }
        Ok(())
    }

    /// Events written so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no events were written.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Close the JSON document and hand the sink back (flushed).
    pub fn finish(mut self) -> io::Result<W> {
        if self.count > 0 {
            self.w.write_all(b"\n")?;
        }
        self.w.write_all(b"]}\n")?;
        self.w.flush()?;
        Ok(self.w)
    }
}

const CSV_HEADER: &str = "packet,src,dst,hops,retransmits,payload_bytes,issued_ns,\
     sender_ns,injection_ns,router_wire_ns,delivery_ns,sync_ns,end_to_end_ns\n";

fn csv_row(lc: &PacketLifecycle) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{},{},{},{},{},{},{}",
        lc.pkt.0,
        lc.src.0,
        lc.dst.0,
        lc.hops(),
        lc.retransmits,
        lc.payload_bytes,
        lc.issued.as_ns_f64(),
    );
    for stage in Stage::ALL {
        let _ = write!(out, ",{}", lc.stage(stage).as_ns_f64());
    }
    let _ = writeln!(out, ",{}", lc.end_to_end().as_ns_f64());
    out
}

/// Render lifecycles as a flat CSV summary (one row per packet, one
/// column per Figure 6 stage) — the spreadsheet-friendly counterpart of
/// the Chrome trace.
pub fn lifecycles_csv(lifecycles: &[PacketLifecycle]) -> String {
    let mut out = String::from(CSV_HEADER);
    for lc in lifecycles {
        out.push_str(&csv_row(lc));
    }
    out
}

/// Streams the lifecycle CSV to any [`io::Write`] sink one row at a
/// time — byte-identical to [`lifecycles_csv`] over the same rows, with
/// O(1) memory.
#[derive(Debug)]
pub struct LifecycleCsvWriter<W: io::Write> {
    w: W,
    rows: u64,
}

impl<W: io::Write> LifecycleCsvWriter<W> {
    /// Start a CSV on `w` (writes the header immediately).
    pub fn new(mut w: W) -> io::Result<LifecycleCsvWriter<W>> {
        w.write_all(CSV_HEADER.as_bytes())?;
        Ok(LifecycleCsvWriter { w, rows: 0 })
    }

    /// Write one packet row.
    pub fn write(&mut self, lc: &PacketLifecycle) -> io::Result<()> {
        self.w.write_all(csv_row(lc).as_bytes())?;
        self.rows += 1;
        Ok(())
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and hand the sink back.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use anton_topo::NodeId;

    fn lifecycle() -> PacketLifecycle {
        PacketLifecycle {
            pkt: crate::PacketId(7),
            src: NodeId(0),
            dst: NodeId(1),
            issued: SimTime::from_ns(0),
            inj_ready: SimTime::from_ns(36),
            wire_ready: SimTime::from_ns(55),
            hop_enters: vec![SimTime::from_ns(95)],
            delivered: SimTime::from_ns(162),
            fired: None,
            retransmits: 0,
            payload_bytes: 32,
        }
    }

    #[test]
    fn trace_json_is_valid() {
        let mut b = ChromeTraceBuilder::new();
        b.name_process(0, "fabric \"node\" 0");
        b.add_lifecycle(0, &lifecycle());
        b.add_counter(0, "fifo depth", SimTime::from_ns(10), 3.0);
        let json = b.finish();
        validate_json(&json).unwrap();
        assert!(json.contains("\"router + wire\""));
        // 95 ns head arrival → ts 0.095 µs, trailing zeros trimmed.
        assert!(json.contains("\"ts\":0.095"), "{json}");
    }

    #[test]
    fn empty_trace_is_valid() {
        validate_json(&ChromeTraceBuilder::new().finish()).unwrap();
    }

    #[test]
    fn ts_formats_exact_decimal() {
        assert_eq!(ts_us(SimTime::from_ns(162)), "0.162");
        assert_eq!(ts_us(SimTime::from_us(3)), "3");
        assert_eq!(ts_us(SimTime::from_ps(1_234_567)), "1.234567");
    }

    #[test]
    fn streaming_writer_is_byte_identical_to_builder() {
        let lc = lifecycle();
        let mut b = ChromeTraceBuilder::new();
        b.name_process(3, "node 3");
        b.add_lifecycle(3, &lc);
        b.add_counter(3, "depth", SimTime::from_ns(7), 1.5);
        let built = b.finish();

        let mut w = ChromeTraceWriter::new(Vec::new()).unwrap();
        w.name_process(3, "node 3").unwrap();
        w.add_lifecycle(3, &lc).unwrap();
        w.add_counter(3, "depth", SimTime::from_ns(7), 1.5).unwrap();
        let streamed = String::from_utf8(w.finish().unwrap()).unwrap();
        assert_eq!(built, streamed);

        // Empty documents agree too.
        let empty_b = ChromeTraceBuilder::new().finish();
        let empty_w = ChromeTraceWriter::new(Vec::new())
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(empty_b.as_bytes(), empty_w.as_slice());

        let mut cb = LifecycleCsvWriter::new(Vec::new()).unwrap();
        cb.write(&lc).unwrap();
        let streamed_csv = String::from_utf8(cb.finish().unwrap()).unwrap();
        assert_eq!(lifecycles_csv(&[lc]), streamed_csv);
    }

    #[test]
    fn csv_rows_telescope() {
        let csv = lifecycles_csv(&[lifecycle()]);
        let row = csv.lines().nth(1).unwrap();
        let cols: Vec<f64> = row.split(',').skip(7).map(|c| c.parse().unwrap()).collect();
        let sum: f64 = cols[..5].iter().sum();
        assert_eq!(sum, cols[5]); // stage columns sum to end_to_end
        assert_eq!(cols[5], 162.0);
    }
}
