//! Schema-versioned benchmark reports and threshold-based regression
//! diffing — the data model behind `scripts/bench_regress.sh` and the
//! [`observatory`](crate::observatory) triage pipeline.
//!
//! A [`BenchReport`] is a flat map of metric name → value (latencies in
//! nanoseconds or microseconds, the name says which) with a schema
//! version, a label, and optional per-metric [`Direction`] metadata.
//! It serializes to a small, stable JSON document (`BENCH_pr*.json`
//! are the committed baselines) and parses back without any external
//! dependency. [`BenchReport::diff`] compares a current run against a
//! baseline with a percentage threshold: a lower-is-better metric
//! regresses when it *grows* past the threshold, a higher-is-better
//! metric (e.g. `lookahead_efficiency`, speedup ratios) when it
//! *shrinks* past it — so improvements are never reported as
//! regressions in either direction. Metrics present only in the
//! baseline are reported but do not fail the diff — that is what lets
//! the quick CI suite check against the committed full-suite baseline.

use crate::json::{escape, validate_json, Lex};
use crate::metrics::fmt_f64;
use std::collections::BTreeMap;

/// Version of the `BENCH_*.json` schema this crate writes. Version 1
/// (no `directions` object, every metric lower-is-better) is still
/// read; version 2 adds the optional per-metric direction map.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// Which way a metric is supposed to move.
///
/// The suite's latencies are [`Direction::LowerIsBetter`] (the
/// default); efficiency and speedup ratios are
/// [`Direction::HigherIsBetter`] and must never be flagged as
/// regressions when they rise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Growth past the threshold is a regression (latencies, losses).
    #[default]
    LowerIsBetter,
    /// Shrinkage past the threshold is a regression (efficiencies,
    /// speedups, bandwidths).
    HigherIsBetter,
}

impl Direction {
    /// Stable serialization tag.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower",
            Direction::HigherIsBetter => "higher",
        }
    }

    /// Inverse of [`Direction::as_str`].
    pub fn parse_str(s: &str) -> Result<Direction, String> {
        match s {
            "lower" => Ok(Direction::LowerIsBetter),
            "higher" => Ok(Direction::HigherIsBetter),
            other => Err(format!("unknown direction {other:?}")),
        }
    }
}

/// One benchmark run: named scalar results plus identifying metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`] when written by this
    /// crate).
    pub schema: u32,
    /// Free-form label of the run (suite name, PR tag).
    pub label: String,
    /// Metric name → value, sorted by name.
    pub values: BTreeMap<String, f64>,
    /// Metric name → direction for the metrics that deviate from the
    /// lower-is-better default. Only non-default entries serialize.
    pub directions: BTreeMap<String, Direction>,
}

impl BenchReport {
    /// An empty report with the current schema version.
    pub fn new(label: &str) -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA_VERSION,
            label: label.to_owned(),
            values: BTreeMap::new(),
            directions: BTreeMap::new(),
        }
    }

    /// Record one metric (overwrites a previous value of that name).
    pub fn set(&mut self, name: &str, value: f64) {
        debug_assert!(value.is_finite(), "metric {name} is not finite");
        self.values.insert(name.to_owned(), value);
    }

    /// Record one metric with an explicit direction.
    pub fn set_directed(&mut self, name: &str, value: f64, direction: Direction) {
        self.set(name, value);
        self.set_direction(name, direction);
    }

    /// Tag one metric's direction without touching its value.
    pub fn set_direction(&mut self, name: &str, direction: Direction) {
        if direction == Direction::default() {
            self.directions.remove(name);
        } else {
            self.directions.insert(name.to_owned(), direction);
        }
    }

    /// Look up one metric.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// The direction of one metric (lower-is-better unless tagged).
    pub fn direction(&self, name: &str) -> Direction {
        self.directions.get(name).copied().unwrap_or_default()
    }

    /// Serialize to the stable JSON document (validated before being
    /// returned, so it is always well-formed).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json_into(&mut out, 0);
        out.push('\n');
        validate_json(&out).expect("bench report JSON is well-formed by construction");
        out
    }

    /// Write the report object (no trailing newline) at `indent`
    /// leading spaces per nesting level base — the embeddable form the
    /// observatory report uses to nest a `BenchReport` verbatim.
    pub fn write_json_into(&self, out: &mut String, indent: usize) {
        let pad = " ".repeat(indent);
        out.push_str("{\n");
        out.push_str(&format!("{pad}  \"schema\": {},\n", self.schema));
        out.push_str(&format!("{pad}  \"label\": {},\n", escape(&self.label)));
        if !self.directions.is_empty() {
            out.push_str(&format!("{pad}  \"directions\": {{"));
            let mut first = true;
            for (name, dir) in &self.directions {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\n{pad}    {}: {}",
                    escape(name),
                    escape(dir.as_str())
                ));
            }
            out.push_str(&format!("\n{pad}  }},\n"));
        }
        out.push_str(&format!("{pad}  \"values\": {{"));
        let mut first = true;
        for (name, value) in &self.values {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n{pad}    {}: {}", escape(name), fmt_f64(*value)));
        }
        out.push_str(&format!("\n{pad}  }}\n{pad}}}"));
    }

    /// Parse a report written by [`BenchReport::to_json`] (or edited by
    /// hand, as long as it keeps the flat shape: top-level `schema`,
    /// `label`, optional `directions`, and a `values` object of finite
    /// numbers).
    pub fn parse(s: &str) -> Result<BenchReport, String> {
        validate_json(s).map_err(|e| format!("not valid JSON: {e:?}"))?;
        let mut p = Lex::new(s);
        Self::parse_object(&mut p)
    }

    /// Parse the report object at the cursor (shared with the
    /// observatory parser, which embeds a report under `"metrics"`).
    pub fn parse_object(p: &mut Lex<'_>) -> Result<BenchReport, String> {
        let mut report = BenchReport {
            schema: 0,
            label: String::new(),
            values: BTreeMap::new(),
            directions: BTreeMap::new(),
        };
        let mut saw_schema = false;
        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "schema" => {
                    report.schema = p.number()? as u32;
                    saw_schema = true;
                }
                "label" => report.label = p.string()?,
                "directions" => {
                    p.expect(b'{')?;
                    if p.peek() == Some(b'}') {
                        p.expect(b'}')?;
                    } else {
                        loop {
                            let name = p.string()?;
                            p.expect(b':')?;
                            let dir = Direction::parse_str(&p.string()?)?;
                            if dir != Direction::default() {
                                report.directions.insert(name, dir);
                            }
                            if !p.comma_or(b'}')? {
                                break;
                            }
                        }
                    }
                }
                "values" => {
                    p.expect(b'{')?;
                    if p.peek() == Some(b'}') {
                        p.expect(b'}')?;
                    } else {
                        loop {
                            let name = p.string()?;
                            p.expect(b':')?;
                            let value = p.number()?;
                            if !value.is_finite() {
                                return Err(format!("metric {name:?} is not finite ({value})"));
                            }
                            report.values.insert(name, value);
                            if !p.comma_or(b'}')? {
                                break;
                            }
                        }
                    }
                }
                other => return Err(format!("unexpected key {other:?}")),
            }
            if !p.comma_or(b'}')? {
                break;
            }
        }
        if !saw_schema {
            return Err("missing \"schema\"".to_owned());
        }
        if report.schema == 0 || report.schema > BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema version {} unsupported (this build reads 1..={})",
                report.schema, BENCH_SCHEMA_VERSION
            ));
        }
        Ok(report)
    }

    /// Compare this (current) run against a `baseline`. A metric
    /// regresses when it moved more than `threshold_pct` percent in
    /// its bad direction over the baseline; it must exist in both
    /// reports to be compared, and at least one metric must be
    /// comparable. Direction metadata comes from the current report,
    /// falling back to the baseline's (so a schema-1 baseline still
    /// diffs direction-aware against a schema-2 candidate).
    pub fn diff(
        &self,
        baseline: &BenchReport,
        threshold_pct: f64,
    ) -> Result<RegressReport, String> {
        let mut findings = Vec::new();
        let mut missing_in_current = Vec::new();
        for (name, &base) in &baseline.values {
            match self.get(name) {
                None => missing_in_current.push(name.clone()),
                Some(cur) => {
                    let delta_pct = if base == 0.0 {
                        if cur == 0.0 {
                            0.0
                        } else {
                            f64::INFINITY
                        }
                    } else {
                        100.0 * (cur - base) / base
                    };
                    let direction = if self.directions.contains_key(name) {
                        self.direction(name)
                    } else {
                        baseline.direction(name)
                    };
                    let regressed = match direction {
                        Direction::LowerIsBetter => delta_pct > threshold_pct,
                        Direction::HigherIsBetter => delta_pct < -threshold_pct,
                    };
                    findings.push(RegressFinding {
                        name: name.clone(),
                        baseline: base,
                        current: cur,
                        delta_pct,
                        direction,
                        regressed,
                    });
                }
            }
        }
        if findings.is_empty() {
            return Err("no metric exists in both reports".to_owned());
        }
        let new_in_current = self
            .values
            .keys()
            .filter(|k| !baseline.values.contains_key(*k))
            .cloned()
            .collect();
        Ok(RegressReport {
            findings,
            missing_in_current,
            new_in_current,
            threshold_pct,
        })
    }
}

/// One compared metric of a [`RegressReport`].
#[derive(Debug, Clone)]
pub struct RegressFinding {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Percentage change versus the baseline (positive = grew).
    pub delta_pct: f64,
    /// Which way this metric is supposed to move.
    pub direction: Direction,
    /// Whether the change exceeds the threshold in the bad direction.
    pub regressed: bool,
}

/// The result of diffing a current [`BenchReport`] against a baseline.
#[derive(Debug, Clone)]
pub struct RegressReport {
    /// All metrics present in both reports, baseline order.
    pub findings: Vec<RegressFinding>,
    /// Baseline metrics the current run did not produce (quick suite
    /// versus full baseline) — informational, not failures.
    pub missing_in_current: Vec<String>,
    /// Current metrics with no baseline yet — informational.
    pub new_in_current: Vec<String>,
    /// The threshold the diff was taken at, in percent.
    pub threshold_pct: f64,
}

impl RegressReport {
    /// Whether any metric regressed beyond the threshold.
    pub fn has_regressions(&self) -> bool {
        self.findings.iter().any(|f| f.regressed)
    }

    /// Number of regressed metrics.
    pub fn regression_count(&self) -> usize {
        self.findings.iter().filter(|f| f.regressed).count()
    }

    /// A fixed-width text table of the comparison. Higher-is-better
    /// metrics are marked with `^` after the name.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<34} {:>12} {:>12} {:>9}  verdict (threshold {:.1}%)\n",
            "metric", "baseline", "current", "delta", self.threshold_pct
        );
        for f in &self.findings {
            let marker = match f.direction {
                Direction::LowerIsBetter => "",
                Direction::HigherIsBetter => " ^",
            };
            out.push_str(&format!(
                "{:<34} {:>12.3} {:>12.3} {:>+8.2}%  {}{}\n",
                f.name,
                f.baseline,
                f.current,
                f.delta_pct,
                if f.regressed { "REGRESSED" } else { "ok" },
                marker,
            ));
        }
        for name in &self.missing_in_current {
            out.push_str(&format!("{name:<34} (baseline only — skipped)\n"));
        }
        for name in &self.new_in_current {
            out.push_str(&format!("{name:<34} (new — no baseline)\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("test");
        r.set("one_way_1hop_ns", 162.0);
        r.set("allreduce_512_us", 1.77);
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let json = r.to_json();
        validate_json(&json).expect("well-formed");
        let back = BenchReport::parse(&json).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn directions_round_trip_and_default_is_omitted() {
        let mut r = sample();
        r.set_directed("lookahead_efficiency", 182.45, Direction::HigherIsBetter);
        r.set_direction("one_way_1hop_ns", Direction::LowerIsBetter);
        let json = r.to_json();
        // Only the non-default direction serializes.
        assert!(
            json.contains("\"lookahead_efficiency\": \"higher\""),
            "{json}"
        );
        assert!(!json.contains("\"one_way_1hop_ns\": \"lower\""), "{json}");
        let back = BenchReport::parse(&json).expect("parses");
        assert_eq!(back, r);
        assert_eq!(
            back.direction("lookahead_efficiency"),
            Direction::HigherIsBetter
        );
        assert_eq!(back.direction("one_way_1hop_ns"), Direction::LowerIsBetter);
    }

    #[test]
    fn schema_1_documents_still_parse() {
        let json =
            "{\n  \"schema\": 1,\n  \"label\": \"old\",\n  \"values\": {\n    \"m\": 1.5\n  }\n}\n";
        let r = BenchReport::parse(json).expect("schema 1 parses");
        assert_eq!(r.schema, 1);
        assert_eq!(r.get("m"), Some(1.5));
        assert_eq!(r.direction("m"), Direction::LowerIsBetter);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let json = sample()
            .to_json()
            .replace("\"schema\": 2", "\"schema\": 99");
        let err = BenchReport::parse(&json).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
    }

    #[test]
    fn non_finite_values_are_rejected_at_parse() {
        // 1e999 overflows f64 to infinity while staying valid JSON.
        let json =
            "{\n  \"schema\": 2,\n  \"label\": \"x\",\n  \"values\": {\n    \"m\": 1e999\n  }\n}\n";
        let err = BenchReport::parse(json).unwrap_err();
        assert!(err.contains("not finite"), "{err}");
        // A bare NaN is not even valid JSON.
        let json = "{\"schema\": 2, \"label\": \"x\", \"values\": {\"m\": NaN}}";
        assert!(BenchReport::parse(json).is_err());
    }

    #[test]
    fn diff_flags_only_threshold_crossings() {
        let base = sample();
        let mut cur = sample();
        cur.set("one_way_1hop_ns", 190.0); // +17.3%
        cur.set("allreduce_512_us", 1.80); // +1.7%
        let d = cur.diff(&base, 10.0).expect("comparable");
        assert!(d.has_regressions());
        assert_eq!(d.regression_count(), 1);
        let reg = d.findings.iter().find(|f| f.regressed).unwrap();
        assert_eq!(reg.name, "one_way_1hop_ns");
        assert!(d.table().contains("REGRESSED"));
        // Improvements never fail.
        let mut fast = sample();
        fast.set("one_way_1hop_ns", 100.0);
        assert!(!fast.diff(&base, 10.0).unwrap().has_regressions());
    }

    #[test]
    fn higher_is_better_inverts_the_gate() {
        let mut base = BenchReport::new("base");
        base.set_directed("lookahead_efficiency", 180.0, Direction::HigherIsBetter);
        // A 20% efficiency jump is an improvement, not a regression.
        let mut up = BenchReport::new("cur");
        up.set_directed("lookahead_efficiency", 216.0, Direction::HigherIsBetter);
        assert!(!up.diff(&base, 10.0).unwrap().has_regressions());
        // A 20% drop is a regression.
        let mut down = BenchReport::new("cur");
        down.set_directed("lookahead_efficiency", 144.0, Direction::HigherIsBetter);
        let d = down.diff(&base, 10.0).unwrap();
        assert!(d.has_regressions());
        assert!(d.table().contains("REGRESSED ^"), "{}", d.table());
        // Direction metadata on the baseline alone (candidate untagged)
        // still applies — a schema-1-style candidate can't flip it.
        let mut plain = BenchReport::new("cur");
        plain.set("lookahead_efficiency", 216.0);
        assert!(!plain.diff(&base, 10.0).unwrap().has_regressions());
    }

    #[test]
    fn threshold_exactly_at_boundary_is_not_a_regression() {
        let mut base = BenchReport::new("base");
        base.set("lat_ns", 100.0);
        base.set_directed("eff", 100.0, Direction::HigherIsBetter);
        let mut cur = BenchReport::new("cur");
        cur.set("lat_ns", 110.0); // exactly +10%
        cur.set_directed("eff", 90.0, Direction::HigherIsBetter); // exactly -10%
        let d = cur.diff(&base, 10.0).expect("comparable");
        assert!(!d.has_regressions(), "{}", d.table());
        // One ulp past the boundary trips it.
        cur.set("lat_ns", 110.1);
        assert!(cur.diff(&base, 10.0).unwrap().has_regressions());
    }

    #[test]
    fn candidate_only_metrics_are_informational() {
        let base = sample();
        let mut cur = sample();
        cur.set("brand_new_metric_ns", 5.0);
        let d = cur.diff(&base, 10.0).expect("comparable");
        assert!(!d.has_regressions());
        assert_eq!(d.new_in_current, vec!["brand_new_metric_ns".to_owned()]);
        assert!(d.table().contains("new — no baseline"));
    }

    #[test]
    fn baseline_only_keys_are_skipped_not_failed() {
        let mut base = sample();
        base.set("dhfr_step_us", 21.0); // full-suite metric
        let cur = sample(); // quick suite: no DHFR key
        let d = cur.diff(&base, 10.0).expect("comparable");
        assert!(!d.has_regressions());
        assert_eq!(d.missing_in_current, vec!["dhfr_step_us".to_owned()]);
        assert!(d.table().contains("baseline only"));
    }

    #[test]
    fn disjoint_reports_are_an_error() {
        let mut other = BenchReport::new("other");
        other.set("unrelated", 1.0);
        assert!(sample().diff(&other, 10.0).is_err());
    }
}
