//! Schema-versioned benchmark reports and threshold-based regression
//! diffing — the data model behind `scripts/bench_regress.sh`.
//!
//! A [`BenchReport`] is a flat map of metric name → value (latencies in
//! nanoseconds or microseconds, the name says which) with a schema
//! version and a label. It serializes to a small, stable JSON document
//! (`BENCH_pr3.json` is the committed baseline) and parses back without
//! any external dependency. [`BenchReport::diff`] compares a current
//! run against a baseline with a percentage threshold: all suite
//! metrics are lower-is-better, so only increases beyond the threshold
//! count as regressions. Metrics present only in the baseline are
//! reported but do not fail the diff — that is what lets the quick CI
//! suite check against the committed full-suite baseline.

use crate::json::{escape, validate_json};
use crate::metrics::fmt_f64;
use std::collections::BTreeMap;

/// Version of the `BENCH_*.json` schema this crate writes and reads.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// One benchmark run: named scalar results plus identifying metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`] when written by this
    /// crate).
    pub schema: u32,
    /// Free-form label of the run (suite name, PR tag).
    pub label: String,
    /// Metric name → value, sorted by name. Lower is better for every
    /// suite metric.
    pub values: BTreeMap<String, f64>,
}

impl BenchReport {
    /// An empty report with the current schema version.
    pub fn new(label: &str) -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA_VERSION,
            label: label.to_owned(),
            values: BTreeMap::new(),
        }
    }

    /// Record one metric (overwrites a previous value of that name).
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Look up one metric.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Serialize to the stable JSON document (validated before being
    /// returned, so it is always well-formed).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {},\n", self.schema));
        out.push_str(&format!("  \"label\": {},\n", escape(&self.label)));
        out.push_str("  \"values\": {");
        let mut first = true;
        for (name, value) in &self.values {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {}", escape(name), fmt_f64(*value)));
        }
        out.push_str("\n  }\n}\n");
        validate_json(&out).expect("bench report JSON is well-formed by construction");
        out
    }

    /// Parse a report written by [`BenchReport::to_json`] (or edited by
    /// hand, as long as it keeps the flat shape: top-level `schema`,
    /// `label`, and a `values` object of numbers).
    pub fn parse(s: &str) -> Result<BenchReport, String> {
        validate_json(s).map_err(|e| format!("not valid JSON: {e:?}"))?;
        let mut p = Lex {
            s: s.as_bytes(),
            i: 0,
        };
        let mut report = BenchReport {
            schema: 0,
            label: String::new(),
            values: BTreeMap::new(),
        };
        let mut saw_schema = false;
        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "schema" => {
                    report.schema = p.number()? as u32;
                    saw_schema = true;
                }
                "label" => report.label = p.string()?,
                "values" => {
                    p.expect(b'{')?;
                    if p.peek() == Some(b'}') {
                        p.expect(b'}')?;
                    } else {
                        loop {
                            let name = p.string()?;
                            p.expect(b':')?;
                            report.values.insert(name, p.number()?);
                            if !p.comma_or(b'}')? {
                                break;
                            }
                        }
                    }
                }
                other => return Err(format!("unexpected key {other:?}")),
            }
            if !p.comma_or(b'}')? {
                break;
            }
        }
        if !saw_schema {
            return Err("missing \"schema\"".to_owned());
        }
        if report.schema != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema version {} unsupported (this build reads {})",
                report.schema, BENCH_SCHEMA_VERSION
            ));
        }
        Ok(report)
    }

    /// Compare this (current) run against a `baseline`. A metric
    /// regresses when it grew more than `threshold_pct` percent over
    /// the baseline; it must exist in both reports to be compared, and
    /// at least one metric must be comparable.
    pub fn diff(
        &self,
        baseline: &BenchReport,
        threshold_pct: f64,
    ) -> Result<RegressReport, String> {
        let mut findings = Vec::new();
        let mut missing_in_current = Vec::new();
        for (name, &base) in &baseline.values {
            match self.get(name) {
                None => missing_in_current.push(name.clone()),
                Some(cur) => {
                    let delta_pct = if base == 0.0 {
                        if cur == 0.0 {
                            0.0
                        } else {
                            f64::INFINITY
                        }
                    } else {
                        100.0 * (cur - base) / base
                    };
                    findings.push(RegressFinding {
                        name: name.clone(),
                        baseline: base,
                        current: cur,
                        delta_pct,
                        regressed: delta_pct > threshold_pct,
                    });
                }
            }
        }
        if findings.is_empty() {
            return Err("no metric exists in both reports".to_owned());
        }
        let new_in_current = self
            .values
            .keys()
            .filter(|k| !baseline.values.contains_key(*k))
            .cloned()
            .collect();
        Ok(RegressReport {
            findings,
            missing_in_current,
            new_in_current,
            threshold_pct,
        })
    }
}

/// One compared metric of a [`RegressReport`].
#[derive(Debug, Clone)]
pub struct RegressFinding {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Percentage change versus the baseline (positive = slower).
    pub delta_pct: f64,
    /// Whether the change exceeds the threshold.
    pub regressed: bool,
}

/// The result of diffing a current [`BenchReport`] against a baseline.
#[derive(Debug, Clone)]
pub struct RegressReport {
    /// All metrics present in both reports, baseline order.
    pub findings: Vec<RegressFinding>,
    /// Baseline metrics the current run did not produce (quick suite
    /// versus full baseline) — informational, not failures.
    pub missing_in_current: Vec<String>,
    /// Current metrics with no baseline yet — informational.
    pub new_in_current: Vec<String>,
    /// The threshold the diff was taken at, in percent.
    pub threshold_pct: f64,
}

impl RegressReport {
    /// Whether any metric regressed beyond the threshold.
    pub fn has_regressions(&self) -> bool {
        self.findings.iter().any(|f| f.regressed)
    }

    /// Number of regressed metrics.
    pub fn regression_count(&self) -> usize {
        self.findings.iter().filter(|f| f.regressed).count()
    }

    /// A fixed-width text table of the comparison.
    pub fn table(&self) -> String {
        let mut out = format!(
            "{:<34} {:>12} {:>12} {:>9}  verdict (threshold {:.1}%)\n",
            "metric", "baseline", "current", "delta", self.threshold_pct
        );
        for f in &self.findings {
            out.push_str(&format!(
                "{:<34} {:>12.3} {:>12.3} {:>+8.2}%  {}\n",
                f.name,
                f.baseline,
                f.current,
                f.delta_pct,
                if f.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        for name in &self.missing_in_current {
            out.push_str(&format!("{name:<34} (baseline only — skipped)\n"));
        }
        for name in &self.new_in_current {
            out.push_str(&format!("{name:<34} (new — no baseline)\n"));
        }
        out
    }
}

/// A minimal lexer for the flat report shape; well-formedness was
/// already checked by [`validate_json`], so errors here mean the
/// document is valid JSON of the wrong *shape*.
struct Lex<'a> {
    s: &'a [u8],
    i: usize,
}

impl Lex<'_> {
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.ws();
        if self.s.get(self.i) == Some(&b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.i))
        }
    }

    /// Consume `,` (returning true) or the given closer (false).
    fn comma_or(&mut self, close: u8) -> Result<bool, String> {
        self.ws();
        match self.s.get(self.i) {
            Some(b',') => {
                self.i += 1;
                Ok(true)
            }
            Some(&b) if b == close => {
                self.i += 1;
                Ok(false)
            }
            _ => Err(format!(
                "expected ',' or {:?} at byte {}",
                close as char, self.i
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&b) = self.s.get(self.i) {
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.s.get(self.i).ok_or("truncated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => out.push(b as char),
            }
        }
        Err("unterminated string".to_owned())
    }

    fn number(&mut self) -> Result<f64, String> {
        self.ws();
        let start = self.i;
        while let Some(&b) = self.s.get(self.i) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("expected a number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("test");
        r.set("one_way_1hop_ns", 162.0);
        r.set("allreduce_512_us", 1.77);
        r
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let json = r.to_json();
        validate_json(&json).expect("well-formed");
        let back = BenchReport::parse(&json).expect("parses");
        assert_eq!(back, r);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let json = sample()
            .to_json()
            .replace("\"schema\": 1", "\"schema\": 99");
        let err = BenchReport::parse(&json).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
    }

    #[test]
    fn diff_flags_only_threshold_crossings() {
        let base = sample();
        let mut cur = sample();
        cur.set("one_way_1hop_ns", 190.0); // +17.3%
        cur.set("allreduce_512_us", 1.80); // +1.7%
        let d = cur.diff(&base, 10.0).expect("comparable");
        assert!(d.has_regressions());
        assert_eq!(d.regression_count(), 1);
        let reg = d.findings.iter().find(|f| f.regressed).unwrap();
        assert_eq!(reg.name, "one_way_1hop_ns");
        assert!(d.table().contains("REGRESSED"));
        // Improvements never fail.
        let mut fast = sample();
        fast.set("one_way_1hop_ns", 100.0);
        assert!(!fast.diff(&base, 10.0).unwrap().has_regressions());
    }

    #[test]
    fn baseline_only_keys_are_skipped_not_failed() {
        let mut base = sample();
        base.set("dhfr_step_us", 21.0); // full-suite metric
        let cur = sample(); // quick suite: no DHFR key
        let d = cur.diff(&base, 10.0).expect("comparable");
        assert!(!d.has_regressions());
        assert_eq!(d.missing_in_current, vec!["dhfr_step_us".to_owned()]);
        assert!(d.table().contains("baseline only"));
    }

    #[test]
    fn disjoint_reports_are_an_error() {
        let mut other = BenchReport::new("other");
        other.set("unrelated", 1.0);
        assert!(sample().diff(&other, 10.0).is_err());
    }
}
