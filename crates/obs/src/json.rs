//! Dependency-free JSON helpers: string escaping for the exporters and
//! a strict recursive-descent validator used by the CI trace-export
//! smoke step (the container has no serde and no guaranteed python, so
//! the tool validates its own output).

/// Escape a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validate that `input` is one complete, well-formed JSON value
/// (RFC 8259 grammar; rejects trailing garbage, unescaped control
/// characters, leading zeros, and bare NaN/Infinity). Returns the byte
/// offset and a message on the first error.
pub fn validate_json(input: &str) -> Result<(), JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(())
}

/// A JSON syntax error: byte offset of the failure plus a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let r = self.object();
                self.depth -= 1;
                r
            }
            Some(b'[') => {
                self.depth += 1;
                let r = self.array();
                self.depth -= 1;
                r
            }
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zero"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "[]",
            "{}",
            r#"{"a": [1, 2.5, -3e4], "b": {"c": "d\né"}}"#,
            " { \"traceEvents\" : [ ] } ",
            "0.5",
            "-0",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("{doc:?}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{'a': 1}",
            "{\"a\" 1}",
            "01",
            "1.",
            "NaN",
            "[1] tail",
            "\"unterminated",
            "\"bad \u{1}\"",
        ] {
            assert!(validate_json(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let s = escape("quote \" backslash \\ newline \n ctrl \u{1} é");
        validate_json(&s).unwrap();
    }
}
